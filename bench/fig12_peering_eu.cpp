// Fig. 12 — ISP-cloud peering case study in Europe (DE ISPs -> UK DCs).

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 12 — ISP-cloud peering case study in Europe (DE ISPs -> UK DCs)",
      "big-3 peer directly with all German ISPs; Telefonica->BABA and Vodafone->DO ride the public Internet; IBM crosses IXPs most; direct vs transit latency nearly identical (well-provisioned EU)");

  const auto study = analysis::peering_case_study(
      bench::shared_study().view(), "DE", "GB");
  bench::print_peering_case_study(study);
  return 0;
}

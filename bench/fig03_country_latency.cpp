// Fig. 3 — median RTT from each country's Speedchecker probes to the closest
// in-continent datacenter, bucketed into the paper's latency classes, plus
// the §4.1 takeaway (countries meeting MTP/HPL/HRT).

#include <iostream>
#include <map>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 3 — median latency to the closest in-continent datacenter",
      "in-land DCs => lowest medians; ~96/120 countries < HPL (100 ms); all "
      "but two (African) countries < HRT (250 ms); Africa most uneven");

  const auto rows =
      analysis::fig3_country_latency(bench::shared_study().view());

  std::map<std::string_view, std::vector<const analysis::CountryLatencyRow*>>
      by_bucket;
  std::size_t below_mtp = 0;
  std::size_t below_hpl = 0;
  std::size_t below_hrt = 0;
  for (const auto& row : rows) {
    by_bucket[row.bucket].push_back(&row);
    if (row.median_ms < analysis::kMtpMs) ++below_mtp;
    if (row.median_ms < analysis::kHplMs) ++below_hpl;
    if (row.median_ms < analysis::kHrtMs) ++below_hrt;
  }

  for (const std::string_view bucket :
       {"<30", "30-60", "60-100", "100-250", ">250"}) {
    const auto it = by_bucket.find(bucket);
    std::cout << "\n[" << bucket << " ms] "
              << (it == by_bucket.end() ? 0 : it->second.size())
              << " countries\n  ";
    if (it == by_bucket.end()) continue;
    for (const auto* row : it->second) {
      std::cout << row->country << "(" << bench::ms(row->median_ms) << ") ";
    }
    std::cout << "\n";
  }

  std::cout << "\ncountries measured: " << rows.size() << "\n";
  std::cout << "  median < MTP (20 ms):  " << below_mtp << "\n";
  std::cout << "  median < HPL (100 ms): " << below_hpl << " ("
            << bench::pct(100.0 * static_cast<double>(below_hpl) /
                          static_cast<double>(rows.size()))
            << ")\n";
  std::cout << "  median < HRT (250 ms): " << below_hrt << " (failing: "
            << rows.size() - below_hrt << ")\n";
  std::cout << "paper: 96/120 < HPL; all but 2 African countries < HRT\n";
  return 0;
}

// Fig. 18 (A.4) — peering case study.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 18 (A.4) — peering case study",
      " Bahraini ISPs -> IN DCs:direct interconnections rare (only MSFT/GCP with a few ISPs); where direct peering exists it is consistently and substantially faster");

  const auto study = analysis::peering_case_study(
      bench::shared_study().view(), "BH", "IN");
  bench::print_peering_case_study(study);
  return 0;
}

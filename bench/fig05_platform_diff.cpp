// Fig. 5 — quantile-matched latency differences between Speedchecker and
// RIPE Atlas measurements towards the nearest DC (negative = SC faster).

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 5 — Speedchecker vs RIPE Atlas latency differences",
      "Atlas faster in all continents (wired last-mile), gap largest in "
      "Africa; South America inverted (~70% of SC samples faster, Brazilian "
      "probe skew)");

  const auto series = analysis::fig5_platform_diff(bench::shared_study().view());

  util::TextTable table;
  table.set_header({"continent", "SC faster", "median diff [ms]",
                    "p25 diff", "p75 diff", "points"});
  for (const auto& s : series) {
    std::size_t negative = 0;
    for (const double d : s.values) {
      if (d < 0.0) ++negative;
    }
    const util::Summary summary = util::summarize(s.values);
    table.add_row(
        {s.label,
         s.values.empty() ? "-"
                          : bench::pct(100.0 * static_cast<double>(negative) /
                                       static_cast<double>(s.values.size())),
         bench::ms(summary.median), bench::ms(summary.p25),
         bench::ms(summary.p75), std::to_string(s.values.size())});
  }
  std::cout << "\n" << table.render();
  std::cout << "\n(negative differences = Speedchecker faster at that "
               "quantile; positive = Atlas faster)\n";
  return 0;
}

// Extension — horizontal (inter-datacenter) connectivity.
//
// §3.1 of the paper notes that small providers "rely heavily on the public
// Internet for transporting their traffic horizontally (between
// datacenters)" while hypergiants ride their private WANs; the paper's
// future-work list includes cloud-side measurements in the style of Arnold
// et al. This harness measures the inter-region RTT matrix per provider and
// compares private-WAN and public-backbone providers at matched distances.

#include <iostream>
#include <map>

#include "common.hpp"
#include "measure/engine.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Extension — inter-datacenter latency (private WAN vs public haul)",
      "hypergiants move horizontal traffic on their backbones; small "
      "providers cross the public Internet — visible as a per-km latency "
      "premium and fatter tails");

  const core::Study& study = bench::shared_study();
  const measure::Engine engine{study.world()};
  util::Rng rng = study.world().fork_rng("interdc");

  // Distance buckets (km) for a fair comparison across footprints.
  const std::vector<std::pair<double, double>> buckets{
      {0, 2000}, {2000, 6000}, {6000, 20000}};

  util::TextTable table;
  table.set_header({"provider", "backbone", "<2000km", "2000-6000km", ">6000km",
                    "normalised", "pair Cv"});
  for (const cloud::ProviderId provider : cloud::kAllProviders) {
    std::vector<const topology::CloudEndpoint*> regions;
    for (const topology::CloudEndpoint& endpoint : study.world().endpoints()) {
      if (endpoint.region->provider == provider) regions.push_back(&endpoint);
    }
    if (regions.size() < 4) continue;

    std::map<std::size_t, std::vector<double>> per_bucket;
    std::vector<double> ms_per_megameter;  // distance-normalised latency
    std::vector<double> pair_cv;           // per-pair consistency
    for (std::size_t i = 0; i < regions.size(); ++i) {
      for (std::size_t j = 0; j < regions.size(); ++j) {
        if (i == j) continue;
        const double km = geo::haversine_km(regions[i]->region->location,
                                            regions[j]->region->location);
        std::vector<double> pair_rtts;
        for (int sample = 0; sample < 6; ++sample) {
          const double rtt = engine.interdc_rtt(*regions[i], *regions[j], rng);
          pair_rtts.push_back(rtt);
          for (std::size_t bucket = 0; bucket < buckets.size(); ++bucket) {
            if (km >= buckets[bucket].first && km < buckets[bucket].second) {
              per_bucket[bucket].push_back(rtt);
            }
          }
          if (km >= 1000.0) ms_per_megameter.push_back(rtt / (km / 1000.0));
        }
        if (const auto cv = util::coefficient_of_variation(pair_rtts)) {
          pair_cv.push_back(*cv);
        }
      }
    }

    const cloud::ProviderInfo& info = cloud::provider_info(provider);
    std::vector<std::string> row{std::string{info.ticker}};
    switch (info.backbone) {
      case cloud::BackboneClass::Private: row.emplace_back("Private"); break;
      case cloud::BackboneClass::Semi: row.emplace_back("Semi"); break;
      case cloud::BackboneClass::Public: row.emplace_back("Public"); break;
    }
    for (std::size_t bucket = 0; bucket < buckets.size(); ++bucket) {
      const auto it = per_bucket.find(bucket);
      if (it == per_bucket.end() || it->second.size() < 4) {
        row.emplace_back("-");
      } else {
        row.push_back(bench::ms(util::median(it->second)) + " ms");
      }
    }
    row.push_back(util::format_double(util::median(ms_per_megameter), 1) +
                  " ms/Mm");
    row.push_back(util::format_double(util::median(pair_cv), 2));
    table.add_row(std::move(row));
  }
  std::cout << "\n" << table.render();
  std::cout << "\nexpected shape: at matched distances, Private-backbone "
               "providers post lower medians and tighter tails than "
               "Public-backbone ones (whose 'WAN' is the public Internet).\n";
  return 0;
}

// perf_core — google-benchmark microbenchmarks for the hot kernels of the
// simulator and the analysis pipeline: longest-prefix match, backbone
// routing, forwarding-path construction, full traceroute execution, and the
// statistics kernels.

#include <benchmark/benchmark.h>

#include "analysis/resolve.hpp"
#include "analysis/trace_analysis.hpp"
#include "measure/engine.hpp"
#include "probes/fleet.hpp"
#include "routing/path_builder.hpp"
#include "topology/world.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace cloudrtt;

/// One shared world + tiny fleet for all fixtures (built once).
struct Fixture {
  topology::World world{topology::WorldConfig{7}};
  probes::ProbeFleet fleet{world,
                           probes::FleetConfig{probes::Platform::Speedchecker, 600}};
  analysis::IpToAsn resolver = analysis::IpToAsn::from_world(world);
  measure::Engine engine{world};

  static Fixture& instance() {
    static Fixture fixture;
    return fixture;
  }
};

void BM_TrieLookup(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{1};
  std::vector<net::Ipv4Address> addresses;
  for (const probes::Probe& probe : f.fleet.probes()) {
    addresses.push_back(probe.address);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.resolver.resolve(addresses[i++ % addresses.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieLookup);

void BM_BackboneRoute(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const auto countries = f.world.countries().all();
  util::Rng rng{2};
  for (auto _ : state) {
    const auto& a = countries[rng.below(countries.size())];
    const auto& b = countries[rng.below(countries.size())];
    benchmark::DoNotOptimize(f.world.backbone().route(a.code, b.code));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BackboneRoute);

void BM_PathBuild(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const routing::PathBuilder builder{f.world};
  util::Rng rng{3};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(
        builder.build(probe, endpoint, topology::InterconnectMode::Public));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PathBuild);

void BM_Traceroute(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{4};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(f.engine.traceroute(probe, endpoint, 0, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Traceroute);

void BM_ClassifyInterconnect(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{5};
  std::vector<measure::TraceRecord> traces;
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (int i = 0; i < 256; ++i) {
    traces.push_back(f.engine.traceroute(probes[rng.below(probes.size())],
                                         endpoints[rng.below(endpoints.size())], 0,
                                         rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::classify_interconnect(traces[i++ % traces.size()], f.resolver));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClassifyInterconnect);

void BM_QuantileSweep(benchmark::State& state) {
  util::Rng rng{6};
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(state.range(0)));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    samples.push_back(rng.lognormal_median(50.0, 0.5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::summarize(samples));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantileSweep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_WorldConstruction(benchmark::State& state) {
  for (auto _ : state) {
    topology::World world{topology::WorldConfig{42}};
    benchmark::DoNotOptimize(world.endpoints().size());
  }
}
BENCHMARK(BM_WorldConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

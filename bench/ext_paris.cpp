// Extension — classic vs Paris traceroute (§2.1 [10], §3.3 caveats).
//
// The paper's traceroute analysis inherits the classic tool's ECMP
// anomalies: per-TTL flow variation makes load-balanced transit segments
// answer from different interfaces and inflates hop RTTs. This harness
// quantifies the artefact on the simulated Internet and shows what the study
// would have gained from Paris traceroute: fewer distinct interfaces per
// path, lower hop-RTT inflation, same AS-level classification.

#include <iostream>
#include <map>
#include <set>

#include "common.hpp"
#include "measure/engine.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Extension — classic vs Paris traceroute on ECMP transit",
      "classic traceroute sees extra interfaces and inflated hop RTTs on "
      "load-balanced segments; Paris pins the flow. AS-level conclusions "
      "survive either way (the paper's saving grace)");

  const core::Study& study = bench::shared_study();
  const measure::Engine engine{study.world()};
  const auto& resolver = study.resolver();
  util::Rng rng = study.world().fork_rng("paris");

  // Measure a panel of probe->endpoint pairs repeatedly with both methods.
  constexpr int kPairs = 150;
  constexpr int kRepeats = 12;
  struct Tally {
    double interfaces_sum = 0.0;
    std::size_t pairs = 0;
    std::vector<double> hop_rtts;  // all responded transit-ish hop RTTs
    std::size_t classified = 0;
    std::size_t agree_truth = 0;
  };
  std::map<measure::Engine::TraceMethod, Tally> tallies;

  const auto& probes = study.sc_fleet().probes();
  const auto& endpoints = study.world().endpoints();
  for (int pair = 0; pair < kPairs; ++pair) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint =
        endpoints[rng.below(endpoints.size())];
    for (const auto method : {measure::Engine::TraceMethod::Classic,
                              measure::Engine::TraceMethod::Paris}) {
      // Pin the measurement randomness per pair so the two methods see the
      // same network weather.
      util::Rng pair_rng = rng.fork(static_cast<std::uint64_t>(pair));
      std::set<std::uint32_t> interfaces;
      std::map<std::uint8_t, std::vector<double>> per_ttl;
      Tally& tally = tallies[method];
      for (int repeat = 0; repeat < kRepeats; ++repeat) {
        const measure::TraceRecord trace =
            engine.traceroute(probe, endpoint, 0, pair_rng, method);
        for (const measure::HopRecord& hop : trace.hops) {
          if (!hop.responded) continue;
          interfaces.insert(hop.ip.value());
          per_ttl[hop.ttl].push_back(hop.rtt_ms);
        }
        const auto obs = analysis::classify_interconnect(trace, *study.view().resolver);
        if (obs.valid) {
          ++tally.classified;
          const bool match =
              obs.mode == trace.true_mode ||
              (obs.mode == topology::InterconnectMode::Direct &&
               trace.true_mode == topology::InterconnectMode::DirectIxp);
          if (match) ++tally.agree_truth;
        }
      }
      tally.interfaces_sum += static_cast<double>(interfaces.size());
      ++tally.pairs;
      // Keep the middle TTLs' RTTs (where the ECMP segments live).
      if (per_ttl.size() >= 3) {
        auto it = per_ttl.begin();
        std::advance(it, per_ttl.size() / 2);
        tally.hop_rtts.insert(tally.hop_rtts.end(), it->second.begin(),
                              it->second.end());
      }
    }
  }
  (void)resolver;

  util::TextTable table;
  table.set_header({"method", "interfaces/path", "median mid-hop RTT",
                    "classification accuracy"});
  for (const auto& [method, tally] : tallies) {
    table.add_row(
        {method == measure::Engine::TraceMethod::Classic ? "classic" : "Paris",
         util::format_double(tally.interfaces_sum /
                                 static_cast<double>(tally.pairs),
                             2),
         util::format_double(util::median(tally.hop_rtts), 1) + " ms",
         bench::pct(100.0 * static_cast<double>(tally.agree_truth) /
                    static_cast<double>(tally.classified))});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nexpected shape: classic sees ~1 extra interface per path "
               "and slightly inflated mid-hop RTTs; AS-level classification "
               "accuracy is method-independent.\n";
  return 0;
}

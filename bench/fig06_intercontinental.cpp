// Fig. 6 — intercontinental cloud access from Africa (to AF/EU/NA DCs) and
// South America (to SA/NA DCs): can good cables beat sparse in-continent
// deployments?

#include <iostream>

#include "common.hpp"

namespace {

void print_block(const std::vector<cloudrtt::analysis::InterContinentalCell>& cells,
                 std::string_view title) {
  using namespace cloudrtt;
  std::cout << "\n-- " << title << " --\n";
  util::TextTable table;
  table.set_header({"src", "dst", "n", "p25", "median", "p75", "p90"});
  for (const auto& cell : cells) {
    if (cell.summary.count == 0) continue;
    table.add_row({std::string{cell.src_country},
                   std::string{geo::to_code(cell.dst_continent)},
                   std::to_string(cell.summary.count),
                   bench::ms(cell.summary.p25), bench::ms(cell.summary.median),
                   bench::ms(cell.summary.p75), bench::ms(cell.summary.p90)});
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 6 — intra- vs inter-continental cloud access (AF and SA probes)",
      "north Africa reaches EU (and even NA) faster than in-continent ZA DCs; "
      "KE gets its lowest median in-continent but more stably to EU; BO/PE "
      "roughly tie SA vs NA thanks to Pacific cables; CO/EC/VE reach NA "
      "faster than BR");

  const analysis::StudyView view = bench::shared_study().view();
  print_block(analysis::fig6_intercontinental(view, geo::Continent::Africa),
              "Fig. 6a: African probes");
  print_block(analysis::fig6_intercontinental(view, geo::Continent::SouthAmerica),
              "Fig. 6b: South American probes");
  return 0;
}

#pragma once
// Shared plumbing for the per-figure bench harnesses: a lazily-run study at
// "bench" scale (larger than the test quick scale, smaller than the paper's
// six months) and small printing helpers.
//
// Environment knobs:
//   CLOUDRTT_SCALE  — fleet scale: default | paper (115k/8.5k probes) |
//                     NxM probe counts | float multiplier (see core/scale.hpp)
//   CLOUDRTT_SEED   — study seed (default 42)

#include <string>

#include "analysis/experiments.hpp"
#include "core/study.hpp"
#include "util/text.hpp"

namespace cloudrtt::bench {

/// Study configuration for benches, after applying the environment knobs.
[[nodiscard]] core::StudyConfig bench_config();

/// Canonical name of the effective scale ("default", "paper", "NxM", or the
/// multiplier spelling), for harness headers and bench reports.
[[nodiscard]] std::string bench_scale_name();

/// Build + run a study once per process.
[[nodiscard]] const core::Study& shared_study();

/// Print the standard harness header: exhibit id, what the paper showed,
/// and the scale this run used.
void print_header(const std::string& exhibit, const std::string& claim);

[[nodiscard]] std::string pct(double value);
[[nodiscard]] std::string ms(double value);

/// Print a peering case study (matrix + latency-by-interconnection), the
/// shared body of the Fig. 12/13/17/18 harnesses.
void print_peering_case_study(const analysis::PeeringCaseStudy& study);

}  // namespace cloudrtt::bench

// §3.3 — methodology statistics: dataset size and composition, the
// statistical-confidence sample-size rule, the TCP-vs-ICMP agreement, and
// the whois (Team Cymru) fallback rate of the resolution pipeline.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "§3.3 — methodology statistics",
      "3.8M pings / 7M+ traceroutes at paper scale; ~50% of samples from EU, "
      "~20% AS, ~10% NA; n=2401 samples/country for 95% confidence at 2% "
      "error; TCP within 2% of ICMP");

  const auto stats = analysis::sec33_stats(bench::shared_study().view());

  std::cout << "\ncollected (this scale): " << stats.ping_count << " pings, "
            << stats.trace_count << " traceroutes\n";

  util::TextTable table;
  table.set_header({"continent", "sample share"});
  for (const geo::Continent c : geo::kAllContinents) {
    table.add_row({std::string{geo::to_code(c)},
                   bench::pct(stats.continent_sample_share[geo::index_of(c)])});
  }
  std::cout << table.render();

  std::cout << "\nconfidence: z=1.96, p=0.5, eps=2% => n = "
            << stats.required_samples_per_country
            << " measurements per country (paper: >2400)\n";
  std::cout << "TCP median " << bench::ms(stats.tcp_median_ms)
            << " ms vs ICMP median " << bench::ms(stats.icmp_median_ms)
            << " ms — gap " << bench::pct(stats.tcp_vs_icmp_gap_pct)
            << " (paper: within 2%)\n";
  std::cout << "hops resolved via whois fallback (Team Cymru stand-in): "
            << bench::pct(stats.whois_fallback_share_pct) << "\n";
  return 0;
}

// Fig. 15 (A.2) — end-to-end latencies over ICMP (traceroute) vs TCP (ping)
// on Speedchecker, per continent.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 15 — ICMP vs TCP end-to-end latency per continent",
      "medians comparable everywhere (TCP within ~2%); TCP lower-variance; "
      "the gap is largest in Africa (middleboxes deprioritising ICMP)");

  const auto rows = analysis::fig15_protocols(bench::shared_study().view());

  util::TextTable table;
  table.set_header({"continent", "TCP n", "TCP med", "TCP IQR", "ICMP n",
                    "ICMP med", "ICMP IQR", "gap"});
  for (const auto& row : rows) {
    const double gap = row.icmp.median > 0.0
                           ? (row.icmp.median - row.tcp.median) / row.icmp.median *
                                 100.0
                           : 0.0;
    table.add_row({std::string{geo::to_code(row.continent)},
                   std::to_string(row.tcp.count), bench::ms(row.tcp.median),
                   bench::ms(row.tcp.iqr()), std::to_string(row.icmp.count),
                   bench::ms(row.icmp.median), bench::ms(row.icmp.iqr()),
                   bench::pct(gap)});
  }
  std::cout << "\n" << table.render();
  return 0;
}

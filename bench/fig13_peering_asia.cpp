// Fig. 13 — ISP-cloud peering case study in Asia (JP ISPs -> IN DCs).

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 13 — ISP-cloud peering case study in Asia (JP ISPs -> IN DCs)",
      "big-3 direct except NTT->Amazon; DigitalOcean strictly public in Asia; medians comparable but direct peering cuts the latency variation sharply");

  const auto study = analysis::peering_case_study(
      bench::shared_study().view(), "JP", "IN");
  bench::print_peering_case_study(study);
  return 0;
}

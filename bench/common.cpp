#include "common.hpp"

#include <cstdlib>
#include <iostream>
#include <string_view>

#include "core/scale.hpp"
#include "obs/trace.hpp"

namespace cloudrtt::bench {

std::string bench_scale_name() {
  const core::ScaleSpec spec = core::resolve_scale("");
  return spec.ok() ? spec.name : "default";
}

core::StudyConfig bench_config() {
  core::StudyConfig config;
  if (const char* env = std::getenv("CLOUDRTT_SEED")) {
    config.seed = static_cast<std::uint64_t>(std::atoll(env));
  }
  // Benches run a slightly lighter daily budget than the CLI default.
  config.sc_campaign.daily_budget = 12000;
  core::ScaleSpec spec = core::resolve_scale("");
  if (!spec.ok()) {
    std::cerr << spec.error << " — falling back to default scale\n";
    spec = core::ScaleSpec{};
  }
  core::apply_scale(config, spec);
  return config;
}

const core::Study& shared_study() {
  static core::Study study = [] {
    core::Study s{bench_config()};
    s.run();
    if (const char* env = std::getenv("CLOUDRTT_BENCH_PHASES");
        env != nullptr && std::string_view{env} == "1") {
      std::cerr << "-- phase timings (CLOUDRTT_BENCH_PHASES=1) --\n";
      obs::SpanTracker::global().write_text(std::cerr);
    }
    return s;
  }();
  return study;
}

void print_header(const std::string& exhibit, const std::string& claim) {
  std::cout << "==============================================================\n";
  std::cout << exhibit << "\n";
  std::cout << "paper: " << claim << "\n";
  const core::StudyConfig config = bench_config();
  std::cout << "scale: " << bench_scale_name() << " (" << config.sc_probes
            << " SC probes / " << config.atlas_probes
            << " Atlas probes), seed " << config.seed
            << " (set CLOUDRTT_SCALE / CLOUDRTT_SEED to change)\n";
  std::cout << "==============================================================\n";
}

std::string pct(double value) { return util::format_double(value, 1) + "%"; }
std::string ms(double value) { return util::format_double(value, 1); }

void print_peering_case_study(const analysis::PeeringCaseStudy& study) {
  std::cout << "\n-- interconnection matrix (" << study.src_country << " ISPs x "
            << "providers, DCs in " << study.dst_country << ") --\n";
  util::TextTable matrix;
  std::vector<std::string> header{"ISP"};
  for (const cloud::ProviderId id : cloud::kPeeringFigureProviders) {
    header.emplace_back(cloud::provider_info(id).ticker);
  }
  matrix.set_header(std::move(header));
  for (const analysis::PeeringMatrixRow& row : study.matrix) {
    std::vector<std::string> cells{row.isp_label};
    for (const analysis::PeeringMatrixCell& cell : row.cells) {
      if (!cell.has_data) {
        cells.emplace_back("-");
      } else {
        cells.push_back(std::string{topology::to_string(cell.majority)} + " " +
                        util::format_double(cell.majority_pct, 0) + "%");
      }
    }
    matrix.add_row(std::move(cells));
  }
  std::cout << matrix.render();

  std::cout << "\n-- latency by interconnection type (completed ICMP e2e) --\n";
  util::TextTable latency;
  latency.set_header({"provider", "direct n", "direct p25/med/p75",
                      "interm. n", "interm. p25/med/p75"});
  for (const analysis::PeeringLatencyRow& row : study.latency) {
    if (row.direct.count == 0 && row.intermediate.count == 0) continue;
    const auto fmt = [](const util::Summary& s) {
      return util::format_double(s.p25, 0) + "/" + util::format_double(s.median, 0) +
             "/" + util::format_double(s.p75, 0);
    };
    latency.add_row({std::string{row.ticker} + (row.valid ? "" : " (thin)"),
                     std::to_string(row.direct.count), fmt(row.direct),
                     std::to_string(row.intermediate.count),
                     fmt(row.intermediate)});
  }
  std::cout << latency.render();
}

}  // namespace cloudrtt::bench

// perf_fault — cost of the fault-injection subsystem. The ISSUE's contract
// is that a campaign without a FaultPlan pays nothing measurable for the
// hooks: BM_TracerouteNoFaultArg (the pre-existing call shape) and
// BM_TracerouteNullFaults (hooks present, pointer null) must agree within
// noise (<2%). BM_TracerouteActiveFaults shows the price of a mild-profile
// fault day, and the checkpoint benchmarks price the per-day save/load the
// resilient campaign driver performs.
//
// The streaming-store legs carry the durability contract at the scale it
// is stated: BM_StudyDefaultStreaming (default-scale study, spill on) must
// stay within 2% of BM_StudyDefaultInMemory — the async spill worker
// serialises, checksums and fsyncs behind the campaign, so the critical
// path only pays row copies. The single-day pair
// (BM_CampaignDayInMemory/BM_CampaignDayStreaming) prices the worst case
// instead: one day leaves the worker nothing to overlap with, so its delta
// is the full serialise+fsync cost a drain would expose. BM_StoreSpillDay
// and BM_StoreOpen price the store in isolation: drained spill throughput
// and the salvage-validated reopen a resume pays.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <span>

#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "core/study.hpp"
#include "fault/plan.hpp"
#include "measure/campaign.hpp"
#include "measure/engine.hpp"
#include "probes/fleet.hpp"
#include "store/io_env.hpp"
#include "store/salvage.hpp"
#include "store/shard_writer.hpp"
#include "topology/world.hpp"
#include "util/rng.hpp"

namespace {

using namespace cloudrtt;

struct Fixture {
  topology::World world{topology::WorldConfig{7}};
  probes::ProbeFleet fleet{world,
                           probes::FleetConfig{probes::Platform::Speedchecker, 600}};
  measure::Engine engine{world};

  static Fixture& instance() {
    static Fixture fixture;
    return fixture;
  }
};

// Identical body to perf_core's BM_Traceroute: the default-argument call the
// whole pre-fault codebase makes.
void BM_TracerouteNoFaultArg(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{4};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(f.engine.traceroute(probe, endpoint, 0, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerouteNoFaultArg);

// The campaign's call shape on a clean day: hooks threaded through, fault
// pointer null. Must be indistinguishable from BM_TracerouteNoFaultArg.
void BM_TracerouteNullFaults(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{4};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(
        f.engine.traceroute(probe, endpoint, 0, rng,
                            measure::Engine::TraceMethod::Classic, 0, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerouteNullFaults);

// A mild-profile fault day's trace damage, for scale.
void BM_TracerouteActiveFaults(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{4};
  const fault::FaultIntensity intensity =
      fault::FaultIntensity::for_profile(fault::FaultProfile::Mild);
  const fault::TraceFaults faults{intensity.trace_truncate_prob, 0.03};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(
        f.engine.traceroute(probe, endpoint, 0, rng,
                            measure::Engine::TraceMethod::Classic, 0, &faults));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerouteActiveFaults);

// Building a whole campaign's fault schedule (done once per run).
void BM_FaultPlanConstruction(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const fault::FaultIntensity intensity =
      fault::FaultIntensity::for_profile(fault::FaultProfile::Harsh);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fault::FaultPlan{f.world, 180, intensity, ++seed});
  }
  state.SetItemsProcessed(state.iterations() * 180);
}
BENCHMARK(BM_FaultPlanConstruction);

/// One day's worth of campaign data for the checkpoint benchmarks.
[[nodiscard]] const measure::Dataset& bench_dataset() {
  static const measure::Dataset data = [] {
    Fixture& f = Fixture::instance();
    measure::CampaignConfig config;
    config.days = 1;
    config.daily_budget = 2000;
    config.run_case_studies = false;
    const measure::Campaign campaign{f.world, f.fleet, config};
    return campaign.run(f.world.fork_rng("bench/checkpoint"));
  }();
  return data;
}

// What the after_day hook costs: serialize + hash + atomic rename for one
// day's dataset (amortised against a multi-minute simulated day).
void BM_CheckpointSave(benchmark::State& state) {
  const measure::Dataset& data = bench_dataset();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_ckpt";
  core::CheckpointMeta meta;
  meta.state = {1, 0};
  meta.seed = 7;
  meta.platform = "speedchecker";
  for (auto _ : state) {
    const std::string err = core::save_checkpoint(dir, meta, data);
    if (!err.empty()) state.SkipWithError(err.c_str());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.pings.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointSave);

// Resume cost: parse + integrity validation + probe re-binding.
void BM_CheckpointLoad(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const measure::Dataset& data = bench_dataset();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_ckpt_load";
  core::CheckpointMeta meta;
  meta.state = {1, 0};
  meta.seed = 7;
  meta.platform = "speedchecker";
  if (const std::string err = core::save_checkpoint(dir, meta, data);
      !err.empty()) {
    state.SkipWithError(err.c_str());
    return;
  }
  for (auto _ : state) {
    core::CheckpointLoad load =
        core::load_checkpoint(dir, "speedchecker", &f.fleet, nullptr);
    if (!load.ok()) state.SkipWithError(load.error.c_str());
    benchmark::DoNotOptimize(load);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.pings.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointLoad);

/// Campaign config shared by the in-memory/streaming A-B pair.
[[nodiscard]] measure::CampaignConfig day_config() {
  measure::CampaignConfig config;
  config.days = 1;
  config.daily_budget = 2000;
  config.run_case_studies = false;
  return config;
}

// One campaign day, rows kept in memory only — the baseline leg of the
// streaming-overhead contract.
void BM_CampaignDayInMemory(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const measure::Campaign campaign{f.world, f.fleet, day_config()};
  std::size_t rows = 0;
  for (auto _ : state) {
    const measure::Dataset data =
        campaign.run(f.world.fork_rng("bench/spill"));
    rows = data.pings.size();
    benchmark::DoNotOptimize(data.pings.rtt_column().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_CampaignDayInMemory);

// The same day with the streaming store attached, drained to durability by
// the writer's destructor inside the timed region. A single day gives the
// async worker nothing to overlap with, so this is the *upper bound* on
// spill cost — the study-scale A/B below shows what the campaign actually
// pays once later days hide the worker.
void BM_CampaignDayStreaming(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const measure::Campaign campaign{f.world, f.fleet, day_config()};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_spill_ab";
  store::IoEnv io;
  std::size_t rows = 0;
  for (auto _ : state) {
    store::ShardWriter writer{dir, store::StoreMeta{"speedchecker", 7}, 1, io,
                              /*fresh=*/true};
    measure::RunHooks hooks;
    hooks.day_rows = [&writer](std::uint32_t day, std::size_t cursor,
                               std::uint32_t first_task,
                               const measure::Dataset& data,
                               std::size_t ping_begin,
                               std::size_t trace_begin) {
      (void)writer.append_day(day, cursor, first_task, data, ping_begin,
                              trace_begin);
    };
    hooks.after_day = [&writer](const measure::CampaignState& next,
                                const measure::Dataset&) {
      (void)writer.commit(next);
      return true;
    };
    const measure::Dataset data =
        campaign.run(f.world.fork_rng("bench/spill"), {}, hooks);
    rows = data.pings.size();
    benchmark::DoNotOptimize(data.pings.rtt_column().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CampaignDayStreaming);

// Pure spill throughput: frame + checksum + append + commit one day of
// already-collected rows (what the day_rows hook adds to a campaign day).
void BM_StoreSpillDay(benchmark::State& state) {
  const measure::Dataset& data = bench_dataset();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_spill_day";
  store::IoEnv io;
  measure::CampaignState done;
  done.next_day = 1;
  for (auto _ : state) {
    store::ShardWriter writer{dir, store::StoreMeta{"speedchecker", 7}, 1, io,
                              /*fresh=*/true};
    if (!writer.adopt(data, done)) {
      state.SkipWithError("spill was not durable");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.pings.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreSpillDay);

// The durability contract, measured where ISSUE 8 states it: the default-
// scale workflow — run the study, then produce the canonical dataset hash
// the determinism gates check — once in memory and once streaming every
// day through the store. The streaming leg's spill worker is drained
// before run() returns, so the pair differing by more than 2% means the
// async pipeline stopped hiding serialisation or fsyncs. Caveat for
// single-core machines: the worker's CPU (serialise + checksum, ~tens of
// ms for the whole study) cannot overlap with the campaign there and is
// the floor this pair measures; with >=2 cores only the row copies in
// append_day() remain on the critical path.
void BM_StudyDefaultInMemory(benchmark::State& state) {
  std::size_t rows = 0;
  for (auto _ : state) {
    core::Study study{core::StudyConfig{}};
    study.run();
    rows = study.sc_dataset().pings.size();
    benchmark::DoNotOptimize(core::dataset_hash(study.sc_dataset()));
    benchmark::DoNotOptimize(core::dataset_hash(study.atlas_dataset()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_StudyDefaultInMemory)->Unit(benchmark::kMillisecond);

void BM_StudyDefaultStreaming(benchmark::State& state) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_spill_study";
  std::size_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    core::Study study{core::StudyConfig{}};
    core::RunControl control;
    control.checkpoint_dir = dir.string();
    study.run(control);
    rows = study.sc_dataset().pings.size();
    benchmark::DoNotOptimize(core::dataset_hash(study.sc_dataset()));
    benchmark::DoNotOptimize(core::dataset_hash(study.atlas_dataset()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StudyDefaultStreaming)->Unit(benchmark::kMillisecond);

// Salvage-validated reopen: what a resume pays to re-check every committed
// block's checksum and re-bind its rows.
void BM_StoreOpen(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const measure::Dataset& data = bench_dataset();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_store_open";
  store::IoEnv io;
  measure::CampaignState done;
  done.next_day = 1;
  {
    store::ShardWriter writer{dir, store::StoreMeta{"speedchecker", 7}, 1, io,
                              /*fresh=*/true};
    if (!writer.adopt(data, done)) {
      state.SkipWithError("spill was not durable");
      return;
    }
  }
  for (auto _ : state) {
    store::OpenResult opened = store::open_store(dir, "speedchecker", io,
                                                 &f.fleet, nullptr,
                                                 /*repair=*/false);
    if (!opened.ok()) state.SkipWithError(opened.error.c_str());
    benchmark::DoNotOptimize(opened.data.pings.rtt_column().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.pings.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreOpen);

}  // namespace

BENCHMARK_MAIN();

// perf_fault — cost of the fault-injection subsystem. The ISSUE's contract
// is that a campaign without a FaultPlan pays nothing measurable for the
// hooks: BM_TracerouteNoFaultArg (the pre-existing call shape) and
// BM_TracerouteNullFaults (hooks present, pointer null) must agree within
// noise (<2%). BM_TracerouteActiveFaults shows the price of a mild-profile
// fault day, and the checkpoint benchmarks price the per-day save/load the
// resilient campaign driver performs.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/checkpoint.hpp"
#include "fault/plan.hpp"
#include "measure/campaign.hpp"
#include "measure/engine.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"
#include "util/rng.hpp"

namespace {

using namespace cloudrtt;

struct Fixture {
  topology::World world{topology::WorldConfig{7}};
  probes::ProbeFleet fleet{world,
                           probes::FleetConfig{probes::Platform::Speedchecker, 600}};
  measure::Engine engine{world};

  static Fixture& instance() {
    static Fixture fixture;
    return fixture;
  }
};

// Identical body to perf_core's BM_Traceroute: the default-argument call the
// whole pre-fault codebase makes.
void BM_TracerouteNoFaultArg(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{4};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(f.engine.traceroute(probe, endpoint, 0, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerouteNoFaultArg);

// The campaign's call shape on a clean day: hooks threaded through, fault
// pointer null. Must be indistinguishable from BM_TracerouteNoFaultArg.
void BM_TracerouteNullFaults(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{4};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(
        f.engine.traceroute(probe, endpoint, 0, rng,
                            measure::Engine::TraceMethod::Classic, 0, nullptr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerouteNullFaults);

// A mild-profile fault day's trace damage, for scale.
void BM_TracerouteActiveFaults(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  util::Rng rng{4};
  const fault::FaultIntensity intensity =
      fault::FaultIntensity::for_profile(fault::FaultProfile::Mild);
  const fault::TraceFaults faults{intensity.trace_truncate_prob, 0.03};
  const auto& probes = f.fleet.probes();
  const auto& endpoints = f.world.endpoints();
  for (auto _ : state) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint = endpoints[rng.below(endpoints.size())];
    benchmark::DoNotOptimize(
        f.engine.traceroute(probe, endpoint, 0, rng,
                            measure::Engine::TraceMethod::Classic, 0, &faults));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerouteActiveFaults);

// Building a whole campaign's fault schedule (done once per run).
void BM_FaultPlanConstruction(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const fault::FaultIntensity intensity =
      fault::FaultIntensity::for_profile(fault::FaultProfile::Harsh);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fault::FaultPlan{f.world, 180, intensity, ++seed});
  }
  state.SetItemsProcessed(state.iterations() * 180);
}
BENCHMARK(BM_FaultPlanConstruction);

/// One day's worth of campaign data for the checkpoint benchmarks.
[[nodiscard]] const measure::Dataset& bench_dataset() {
  static const measure::Dataset data = [] {
    Fixture& f = Fixture::instance();
    measure::CampaignConfig config;
    config.days = 1;
    config.daily_budget = 2000;
    config.run_case_studies = false;
    const measure::Campaign campaign{f.world, f.fleet, config};
    return campaign.run(f.world.fork_rng("bench/checkpoint"));
  }();
  return data;
}

// What the after_day hook costs: serialize + hash + atomic rename for one
// day's dataset (amortised against a multi-minute simulated day).
void BM_CheckpointSave(benchmark::State& state) {
  const measure::Dataset& data = bench_dataset();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_ckpt";
  core::CheckpointMeta meta;
  meta.state = {1, 0};
  meta.seed = 7;
  meta.platform = "speedchecker";
  for (auto _ : state) {
    const std::string err = core::save_checkpoint(dir, meta, data);
    if (!err.empty()) state.SkipWithError(err.c_str());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.pings.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointSave);

// Resume cost: parse + integrity validation + probe re-binding.
void BM_CheckpointLoad(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const measure::Dataset& data = bench_dataset();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cloudrtt_perf_ckpt_load";
  core::CheckpointMeta meta;
  meta.state = {1, 0};
  meta.seed = 7;
  meta.platform = "speedchecker";
  if (const std::string err = core::save_checkpoint(dir, meta, data);
      !err.empty()) {
    state.SkipWithError(err.c_str());
    return;
  }
  for (auto _ : state) {
    core::CheckpointLoad load =
        core::load_checkpoint(dir, "speedchecker", &f.fleet, nullptr);
    if (!load.ok()) state.SkipWithError(load.error.c_str());
    benchmark::DoNotOptimize(load);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.pings.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointLoad);

}  // namespace

BENCHMARK_MAIN();

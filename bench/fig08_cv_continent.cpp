// Fig. 8 — coefficient of variation (Cv) of each probe's last-mile latency,
// grouped by continent and access class (home vs cellular).

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 8 — last-mile latency Cv per probe, by continent",
      "home and cellular probes show the same variability, median Cv ~0.5 "
      "everywhere: wireless is uniformly the unstable segment");

  const auto groups = analysis::fig8_cv_by_continent(bench::shared_study().view());

  util::TextTable table;
  table.set_header({"continent", "home n", "home p25/med/p75", "cell n",
                    "cell p25/med/p75"});
  for (const auto& group : groups) {
    const util::Summary home = util::summarize(group.home);
    const util::Summary cell = util::summarize(group.cell);
    const auto fmt = [](const util::Summary& s) {
      if (s.count == 0) return std::string{"-"};
      return util::format_double(s.p25, 2) + "/" + util::format_double(s.median, 2) +
             "/" + util::format_double(s.p75, 2);
    };
    table.add_row({group.label, std::to_string(home.count), fmt(home),
                   std::to_string(cell.count), fmt(cell)});
  }
  std::cout << "\n" << table.render();
  std::cout << "\n(Cv = sigma/mu over a probe's last-mile samples; probes with "
               "fewer than 10 samples excluded, as in the paper)\n";
  return 0;
}

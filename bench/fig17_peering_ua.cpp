// Fig. 17 (A.4) — peering case study.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 17 (A.4) — peering case study",
      " Ukrainian ISPs -> UK DCs:hypergiants peer directly with most Ukrainian ISPs; direct and transit paths achieve comparable medians (strong EU backhaul)");

  const auto study = analysis::peering_case_study(
      bench::shared_study().view(), "UA", "GB");
  bench::print_peering_case_study(study);
  return 0;
}

// perf_parallel — wall-clock of the parallel executor on a paper-scale
// campaign day, swept over worker counts. Every benchmark re-verifies the
// PR's core contract before reporting a time: the day's dataset hash at
// N threads must be bit-identical to the single-threaded baseline, so a
// regression in the chunk/RNG discipline fails the bench instead of
// producing a fast wrong number. The measured speedups feed the table in
// README.md §Concurrency model.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "core/export.hpp"
#include "measure/campaign.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"
#include "util/rng.hpp"

namespace {

using namespace cloudrtt;

struct Fixture {
  topology::World world{topology::WorldConfig{7}};
  probes::ProbeFleet fleet{world,
                           probes::FleetConfig{probes::Platform::Speedchecker, 2000}};

  static Fixture& instance() {
    static Fixture fixture;
    return fixture;
  }
};

/// One paper-scale day: every probe visited several times, faults off so the
/// run is pure schedule + execute cost.
[[nodiscard]] measure::CampaignConfig day_config(unsigned threads) {
  measure::CampaignConfig config;
  config.days = 1;
  config.daily_budget = 20000;
  config.run_case_studies = false;
  config.threads = threads;
  return config;
}

[[nodiscard]] std::uint64_t run_day_hash(unsigned threads) {
  Fixture& f = Fixture::instance();
  const measure::Campaign campaign{f.world, f.fleet, day_config(threads)};
  const measure::Dataset data = campaign.run(f.world.fork_rng("bench/parallel"));
  return core::dataset_hash(data);
}

/// Single-threaded reference hash, computed once per process.
[[nodiscard]] std::uint64_t baseline_hash() {
  static const std::uint64_t hash = run_day_hash(1);
  return hash;
}

// One campaign day at state.range(0) worker threads. Items processed =
// measurement visits, so google-benchmark reports visits/second directly.
// The hash verification runs outside the timed region: the sequential CSV
// fold would otherwise flatten the very speedup this bench measures.
void BM_CampaignDay(benchmark::State& state) {
  Fixture& f = Fixture::instance();
  const auto threads = static_cast<unsigned>(state.range(0));
  const std::uint64_t expected = baseline_hash();
  const measure::Campaign campaign{f.world, f.fleet, day_config(threads)};
  for (auto _ : state) {
    const measure::Dataset data =
        campaign.run(f.world.fork_rng("bench/parallel"));
    state.PauseTiming();
    if (core::dataset_hash(data) != expected) {
      state.SkipWithError("dataset hash drifted from --threads 1 baseline");
      state.ResumeTiming();
      break;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CampaignDay)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

// perf_obs — microbenchmarks for the observability hot paths. The contract
// (ISSUE 1): a disabled log statement and a counter increment must each cost
// single-digit nanoseconds, so instrumentation compiled into the measurement
// engine is effectively free. ISSUE 6 extends the contract to the
// Chrome-trace recorder and progress reporter (one relaxed atomic load while
// off) and proves it end-to-end: BM_CampaignDayTrace{Off,On} run the same
// campaign day with the recorder disabled and enabled — the enabled run must
// stay within 1% of the disabled one.

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "measure/campaign.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "obs/trace_events.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"

namespace {

using namespace cloudrtt;

/// The common case: statement compiled in, level filtered out. Must be one
/// relaxed atomic load + branch; the fields are never constructed.
void BM_LogDisabled(benchmark::State& state) {
  obs::Logger::global().set_level(obs::Level::Error);
  std::uint64_t day = 0;
  for (auto _ : state) {
    CLOUDRTT_LOG_DEBUG("campaign.day", {"day", day}, {"budget_left", day * 3});
    benchmark::DoNotOptimize(day++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogDisabled);

/// Enabled statement into the JSON-lines sink (buffer reset per iteration
/// batch to bound memory) — the slow path, for contrast.
void BM_LogEnabledJson(benchmark::State& state) {
  obs::Logger& logger = obs::Logger::global();
  logger.clear_sinks();
  std::ostringstream sink;
  logger.add_sink(std::make_unique<obs::JsonLinesSink>(sink));
  logger.set_level(obs::Level::Debug);
  std::uint64_t day = 0;
  for (auto _ : state) {
    CLOUDRTT_LOG_DEBUG("campaign.day", {"day", day}, {"budget_left", day * 3});
    ++day;
    if (sink.tellp() > (1 << 20)) {
      sink.str({});
      sink.clear();
    }
  }
  logger.clear_sinks();
  logger.set_level(obs::Level::Error);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogEnabledJson);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter& counter = obs::Registry::global().counter("perf.counter");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& histogram = obs::Registry::global().histogram("perf.histogram");
  double value = 0.1;
  for (auto _ : state) {
    histogram.record(value);
    value = value < 1000.0 ? value * 1.37 : 0.1;
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_ScopedTimer(benchmark::State& state) {
  obs::Histogram& histogram = obs::Registry::global().histogram("perf.timer_ms");
  for (auto _ : state) {
    obs::ScopedTimer timer{histogram};
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedTimer);

void BM_SpanNesting(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span outer = obs::span("perf.outer");
    obs::Span inner = obs::span("perf.inner");
    benchmark::ClobberMemory();
  }
  obs::SpanTracker::global().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanNesting);

/// The common case: recorder compiled in, --trace-out not given. Must be one
/// relaxed atomic load + branch; no event is constructed.
void BM_TraceEventDisabled(benchmark::State& state) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.disable();
  const std::uint64_t start = obs::monotonic_ns();
  for (auto _ : state) {
    recorder.record_complete("perf.event", "bench", start, 100,
                             {{"chunk", 1.0}, {"tasks", 64.0}});
  }
  benchmark::DoNotOptimize(recorder.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEventDisabled);

/// Enabled recording (mutex + vector push) — the --trace-out price tag. The
/// buffer is cleared whenever it reaches a million events to bound memory.
void BM_TraceEventEnabled(benchmark::State& state) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.enable();
  const std::uint64_t start = obs::monotonic_ns();
  for (auto _ : state) {
    recorder.record_complete("perf.event", "bench", start, 100,
                             {{"chunk", 1.0}, {"tasks", 64.0}});
    if (recorder.size() >= (1u << 20)) recorder.enable();  // clears
  }
  recorder.disable();
  recorder.reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceEventEnabled);

/// Disabled progress reporting: one relaxed load per completed day.
void BM_ProgressDisabled(benchmark::State& state) {
  obs::Progress& progress = obs::Progress::global();
  progress.disable();
  std::uint32_t day = 0;
  for (auto _ : state) {
    progress.day_completed(++day, 1u << 30, 15000, 0.9);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProgressDisabled);

/// Shared fixture for the end-to-end overhead proof: a small but realistic
/// campaign day (schedule + parallel execute + merge).
struct CampaignFixture {
  topology::World world{topology::WorldConfig{7}};
  probes::ProbeFleet fleet{
      world, probes::FleetConfig{probes::Platform::Speedchecker, 500}};

  static CampaignFixture& instance() {
    static CampaignFixture fixture;
    return fixture;
  }

  [[nodiscard]] measure::Campaign make_campaign() const {
    measure::CampaignConfig config;
    config.days = 1;
    config.daily_budget = 4000;
    config.run_case_studies = false;
    config.threads = 2;
    return measure::Campaign{world, fleet, config};
  }
};

void run_campaign_day(benchmark::State& state) {
  CampaignFixture& f = CampaignFixture::instance();
  const measure::Campaign campaign = f.make_campaign();
  for (auto _ : state) {
    const measure::Dataset data = campaign.run(f.world.fork_rng("bench/obs"));
    benchmark::DoNotOptimize(data.pings.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4000);
}

/// Baseline: the instrumented campaign day with every recorder off — what
/// production runs pay for carrying the instrumentation.
void BM_CampaignDayTraceOff(benchmark::State& state) {
  obs::TraceRecorder::global().disable();
  run_campaign_day(state);
}
BENCHMARK(BM_CampaignDayTraceOff)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The <1% contract: the same day with the Chrome-trace recorder buffering
/// per-chunk/per-worker/phase events. Compare against BM_CampaignDayTraceOff.
void BM_CampaignDayTraceOn(benchmark::State& state) {
  obs::TraceRecorder::global().enable();
  run_campaign_day(state);
  obs::TraceRecorder::global().disable();
  obs::TraceRecorder::global().reset();
}
BENCHMARK(BM_CampaignDayTraceOn)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

// perf_obs — microbenchmarks for the observability hot paths. The contract
// (ISSUE 1): a disabled log statement and a counter increment must each cost
// single-digit nanoseconds, so instrumentation compiled into the measurement
// engine is effectively free.

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace cloudrtt;

/// The common case: statement compiled in, level filtered out. Must be one
/// relaxed atomic load + branch; the fields are never constructed.
void BM_LogDisabled(benchmark::State& state) {
  obs::Logger::global().set_level(obs::Level::Error);
  std::uint64_t day = 0;
  for (auto _ : state) {
    CLOUDRTT_LOG_DEBUG("campaign.day", {"day", day}, {"budget_left", day * 3});
    benchmark::DoNotOptimize(day++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogDisabled);

/// Enabled statement into the JSON-lines sink (buffer reset per iteration
/// batch to bound memory) — the slow path, for contrast.
void BM_LogEnabledJson(benchmark::State& state) {
  obs::Logger& logger = obs::Logger::global();
  logger.clear_sinks();
  std::ostringstream sink;
  logger.add_sink(std::make_unique<obs::JsonLinesSink>(sink));
  logger.set_level(obs::Level::Debug);
  std::uint64_t day = 0;
  for (auto _ : state) {
    CLOUDRTT_LOG_DEBUG("campaign.day", {"day", day}, {"budget_left", day * 3});
    ++day;
    if (sink.tellp() > (1 << 20)) {
      sink.str({});
      sink.clear();
    }
  }
  logger.clear_sinks();
  logger.set_level(obs::Level::Error);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LogEnabledJson);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter& counter = obs::Registry::global().counter("perf.counter");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& histogram = obs::Registry::global().histogram("perf.histogram");
  double value = 0.1;
  for (auto _ : state) {
    histogram.record(value);
    value = value < 1000.0 ? value * 1.37 : 0.1;
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_ScopedTimer(benchmark::State& state) {
  obs::Histogram& histogram = obs::Registry::global().histogram("perf.timer_ms");
  for (auto _ : state) {
    obs::ScopedTimer timer{histogram};
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedTimer);

void BM_SpanNesting(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span outer = obs::span("perf.outer");
    obs::Span inner = obs::span("perf.inner");
    benchmark::ClobberMemory();
  }
  obs::SpanTracker::global().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanNesting);

}  // namespace

BENCHMARK_MAIN();

// Fig. 7 — impact of the wireless last-mile: (a) share of the end-to-end
// cloud latency, (b) absolute last-mile latency, per continent and access
// category (SC home USR-ISP / SC cell / SC home RTR-ISP / Atlas wired).

#include <iostream>

#include "common.hpp"

namespace {

void print_stats(const cloudrtt::analysis::LastMileStats& stats, bool shares) {
  using namespace cloudrtt;
  util::TextTable table;
  std::vector<std::string> header{"category"};
  for (const geo::Continent c : geo::kAllContinents) {
    header.emplace_back(geo::to_code(c));
  }
  header.emplace_back("Global");
  table.set_header(std::move(header));
  for (const analysis::LastMileCategory category : analysis::kLastMileCategories) {
    std::vector<std::string> row{std::string{to_string(category)}};
    for (std::size_t idx = 0; idx <= geo::kContinentCount; ++idx) {
      const auto& values =
          shares ? stats.share(category, idx) : stats.absolute(category, idx);
      if (values.size() < 5) {
        row.emplace_back("-");
      } else {
        row.push_back(bench::ms(cloudrtt::util::median(values)) +
                      (shares ? "%" : ""));
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();
}

}  // namespace

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 7 — wireless last-mile share and absolute latency",
      "(a) last-mile ~40-50% of total latency, higher in EU/NA; (b) wireless "
      "medians 20-25 ms regardless of WiFi vs cellular; RTR-ISP and Atlas "
      "~10 ms (wired)");

  const auto stats =
      analysis::lastmile_stats(bench::shared_study().view(), /*nearest_only=*/false);

  std::cout << "\n-- Fig. 7a: median last-mile share of end-to-end latency --\n";
  print_stats(stats, /*shares=*/true);
  std::cout << "\n-- Fig. 7b: median absolute last-mile latency [ms] --\n";
  print_stats(stats, /*shares=*/false);
  std::cout << "\n(access classes inferred from traceroutes: private first hop "
               "=> home, direct ISP hop => cellular — §5)\n";
  return 0;
}

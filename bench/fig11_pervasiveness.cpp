// Fig. 11 — pervasiveness: the share of routers on the user->DC path owned
// by the target cloud provider, per provider and probe continent.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 11 — provider pervasiveness (cloud-owned share of the path)",
      "Google/Microsoft/Amazon own >60% of the routers on most paths; "
      "providers reached over 2+ ASes own only ~20%");

  const auto rows = analysis::fig11_pervasiveness(bench::shared_study().view());

  util::TextTable table;
  std::vector<std::string> header{"provider"};
  for (const geo::Continent c : geo::kAllContinents) {
    header.emplace_back(geo::to_code(c));
  }
  table.set_header(std::move(header));
  for (const auto& row : rows) {
    std::vector<std::string> cells{std::string{row.ticker}};
    for (const auto& median : row.median_by_continent) {
      cells.push_back(median ? util::format_double(*median, 2) : "-");
    }
    table.add_row(std::move(cells));
  }
  std::cout << "\n" << table.render();
  std::cout << "\n(median over traceroutes; '-' where fewer than 5 usable "
               "traces)\n";
  return 0;
}

// Ablation: a world without cloud edge PoPs and direct-peering agreements.
//
// The paper attributes the big-3's latency consistency (and the BH->IN win)
// to §2.3's interconnection investments. Knock the investments out
// (StudyConfig::enable_edge_pops = false) and compare: the Fig. 10 direct
// share must collapse, pervasiveness must drop towards tenant levels, Asia's
// latency tails must fatten — while well-provisioned Europe barely moves
// (the paper's takeaway that peering buys little where the public backbone
// is already good).

#include <iostream>

#include "common.hpp"

namespace {

struct Snapshot {
  double big3_direct_pct = 0.0;
  double msft_pervasiveness_eu = 0.0;
  double eu_median = 0.0;
  double asia_median = 0.0;
  double asia_p90 = 0.0;
  double bh_in_median = 0.0;
};

Snapshot snapshot(bool edge_pops) {
  using namespace cloudrtt;
  core::StudyConfig config;
  config.sc_probes = 4000;
  config.sc_campaign.days = 6;
  config.sc_campaign.daily_budget = 9000;
  config.include_atlas = false;
  config.enable_edge_pops = edge_pops;
  core::Study study{config};
  study.run();
  const analysis::StudyView view = study.view();

  Snapshot snap;
  double direct_sum = 0.0;
  int big3 = 0;
  for (const auto& row : analysis::fig10_interconnect_share(view)) {
    if (row.ticker == "AMZN" || row.ticker == "GCP" || row.ticker == "MSFT") {
      direct_sum += row.direct_pct;
      ++big3;
    }
  }
  snap.big3_direct_pct = big3 ? direct_sum / big3 : 0.0;

  for (const auto& row : analysis::fig11_pervasiveness(view)) {
    if (row.ticker == "MSFT") {
      const auto& v = row.median_by_continent[geo::index_of(geo::Continent::Europe)];
      snap.msft_pervasiveness_eu = v ? *v : 0.0;
    }
  }

  for (const auto& series : analysis::fig4_continent_rtt(view)) {
    const util::Summary s = util::summarize(series.values);
    if (series.label == "EU") snap.eu_median = s.median;
    if (series.label == "AS") {
      snap.asia_median = s.median;
      snap.asia_p90 = s.p90;
    }
  }

  std::vector<double> bh_in;
  for (const measure::TraceRef& trace : study.sc_dataset().traces) {
    if (trace.completed && trace.probe->country->code == std::string_view{"BH"} &&
        trace.region->country == std::string_view{"IN"}) {
      bh_in.push_back(trace.end_to_end_ms);
    }
  }
  snap.bh_in_median = util::median(std::move(bh_in));
  return snap;
}

}  // namespace

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Ablation — remove every edge PoP and direct-peering agreement",
      "tests the paper's §6 attribution: peering drives the big-3's direct "
      "share, path ownership and Asia's consistency, but buys little in EU");

  const Snapshot base = snapshot(/*edge_pops=*/true);
  const Snapshot ablated = snapshot(/*edge_pops=*/false);

  util::TextTable table;
  table.set_header({"metric", "baseline", "no peering", "delta"});
  const auto row = [&](const std::string& name, double a, double b,
                       const std::string& unit) {
    table.add_row({name, util::format_double(a, 1) + unit,
                   util::format_double(b, 1) + unit,
                   util::format_double(b - a, 1) + unit});
  };
  row("big-3 direct share (Fig. 10)", base.big3_direct_pct,
      ablated.big3_direct_pct, "%");
  row("MSFT pervasiveness, EU (Fig. 11)", base.msft_pervasiveness_eu * 100.0,
      ablated.msft_pervasiveness_eu * 100.0, "%");
  row("EU median to nearest DC", base.eu_median, ablated.eu_median, " ms");
  row("Asia median to nearest DC", base.asia_median, ablated.asia_median, " ms");
  row("Asia p90 to nearest DC", base.asia_p90, ablated.asia_p90, " ms");
  row("BH -> IN end-to-end median", base.bh_in_median, ablated.bh_in_median,
      " ms");
  std::cout << "\n" << table.render();

  std::cout << "\nexpected shape: direct share -> ~0, pervasiveness drops "
               "sharply, BH->IN and Asia tails worsen, EU barely moves.\n";
  return 0;
}

// Fig. 16 (A.3) — apples-to-apples platform comparison: latency differences
// restricted to probes matched by <city, first-hop ASN> on both platforms;
// reported for AS/EU/NA only (insufficient intersections elsewhere).

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 16 — SC vs Atlas within the same <city, ASN>",
      "controlling for location and serving ISP, Atlas remains significantly "
      "faster for the large majority of samples; in Asia, always — the "
      "residual gap is the wireless last-mile itself");

  const auto series = analysis::fig16_city_asn_diff(bench::shared_study().view());

  util::TextTable table;
  table.set_header({"continent", "SC faster", "median diff [ms]", "p25", "p75",
                    "points"});
  for (const auto& s : series) {
    std::size_t negative = 0;
    for (const double d : s.values) {
      if (d < 0.0) ++negative;
    }
    const util::Summary summary = util::summarize(s.values);
    table.add_row(
        {s.label,
         s.values.empty() ? "-"
                          : bench::pct(100.0 * static_cast<double>(negative) /
                                       static_cast<double>(s.values.size())),
         bench::ms(summary.median), bench::ms(summary.p25),
         bench::ms(summary.p75), std::to_string(s.values.size())});
  }
  std::cout << "\n" << table.render();
  std::cout << "\n(differences at matched quantiles within each matched "
               "<city, ASN> pair; negative = Speedchecker faster)\n";
  return 0;
}

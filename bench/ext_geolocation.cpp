// Extension — why the paper refrained from geographic routing analysis.
//
// §3.3: "since such geolocation databases are known to be quite inaccurate,
// we refrain from making any geographical ISP-to-cloud traffic routing
// assessments in this study." Quantify that call: geolocate every traceroute
// hop with the GeoIP stand-in and compute each path's apparent geographic
// stretch (hop-to-hop distance sum over the probe->DC great circle). Against
// ground-truth router locations the stretch is a sane detour factor; against
// the database it explodes, because global backbones geolocate to corporate
// registrations half a planet away.

#include <iostream>

#include "analysis/geolocate.hpp"
#include "common.hpp"
#include "measure/engine.hpp"
#include "routing/path_builder.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Extension — apparent path stretch under GeoIP geolocation",
      "with honest router locations, paths stretch ~1.2-2.5x over the great "
      "circle; with a realistic GeoIP database the tail blows past 5-10x — "
      "the paper's §3.3 refusal, quantified");

  const core::Study& study = bench::shared_study();
  const analysis::GeoDatabase geodb =
      analysis::GeoDatabase::from_world(study.world());
  const routing::PathBuilder builder{study.world()};
  const measure::Engine engine{study.world()};
  util::Rng rng = study.world().fork_rng("geolocation");

  std::cout << "\nGeoIP database: " << geodb.size() << " prefixes\n";

  std::vector<double> truth_stretch;
  std::vector<double> geoip_stretch;
  std::size_t country_hits = 0;
  std::size_t country_total = 0;

  const auto& probes = study.sc_fleet().probes();
  const auto& endpoints = study.world().endpoints();
  for (int sample = 0; sample < 1200; ++sample) {
    const probes::Probe& probe = probes[rng.below(probes.size())];
    const topology::CloudEndpoint& endpoint =
        endpoints[rng.below(endpoints.size())];
    const double gc =
        geo::haversine_km(probe.location, endpoint.region->location);
    if (gc < 300.0) continue;  // stretch is meaningless at metro distances

    // Ground truth: the forwarding path the simulator actually uses.
    const measure::Engine::TraceMethod method = measure::Engine::TraceMethod::Paris;
    const measure::TraceRecord trace =
        engine.traceroute(probe, endpoint, 0, rng, method);
    const routing::ForwardingPath path =
        builder.build(probe, endpoint, trace.true_mode);
    double truth_km = 0.0;
    for (std::size_t i = 1; i < path.hops.size(); ++i) {
      truth_km +=
          geo::haversine_km(path.hops[i - 1].location, path.hops[i].location);
    }
    truth_stretch.push_back(truth_km / gc);

    // GeoIP view: geolocate the responding public hops of the traceroute.
    std::vector<geo::GeoPoint> located{probe.location};
    for (const measure::HopRecord& hop : trace.hops) {
      if (!hop.responded || net::is_private(hop.ip)) continue;
      const auto entry = geodb.lookup(hop.ip);
      if (!entry) continue;
      located.push_back(entry->location);
      // Country-accuracy tally against the ground-truth hop (match by ttl).
      for (const routing::RouterHop& truth_hop : path.hops) {
        if (truth_hop.ip == hop.ip || truth_hop.alt_ip == hop.ip) {
          ++country_total;
          if (geo::haversine_km(truth_hop.location, entry->location) < 1500.0) {
            ++country_hits;
          }
          break;
        }
      }
    }
    double geoip_km = 0.0;
    for (std::size_t i = 1; i < located.size(); ++i) {
      geoip_km += geo::haversine_km(located[i - 1], located[i]);
    }
    if (located.size() >= 3) geoip_stretch.push_back(geoip_km / gc);
  }

  util::TextTable table;
  table.set_header({"hop locations", "n", "median stretch", "p90", "p99",
                    "share > 5x"});
  for (const auto& [label, values] :
       {std::pair{"ground truth", &truth_stretch},
        std::pair{"GeoIP database", &geoip_stretch}}) {
    const util::Summary s = util::summarize(*values);
    std::size_t blown = 0;
    for (const double v : *values) {
      if (v > 5.0) ++blown;
    }
    table.add_row({label, std::to_string(s.count),
                   util::format_double(s.median, 2) + "x",
                   util::format_double(s.p90, 2) + "x",
                   util::format_double(util::quantile(*values, 0.99), 2) + "x",
                   bench::pct(100.0 * static_cast<double>(blown) /
                              static_cast<double>(values->size()))});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nhop geolocated within 1500 km of its true site: "
            << bench::pct(100.0 * static_cast<double>(country_hits) /
                          static_cast<double>(country_total))
            << " of " << country_total << " resolved hops\n";
  std::cout << "expected shape: ground-truth stretch stays in the low "
               "single digits; the GeoIP view's tail explodes (backbone "
               "prefixes registered at corporate HQs) — exactly why the "
               "paper refused to do this analysis with real databases.\n";
  return 0;
}

// Fig. 9 — last-mile Cv for two representative countries per continent
// (ZA MA | JP IR | GB UA | US MX | BR AR), home boxes dropped where the
// platform hosts too few home probes (the paper's ZA/MA note).

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 9 — last-mile Cv for representative countries",
      "stability is comparable (and significant) across the globe; home "
      "boxes for ZA and MA excluded for insufficient home-probe samples");

  const auto groups = analysis::fig9_cv_by_country(bench::shared_study().view());

  util::TextTable table;
  table.set_header({"country", "home n", "home med Cv", "cell n", "cell med Cv",
                    "note"});
  for (const auto& group : groups) {
    const util::Summary home = util::summarize(group.home);
    const util::Summary cell = util::summarize(group.cell);
    table.add_row({group.label, std::to_string(home.count),
                   home.count ? util::format_double(home.median, 2) : "-",
                   std::to_string(cell.count),
                   cell.count ? util::format_double(cell.median, 2) : "-",
                   group.home_sufficient ? "" : "home excluded (insufficient)"});
  }
  std::cout << "\n" << table.render();
  return 0;
}

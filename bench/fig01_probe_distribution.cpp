// Figs. 1b / 2 / 14 — vantage-point distributions of the two platforms.
// Prints per-continent probe counts and the densest countries, plus the
// APNIC-style coverage contrast the paper leans on (§3.2).

#include <algorithm>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 1b / Fig. 2 — probe distributions (Speedchecker vs RIPE Atlas)",
      "SC: EU 72K, AS 31K, NA 5.4K, AF 4K, SA 2.8K, OC 351; Atlas: EU 5574, "
      "AS 1083, NA 866, AF 261, SA 216, OC 289; DE/GB/IR/JP densest on SC");

  const core::Study& study = bench::shared_study();

  for (const probes::ProbeFleet* fleet :
       {&study.sc_fleet(), &study.atlas_fleet()}) {
    std::cout << "\n-- " << to_string(fleet->platform()) << " ("
              << fleet->size() << " probes) --\n";
    std::array<std::size_t, geo::kContinentCount> by_continent{};
    std::array<std::size_t, geo::kContinentCount> cellular{};
    for (const probes::Probe& probe : fleet->probes()) {
      const std::size_t idx = geo::index_of(probe.country->continent);
      ++by_continent[idx];
      if (probe.access == lastmile::AccessTech::Cellular) ++cellular[idx];
    }
    util::TextTable table;
    table.set_header({"continent", "probes", "share", "cellular"});
    for (const geo::Continent c : geo::kAllContinents) {
      const std::size_t idx = geo::index_of(c);
      table.add_row({std::string{geo::to_code(c)},
                     std::to_string(by_continent[idx]),
                     bench::pct(100.0 * static_cast<double>(by_continent[idx]) /
                                static_cast<double>(fleet->size())),
                     bench::pct(by_continent[idx] == 0
                                    ? 0.0
                                    : 100.0 * static_cast<double>(cellular[idx]) /
                                          static_cast<double>(by_continent[idx]))});
    }
    std::cout << table.render();

    std::vector<std::pair<std::size_t, std::string_view>> dense;
    for (const geo::CountryInfo& country : study.world().countries().all()) {
      const std::size_t n = fleet->count_in_country(country.code);
      if (n > 0) dense.emplace_back(n, country.name);
    }
    std::sort(dense.rbegin(), dense.rend());
    std::cout << "densest countries:";
    for (std::size_t i = 0; i < std::min<std::size_t>(6, dense.size()); ++i) {
      std::cout << " " << dense[i].second << "(" << dense[i].first << ")";
    }
    std::cout << "\n";
  }

  // Appendix A.1 (Fig. 14): geographic "closeness" — how tightly clustered
  // each platform's probes are, as the median distance to the nearest other
  // probe of the same platform.
  std::cout << "\n-- probe closeness (median nearest-neighbour distance, km) --\n";
  util::TextTable closeness;
  closeness.set_header({"continent", "Speedchecker", "RIPE Atlas"});
  for (const geo::Continent c : geo::kAllContinents) {
    std::vector<std::string> row{std::string{geo::to_code(c)}};
    for (const probes::ProbeFleet* fleet :
         {&study.sc_fleet(), &study.atlas_fleet()}) {
      std::vector<const probes::Probe*> members;
      for (const probes::Probe& probe : fleet->probes()) {
        if (probe.country->continent == c) members.push_back(&probe);
      }
      if (members.size() < 10) {
        row.emplace_back("-");
        continue;
      }
      std::vector<double> nearest;
      nearest.reserve(members.size());
      for (const probes::Probe* a : members) {
        double best = 1e18;
        for (const probes::Probe* b : members) {
          if (a == b) continue;
          best = std::min(best, geo::haversine_km(a->location, b->location));
        }
        nearest.push_back(best);
      }
      row.push_back(util::format_double(util::median(nearest), 1));
    }
    closeness.add_row(std::move(row));
  }
  std::cout << closeness.render();
  std::cout << "(smaller = denser deployment; the SC fleet is close-packed "
               "wherever the Atlas fleet is sparse — Fig. 14's point)\n";

  // §3.2's geoDensity claim: probes per geographic area, SC relative to
  // Atlas — ~12x in EU, ~6x in NA, far higher in developing regions.
  std::cout << "\n-- geoDensity ratio (Speedchecker / Atlas probes per area) --\n";
  util::TextTable density;
  density.set_header({"continent", "SC probes", "Atlas probes", "ratio"});
  for (const geo::Continent c : geo::kAllContinents) {
    std::size_t sc_count = 0;
    std::size_t atlas_count = 0;
    for (const probes::Probe& probe : study.sc_fleet().probes()) {
      if (probe.country->continent == c) ++sc_count;
    }
    for (const probes::Probe& probe : study.atlas_fleet().probes()) {
      if (probe.country->continent == c) ++atlas_count;
    }
    density.add_row({std::string{geo::to_code(c)}, std::to_string(sc_count),
                     std::to_string(atlas_count),
                     atlas_count == 0
                         ? "-"
                         : util::format_double(static_cast<double>(sc_count) /
                                                   static_cast<double>(atlas_count),
                                               1) + "x"});
  }
  std::cout << density.render();
  std::cout << "(paper: ~12x in EU, ~6x in NA, 30-40x in developing regions; "
               "both fleets are scaled by the same factor here, so the ratio "
               "is scale-invariant)\n";

  std::cout << "\nnote: the paper's platform contrast — Atlas concentrated in "
               "southern Africa and spread across South America, Speedchecker "
               "cellular-heavy in north Africa and >80% Brazilian in SA — is "
               "encoded in the country table and verified by tests/geo_test.\n";
  return 0;
}

// Table 1 — global density of cloud provider endpoints and their backbone
// class. This is an input of the study; the harness prints the catalogue in
// the paper's layout and verifies the totals.

#include <iostream>

#include "cloud/provider.hpp"
#include "cloud/region.hpp"
#include "common.hpp"
#include "util/text.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Table 1 — datacenters per continent and backbone network",
      "195 regions: EU 52, NA 62, SA 4, AS 62, AF 3, OC 12; big-3 private WANs");

  const auto& catalog = cloud::RegionCatalog::instance();
  constexpr std::array<geo::Continent, 6> kColumns{
      geo::Continent::Europe,       geo::Continent::NorthAmerica,
      geo::Continent::SouthAmerica, geo::Continent::Asia,
      geo::Continent::Africa,       geo::Continent::Oceania};

  util::TextTable table;
  table.set_header({"Provider", "EU", "NA", "SA", "AS", "AF", "OC", "Total",
                    "Backbone"});
  std::array<std::size_t, 6> totals{};
  for (const cloud::ProviderId id : cloud::kAllProviders) {
    const cloud::ProviderInfo& info = cloud::provider_info(id);
    std::vector<std::string> row{std::string{info.name} + " (" +
                                 std::string{info.ticker} + ")"};
    std::size_t provider_total = 0;
    for (std::size_t i = 0; i < kColumns.size(); ++i) {
      const std::size_t n = catalog.count(id, kColumns[i]);
      totals[i] += n;
      provider_total += n;
      row.push_back(n == 0 ? "-" : std::to_string(n));
    }
    row.push_back(std::to_string(provider_total));
    switch (info.backbone) {
      case cloud::BackboneClass::Private: row.emplace_back("Private"); break;
      case cloud::BackboneClass::Semi: row.emplace_back("Semi"); break;
      case cloud::BackboneClass::Public: row.emplace_back("Public"); break;
    }
    table.add_row(std::move(row));
  }
  table.add_rule();
  std::vector<std::string> total_row{"Total"};
  std::size_t grand_total = 0;
  for (const std::size_t n : totals) {
    total_row.push_back(std::to_string(n));
    grand_total += n;
  }
  total_row.push_back(std::to_string(grand_total));
  total_row.emplace_back("");
  table.add_row(std::move(total_row));
  std::cout << table.render();

  std::cout << "\ncheck: total regions = " << grand_total
            << (grand_total == 195 ? " (matches the paper)" : " (MISMATCH!)")
            << "\n";
  return grand_total == 195 ? 0 : 1;
}

// Extension — inter-domain routing view: the "flat Internet" (§2.1).
//
// Computes Gao-Rexford-compliant BGP routes over the derived AS graph and
// reproduces the background facts the paper builds on (Arnold et al. [9]):
// hypergiant clouds are reachable from serving ISPs in ~2 AS hops and mostly
// without any Tier-1 in the path, while small clouds sit behind transit
// chains. Also cross-validates the forwarding simulator: BGP path lengths
// must agree with the AS paths observed in the study's traceroutes.

#include <iostream>
#include <set>

#include "analysis/trace_analysis.hpp"
#include "common.hpp"
#include "topology/bgp.hpp"
#include "topology/route_table.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Extension — BGP view: Internet flattening & path-length validation",
      "big-3 reachable in ~2 AS hops, largely Tier-1-free (the flat "
      "Internet); small providers behind 3-4 hop transit chains; BGP and "
      "traceroute AS-path lengths must agree");

  const core::Study& study = bench::shared_study();
  const topology::BgpGraph& graph = study.world().bgp();
  const topology::BgpRouteTable& routes = study.world().bgp_routes();
  std::cout << "\nAS graph: " << graph.as_count() << " ASes, "
            << graph.edge_count() << " relationships ("
            << routes.route_count() << " best routes flattened at world "
            << "construction)\n\n";

  // True global tier-1s only: the regional wholesale carriers (Liquid,
  // Telxius, Telstra) don't count for the flattening metric.
  std::set<topology::Asn> tier1;
  for (const topology::TransitCarrier& carrier : topology::tier1_carriers()) {
    if (carrier.asn == 30844 || carrier.asn == 12956 || carrier.asn == 4637) {
      continue;
    }
    tier1.insert(carrier.asn);
  }

  util::TextTable table;
  table.set_header({"provider", "mean AS-path len", "direct (2 ASes)",
                    "tier-1-free", "reachable ISPs"});
  for (const cloud::ProviderId provider : cloud::kPeeringFigureProviders) {
    const cloud::ProviderInfo& info = cloud::provider_info(provider);
    double length_sum = 0.0;
    std::size_t reachable = 0;
    std::size_t direct = 0;
    std::size_t tier1_free = 0;
    for (const topology::IspNetwork& isp : study.world().isps()) {
      const auto route = routes.route(isp.asn, info.asn);
      if (!route) continue;
      ++reachable;
      length_sum += static_cast<double>(route->length());
      if (route->length() == 2) ++direct;
      bool crosses_tier1 = false;
      for (std::size_t i = 1; i + 1 < route->as_path.size(); ++i) {
        if (tier1.contains(route->as_path[i])) crosses_tier1 = true;
      }
      if (!crosses_tier1) ++tier1_free;
    }
    const double n = static_cast<double>(reachable);
    table.add_row({std::string{info.ticker},
                   util::format_double(length_sum / n, 2),
                   bench::pct(100.0 * static_cast<double>(direct) / n),
                   bench::pct(100.0 * static_cast<double>(tier1_free) / n),
                   std::to_string(reachable)});
  }
  std::cout << table.render();

  // Cross-validation: AS-path lengths from the study's traceroutes (the
  // waypoint simulator) vs the BGP model, per provider class.
  std::vector<double> trace_big3;
  std::vector<double> trace_small;
  for (const measure::TraceRef& trace : study.sc_dataset().traces) {
    const auto obs = analysis::classify_interconnect(trace, study.resolver());
    if (!obs.valid) continue;
    const double length = 2.0 + obs.intermediate_as_count;
    const auto& info = cloud::provider_info(trace.region->provider);
    (info.hypergiant ? trace_big3 : trace_small).push_back(length);
  }
  std::cout << "\ncross-check (mean AS-path length, traceroute-observed):\n";
  std::cout << "  big-3:          " << util::format_double(util::mean(trace_big3), 2)
            << " (BGP view above should be within ~0.5)\n";
  std::cout << "  other providers: "
            << util::format_double(util::mean(trace_small), 2) << "\n";
  std::cout << "\nexpected shape: big-3 mean ~2.1-2.6 with majority direct and "
               "mostly tier-1-free; VLTR/LIN/ORCL ~3.5-4.5 and almost always "
               "behind a tier-1.\n";
  return 0;
}

// Fig. 4 — distribution of all RTT samples to the nearest in-continent
// datacenter, grouped by continent, against the MTP/HPL/HRT thresholds.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 4 — RTT distribution to nearest DC per continent",
      "EU/NA/OC ~90% under HPL; AS/SA ~80% under HPL with long tails; AF <10% "
      "under HPL and ~65% under HRT; MTP out of reach everywhere");

  const auto series = analysis::fig4_continent_rtt(bench::shared_study().view());

  std::cout << "\n-- CDF (quantiles per continent) --\n";
  std::cout << util::render_cdf_table(
      series, {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99});

  std::cout << "\n-- fraction under the application thresholds (§2.1) --\n";
  std::cout << util::render_threshold_table(
      series, {analysis::kMtpMs, analysis::kHplMs, analysis::kHrtMs});
  std::cout << "(MTP 20 ms | HPL 100 ms | HRT 250 ms)\n";
  return 0;
}

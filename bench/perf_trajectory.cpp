// perf_trajectory — the performance-trajectory recorder behind the committed
// BENCH_<n>.json files (see README "Performance trajectory").
//
// Runs the canonical suite with wall-clock sampled over --reps repetitions:
//
//   world_build        synthetic-Internet construction from the seed
//   campaign_day_tN    one paper-scale campaign day at each --threads value;
//                      every run's dataset hash must be bit-identical to the
//                      first (the recorder refuses to time a wrong dataset)
//   checkpoint_save    legacy (format=2) full-CSV snapshot of the dataset
//   checkpoint_load    validated resume from that snapshot
//   spill_day          streaming store: frame + checksum + append + commit
//                      the same day through store::ShardWriter, then prove
//                      the spilled store reloads to the same bits
//   export_hash        FNV-1a over the full exported dataset
//
// and writes a schema-versioned obs::BenchReport. tools/bench_compare diffs
// two reports and fails on wall-clock regression or dataset-hash drift.
// Not a google-benchmark binary: sections need custom artefacts (hashes,
// thread sweeps, the JSON report), and the suite is run by CI as a job, not
// as a microbenchmark.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "core/scale.hpp"
#include "measure/campaign.hpp"
#include "obs/bench_report.hpp"
#include "obs/process.hpp"
#include "obs/trace_events.hpp"
#include "probes/fleet.hpp"
#include "store/io_env.hpp"
#include "store/salvage.hpp"
#include "store/shard_writer.hpp"
#include "topology/world.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/text.hpp"

namespace {

using namespace cloudrtt;

/// CLOUDRTT_GIT_REV wins (CI sets it from the checkout), else ask git.
[[nodiscard]] std::string detect_git_rev() {
  if (const char* env = std::getenv("CLOUDRTT_GIT_REV")) return env;
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buffer[64] = {};
    const bool read = std::fgets(buffer, sizeof(buffer), pipe) != nullptr;
    ::pclose(pipe);
    if (read) {
      std::string rev{buffer};
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
      if (!rev.empty()) return rev;
    }
  }
  return "unknown";
}

[[nodiscard]] std::vector<unsigned> parse_thread_list(const std::string& text) {
  std::vector<unsigned> threads;
  std::string token;
  for (const char ch : text + ",") {
    if (ch == ',') {
      if (!token.empty()) {
        const long value = std::atol(token.c_str());
        CLOUDRTT_CHECK(value > 0, "--threads entries must be positive, got '",
                       token, "'");
        threads.push_back(static_cast<unsigned>(value));
        token.clear();
      }
    } else if (ch != ' ') {
      token.push_back(ch);
    }
  }
  CLOUDRTT_CHECK(!threads.empty(), "--threads list is empty");
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args{"perf_trajectory",
                       "record the canonical performance-trajectory suite as "
                       "a BENCH_<n>.json report"};
  args.add_option("reps", "3", "wall-clock samples per section");
  args.add_option("probes", "2000", "Speedchecker fleet size");
  args.add_option("budget", "20000", "daily task budget");
  args.add_option("days", "1", "campaign days per timed run");
  args.add_option("seed", "7", "world/study seed");
  args.add_option("threads", "1,4,8",
                  "comma-separated worker counts for the campaign-day sweep");
  args.add_option("bench-id", "10", "the <n> in BENCH_<n>.json");
  args.add_option("out", "", "report path (default BENCH_<bench-id>.json)");
  args.add_option("trace-out", "",
                  "also write a Chrome-trace JSON of the suite");
  args.add_flag("quick", "reduced-scale smoke run (500 probes, 4000 budget, "
                         "2 reps) — hashes not comparable to full-scale "
                         "reports");
  args.add_flag("paper", "also record the paper-scale streamed campaign day "
                         "(115k-probe fleet, budget scaled to match, rows "
                         "spilled through the shard store; section "
                         "paper_day_stream)");
  if (!args.parse(argc, argv)) return 1;

  const bool quick = args.get_flag("quick");
  const auto reps =
      static_cast<unsigned>(quick ? 2 : std::max(1L, args.get_int("reps")));
  const auto probes =
      static_cast<std::size_t>(quick ? 500 : args.get_int("probes"));
  const auto budget =
      static_cast<std::size_t>(quick ? 4000 : args.get_int("budget"));
  const auto days = static_cast<std::uint32_t>(args.get_int("days"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const std::vector<unsigned> thread_list =
      parse_thread_list(args.get("threads"));

  if (!args.get("trace-out").empty()) {
    obs::TraceRecorder::global().enable();
    obs::TraceRecorder::global().name_this_thread("main");
  }

  obs::BenchReport report;
  report.bench_id = static_cast<int>(args.get_int("bench-id"));
  report.git_rev = detect_git_rev();
  report.seed = seed;
  report.probes = probes;
  report.daily_budget = budget;
  report.days = days;
  report.repetitions = reps;

  std::cout << "perf_trajectory: " << probes << " probes, budget " << budget
            << ", " << days << " day(s), seed " << seed << ", " << reps
            << " rep(s)\n";

  // --- world_build ---------------------------------------------------------
  {
    obs::BenchSection section;
    section.name = "world_build";
    std::size_t sink = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
      const obs::Stopwatch watch;
      const topology::World world{topology::WorldConfig{seed}};
      section.wall_ms.push_back(watch.elapsed_ms());
      sink += world.endpoints().size();
    }
    CLOUDRTT_CHECK(sink > 0, "world build produced no cloud endpoints");
    report.sections.push_back(std::move(section));
  }

  // Shared fixture for the campaign sections (construction untimed).
  topology::World world{topology::WorldConfig{seed}};
  const probes::ProbeFleet fleet{
      world, probes::FleetConfig{probes::Platform::Speedchecker, probes}};
  measure::CampaignConfig config;
  config.days = days;
  config.daily_budget = budget;
  config.run_case_studies = false;

  // --- campaign_day_tN sweep ----------------------------------------------
  // The same seed must produce the same bits at every worker count; the
  // recorder asserts that before it reports any time, so a regression in the
  // executor's chunk/RNG discipline fails the bench instead of producing a
  // fast wrong number.
  std::uint64_t reference_hash = 0;
  measure::Dataset reference_data;
  for (const unsigned threads : thread_list) {
    config.threads = threads;
    const measure::Campaign campaign{world, fleet, config};
    obs::BenchSection section;
    section.name = "campaign_day_t" + std::to_string(threads);
    section.threads = static_cast<int>(threads);
    std::uint64_t hash = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
      const obs::Stopwatch watch;
      measure::Dataset data = campaign.run(world.fork_rng("bench/trajectory"));
      section.wall_ms.push_back(watch.elapsed_ms());
      hash = core::dataset_hash(data);
      if (reference_hash == 0) {
        reference_hash = hash;
        reference_data = std::move(data);
      }
      CLOUDRTT_CHECK(hash == reference_hash, "dataset hash drifted at ",
                     threads, " thread(s): ",
                     core::format_dataset_hash(hash), " vs reference ",
                     core::format_dataset_hash(reference_hash));
    }
    section.dataset_hash = core::format_dataset_hash(hash);
    report.sections.push_back(std::move(section));
    std::cout << "  campaign_day_t" << threads << ": p50 "
              << util::format_double(report.sections.back().p50_ms(), 1)
              << " ms, hash " << report.sections.back().dataset_hash << "\n";
  }
  report.dataset_hash = core::format_dataset_hash(reference_hash);

  // --- checkpoint_save / checkpoint_load -----------------------------------
  const std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() / "cloudrtt-perf-trajectory";
  core::CheckpointMeta meta;
  meta.state.next_day = days;
  meta.seed = seed;
  meta.platform = "speedchecker";
  {
    obs::BenchSection section;
    section.name = "checkpoint_save";
    for (unsigned rep = 0; rep < reps; ++rep) {
      const obs::Stopwatch watch;
      const std::string error =
          core::save_checkpoint(ckpt_dir, meta, reference_data);
      section.wall_ms.push_back(watch.elapsed_ms());
      CLOUDRTT_CHECK(error.empty(), "checkpoint save failed: ", error);
    }
    report.sections.push_back(std::move(section));
  }
  {
    obs::BenchSection section;
    section.name = "checkpoint_load";
    for (unsigned rep = 0; rep < reps; ++rep) {
      const obs::Stopwatch watch;
      const core::CheckpointLoad load =
          core::load_checkpoint(ckpt_dir, "speedchecker", &fleet, nullptr);
      section.wall_ms.push_back(watch.elapsed_ms());
      CLOUDRTT_CHECK(load.ok(), "checkpoint load failed: ", load.error);
      CLOUDRTT_CHECK(core::dataset_hash(load.data) == reference_hash,
                     "checkpoint round-trip changed the dataset hash");
    }
    report.sections.push_back(std::move(section));
  }
  std::error_code cleanup_error;
  std::filesystem::remove_all(ckpt_dir, cleanup_error);

  // --- spill_day -----------------------------------------------------------
  // Streaming-store throughput: the per-day work the day_rows hook adds to
  // a campaign (framing, checksumming, fsynced appends, manifest commit).
  {
    const std::filesystem::path spill_dir =
        std::filesystem::temp_directory_path() / "cloudrtt-perf-spill";
    store::IoEnv io;
    measure::CampaignState done;
    done.next_day = days;
    obs::BenchSection section;
    section.name = "spill_day";
    for (unsigned rep = 0; rep < reps; ++rep) {
      const obs::Stopwatch watch;
      store::ShardWriter writer{spill_dir,
                                store::StoreMeta{"speedchecker", seed}, 1, io,
                                /*fresh=*/true};
      CLOUDRTT_CHECK(writer.adopt(reference_data, done),
                     "spill was not durable");
      section.wall_ms.push_back(watch.elapsed_ms());
    }
    // One salvage-validated reopen: the spilled store must reload to the
    // exact bits the campaign collected.
    const store::OpenResult opened = store::open_store(
        spill_dir, "speedchecker", io, &fleet, nullptr, /*repair=*/false);
    CLOUDRTT_CHECK(opened.ok(), "spilled store failed to open: ",
                   opened.error);
    CLOUDRTT_CHECK(core::dataset_hash(opened.data) == reference_hash,
                   "spill round-trip changed the dataset hash");
    report.sections.push_back(std::move(section));
    std::error_code spill_cleanup;
    std::filesystem::remove_all(spill_dir, spill_cleanup);
  }

  // --- export_hash ---------------------------------------------------------
  {
    obs::BenchSection section;
    section.name = "export_hash";
    for (unsigned rep = 0; rep < reps; ++rep) {
      const obs::Stopwatch watch;
      const std::uint64_t hash = core::dataset_hash(reference_data);
      section.wall_ms.push_back(watch.elapsed_ms());
      CLOUDRTT_CHECK(hash == reference_hash, "export hash is not stable");
    }
    report.sections.push_back(std::move(section));
  }

  // --- paper_day_stream (--paper) ------------------------------------------
  // `--scale paper` as a first-class benchmarked configuration: a 115k-probe
  // fleet runs one campaign day with every committed day's rows streamed
  // through store::ShardWriter and dropped from RAM, exactly what
  // `cloudrtt run --scale paper` does. The section hash is the streamed
  // store hash (bit-identical to the in-memory hash by construction) and
  // report.peak_rss_bytes — recorded after this leg — is the committed
  // evidence that paper scale fits in O(one day) of memory (CI asserts a
  // ceiling on it).
  if (args.get_flag("paper")) {
    const core::ScaleSpec paper = core::parse_scale("paper");
    const probes::ProbeFleet paper_fleet{
        world,
        probes::FleetConfig{probes::Platform::Speedchecker, paper.sc_probes}};
    measure::CampaignConfig paper_config;
    paper_config.days = 1;
    paper_config.daily_budget = static_cast<std::size_t>(
        static_cast<double>(budget) * paper.sc_multiplier());
    paper_config.run_case_studies = false;
    paper_config.threads = thread_list.back();
    const measure::Campaign campaign{world, paper_fleet, paper_config};
    const std::filesystem::path spill_dir =
        std::filesystem::temp_directory_path() / "cloudrtt-perf-paper";
    store::IoEnv io;
    obs::BenchSection section;
    section.name = "paper_day_stream";
    section.threads = static_cast<int>(paper_config.threads);
    std::cout << "  paper_day_stream: " << paper_fleet.probes().size()
              << " probes, budget " << paper_config.daily_budget << ", "
              << paper_config.threads << " thread(s)\n";
    std::uint64_t paper_hash = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
      const obs::Stopwatch watch;
      std::uint64_t rows = 0;
      {
        store::ShardWriter writer{
            spill_dir, store::StoreMeta{"speedchecker", seed},
            std::max(1u, paper_config.threads), io, /*fresh=*/true};
        measure::RunHooks hooks;
        hooks.day_rows = [&writer](std::uint32_t day, std::size_t cursor,
                                   std::uint32_t first_task,
                                   const measure::Dataset& data,
                                   std::size_t ping_begin,
                                   std::size_t trace_begin) {
          (void)writer.append_day(day, cursor, first_task, data, ping_begin,
                                  trace_begin);
        };
        hooks.after_day = [&writer](const measure::CampaignState& next,
                                    const measure::Dataset&) {
          (void)writer.commit(next);
          return true;
        };
        hooks.drop_day_rows = true;
        const measure::Dataset data =
            campaign.run(world.fork_rng("bench/trajectory-paper"), {}, hooks);
        CLOUDRTT_CHECK(data.pings.empty() && data.traces.empty(),
                       "streamed paper day left rows in memory");
      }  // writer drained: the store is the only copy of the rows
      section.wall_ms.push_back(watch.elapsed_ms());
      const core::StreamedHashResult hashed = core::streamed_dataset_hash(
          spill_dir, "speedchecker", io, &paper_fleet, nullptr);
      CLOUDRTT_CHECK(hashed.ok(), "paper store hash failed: ", hashed.error);
      rows = hashed.rows;
      CLOUDRTT_CHECK(rows > 0, "paper day streamed no rows");
      if (paper_hash == 0) paper_hash = hashed.hash;
      CLOUDRTT_CHECK(hashed.hash == paper_hash,
                     "paper-scale dataset hash drifted across reps: ",
                     core::format_dataset_hash(hashed.hash), " vs ",
                     core::format_dataset_hash(paper_hash));
    }
    section.dataset_hash = core::format_dataset_hash(paper_hash);
    report.sections.push_back(std::move(section));
    std::cout << "  paper_day_stream: p50 "
              << util::format_double(report.sections.back().p50_ms(), 1)
              << " ms, hash " << report.sections.back().dataset_hash << "\n";
    std::error_code paper_cleanup;
    std::filesystem::remove_all(spill_dir, paper_cleanup);
  }

  report.peak_rss_bytes = obs::peak_rss_bytes();

  const std::string out_path =
      args.get("out").empty()
          ? "BENCH_" + std::to_string(report.bench_id) + ".json"
          : args.get("out");
  std::ofstream out{out_path};
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  report.write_json(out);

  util::TextTable table;
  table.set_header({"section", "p50", "min", "max"});
  for (const obs::BenchSection& section : report.sections) {
    table.add_row({section.name,
                   util::format_double(section.p50_ms(), 1) + " ms",
                   util::format_double(section.min_ms(), 1) + " ms",
                   util::format_double(section.max_ms(), 1) + " ms"});
  }
  std::cout << table.render() << "dataset hash " << report.dataset_hash
            << ", peak RSS " << report.peak_rss_bytes / (1024 * 1024)
            << " MiB\nreport written to " << out_path << " (git "
            << report.git_rev << ")\n";

  if (const std::string& trace_path = args.get("trace-out");
      !trace_path.empty()) {
    std::ofstream trace{trace_path};
    obs::TraceRecorder::global().write_json(trace);
    std::cout << "trace written to " << trace_path << "\n";
  }
  return 0;
}

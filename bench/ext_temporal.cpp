// Extension — temporal behaviour over the campaign.
//
// The paper measures for six months and reports *distributions*; this
// harness looks at the time axis the §3.3 methodology creates (daily cycles,
// 4-hour scheduling slots): evening congestion at the local peak hour, and
// day-over-day stability of the per-continent medians (the predictability
// that §7 argues matters more than absolute latency).

#include <iostream>
#include <map>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Extension — diurnal congestion and day-over-day stability",
      "latencies swell around the local evening peak (strongest on weak "
      "backhauls) while per-continent daily medians stay stable — the "
      "network is predictable even where it is slow");

  const core::Study& study = bench::shared_study();

  // --- diurnal: median RTT by local time-of-day bin -------------------------
  // Local hour from the slot (UTC anchor) and the probe's longitude, exactly
  // as the engine's congestion model sees it.
  std::map<std::string_view, std::array<std::vector<double>, 6>> by_bin;
  for (const measure::PingRecord& ping : study.sc_dataset().pings) {
    const double utc_hour = 4.0 * static_cast<double>(ping.slot % 6) + 2.0;
    double local = utc_hour + ping.probe->location.lon_deg / 15.0;
    while (local < 0.0) local += 24.0;
    while (local >= 24.0) local -= 24.0;
    const auto bin = static_cast<std::size_t>(local / 4.0);
    by_bin[geo::to_code(ping.probe->country->continent)][bin].push_back(
        ping.rtt_ms);
  }
  util::TextTable diurnal;
  diurnal.set_header({"continent", "00-04", "04-08", "08-12", "12-16", "16-20",
                      "20-24 (peak)"});
  for (auto& [label, bins] : by_bin) {
    std::vector<std::string> row{std::string{label}};
    for (auto& values : bins) {
      row.push_back(values.size() < 30 ? "-"
                                       : bench::ms(util::median(values)) + " ms");
    }
    diurnal.add_row(std::move(row));
  }
  std::cout << "\n-- median RTT by local time of day --\n" << diurnal.render();

  // --- stability: day-over-day medians --------------------------------------
  std::map<std::string_view, std::map<std::uint32_t, std::vector<double>>> by_day;
  for (const measure::PingRecord& ping : study.sc_dataset().pings) {
    by_day[geo::to_code(ping.probe->country->continent)][ping.day].push_back(
        ping.rtt_ms);
  }
  util::TextTable stability;
  stability.set_header({"continent", "days", "median of daily medians",
                        "day-to-day Cv"});
  for (auto& [label, days] : by_day) {
    std::vector<double> daily_medians;
    for (auto& [day, values] : days) {
      (void)day;
      if (values.size() >= 30) daily_medians.push_back(util::median(values));
    }
    if (daily_medians.size() < 3) continue;
    const auto cv = util::coefficient_of_variation(daily_medians);
    stability.add_row({std::string{label}, std::to_string(daily_medians.size()),
                       bench::ms(util::median(daily_medians)) + " ms",
                       cv ? util::format_double(*cv, 3) : "-"});
  }
  std::cout << "\n-- day-over-day stability of the continental medians --\n"
            << stability.render();
  std::cout << "\nexpected shape: the evening bins run hot, most visibly on "
               "weak backhauls (AF); day-to-day Cv of the medians stays near "
               "or below ~0.1 in the well-sampled continents (residual "
               "variation is per-day country-mix churn from the §3.3 "
               "scheduling, which the paper's six-month window averages "
               "out).\n";
  return 0;
}

// What-if: a 5G-class radio leg (§7 discussion).
//
// The paper argues MTP-class applications stay infeasible "barring dramatic
// improvements in wireless technology" because the radio leg alone is
// ~20+ ms. 5G promises milliseconds. Scale the air-segment medians down to
// ~15% (a ~3 ms radio leg) and see which thresholds open up — and which
// remain closed because the wired tail and the transit path still stand.

#include <iostream>

#include "common.hpp"

namespace {

struct Snapshot {
  std::array<double, cloudrtt::geo::kContinentCount> mtp_share{};
  std::array<double, cloudrtt::geo::kContinentCount> hpl_share{};
  double lastmile_median = 0.0;
};

Snapshot snapshot(double air_scale) {
  using namespace cloudrtt;
  core::StudyConfig config;
  config.sc_probes = 4000;
  config.include_atlas = false;
  config.sc_campaign.days = 6;
  config.sc_campaign.daily_budget = 9000;
  config.sc_air_scale = air_scale;
  core::Study study{config};
  study.run();
  const analysis::StudyView view = study.view();

  Snapshot snap;
  for (const auto& series : analysis::fig4_continent_rtt(view)) {
    const util::EmpiricalCdf cdf{series.values};
    const auto continent = geo::continent_from_code(series.label);
    if (!continent || series.values.empty()) continue;
    snap.mtp_share[geo::index_of(*continent)] = cdf.evaluate(analysis::kMtpMs) * 100;
    snap.hpl_share[geo::index_of(*continent)] = cdf.evaluate(analysis::kHplMs) * 100;
  }
  const auto stats = analysis::lastmile_stats(view, false);
  std::vector<double> pooled;
  for (const analysis::LastMileCategory c :
       {analysis::LastMileCategory::HomeUsrIsp, analysis::LastMileCategory::Cell}) {
    const auto& v = stats.absolute(c, analysis::kGlobalIndex);
    pooled.insert(pooled.end(), v.begin(), v.end());
  }
  snap.lastmile_median = util::median(std::move(pooled));
  return snap;
}

}  // namespace

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "What-if — 5G-class radio legs (air medians x0.15)",
      "§7: MTP stays hard even with dramatically better wireless, because "
      "the wired tail and the transit path remain; HPL headroom grows");

  const Snapshot today = snapshot(1.0);
  const Snapshot fiveg = snapshot(0.15);

  util::TextTable table;
  table.set_header({"continent", "<=MTP today", "<=MTP 5G", "<=HPL today",
                    "<=HPL 5G"});
  for (const geo::Continent c : geo::kAllContinents) {
    const std::size_t i = geo::index_of(c);
    table.add_row({std::string{geo::to_code(c)}, bench::pct(today.mtp_share[i]),
                   bench::pct(fiveg.mtp_share[i]), bench::pct(today.hpl_share[i]),
                   bench::pct(fiveg.hpl_share[i])});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nglobal wireless last-mile median: "
            << bench::ms(today.lastmile_median) << " ms today vs "
            << bench::ms(fiveg.lastmile_median) << " ms with 5G radio legs\n";
  std::cout << "expected shape: MTP share rises but stays a minority in most "
               "continents; HPL approaches saturation where DCs are dense.\n";
  return 0;
}

// Fig. 19 (A.5) — share of the wireless last-mile in end-to-end latency,
// restricted to traceroutes towards each probe's *nearest* datacenter.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 19 — last-mile share towards the nearest cloud DC",
      "against the nearest DC the last-mile dominates: ~50% of the total "
      "latency globally, WiFi and cellular alike");

  const auto stats =
      analysis::lastmile_stats(bench::shared_study().view(), /*nearest_only=*/true);

  util::TextTable table;
  std::vector<std::string> header{"category"};
  for (const geo::Continent c : geo::kAllContinents) {
    header.emplace_back(geo::to_code(c));
  }
  header.emplace_back("Global");
  table.set_header(std::move(header));
  for (const analysis::LastMileCategory category :
       {analysis::LastMileCategory::HomeUsrIsp, analysis::LastMileCategory::Cell}) {
    std::vector<std::string> row{std::string{to_string(category)}};
    for (std::size_t idx = 0; idx <= geo::kContinentCount; ++idx) {
      const auto& values = stats.share(category, idx);
      row.push_back(values.size() < 5 ? "-"
                                      : bench::ms(util::median(values)) + "%");
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n" << table.render();
  std::cout << "\n(median share of USR->ISP latency in the end-to-end RTT, "
               "nearest-DC traces only)\n";
  return 0;
}

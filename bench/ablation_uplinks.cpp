// Ablation: remove the regional gateway hairpins (Gulf via Egypt, north
// Africa via the Mediterranean, Andes via Peru).
//
// Decomposes the paper's Fig. 6a/18 latencies into raw geography vs routing
// policy: with the hairpins off, public paths follow the cheapest cables, so
// the north-Africa -> in-continent penalty and the Bahrain transit penalty
// should shrink substantially while geographically-honest pairs (KE->ZA,
// ZA->ZA, DE->GB) stay put.

#include <iostream>

#include "common.hpp"

namespace {

struct Snapshot {
  double eg_to_af = 0.0;   // Egypt -> nearest African DC (median)
  double eg_to_eu = 0.0;
  double ke_to_af = 0.0;
  double za_to_af = 0.0;
  double bh_in_transit = 0.0;  // BH -> IN over non-direct paths (median)
};

Snapshot snapshot(bool uplinks) {
  using namespace cloudrtt;
  core::StudyConfig config;
  config.sc_probes = 4000;
  config.sc_campaign.days = 6;
  config.sc_campaign.daily_budget = 9000;
  config.include_atlas = false;
  config.enable_uplink_gateways = uplinks;
  core::Study study{config};
  study.run();
  const analysis::StudyView view = study.view();

  Snapshot snap;
  const auto cells =
      analysis::fig6_intercontinental(view, geo::Continent::Africa);
  for (const auto& cell : cells) {
    if (cell.summary.count == 0) continue;
    if (cell.src_country == "EG" && cell.dst_continent == geo::Continent::Africa)
      snap.eg_to_af = cell.summary.median;
    if (cell.src_country == "EG" && cell.dst_continent == geo::Continent::Europe)
      snap.eg_to_eu = cell.summary.median;
    if (cell.src_country == "KE" && cell.dst_continent == geo::Continent::Africa)
      snap.ke_to_af = cell.summary.median;
    if (cell.src_country == "ZA" && cell.dst_continent == geo::Continent::Africa)
      snap.za_to_af = cell.summary.median;
  }

  std::vector<double> bh_transit;
  for (const measure::TraceRef& trace : study.sc_dataset().traces) {
    if (!trace.completed) continue;
    if (trace.probe->country->code != std::string_view{"BH"}) continue;
    if (trace.region->country != std::string_view{"IN"}) continue;
    const auto obs = analysis::classify_interconnect(trace, *view.resolver);
    if (obs.valid && obs.mode != topology::InterconnectMode::Direct &&
        obs.mode != topology::InterconnectMode::DirectIxp) {
      bh_transit.push_back(trace.end_to_end_ms);
    }
  }
  snap.bh_in_transit = util::median(std::move(bh_transit));
  return snap;
}

}  // namespace

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Ablation — remove the regional uplink/gateway hairpins",
      "separates routing policy from geography in Fig. 6a / Fig. 18: the "
      "hairpins, not the cables, cause most of the north-Africa and Gulf "
      "penalties");

  const Snapshot base = snapshot(/*uplinks=*/true);
  const Snapshot flat = snapshot(/*uplinks=*/false);

  util::TextTable table;
  table.set_header({"median RTT", "with hairpins", "without", "delta"});
  const auto row = [&](const std::string& name, double a, double b) {
    table.add_row({name, util::format_double(a, 1) + " ms",
                   util::format_double(b, 1) + " ms",
                   util::format_double(b - a, 1) + " ms"});
  };
  row("EG -> nearest AF DC", base.eg_to_af, flat.eg_to_af);
  row("EG -> nearest EU DC", base.eg_to_eu, flat.eg_to_eu);
  row("KE -> nearest AF DC (control)", base.ke_to_af, flat.ke_to_af);
  row("ZA -> nearest AF DC (control)", base.za_to_af, flat.za_to_af);
  row("BH -> IN, transit paths", base.bh_in_transit, flat.bh_in_transit);
  std::cout << "\n" << table.render();

  std::cout << "\nexpected shape: EG->AF and BH->IN transit drop sharply "
               "without hairpins; the KE/ZA controls barely move.\n";
  return 0;
}

// Ablation: wire the Speedchecker fleet.
//
// §4.2 attributes the platform gap of Fig. 5 to Atlas's wired last-mile. If
// that attribution is right, forcing every Speedchecker probe onto wired
// access must collapse the gap in EU/NA/AS (the residual is deployment
// geography, which this knob does not touch).

#include <iostream>

#include "common.hpp"

namespace {

struct Snapshot {
  double eu_diff = 0.0;  // median quantile-matched SC - Atlas difference
  double as_diff = 0.0;
  double na_diff = 0.0;
  double global_lastmile_ms = 0.0;
};

Snapshot snapshot(bool wired) {
  using namespace cloudrtt;
  core::StudyConfig config;
  config.sc_probes = 4000;
  config.atlas_probes = 1200;
  config.sc_campaign.days = 6;
  config.sc_campaign.daily_budget = 9000;
  config.atlas_campaign.days = 5;
  config.atlas_campaign.daily_budget = 2500;
  if (wired) config.sc_access_override = lastmile::AccessTech::Wired;
  core::Study study{config};
  study.run();
  const analysis::StudyView view = study.view();

  Snapshot snap;
  for (const auto& series : analysis::fig5_platform_diff(view)) {
    const double median = util::median(series.values);
    if (series.label == "EU") snap.eu_diff = median;
    if (series.label == "AS") snap.as_diff = median;
    if (series.label == "NA") snap.na_diff = median;
  }
  const auto stats = analysis::lastmile_stats(view, false);
  // With the override active every SC probe classifies as wired/home-less,
  // so pool whichever categories have data.
  std::vector<double> pooled;
  for (const analysis::LastMileCategory c :
       {analysis::LastMileCategory::HomeUsrIsp, analysis::LastMileCategory::Cell}) {
    const auto& v = stats.absolute(c, analysis::kGlobalIndex);
    pooled.insert(pooled.end(), v.begin(), v.end());
  }
  snap.global_lastmile_ms = util::median(std::move(pooled));
  return snap;
}

}  // namespace

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Ablation — wire the Speedchecker fleet",
      "validates §4.2: the Fig. 5 platform gap is the wireless last-mile; "
      "with SC wired, the EU/NA/AS differences collapse towards zero");

  const Snapshot wireless = snapshot(/*wired=*/false);
  const Snapshot wired = snapshot(/*wired=*/true);

  util::TextTable table;
  table.set_header({"metric", "SC wireless", "SC wired", "delta"});
  const auto row = [&](const std::string& name, double a, double b) {
    table.add_row({name, util::format_double(a, 1) + " ms",
                   util::format_double(b, 1) + " ms",
                   util::format_double(b - a, 1) + " ms"});
  };
  row("EU median SC-Atlas diff (Fig. 5)", wireless.eu_diff, wired.eu_diff);
  row("AS median SC-Atlas diff", wireless.as_diff, wired.as_diff);
  row("NA median SC-Atlas diff", wireless.na_diff, wired.na_diff);
  row("global SC last-mile median", wireless.global_lastmile_ms,
      wired.global_lastmile_ms);
  std::cout << "\n" << table.render();

  std::cout << "\nexpected shape: the ~10-20 ms platform differences drop to "
               "a few ms once the fleets share a wired last-mile.\n";
  return 0;
}

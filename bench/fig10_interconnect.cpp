// Fig. 10 — share of AS-level interconnection types (direct / 1 AS / 2+ AS)
// per provider, classified from traceroutes with IXPs removed (§6.1).

#include <iostream>

#include "common.hpp"

int main() {
  using namespace cloudrtt;
  bench::print_header(
      "Fig. 10 — ISP-cloud interconnection types per provider",
      "big-3 majority direct (>50%); DO/IBM lean on single-carrier private "
      "peering; BABA/LIN/VLTR/ORCL mostly public (2+ AS)");

  const auto rows =
      analysis::fig10_interconnect_share(bench::shared_study().view());

  util::TextTable table;
  table.set_header({"provider", "direct", "1 AS", "2+ AS", "paths", "direct bar"});
  for (const auto& row : rows) {
    table.add_row({std::string{row.ticker}, bench::pct(row.direct_pct),
                   bench::pct(row.one_as_pct), bench::pct(row.multi_as_pct),
                   std::to_string(row.paths),
                   util::bar(row.direct_pct, 100.0, 20)});
  }
  std::cout << "\n" << table.render();
  std::cout << "\n(direct includes peering across IXP fabrics — IXP hops are "
               "tagged via the CAIDA-style dataset and removed)\n";
  return 0;
}

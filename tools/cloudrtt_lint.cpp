// cloudrtt-lint — determinism & contract static analysis over the tree.
//
//   cloudrtt-lint --root .                      # lint src/ tools/ tests/ ...
//   cloudrtt-lint --root . --json lint.json     # machine-readable findings
//   cloudrtt-lint --root . --dump-symbols       # harvested unordered names
//
// Exit code 0 when every finding carries a justified lint:allow suppression,
// 1 when any active finding remains, 2 on usage/IO errors. See src/lint/.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;

/// The directories of the repository the lint walks, in scan order.
constexpr std::string_view kRoots[] = {"src", "tools", "tests", "bench",
                                       "examples"};

[[nodiscard]] bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  cloudrtt::util::ArgParser args{
      "cloudrtt-lint",
      "determinism & contract static analysis (rules: unordered-iter, "
      "nondeterminism, raw-assert, header-hygiene, mutable-member, "
      "local-static)"};
  args.add_option("root", ".", "repository root to scan");
  args.add_option("json", "", "also write the findings as JSON to this file");
  args.add_flag("show-suppressed", "list suppressed findings in the report");
  args.add_flag("dump-symbols", "print harvested unordered symbols and exit");
  if (!args.parse(argc, argv)) return 2;

  const fs::path root{args.get("root")};
  // Deterministic scan order: collect, then sort by generic path string.
  std::vector<fs::path> files;
  for (const std::string_view dir : kRoots) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::exists(base, ec)) continue;
    for (fs::recursive_directory_iterator it{base, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "cloudrtt-lint: nothing to scan under " << root << "\n";
    return 2;
  }

  cloudrtt::lint::Linter linter;
  for (const fs::path& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      std::cerr << "cloudrtt-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    linter.add(fs::relative(file, root).generic_string(), content.str());
  }

  if (args.get_flag("dump-symbols")) {
    (void)linter.run();
    // lint:allow(unordered-iter): returns a sorted std::vector
    for (const std::string& symbol : linter.unordered_symbols()) {
      std::cout << symbol << "\n";
    }
    return 0;
  }

  const std::vector<cloudrtt::lint::Finding> findings = linter.run();
  const cloudrtt::lint::Summary summary =
      cloudrtt::lint::summarize(findings, files.size());
  cloudrtt::lint::write_text_report(std::cout, findings, summary,
                                    args.get_flag("show-suppressed"));

  if (const std::string& json_path = args.get("json"); !json_path.empty()) {
    std::ofstream out{json_path};
    if (!out) {
      std::cerr << "cloudrtt-lint: cannot write " << json_path << "\n";
      return 2;
    }
    cloudrtt::lint::write_json_report(out, findings, summary);
  }
  return summary.clean() ? 0 : 1;
}

// cloudrtt-lint — determinism, concurrency & hot-path static analysis.
//
//   cloudrtt-lint --root .                      # lint src/ tools/ tests/ ...
//   cloudrtt-lint --root . --json lint.json     # machine-readable findings
//   cloudrtt-lint --root . --sarif lint.sarif   # SARIF 2.1.0 for CI upload
//   cloudrtt-lint --root . --baseline lint-baseline.json
//   cloudrtt-lint --root . --write-baseline lint-baseline.json
//   cloudrtt-lint --root . --index-cache .lint-cache/index.json
//   cloudrtt-lint --list-rules                  # rule keys + summaries
//   cloudrtt-lint --root . --dump-symbols       # harvested unordered names
//
// Exit code 0 when every finding is suppressed or baselined, 1 when any
// active finding remains, 3 on usage/IO errors (matching bench_compare's
// convention). The SARIF report is written before the nonzero exit so CI can
// upload it from a failing job. See src/lint/.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/lint.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 3;

/// The directories of the repository the lint walks, in scan order.
constexpr std::string_view kRoots[] = {"src", "tools", "tests", "bench",
                                       "examples"};

[[nodiscard]] bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

[[nodiscard]] bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream content;
  content << in.rdbuf();
  out = content.str();
  return true;
}

[[nodiscard]] bool write_file(const std::string& path,
                              const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  out << content;
  return bool{out};
}

}  // namespace

int main(int argc, char** argv) {
  cloudrtt::util::ArgParser args{
      "cloudrtt-lint",
      "determinism, concurrency & hot-path static analysis "
      "(--list-rules for the rule families)"};
  args.add_option("root", ".", "repository root to scan");
  args.add_option("json", "", "also write the findings as JSON to this file");
  args.add_option("sarif", "", "also write a SARIF 2.1.0 report to this file");
  args.add_option("baseline", "",
                  "checked-in baseline file; matched findings don't fail");
  args.add_option("write-baseline", "",
                  "write the current unsuppressed findings as a baseline "
                  "and exit 0");
  args.add_option("index-cache", "",
                  "symbol-index cache file, keyed on content hashes; read "
                  "if present, rewritten after the run");
  args.add_flag("list-rules", "print rule keys + summaries and exit");
  args.add_flag("show-suppressed", "list suppressed findings in the report");
  args.add_flag("dump-symbols", "print harvested unordered symbols and exit");
  if (!args.parse(argc, argv)) return kExitUsage;

  if (args.get_flag("list-rules")) {
    for (const cloudrtt::lint::Rule rule : cloudrtt::lint::kAllRules) {
      std::cout << cloudrtt::lint::rule_key(rule) << "\n    "
                << cloudrtt::lint::rule_summary(rule) << "\n";
    }
    return kExitClean;
  }

  const fs::path root{args.get("root")};
  // Deterministic scan order: collect, then sort by generic path string.
  std::vector<fs::path> files;
  for (const std::string_view dir : kRoots) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::exists(base, ec)) continue;
    for (fs::recursive_directory_iterator it{base, ec}, end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "cloudrtt-lint: nothing to scan under " << root << "\n";
    return kExitUsage;
  }

  cloudrtt::lint::Linter linter;
  const std::string cache_path = args.get("index-cache");
  if (!cache_path.empty()) {
    std::string cached;
    if (read_file(cache_path, cached) && !linter.load_index_cache(cached)) {
      std::cerr << "cloudrtt-lint: ignoring malformed index cache "
                << cache_path << "\n";
    }
  }
  for (const fs::path& file : files) {
    std::string content;
    if (!read_file(file, content)) {
      std::cerr << "cloudrtt-lint: cannot read " << file << "\n";
      return kExitUsage;
    }
    linter.add(fs::relative(file, root).generic_string(),
               std::move(content));
  }

  if (args.get_flag("dump-symbols")) {
    (void)linter.run();
    // lint:allow(unordered-iter): returns a sorted std::vector
    for (const std::string& symbol : linter.unordered_symbols()) {
      std::cout << symbol << "\n";
    }
    return kExitClean;
  }

  std::vector<cloudrtt::lint::Finding> findings = linter.run();

  if (!cache_path.empty() &&
      !write_file(cache_path, linter.write_index_cache())) {
    std::cerr << "cloudrtt-lint: cannot write index cache " << cache_path
              << "\n";
  }

  if (const std::string out_path = args.get("write-baseline");
      !out_path.empty()) {
    if (!write_file(out_path,
                    cloudrtt::lint::write_baseline_json(findings))) {
      std::cerr << "cloudrtt-lint: cannot write baseline " << out_path
                << "\n";
      return kExitUsage;
    }
    std::size_t parked = 0;
    for (const cloudrtt::lint::Finding& finding : findings) {
      if (!finding.suppressed) ++parked;
    }
    std::cout << "cloudrtt-lint: wrote " << parked << " baseline entr"
              << (parked == 1 ? "y" : "ies") << " to " << out_path << "\n";
    return kExitClean;
  }

  if (const std::string baseline_path = args.get("baseline");
      !baseline_path.empty()) {
    std::string text;
    cloudrtt::lint::Baseline baseline;
    if (!read_file(baseline_path, text) ||
        !cloudrtt::lint::parse_baseline_json(text, baseline)) {
      std::cerr << "cloudrtt-lint: cannot parse baseline " << baseline_path
                << "\n";
      return kExitUsage;
    }
    for (const std::string& warning :
         cloudrtt::lint::apply_baseline(baseline, findings)) {
      std::cerr << "cloudrtt-lint: " << warning << "\n";
    }
  }

  const cloudrtt::lint::Summary summary = cloudrtt::lint::summarize(
      findings, files.size(), linter.allow_uses());
  cloudrtt::lint::write_text_report(std::cout, findings, summary,
                                    args.get_flag("show-suppressed"));

  if (const std::string& json_path = args.get("json"); !json_path.empty()) {
    std::ofstream out{json_path};
    if (!out) {
      std::cerr << "cloudrtt-lint: cannot write " << json_path << "\n";
      return kExitUsage;
    }
    cloudrtt::lint::write_json_report(out, findings, summary);
  }
  if (const std::string& sarif_path = args.get("sarif");
      !sarif_path.empty()) {
    std::ofstream out{sarif_path};
    if (!out) {
      std::cerr << "cloudrtt-lint: cannot write " << sarif_path << "\n";
      return kExitUsage;
    }
    cloudrtt::lint::write_sarif_report(out, findings);
  }
  return summary.clean() ? kExitClean : kExitFindings;
}

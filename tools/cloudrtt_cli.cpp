// cloudrtt — command-line front end to the library.
//
//   cloudrtt world   [--seed N]                     topology inventory
//   cloudrtt resolve <ip> [--seed N]                IP -> ASN through the pipeline
//   cloudrtt trace <country> <provider> [...]       one annotated traceroute
//   cloudrtt study   [--sc-probes N --days D ...]   full campaign + artefacts
//   cloudrtt run     [--scale paper ...]            streaming study, O(day) RAM

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/resolve.hpp"
#include "analysis/trace_analysis.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "core/scale.hpp"
#include "core/study.hpp"
#include "fault/plan.hpp"
#include "measure/engine.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "obs/trace_events.hpp"
#include "probes/fleet.hpp"
#include "store/io_env.hpp"
#include "store/salvage.hpp"
#include "topology/world.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace {

using namespace cloudrtt;

/// Resolve the study's log level: --quiet wins, then an explicit --log-level,
/// then the CLOUDRTT_LOG environment variable, then info (the study narrates
/// per-day progress by default).
void init_study_logging(const util::ArgParser& args) {
  obs::Level level = obs::Level::Info;
  if (const char* env = std::getenv("CLOUDRTT_LOG")) {
    if (const auto parsed = obs::level_from_string(env)) level = *parsed;
  }
  const std::string& flag = args.get("log-level");
  if (!flag.empty()) {
    if (const auto parsed = obs::level_from_string(flag)) {
      level = *parsed;
    } else {
      std::cerr << "unknown log level " << flag << ", keeping "
                << obs::to_string(level) << "\n";
    }
  }
  if (args.get_flag("quiet")) level = obs::Level::Warn;
  obs::Logger::global().set_level(level);
}

/// End-of-run operational summary: every registered counter, the latency
/// histograms, and the phase-timing tree.
void print_observability_summary() {
  const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
  util::TextTable counters;
  counters.set_header({"counter", "value"});
  for (const auto& entry : snap.counters) {
    counters.add_row({entry.name,
                      std::to_string(static_cast<std::uint64_t>(entry.value))});
  }
  std::cout << "\n-- metrics --\n" << counters.render();
  if (!snap.histograms.empty()) {
    util::TextTable hists;
    hists.set_header({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& entry : snap.histograms) {
      hists.add_row({entry.name, std::to_string(entry.count),
                     util::format_double(entry.mean, 2),
                     util::format_double(entry.p50, 2),
                     util::format_double(entry.p90, 2),
                     util::format_double(entry.p99, 2),
                     util::format_double(entry.max, 2)});
    }
    std::cout << hists.render();
  }
  std::cout << "\n-- phase timings --\n";
  obs::SpanTracker::global().write_text(std::cout);
}

/// One-screen digest of what the fault schedule did to the campaign: how
/// many submissions failed, were retried, exhausted their retries, and how
/// much budget outages burned. Reads the same registry the JSON export does.
void print_fault_summary() {
  const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
  util::TextTable table;
  table.set_header({"fault counter", "value"});
  bool any = false;
  for (const auto& entry : snap.counters) {
    if (entry.name.find("fault") == std::string::npos &&
        entry.name != "campaign.tasks_delivered_total" &&
        entry.name != "campaign.empty_days_total") {
      continue;
    }
    table.add_row({entry.name,
                   std::to_string(static_cast<std::uint64_t>(entry.value))});
    any = true;
  }
  if (any) std::cout << "\n-- fault injection --\n" << table.render();
}

int cmd_world(int argc, const char* const* argv) {
  util::ArgParser args{"cloudrtt world", "print the synthetic-Internet inventory"};
  args.add_option("seed", "42", "world seed");
  if (!args.parse(argc, argv)) return 1;

  const topology::World world{
      topology::WorldConfig{static_cast<std::uint64_t>(args.get_int("seed"))}};
  std::size_t isps = world.isps().size();
  std::size_t named = 0;
  for (const topology::IspNetwork& isp : world.isps()) {
    if (isp.named) ++named;
  }
  util::TextTable table;
  table.set_header({"component", "count"});
  table.add_row({"countries", std::to_string(world.countries().all().size())});
  table.add_row({"backbone nodes", std::to_string(world.backbone().node_count())});
  table.add_row({"backbone links", std::to_string(world.backbone().edge_count())});
  table.add_row({"access ISPs", std::to_string(isps) + " (" +
                                    std::to_string(named) + " from the paper)"});
  table.add_row({"tier-1/regional carriers",
                 std::to_string(topology::tier1_carriers().size())});
  table.add_row({"IXPs", std::to_string(topology::known_ixps().size())});
  table.add_row({"registered ASes", std::to_string(world.registry().size())});
  table.add_row({"cloud regions", std::to_string(world.endpoints().size())});
  table.add_row({"announced prefixes (RIB)", std::to_string(world.rib_dump().size())});
  table.add_row({"whois-only prefixes", std::to_string(world.whois_entries().size())});
  std::cout << table.render();
  return 0;
}

int cmd_resolve(int argc, const char* const* argv) {
  util::ArgParser args{"cloudrtt resolve", "resolve an IPv4 address to its AS"};
  args.add_positional("ip", "dotted-quad IPv4 address");
  args.add_option("seed", "42", "world seed");
  if (!args.parse(argc, argv)) return 1;

  const auto addr = net::Ipv4Address::parse(args.get("ip"));
  if (!addr) {
    std::cerr << "not a valid IPv4 address: " << args.get("ip") << "\n";
    return 1;
  }
  const topology::World world{
      topology::WorldConfig{static_cast<std::uint64_t>(args.get_int("seed"))}};
  const analysis::IpToAsn resolver = analysis::IpToAsn::from_world(world);
  if (net::is_private(*addr)) {
    std::cout << addr->to_string() << ": private address space ("
              << (net::is_cgn(*addr) ? "CGN 100.64/10" : "RFC1918/loopback/LL")
              << ")\n";
    return 0;
  }
  const auto res = resolver.resolve(*addr);
  if (!res) {
    std::cout << addr->to_string() << ": no covering prefix in RIB or whois\n";
    return 0;
  }
  const topology::AsInfo& info = world.registry().at(res->asn);
  std::cout << addr->to_string() << ": AS" << res->asn << " (" << info.name << ")"
            << (res->is_ixp ? " [IXP peering LAN]" : "")
            << (res->source == analysis::ResolutionSource::Whois
                    ? " [whois fallback]"
                    : " [RIB]")
            << "\n";
  return 0;
}

int cmd_trace(int argc, const char* const* argv) {
  util::ArgParser args{"cloudrtt trace",
                       "run one annotated traceroute from a country to a provider"};
  args.add_positional("country", "probe country (ISO code)", "DE");
  args.add_positional("provider", "provider ticker (AMZN/GCP/MSFT/...)", "AMZN");
  args.add_option("seed", "42", "world seed");
  args.add_option("access", "wifi", "probe access: wifi | cell | wired");
  if (!args.parse(argc, argv)) return 1;

  const auto provider = cloud::provider_from_ticker(args.get("provider"));
  if (!provider) {
    std::cerr << "unknown provider ticker " << args.get("provider") << "\n";
    return 1;
  }
  topology::World world{
      topology::WorldConfig{static_cast<std::uint64_t>(args.get_int("seed"))}};
  if (world.countries().find(args.get("country")) == nullptr) {
    std::cerr << "unknown country " << args.get("country") << "\n";
    return 1;
  }
  lastmile::AccessTech access = lastmile::AccessTech::HomeWifi;
  if (args.get("access") == "cell") access = lastmile::AccessTech::Cellular;
  if (args.get("access") == "wired") access = lastmile::AccessTech::Wired;

  probes::FleetConfig fleet_config{probes::Platform::Speedchecker, 15000};
  fleet_config.access_override = access;
  probes::ProbeFleet fleet{world, fleet_config};
  const auto panel = fleet.in_country(args.get("country"));
  if (panel.empty()) {
    std::cerr << "no probes available in " << args.get("country") << "\n";
    return 1;
  }
  const probes::Probe& probe = *panel.front();

  const topology::CloudEndpoint* endpoint = nullptr;
  double best = 1e18;
  for (const topology::CloudEndpoint& candidate : world.endpoints()) {
    if (candidate.region->provider != *provider) continue;
    const double km = geo::haversine_km(probe.location, candidate.region->location);
    if (km < best) {
      best = km;
      endpoint = &candidate;
    }
  }

  measure::Engine engine{world};
  const analysis::IpToAsn resolver = analysis::IpToAsn::from_world(world);
  util::Rng rng = world.fork_rng("cli-trace");
  const measure::TraceRecord trace = engine.traceroute(probe, *endpoint, 0, rng);

  std::cout << "traceroute to " << endpoint->vm_ip.to_string() << " ("
            << endpoint->region->region_name << ", " << endpoint->region->city
            << "), from " << probe.city->name << " via " << probe.isp->name
            << " [" << to_string(probe.access) << "]\n";
  for (const measure::HopRecord& hop : trace.hops) {
    std::cout << " " << (hop.ttl < 10 ? " " : "") << static_cast<int>(hop.ttl)
              << "  ";
    if (!hop.responded) {
      std::cout << "* * *\n";
      continue;
    }
    std::cout << hop.ip.to_string() << "  "
              << util::format_double(hop.rtt_ms, 2) << " ms";
    if (const auto res = resolver.resolve(hop.ip)) {
      std::cout << "  [AS" << res->asn << " " << world.registry().at(res->asn).name
                << "]";
    } else if (net::is_private(hop.ip)) {
      std::cout << "  [private]";
    }
    std::cout << "\n";
  }
  const auto obs = analysis::classify_interconnect(trace, resolver);
  if (obs.valid) {
    std::cout << "interconnection: " << topology::to_string(obs.mode) << "\n";
  }
  return 0;
}

int cmd_study(int argc, const char* const* argv,
              const char* program = "cloudrtt study",
              const char* description =
                  "run the full measurement campaign and write artefacts") {
  util::ArgParser args{program, description};
  args.add_option("seed", "42", "study seed");
  args.add_option("scale", "", "fleet scale: default | paper (115k/8.5k "
                               "probes) | NxM probe counts | float multiplier "
                               "(default: CLOUDRTT_SCALE or default)");
  args.add_option("sc-probes", "", "Speedchecker fleet size (overrides "
                                   "--scale; default 6000)");
  args.add_option("atlas-probes", "", "RIPE Atlas fleet size (overrides "
                                      "--scale; default 1500)");
  args.add_option("days", "10", "campaign days");
  args.add_option("budget", "", "daily task budget (overrides --scale; "
                                "default 15000)");
  args.add_option("threads", "1", "worker threads for campaign execution "
                                  "(any value yields identical datasets)");
  args.add_option("out", "cloudrtt-out", "output directory");
  args.add_option("log-level", "", "trace|debug|info|warn|error|off "
                                   "(default: CLOUDRTT_LOG or info)");
  args.add_option("metrics-out", "", "write the metrics registry + phase "
                                     "timings as JSON to this file");
  args.add_option("trace-out", "", "write a Chrome-trace JSON (open in "
                                   "chrome://tracing or Perfetto) of phase "
                                   "and executor spans to this file");
  args.add_flag("progress", "print a per-day progress line (days/sec, "
                            "tasks/sec, ETA, worker busy %) to stderr");
  args.add_option("fault-profile", "none",
                  "fault-injection intensity: none | mild | harsh");
  args.add_option("io-fault-profile", "none",
                  "disk-fault intensity for the streaming store (EIO, torn "
                  "appends, lying fsyncs): none | mild | harsh; never "
                  "changes the dataset bits");
  args.add_option("fault-seed", "1337", "fault-schedule seed");
  args.add_option("checkpoint-dir", "", "snapshot the campaign after every "
                                        "day into this directory (format=3 "
                                        "streaming store)");
  args.add_option("spill-dir", "", "stream shard files into this directory "
                                   "instead of --checkpoint-dir");
  args.add_flag("resume", "resume from --checkpoint-dir if a checkpoint "
                          "exists, salvaging any crash-torn shard tail");
  args.add_flag("stream", "stream each day to the store and drop it from "
                          "memory (needs --checkpoint-dir; RAM stays O(day); "
                          "CSV export and report.json are skipped — the "
                          "store is the dataset)");
  args.add_flag("fsck", "validate the checkpoint store in --checkpoint-dir "
                        "and exit (0 = healthy)");
  args.add_option("stop-after-day", "0", "abandon each campaign once this many "
                                         "days completed (0 = run to the end); "
                                         "simulates a killed driver");
  args.add_flag("quiet", "only warnings and errors (log level warn)");
  args.add_flag("no-atlas", "skip the Atlas campaign");
  args.add_flag("no-export", "skip CSV export (report.json only)");
  args.add_flag("dataset-hash", "print the FNV-1a hash of the full exported "
                                "dataset (reproducibility gate)");
  if (!args.parse(argc, argv)) return 1;
  init_study_logging(args);

  core::StudyConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ScaleSpec scale = core::resolve_scale(args.get("scale"));
  if (!scale.ok()) {
    std::cerr << scale.error << "\n";
    return 1;
  }
  core::apply_scale(config, scale);
  if (!args.get("sc-probes").empty()) {
    config.sc_probes = static_cast<std::size_t>(args.get_int("sc-probes"));
  }
  if (!args.get("atlas-probes").empty()) {
    config.atlas_probes =
        static_cast<std::size_t>(args.get_int("atlas-probes"));
  }
  config.include_atlas = !args.get_flag("no-atlas");
  config.sc_campaign.days = static_cast<std::uint32_t>(args.get_int("days"));
  if (!args.get("budget").empty()) {
    config.sc_campaign.daily_budget =
        static_cast<std::size_t>(args.get_int("budget"));
  }
  if (const long threads = args.get_int("threads"); threads > 0) {
    config.threads = static_cast<unsigned>(threads);
  }

  const auto profile = fault::profile_from_string(args.get("fault-profile"));
  if (!profile) {
    std::cerr << "unknown fault profile '" << args.get("fault-profile")
              << "' (expected none | mild | harsh)\n";
    return 1;
  }
  config.fault_profile = *profile;
  const auto io_profile =
      fault::profile_from_string(args.get("io-fault-profile"));
  if (!io_profile) {
    std::cerr << "unknown io fault profile '" << args.get("io-fault-profile")
              << "' (expected none | mild | harsh)\n";
    return 1;
  }
  config.io_fault_profile = *io_profile;
  config.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));

  core::RunControl control;
  control.checkpoint_dir = args.get("checkpoint-dir");
  control.spill_dir = args.get("spill-dir");
  control.resume = args.get_flag("resume");
  control.stream = args.get_flag("stream");
  if (control.resume && control.checkpoint_dir.empty()) {
    std::cerr << "--resume needs --checkpoint-dir\n";
    return 1;
  }
  if (control.stream && control.checkpoint_dir.empty()) {
    std::cerr << "--stream needs --checkpoint-dir (the store is the only "
                 "copy of the rows)\n";
    return 1;
  }

  if (args.get_flag("fsck")) {
    // Offline integrity check: no world build, no campaign — read the store
    // artefacts for both platforms and report. Exit 0 only when every store
    // present is healthy and at least one was found.
    if (control.checkpoint_dir.empty()) {
      std::cerr << "--fsck needs --checkpoint-dir\n";
      return 1;
    }
    const std::filesystem::path store_dir =
        control.spill_dir.empty() ? control.checkpoint_dir : control.spill_dir;
    store::IoEnv io;
    bool found = false;
    bool healthy = true;
    for (const std::string_view platform : {"speedchecker", "atlas"}) {
      if (store::manifest_format(store_dir, platform, io) == 0) continue;
      found = true;
      const store::FsckReport report = store::fsck(store_dir, platform, io);
      std::cout << report.render(platform) << "\n";
      healthy &= report.healthy();
    }
    if (!found) {
      std::cerr << "no checkpoint store found in " << store_dir.string()
                << "\n";
      return 1;
    }
    return healthy ? 0 : 1;
  }
  if (const long stop = args.get_int("stop-after-day"); stop > 0) {
    control.stop_after_day = static_cast<std::uint32_t>(stop);
  }

  if (!args.get("trace-out").empty()) {
    obs::TraceRecorder::global().enable();
    obs::TraceRecorder::global().name_this_thread("main");
  }
  if (args.get_flag("progress")) obs::Progress::global().enable();

  // Writes --metrics-out and --trace-out if requested. Shared between the
  // success path and the abort path: a failed campaign still leaves a story
  // in the metrics registry and the phase tree, so flush it either way.
  const auto flush_observability = [&args]() -> bool {
    bool ok = true;
    if (const std::string& metrics_path = args.get("metrics-out");
        !metrics_path.empty()) {
      std::ofstream metrics{metrics_path};
      if (metrics) {
        obs::write_observability_json(metrics);
        std::cout << "metrics written to " << metrics_path << "\n";
      } else {
        std::cerr << "cannot write metrics to " << metrics_path << "\n";
        ok = false;
      }
    }
    if (const std::string& trace_path = args.get("trace-out");
        !trace_path.empty()) {
      std::ofstream trace{trace_path};
      if (trace) {
        obs::TraceRecorder::global().write_json(trace);
        std::cout << "trace written to " << trace_path
                  << " (load in chrome://tracing)\n";
      } else {
        std::cerr << "cannot write trace to " << trace_path << "\n";
        ok = false;
      }
    }
    return ok;
  };

  std::cout << "running study: scale " << scale.name << " ("
            << config.sc_probes << " SC / " << config.atlas_probes
            << " Atlas probes), " << config.sc_campaign.days
            << " days, seed " << config.seed;
  if (config.threads > 1) {
    std::cout << ", " << config.threads << " threads";
  }
  if (config.fault_profile != fault::FaultProfile::None) {
    std::cout << ", fault profile " << to_string(config.fault_profile);
  }
  if (control.stream) std::cout << ", streaming";
  std::cout << "\n";
  core::Study study{config};
  try {
    study.run(control);
  } catch (const std::runtime_error& error) {
    std::cerr << "study failed: " << error.what() << "\n";
    flush_observability();
    if (config.fault_profile != fault::FaultProfile::None) {
      print_fault_summary();
    }
    if (!args.get_flag("quiet")) print_observability_summary();
    return 1;
  }
  const std::filesystem::path store_dir =
      control.spill_dir.empty() ? std::filesystem::path{control.checkpoint_dir}
                                : std::filesystem::path{control.spill_dir};
  if (control.stream && study.completed()) {
    // The rows live only in the store; report what is durably on disk.
    store::IoEnv io;
    std::uint64_t rows = 0;
    for (const std::string_view platform : {"speedchecker", "atlas"}) {
      if (platform == "atlas" && !config.include_atlas) continue;
      const store::OpenResult opened =
          store::open_store_structural(store_dir, platform, io,
                                       /*repair=*/false);
      if (opened.ok()) rows += opened.durable_rows;
    }
    std::cout << "streamed " << rows << " task rows (scale " << scale.name
              << ", " << config.threads
              << (config.threads == 1 ? " thread" : " threads")
              << ") to " << store_dir.string() << "\n";
  } else {
    std::cout << "collected " << study.sc_dataset().pings.size()
              << " pings / " << study.sc_dataset().traces.size()
              << " traceroutes (scale " << scale.name << ", "
              << config.threads
              << (config.threads == 1 ? " thread" : " threads") << ")\n";
  }

  if (args.get_flag("dataset-hash")) {
    // Two same-seed runs must print identical lines; the determinism CI gate
    // diffs this output across a double run and a kill+resume cycle. The
    // streamed flavour hashes the store directly and is bit-identical to the
    // in-memory hash by construction.
    std::uint64_t sc = 0;
    std::uint64_t atlas = 0;
    if (control.stream) {
      store::IoEnv io;
      const core::StreamedHashResult sc_hash = core::streamed_dataset_hash(
          store_dir, "speedchecker", io, &study.sc_fleet(),
          config.include_atlas ? &study.atlas_fleet() : nullptr);
      if (!sc_hash.ok()) {
        std::cerr << "dataset-hash failed: " << sc_hash.error << "\n";
        return 1;
      }
      sc = sc_hash.hash;
      if (config.include_atlas) {
        const core::StreamedHashResult atlas_hash =
            core::streamed_dataset_hash(store_dir, "atlas", io,
                                        &study.sc_fleet(),
                                        &study.atlas_fleet());
        if (!atlas_hash.ok()) {
          std::cerr << "dataset-hash failed: " << atlas_hash.error << "\n";
          return 1;
        }
        atlas = atlas_hash.hash;
      }
    } else {
      sc = core::dataset_hash(study.sc_dataset());
      if (config.include_atlas) atlas = core::dataset_hash(study.atlas_dataset());
    }
    std::uint64_t state = sc ^ (atlas * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t combined = util::splitmix64(state);
    std::cout << "dataset-hash sc=" << core::format_dataset_hash(sc)
              << " atlas=" << core::format_dataset_hash(atlas)
              << " combined=" << core::format_dataset_hash(combined) << "\n";
  }

  if (!study.completed()) {
    // --stop-after-day left the campaign mid-way; there is no full dataset
    // to report on. The checkpoint (if any) is the artefact.
    std::cout << "study stopped early; resume from --checkpoint-dir to "
                 "finish\n";
    flush_observability();
    return 0;
  }

  if (control.stream) {
    // No rows in memory: the store *is* the artefact set. Export/report need
    // a materialised dataset, so a streamed run stops here.
    std::cout << "store written to " << store_dir.string() << "/\n";
  } else {
    const std::filesystem::path out_dir{args.get("out")};
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "cannot create " << out_dir << ": " << ec.message() << "\n";
      return 1;
    }
    if (!args.get_flag("no-export")) {
      std::ofstream pings{out_dir / "pings.csv"};
      core::export_pings_csv(pings, study.sc_dataset());
      std::ofstream traces{out_dir / "traceroutes.csv"};
      core::export_traces_csv(traces, study.sc_dataset());
    }
    {
      obs::Span phase = obs::span("core.report");
      std::ofstream report{out_dir / "report.json"};
      core::write_full_report(report, study.view());
    }
    std::cout << "artefacts written to " << out_dir.string() << "/\n";
  }

  if (!flush_observability()) return 1;
  if (config.fault_profile != fault::FaultProfile::None) print_fault_summary();
  if (!args.get_flag("quiet")) print_observability_summary();
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  // `cloudrtt run` — the streaming-first spelling of `study`: rows spill to
  // the store day by day (RAM stays O(one day's columns), which is what lets
  // `--scale paper` run the 115k-probe fleet), the store is the artefact,
  // and the dataset hash is printed from the streamed scan. Defaults are
  // prepended so later (user) arguments override them.
  std::vector<const char*> forwarded;
  forwarded.push_back("cloudrtt run");
  forwarded.push_back("--stream");
  forwarded.push_back("--checkpoint-dir");
  forwarded.push_back("cloudrtt-out/store");
  forwarded.push_back("--dataset-hash");
  for (int i = 1; i < argc; ++i) forwarded.push_back(argv[i]);
  return cmd_study(static_cast<int>(forwarded.size()), forwarded.data(),
                   "cloudrtt run",
                   "run the campaign streaming each day to the store "
                   "(study --stream with a default store dir)");
}

void print_usage() {
  std::cout <<
      "cloudrtt — synthetic cloud-connectivity measurement toolkit\n\n"
      "subcommands:\n"
      "  world    print the synthetic-Internet inventory\n"
      "  resolve  resolve an IPv4 address through the analysis pipeline\n"
      "  trace    run one annotated traceroute\n"
      "  study    run the full campaign and export artefacts\n"
      "  run      streaming study: O(day) memory, --scale paper capable\n\n"
      "run `cloudrtt <subcommand> --help` for details.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string_view command = argv[1];
  // Shift argv so subcommand parsers see their own name at index 0.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "world") return cmd_world(sub_argc, sub_argv);
  if (command == "resolve") return cmd_resolve(sub_argc, sub_argv);
  if (command == "trace") return cmd_trace(sub_argc, sub_argv);
  if (command == "study") return cmd_study(sub_argc, sub_argv);
  if (command == "run") return cmd_run(sub_argc, sub_argv);
  if (command == "--help" || command == "-h") {
    print_usage();
    return 0;
  }
  std::cerr << "unknown subcommand: " << command << "\n";
  print_usage();
  return 1;
}

// bench_compare — diff two BENCH_<n>.json performance-trajectory reports.
//
//   bench_compare <baseline.json> <candidate.json> [--max-regress-pct P]
//                 [--warn-only]
//
// Exit codes:
//   0  comparable, no regression (or regression suppressed by --warn-only)
//   1  wall-clock regression beyond the threshold
//   2  dataset-hash drift at identical scale — never suppressed: a faster
//      wrong dataset is not a win
//   3  unreadable or malformed report

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/bench_report.hpp"
#include "util/cli.hpp"

namespace {

using namespace cloudrtt;

[[nodiscard]] std::optional<obs::BenchReport> load_report(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "bench_compare: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  std::optional<obs::BenchReport> report =
      obs::BenchReport::parse(text.str(), &error);
  if (!report) {
    std::cerr << "bench_compare: " << path << ": " << error << "\n";
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args{"bench_compare",
                       "compare two perf_trajectory bench reports"};
  args.add_positional("baseline",
                      "committed BENCH_<n>.json to compare against");
  args.add_positional("candidate", "freshly produced report");
  args.add_option("max-regress-pct", "10",
                  "fail when a section's p50 regresses beyond this percent");
  args.add_flag("warn-only", "report wall-clock regressions without failing "
                             "(dataset-hash drift still fails)");
  if (!args.parse(argc, argv)) return 3;

  const auto baseline = load_report(args.get("baseline"));
  const auto candidate = load_report(args.get("candidate"));
  if (!baseline || !candidate) return 3;

  obs::CompareOptions options;
  // 0 is a meaningful threshold — "any regression fails" — so only reject
  // negatives; everything else overrides the default.
  const long pct = args.get_int("max-regress-pct");
  if (pct < 0) {
    std::cerr << "bench_compare: --max-regress-pct must be >= 0 (0 = fail on "
                 "any regression), got "
              << pct << "\n";
    return 3;
  }
  options.max_regress_pct = static_cast<double>(pct);
  const obs::CompareResult result =
      obs::compare_reports(*baseline, *candidate, options);

  std::cout << "baseline:  bench " << baseline->bench_id << " @ "
            << baseline->git_rev << "\n"
            << "candidate: bench " << candidate->bench_id << " @ "
            << candidate->git_rev << "\n";
  obs::write_compare_text(std::cout, result, options);

  if (result.hash_drift) return 2;
  if (result.wall_clock_regressed() && !args.get_flag("warn-only")) return 1;
  return 0;
}

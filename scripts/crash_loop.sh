#!/usr/bin/env bash
# Crash-loop gate for the streaming store: SIGKILL a checkpointed campaign
# at random points and resume it until it completes. The final dataset hash
# must be bit-identical to an uninterrupted same-seed run — any drift means
# a salvage, replay, or manifest bug — and the surviving store must fsck
# HEALTHY. Runs with mild measurement AND disk faults on, so the kills land
# on degraded stores too.
#
# Usage: crash_loop.sh <cloudrtt-binary> <seed> <threads> [workdir]
set -euo pipefail

CLI=${1:?usage: crash_loop.sh <cloudrtt-binary> <seed> <threads> [workdir]}
SEED=${2:?missing seed}
THREADS=${3:?missing threads}
WORK=${4:-$(mktemp -d)}
MAX_KILLS=${MAX_KILLS:-60}
# The gate is vacuous unless kills actually interrupt runs: completions that
# arrive before MIN_KILLS landed restart the loop on a fresh checkpoint.
MIN_KILLS=${MIN_KILLS:-3}
# SCALE=paper (or NxM / a multiplier) swaps the small fixed fleets for a
# --scale run: the full paper-scale fleet with a truncated campaign, so kills
# land on 115k-probe day batches without the full paper task volume.
SCALE=${SCALE:-}

if [ -n "$SCALE" ]; then
  FLEET_ARGS=(--scale "$SCALE" --no-atlas --days 2 --budget 1500)
else
  FLEET_ARGS=(--sc-probes 500 --atlas-probes 150 --days 3 --budget 1200)
fi
STUDY_ARGS=(study --seed "$SEED" --threads "$THREADS"
  "${FLEET_ARGS[@]}"
  --fault-profile mild --io-fault-profile mild
  --quiet --no-export --dataset-hash)

mkdir -p "$WORK"

base_start=$(date +%s%N)
baseline=$("$CLI" "${STUDY_ARGS[@]}" --out "$WORK/base" | grep '^dataset-hash')
base_ms=$(( ($(date +%s%N) - base_start) / 1000000 ))
[ "$base_ms" -gt 0 ] || base_ms=1
echo "baseline: $baseline (${base_ms}ms)"

ckpt="$WORK/ckpt"
rm -rf "$ckpt"
final=""
kills=0
for attempt in $(seq 1 "$MAX_KILLS"); do
  "$CLI" "${STUDY_ARGS[@]}" --out "$WORK/run" \
    --checkpoint-dir "$ckpt" --resume > "$WORK/run.log" 2>&1 &
  pid=$!
  # Kill at a random point inside the baseline's measured wall time, so the
  # window tracks machine speed: early kills tear world construction and
  # mid-day appends, late ones let an almost-finished resume complete and
  # end the loop (resumes run shorter than the baseline, so completion
  # stays reachable). While the kill quota is unmet, aim at the first
  # two-thirds of the run, where a kill is likelier to land.
  if [ "$kills" -lt "$MIN_KILLS" ]; then
    ms=$((RANDOM % (base_ms * 2 / 3 + 1)))
  else
    ms=$((RANDOM % base_ms))
  fi
  sleep "$((ms / 1000)).$(printf '%03d' $((ms % 1000)))"
  kill -9 "$pid" 2>/dev/null || true
  set +e
  wait "$pid"
  status=$?
  set -e
  if [ "$status" -eq 0 ]; then
    if [ "$kills" -lt "$MIN_KILLS" ]; then
      # Completed before enough kills landed to prove anything: start the
      # crash loop over on a fresh checkpoint.
      rm -rf "$ckpt"
      continue
    fi
    echo "completed after $kills kills"
    final=$(grep '^dataset-hash' "$WORK/run.log")
    break
  elif [ "$status" -ne 137 ]; then
    echo "run $attempt exited with unexpected status $status" >&2
    cat "$WORK/run.log" >&2
    exit 1
  fi
  kills=$((kills + 1))
done

if [ -z "$final" ]; then
  # Every attempt was killed first — finish uninterrupted off the surviving
  # checkpoint so slow machines still converge.
  "$CLI" "${STUDY_ARGS[@]}" --out "$WORK/run" \
    --checkpoint-dir "$ckpt" --resume > "$WORK/run.log" 2>&1
  echo "completed after $kills kills (final run uninterrupted)"
  final=$(grep '^dataset-hash' "$WORK/run.log")
fi

echo "resumed:  $final"
if [ "$baseline" != "$final" ]; then
  echo "FAIL: dataset hash drifted across the crash loop" >&2
  exit 1
fi

"$CLI" study --seed "$SEED" --checkpoint-dir "$ckpt" --fsck
echo "crash-loop gate passed (seed=$SEED threads=$THREADS)"

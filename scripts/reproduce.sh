#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate every
# table/figure harness, and leave the transcripts next to the sources.
#
# Usage: scripts/reproduce.sh [scale]   (scale multiplies probe counts and
# budgets; 1.0 by default, ~4 approaches paper-like densities)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"
export CLOUDRTT_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "done: test_output.txt + bench_output.txt (scale $SCALE)"

#pragma once
// IPv4 address and prefix value types.
//
// The simulator allocates public prefixes to ASes and private addresses to
// home routers / CGN segments; the analysis side then has to re-discover AS
// ownership from raw addresses exactly as the paper does with PyASN — so
// addresses are honest 32-bit values, not handles.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cloudrtt::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// Parse dotted-quad; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  friend constexpr auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// RFC 1918 private space (10/8, 172.16/12, 192.168/16).
[[nodiscard]] constexpr bool is_rfc1918(Ipv4Address addr) {
  const std::uint32_t v = addr.value();
  return (v & 0xff000000u) == 0x0a000000u ||    // 10.0.0.0/8
         (v & 0xfff00000u) == 0xac100000u ||    // 172.16.0.0/12
         (v & 0xffff0000u) == 0xc0a80000u;      // 192.168.0.0/16
}

/// RFC 6598 carrier-grade NAT space (100.64.0.0/10).
[[nodiscard]] constexpr bool is_cgn(Ipv4Address addr) {
  return (addr.value() & 0xffc00000u) == 0x64400000u;
}

/// "Private" in the sense of the paper's home/cell classifier: any address
/// that cannot appear in the public routing table (RFC1918 + CGN + loopback
/// + link-local).
[[nodiscard]] constexpr bool is_private(Ipv4Address addr) {
  const std::uint32_t v = addr.value();
  return is_rfc1918(addr) || is_cgn(addr) ||
         (v & 0xff000000u) == 0x7f000000u ||    // 127.0.0.0/8
         (v & 0xffff0000u) == 0xa9fe0000u;      // 169.254.0.0/16
}

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// Network bits below the mask are zeroed on construction.
  constexpr Ipv4Prefix(Ipv4Address base, std::uint8_t length)
      : base_(Ipv4Address{length == 0 ? 0u : (base.value() & mask_for(length))}),
        length_(length) {}

  [[nodiscard]] constexpr Ipv4Address base() const { return base_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const {
    if (length_ == 0) return true;
    return (addr.value() & mask_for(length_)) == base_.value();
  }

  [[nodiscard]] constexpr std::uint64_t size() const {
    return 1ULL << (32 - length_);
  }

  /// The i-th address of the prefix (i < size()).
  [[nodiscard]] constexpr Ipv4Address address_at(std::uint64_t i) const {
    return Ipv4Address{base_.value() + static_cast<std::uint32_t>(i)};
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  friend constexpr bool operator==(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  static constexpr std::uint32_t mask_for(std::uint8_t length) {
    return length == 0 ? 0u : ~0u << (32 - length);
  }

  Ipv4Address base_{};
  std::uint8_t length_ = 0;
};

}  // namespace cloudrtt::net

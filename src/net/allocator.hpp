#pragma once
// Deterministic IPv4 prefix allocator.
//
// The synthetic RIR: hands out disjoint public /16..../24 blocks to ASes and
// individual addresses within a block. Allocation order is deterministic so
// a study seed fully determines the address plan.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/ipv4.hpp"

namespace cloudrtt::net {

class PrefixAllocator {
 public:
  /// Allocate from a pool that avoids special-purpose ranges; default pool
  /// starts in 5.0.0.0/8-ish space and grows upward.
  explicit PrefixAllocator(Ipv4Address pool_start = Ipv4Address{5, 0, 0, 0});

  /// Next free prefix of the given length (8..30). Throws on exhaustion.
  [[nodiscard]] Ipv4Prefix allocate(std::uint8_t length);

  [[nodiscard]] std::uint64_t allocated_addresses() const { return cursor_ - start_; }

 private:
  std::uint64_t start_;
  std::uint64_t cursor_;  ///< first unallocated address (64-bit to spot exhaustion)
};

/// Hands out host addresses from inside one prefix, skipping the network
/// and broadcast addresses.
class HostAllocator {
 public:
  explicit HostAllocator(Ipv4Prefix prefix) : prefix_(prefix), next_(1) {}

  [[nodiscard]] Ipv4Address allocate();
  [[nodiscard]] const Ipv4Prefix& prefix() const { return prefix_; }
  [[nodiscard]] std::uint64_t remaining() const;

 private:
  Ipv4Prefix prefix_;
  std::uint64_t next_;
};

}  // namespace cloudrtt::net

#include "net/ipv4.hpp"

#include <charconv>
#include <cstdio>

namespace cloudrtt::net {

std::string Ipv4Address::to_string() const {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", (value_ >> 24) & 0xffu,
                (value_ >> 16) & 0xffu, (value_ >> 8) & 0xffu, value_ & 0xffu);
  return buffer;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned part = 0;
    const auto [next, ec] = std::from_chars(cursor, end, part);
    if (ec != std::errc{} || part > 255 || next == cursor) return std::nullopt;
    value = (value << 8) | part;
    cursor = next;
    if (octet < 3) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
  }
  if (cursor != end) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const std::string_view len_text = text.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || length > 32 || next != len_text.data() + len_text.size()) {
    return std::nullopt;
  }
  return Ipv4Prefix{*addr, static_cast<std::uint8_t>(length)};
}

}  // namespace cloudrtt::net

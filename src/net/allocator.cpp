#include "net/allocator.hpp"

namespace cloudrtt::net {

PrefixAllocator::PrefixAllocator(Ipv4Address pool_start)
    : start_(pool_start.value()), cursor_(pool_start.value()) {}

Ipv4Prefix PrefixAllocator::allocate(std::uint8_t length) {
  if (length < 8 || length > 30) {
    throw std::invalid_argument{"PrefixAllocator: length must be in [8, 30]"};
  }
  const std::uint64_t block = 1ULL << (32 - length);
  // Align the cursor to the block size so the prefix is valid.
  std::uint64_t base = (cursor_ + block - 1) & ~(block - 1);
  while (true) {
    if (base + block > (1ULL << 32)) {
      throw std::runtime_error{"PrefixAllocator: IPv4 pool exhausted"};
    }
    const Ipv4Prefix candidate{Ipv4Address{static_cast<std::uint32_t>(base)}, length};
    // Skip anything that overlaps special-purpose space; the pool start
    // already avoids most, but large allocations can run into them.
    const bool collides = is_private(candidate.base()) ||
                          is_private(candidate.address_at(block - 1)) ||
                          (candidate.base().value() & 0xf0000000u) == 0xe0000000u;
    if (!collides) {
      cursor_ = base + block;
      return candidate;
    }
    base += block;
  }
}

Ipv4Address HostAllocator::allocate() {
  if (remaining() == 0) {
    throw std::runtime_error{"HostAllocator: prefix exhausted: " + prefix_.to_string()};
  }
  return prefix_.address_at(next_++);
}

std::uint64_t HostAllocator::remaining() const {
  const std::uint64_t usable = prefix_.size() > 2 ? prefix_.size() - 1 : prefix_.size();
  return next_ >= usable ? 0 : usable - next_;
}

}  // namespace cloudrtt::net

#pragma once
// Binary radix trie for longest-prefix match: the data structure behind the
// analysis pipeline's IP->ASN resolution (the PyASN substitute from §3.3).
// Values are arbitrary; the analysis stores AS numbers.

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace cloudrtt::net {

template <typename Value>
class PrefixTrie {
 public:
  /// Insert (or overwrite) the value mapped at `prefix`.
  void insert(const Ipv4Prefix& prefix, Value value) {
    std::size_t node = ensure_root();
    const std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const bool bit = (bits >> (31 - depth)) & 1u;
      std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
      if (child == kNone) {
        child = nodes_.size();
        nodes_.emplace_back();  // may reallocate: re-index nodes_[node] below
        (bit ? nodes_[node].one : nodes_[node].zero) = child;
      }
      node = child;
    }
    nodes_[node].value = std::move(value);
    ++entry_count_;
  }

  /// Longest-prefix match; nullopt when no covering prefix exists.
  [[nodiscard]] std::optional<Value> lookup(Ipv4Address addr) const {
    if (nodes_.empty()) return std::nullopt;
    std::optional<Value> best;
    std::size_t node = 0;
    const std::uint32_t bits = addr.value();
    if (nodes_[node].value) best = nodes_[node].value;
    for (std::uint8_t depth = 0; depth < 32; ++depth) {
      const bool bit = (bits >> (31 - depth)) & 1u;
      const std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
      if (child == kNone) break;
      node = child;
      if (nodes_[node].value) best = nodes_[node].value;
    }
    return best;
  }

  /// Exact-prefix lookup (no covering fallback).
  [[nodiscard]] std::optional<Value> lookup_exact(const Ipv4Prefix& prefix) const {
    if (nodes_.empty()) return std::nullopt;
    std::size_t node = 0;
    const std::uint32_t bits = prefix.base().value();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const bool bit = (bits >> (31 - depth)) & 1u;
      const std::size_t child = bit ? nodes_[node].one : nodes_[node].zero;
      if (child == kNone) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  [[nodiscard]] std::size_t entry_count() const { return entry_count_; }
  [[nodiscard]] bool empty() const { return entry_count_ == 0; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Node {
    std::size_t zero = kNone;
    std::size_t one = kNone;
    std::optional<Value> value;
  };

  std::size_t ensure_root() {
    if (nodes_.empty()) nodes_.emplace_back();
    return 0;
  }

  std::vector<Node> nodes_;
  std::size_t entry_count_ = 0;
};

}  // namespace cloudrtt::net

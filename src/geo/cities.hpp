#pragma once
// Synthetic city directory.
//
// Probes geolocate to cities (Speedchecker reports city-level geolocation,
// §3.3), and the Fig. 16 apples-to-apples comparison matches probes of both
// platforms by <city, first-hop ASN> — so both platforms must draw from the
// same per-country city set. Cities are deterministic functions of the
// country (independent of the study seed) with Zipf population weights.
// Lives in geo (not probes) because the topology's address plan enumerates
// per-city edge-router sites from the same directory.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/country.hpp"
#include "geo/coords.hpp"

namespace cloudrtt::geo {

struct City {
  std::string name;
  geo::GeoPoint location;
  double weight;  ///< probe-placement weight (Zipf by rank)
};

class CityDirectory {
 public:
  [[nodiscard]] static const CityDirectory& instance();

  [[nodiscard]] std::span<const City> cities(std::string_view country) const;

 private:
  CityDirectory();
  std::vector<std::string> codes_;
  std::vector<std::vector<City>> per_country_;
};

}  // namespace cloudrtt::geo

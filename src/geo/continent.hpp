#pragma once
// Continent taxonomy used throughout the paper (AF, AS, EU, NA, OC, SA).

#include <array>
#include <optional>
#include <string_view>

namespace cloudrtt::geo {

enum class Continent : unsigned char {
  Africa,
  Asia,
  Europe,
  NorthAmerica,
  Oceania,
  SouthAmerica,
};

inline constexpr std::array<Continent, 6> kAllContinents{
    Continent::Africa,       Continent::Asia,    Continent::Europe,
    Continent::NorthAmerica, Continent::Oceania, Continent::SouthAmerica,
};

inline constexpr std::size_t kContinentCount = kAllContinents.size();

/// Two-letter code as used in the paper's figures ("AF", "AS", ...).
[[nodiscard]] constexpr std::string_view to_code(Continent c) noexcept {
  switch (c) {
    case Continent::Africa: return "AF";
    case Continent::Asia: return "AS";
    case Continent::Europe: return "EU";
    case Continent::NorthAmerica: return "NA";
    case Continent::Oceania: return "OC";
    case Continent::SouthAmerica: return "SA";
  }
  return "??";
}

[[nodiscard]] constexpr std::string_view full_name(Continent c) noexcept {
  switch (c) {
    case Continent::Africa: return "Africa";
    case Continent::Asia: return "Asia";
    case Continent::Europe: return "Europe";
    case Continent::NorthAmerica: return "North America";
    case Continent::Oceania: return "Oceania";
    case Continent::SouthAmerica: return "South America";
  }
  return "Unknown";
}

[[nodiscard]] constexpr std::optional<Continent> continent_from_code(
    std::string_view code) noexcept {
  for (const Continent c : kAllContinents) {
    if (to_code(c) == code) return c;
  }
  return std::nullopt;
}

[[nodiscard]] constexpr std::size_t index_of(Continent c) noexcept {
  return static_cast<std::size_t>(c);
}

}  // namespace cloudrtt::geo

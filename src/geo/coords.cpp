#include "geo/coords.hpp"

#include <numbers>

namespace cloudrtt::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

GeoPoint offset(const GeoPoint& origin, double bearing_deg, double distance_km) {
  const double angular = distance_km / kEarthRadiusKm;
  const double bearing = bearing_deg * kDegToRad;
  const double lat1 = origin.lat_deg * kDegToRad;
  const double lon1 = origin.lon_deg * kDegToRad;
  const double lat2 = std::asin(std::sin(lat1) * std::cos(angular) +
                                std::cos(lat1) * std::sin(angular) * std::cos(bearing));
  const double lon2 =
      lon1 + std::atan2(std::sin(bearing) * std::sin(angular) * std::cos(lat1),
                        std::cos(angular) - std::sin(lat1) * std::sin(lat2));
  GeoPoint out{lat2 * kRadToDeg, lon2 * kRadToDeg};
  while (out.lon_deg > 180.0) out.lon_deg -= 360.0;
  while (out.lon_deg <= -180.0) out.lon_deg += 360.0;
  return out;
}

}  // namespace cloudrtt::geo

#pragma once
// Geodesy primitives: WGS-84 points, great-circle distance, and the
// distance->latency conversion used by every latency model in the simulator.

#include <cmath>

namespace cloudrtt::geo {

/// A point on the globe, degrees. Latitude in [-90, 90], longitude in
/// (-180, 180].
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

inline constexpr double kEarthRadiusKm = 6371.0;

/// Speed of light in fibre is roughly 2/3 c; the conventional measurement
/// rule of thumb (used in the paper's community, e.g. c-latency checks) is
/// ~200 km per millisecond one-way, i.e. RTT of 1 ms per 100 km.
inline constexpr double kFibreKmPerMsOneWay = 200.0;

/// Great-circle distance (haversine).
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// Minimum physically possible round-trip time over `km` of fibre.
[[nodiscard]] inline double fibre_rtt_ms(double km) {
  return 2.0 * km / kFibreKmPerMsOneWay;
}

/// One-way fibre propagation delay over `km`.
[[nodiscard]] inline double fibre_one_way_ms(double km) {
  return km / kFibreKmPerMsOneWay;
}

/// Destination point at `distance_km` from `origin` along initial bearing
/// `bearing_deg` (used to scatter probes/PoPs around country centroids).
[[nodiscard]] GeoPoint offset(const GeoPoint& origin, double bearing_deg,
                              double distance_km);

}  // namespace cloudrtt::geo

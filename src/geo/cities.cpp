#include "geo/cities.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace cloudrtt::geo {

CityDirectory::CityDirectory() {
  const auto& table = geo::CountryTable::instance();
  for (const geo::CountryInfo& country : table.all()) {
    const double total_weight = country.sc_weight + country.atlas_weight;
    const auto city_count = static_cast<std::size_t>(
        std::clamp(2.0 + total_weight / 700.0, 2.0, 12.0));
    // Deterministic per-country stream independent of any study seed so the
    // two platforms (and different studies) share the same geography.
    util::Rng rng{util::fnv1a(country.code) ^ 0xc17eedULL};
    std::vector<City> cities;
    cities.reserve(city_count);
    for (std::size_t i = 0; i < city_count; ++i) {
      City city;
      city.name = std::string{country.code} + "-city-" + std::to_string(i + 1);
      // Scatter: golden-angle bearings, sqrt-radius so area coverage is
      // uniform; the first city sits near the centroid (the "capital").
      const double bearing = 137.5 * static_cast<double>(i) + rng.uniform(-25.0, 25.0);
      const double radius =
          i == 0 ? country.spread_km * 0.08
                 : country.spread_km * std::sqrt(rng.uniform(0.05, 1.0));
      city.location = geo::offset(country.centroid, bearing, radius);
      city.weight = 1.0 / static_cast<double>(i + 1);
      cities.push_back(std::move(city));
    }
    codes_.emplace_back(country.code);
    per_country_.push_back(std::move(cities));
  }
}

const CityDirectory& CityDirectory::instance() {
  static const CityDirectory directory;
  return directory;
}

std::span<const City> CityDirectory::cities(std::string_view country) const {
  for (std::size_t i = 0; i < codes_.size(); ++i) {
    if (codes_[i] == country) return per_country_[i];
  }
  return {};
}

}  // namespace cloudrtt::geo

#include "geo/country.hpp"

#include <stdexcept>
#include <string>

namespace cloudrtt::geo {

namespace {

using C = Continent;

// Columns: code, name, continent, {lat, lon}, spread_km,
//          sc_weight, atlas_weight, cell_fraction, backhaul_quality.
//
// sc_weight / atlas_weight are calibrated so that per-continent sums track
// Fig. 1b (EU 72K, AS 31K, NA 5.4K, AF 4K, SA 2.8K, OC 351) and Fig. 2
// (EU 5574, AS 1083, NA 866, AF 261, SA 216, OC 289). Within-continent
// skews encode the deployment biases the paper leans on: >80 % of SC's SA
// probes in Brazil vs ~40 % for Atlas; Atlas Africa concentrated in the
// south (ZA) while SC Africa is cellular-heavy in the north; DE/GB/IR/JP
// with 5000+ SC probes.
constexpr CountryInfo kCountries[] = {
    // ---- Europe ----------------------------------------------------------
    {"DE", "Germany", C::Europe, {51.2, 10.4}, 320, 9500, 1200, 0.40, 0.92},
    {"GB", "Great Britain", C::Europe, {53.0, -1.5}, 300, 7500, 550, 0.40, 0.92},
    {"FR", "France", C::Europe, {46.6, 2.5}, 400, 5200, 620, 0.40, 0.92},
    {"IT", "Italy", C::Europe, {42.8, 12.5}, 450, 4600, 260, 0.45, 0.85},
    {"ES", "Spain", C::Europe, {40.2, -3.7}, 420, 4200, 210, 0.45, 0.85},
    {"PL", "Poland", C::Europe, {52.0, 19.3}, 350, 3600, 190, 0.45, 0.82},
    {"UA", "Ukraine", C::Europe, {49.0, 31.5}, 450, 3600, 120, 0.45, 0.72},
    {"RU", "Russia", C::Europe, {55.7, 37.6}, 1500, 6200, 310, 0.45, 0.72},
    {"NL", "Netherlands", C::Europe, {52.2, 5.3}, 120, 2600, 520, 0.35, 0.95},
    {"SE", "Sweden", C::Europe, {59.6, 16.0}, 500, 2100, 210, 0.40, 0.93},
    {"NO", "Norway", C::Europe, {60.5, 9.0}, 500, 1200, 110, 0.40, 0.92},
    {"FI", "Finland", C::Europe, {61.0, 25.5}, 450, 1200, 130, 0.40, 0.92},
    {"DK", "Denmark", C::Europe, {55.9, 9.9}, 150, 1200, 120, 0.40, 0.93},
    {"BE", "Belgium", C::Europe, {50.8, 4.5}, 120, 1600, 210, 0.40, 0.92},
    {"CH", "Switzerland", C::Europe, {46.9, 8.2}, 150, 1600, 260, 0.35, 0.94},
    {"AT", "Austria", C::Europe, {47.6, 14.1}, 200, 1500, 180, 0.40, 0.90},
    {"CZ", "Czechia", C::Europe, {49.9, 15.3}, 200, 1800, 200, 0.40, 0.88},
    {"RO", "Romania", C::Europe, {45.9, 25.0}, 300, 2600, 90, 0.45, 0.80},
    {"HU", "Hungary", C::Europe, {47.2, 19.4}, 180, 1500, 80, 0.45, 0.82},
    {"PT", "Portugal", C::Europe, {39.6, -8.0}, 220, 1600, 85, 0.45, 0.84},
    {"GR", "Greece", C::Europe, {38.7, 22.5}, 280, 1800, 80, 0.50, 0.76},
    {"BG", "Bulgaria", C::Europe, {42.7, 25.2}, 220, 1300, 70, 0.45, 0.78},
    {"RS", "Serbia", C::Europe, {44.2, 20.9}, 180, 1000, 45, 0.45, 0.75},
    {"SK", "Slovakia", C::Europe, {48.7, 19.5}, 160, 800, 50, 0.45, 0.84},
    {"HR", "Croatia", C::Europe, {45.5, 16.0}, 180, 700, 40, 0.45, 0.80},
    {"IE", "Ireland", C::Europe, {53.3, -7.7}, 180, 950, 90, 0.40, 0.90},
    {"LT", "Lithuania", C::Europe, {55.2, 23.9}, 150, 550, 35, 0.40, 0.84},
    {"LV", "Latvia", C::Europe, {56.9, 24.6}, 150, 450, 30, 0.40, 0.83},
    {"EE", "Estonia", C::Europe, {58.7, 25.5}, 130, 350, 35, 0.40, 0.86},
    {"SI", "Slovenia", C::Europe, {46.1, 14.8}, 100, 420, 35, 0.40, 0.84},
    {"BA", "Bosnia and Herzegovina", C::Europe, {44.0, 17.8}, 150, 420, 15, 0.50, 0.68},
    {"AL", "Albania", C::Europe, {41.1, 20.1}, 120, 320, 8, 0.55, 0.62},
    {"MK", "North Macedonia", C::Europe, {41.6, 21.7}, 100, 300, 8, 0.50, 0.66},
    {"MD", "Moldova", C::Europe, {47.2, 28.5}, 120, 420, 12, 0.50, 0.68},
    {"BY", "Belarus", C::Europe, {53.7, 27.9}, 280, 850, 20, 0.45, 0.70},
    {"IS", "Iceland", C::Europe, {64.1, -21.8}, 120, 120, 25, 0.40, 0.88},
    {"LU", "Luxembourg", C::Europe, {49.6, 6.1}, 40, 160, 30, 0.35, 0.94},
    {"CY", "Cyprus", C::Europe, {35.0, 33.2}, 80, 280, 15, 0.50, 0.74},
    {"MT", "Malta", C::Europe, {35.9, 14.4}, 20, 130, 10, 0.45, 0.78},
    {"ME", "Montenegro", C::Europe, {42.7, 19.3}, 80, 180, 6, 0.50, 0.66},
    // ---- Asia ------------------------------------------------------------
    {"IR", "Iran", C::Asia, {35.7, 51.4}, 700, 5600, 35, 0.60, 0.50},
    {"JP", "Japan", C::Asia, {36.0, 138.0}, 600, 5400, 150, 0.45, 0.93},
    {"IN", "India", C::Asia, {22.0, 79.0}, 1300, 3600, 110, 0.65, 0.55},
    {"TR", "Turkey", C::Asia, {39.0, 33.0}, 700, 2300, 85, 0.55, 0.65},
    {"ID", "Indonesia", C::Asia, {-6.2, 106.8}, 1200, 1900, 65, 0.60, 0.52},
    {"TH", "Thailand", C::Asia, {14.5, 100.8}, 500, 1300, 40, 0.55, 0.62},
    {"VN", "Vietnam", C::Asia, {16.0, 107.5}, 700, 1300, 20, 0.55, 0.58},
    {"MY", "Malaysia", C::Asia, {3.5, 102.0}, 450, 1000, 30, 0.50, 0.66},
    {"PH", "Philippines", C::Asia, {13.5, 122.0}, 700, 1300, 25, 0.60, 0.50},
    {"SG", "Singapore", C::Asia, {1.35, 103.8}, 25, 750, 85, 0.40, 0.95},
    {"KR", "South Korea", C::Asia, {36.8, 127.5}, 250, 1000, 40, 0.40, 0.93},
    {"CN", "China", C::Asia, {32.0, 112.0}, 1500, 600, 25, 0.50, 0.72},
    {"TW", "Taiwan", C::Asia, {23.8, 121.0}, 180, 700, 40, 0.40, 0.88},
    {"HK", "Hong Kong", C::Asia, {22.3, 114.2}, 30, 520, 55, 0.40, 0.92},
    {"SA", "Saudi Arabia", C::Asia, {24.0, 45.0}, 900, 950, 18, 0.60, 0.60},
    {"AE", "United Arab Emirates", C::Asia, {24.4, 54.4}, 200, 850, 40, 0.50, 0.72},
    {"IL", "Israel", C::Asia, {31.8, 35.0}, 120, 750, 80, 0.45, 0.82},
    {"IQ", "Iraq", C::Asia, {33.2, 43.7}, 450, 650, 6, 0.70, 0.40},
    {"PK", "Pakistan", C::Asia, {30.0, 70.0}, 800, 950, 25, 0.65, 0.45},
    {"BD", "Bangladesh", C::Asia, {23.8, 90.4}, 300, 650, 18, 0.65, 0.45},
    {"LK", "Sri Lanka", C::Asia, {7.0, 80.8}, 180, 420, 12, 0.55, 0.55},
    {"KZ", "Kazakhstan", C::Asia, {48.0, 68.0}, 1200, 520, 20, 0.55, 0.55},
    {"BH", "Bahrain", C::Asia, {26.1, 50.55}, 20, 320, 6, 0.55, 0.65},
    {"KW", "Kuwait", C::Asia, {29.3, 47.9}, 80, 320, 8, 0.55, 0.62},
    {"QA", "Qatar", C::Asia, {25.3, 51.4}, 60, 260, 8, 0.50, 0.70},
    {"OM", "Oman", C::Asia, {23.0, 57.0}, 400, 260, 6, 0.55, 0.58},
    {"JO", "Jordan", C::Asia, {31.3, 36.5}, 200, 370, 10, 0.55, 0.58},
    {"LB", "Lebanon", C::Asia, {33.9, 35.7}, 80, 320, 8, 0.55, 0.50},
    {"NP", "Nepal", C::Asia, {27.9, 84.2}, 300, 260, 10, 0.60, 0.42},
    {"MM", "Myanmar", C::Asia, {19.8, 96.1}, 500, 210, 5, 0.65, 0.38},
    {"KH", "Cambodia", C::Asia, {12.0, 105.0}, 250, 210, 6, 0.60, 0.42},
    {"GE", "Georgia", C::Asia, {41.9, 44.1}, 200, 320, 15, 0.50, 0.60},
    {"AM", "Armenia", C::Asia, {40.2, 44.7}, 120, 260, 10, 0.50, 0.58},
    {"AZ", "Azerbaijan", C::Asia, {40.4, 49.0}, 250, 370, 10, 0.55, 0.56},
    {"UZ", "Uzbekistan", C::Asia, {41.0, 65.0}, 500, 320, 8, 0.55, 0.48},
    // ---- North America ----------------------------------------------------
    {"US", "United States", C::NorthAmerica, {39.0, -95.0}, 2000, 4200, 600, 0.40, 0.92},
    {"MX", "Mexico", C::NorthAmerica, {21.0, -100.0}, 900, 900, 35, 0.55, 0.62},
    {"CA", "Canada", C::NorthAmerica, {46.5, -80.0}, 1500, 1000, 200, 0.40, 0.90},
    {"GT", "Guatemala", C::NorthAmerica, {15.5, -90.3}, 200, 130, 6, 0.60, 0.48},
    {"CR", "Costa Rica", C::NorthAmerica, {9.9, -84.1}, 150, 140, 12, 0.50, 0.58},
    {"PA", "Panama", C::NorthAmerica, {9.0, -79.5}, 150, 120, 8, 0.50, 0.60},
    {"DO", "Dominican Republic", C::NorthAmerica, {18.8, -70.2}, 150, 160, 6, 0.55, 0.50},
    {"HN", "Honduras", C::NorthAmerica, {14.7, -87.0}, 180, 110, 4, 0.60, 0.44},
    {"SV", "El Salvador", C::NorthAmerica, {13.7, -89.2}, 90, 110, 4, 0.60, 0.46},
    {"NI", "Nicaragua", C::NorthAmerica, {12.5, -86.0}, 180, 90, 3, 0.60, 0.42},
    {"JM", "Jamaica", C::NorthAmerica, {18.1, -77.3}, 90, 110, 4, 0.55, 0.50},
    {"TT", "Trinidad and Tobago", C::NorthAmerica, {10.6, -61.3}, 60, 120, 5, 0.55, 0.52},
    {"PR", "Puerto Rico", C::NorthAmerica, {18.3, -66.4}, 80, 160, 8, 0.45, 0.66},
    {"CU", "Cuba", C::NorthAmerica, {22.0, -79.5}, 400, 60, 2, 0.65, 0.30},
    {"BS", "Bahamas", C::NorthAmerica, {25.0, -77.4}, 100, 40, 3, 0.50, 0.52},
    // ---- Africa -----------------------------------------------------------
    {"EG", "Egypt", C::Africa, {30.1, 31.3}, 350, 820, 6, 0.85, 0.48},
    {"DZ", "Algeria", C::Africa, {35.2, 2.0}, 500, 520, 3, 0.85, 0.42},
    {"MA", "Morocco", C::Africa, {33.0, -6.8}, 350, 520, 6, 0.85, 0.48},
    {"TN", "Tunisia", C::Africa, {36.1, 9.6}, 180, 310, 4, 0.80, 0.48},
    {"NG", "Nigeria", C::Africa, {8.7, 8.0}, 600, 360, 8, 0.75, 0.38},
    {"ZA", "South Africa", C::Africa, {-28.5, 25.0}, 600, 470, 185, 0.25, 0.62},
    {"KE", "Kenya", C::Africa, {-0.5, 37.0}, 350, 260, 12, 0.70, 0.45},
    {"GH", "Ghana", C::Africa, {6.8, -1.2}, 250, 160, 4, 0.70, 0.40},
    {"SN", "Senegal", C::Africa, {14.7, -16.5}, 200, 130, 6, 0.75, 0.40},
    {"ET", "Ethiopia", C::Africa, {9.0, 39.5}, 450, 130, 3, 0.80, 0.25},
    {"TZ", "Tanzania", C::Africa, {-6.5, 35.5}, 450, 110, 6, 0.75, 0.36},
    {"UG", "Uganda", C::Africa, {0.6, 32.5}, 250, 110, 5, 0.75, 0.36},
    {"CI", "Ivory Coast", C::Africa, {6.8, -5.3}, 250, 110, 4, 0.75, 0.38},
    {"CM", "Cameroon", C::Africa, {4.8, 11.8}, 350, 110, 3, 0.80, 0.30},
    {"SD", "Sudan", C::Africa, {15.6, 32.5}, 500, 90, 2, 0.85, 0.22},
    {"LY", "Libya", C::Africa, {31.5, 17.0}, 450, 70, 2, 0.85, 0.28},
    {"MU", "Mauritius", C::Africa, {-20.2, 57.5}, 30, 70, 10, 0.45, 0.58},
    {"ZW", "Zimbabwe", C::Africa, {-18.5, 30.0}, 250, 70, 4, 0.70, 0.35},
    {"MZ", "Mozambique", C::Africa, {-18.0, 35.0}, 500, 50, 3, 0.75, 0.32},
    {"AO", "Angola", C::Africa, {-10.5, 14.5}, 400, 70, 3, 0.75, 0.34},
    {"RW", "Rwanda", C::Africa, {-1.9, 30.0}, 80, 50, 5, 0.70, 0.42},
    // ---- South America -----------------------------------------------------
    {"BR", "Brazil", C::SouthAmerica, {-22.0, -47.0}, 1000, 2750, 70, 0.50, 0.66},
    {"AR", "Argentina", C::SouthAmerica, {-34.6, -58.4}, 800, 140, 55, 0.50, 0.60},
    {"CO", "Colombia", C::SouthAmerica, {4.6, -74.1}, 450, 115, 28, 0.55, 0.55},
    {"CL", "Chile", C::SouthAmerica, {-33.4, -70.6}, 900, 105, 35, 0.50, 0.64},
    {"PE", "Peru", C::SouthAmerica, {-12.0, -77.0}, 500, 105, 10, 0.55, 0.48},
    {"VE", "Venezuela", C::SouthAmerica, {10.2, -66.9}, 400, 102, 5, 0.60, 0.35},
    {"EC", "Ecuador", C::SouthAmerica, {-1.5, -78.5}, 250, 102, 10, 0.55, 0.48},
    {"BO", "Bolivia", C::SouthAmerica, {-16.5, -65.0}, 400, 102, 5, 0.60, 0.45},
    {"UY", "Uruguay", C::SouthAmerica, {-34.8, -56.2}, 180, 35, 10, 0.45, 0.62},
    {"PY", "Paraguay", C::SouthAmerica, {-25.3, -57.6}, 250, 25, 5, 0.55, 0.45},
    // ---- Oceania ------------------------------------------------------------
    {"AU", "Australia", C::Oceania, {-35.0, 147.0}, 900, 220, 180, 0.40, 0.88},
    {"NZ", "New Zealand", C::Oceania, {-40.5, 174.5}, 400, 110, 100, 0.40, 0.86},
    {"FJ", "Fiji", C::Oceania, {-17.8, 178.0}, 80, 25, 9, 0.55, 0.45},
    // ---- Long tail ----------------------------------------------------------
    // Below the paper's 100-probe scheduling threshold: these countries host
    // probes (the platform covers ~140-170 countries) but never make the
    // per-country exhibits — the same situation as in the real study.
    {"MN", "Mongolia", C::Asia, {47.9, 106.9}, 500, 90, 2, 0.60, 0.40},
    {"LA", "Laos", C::Asia, {18.0, 103.0}, 300, 80, 2, 0.60, 0.38},
    {"KG", "Kyrgyzstan", C::Asia, {41.4, 74.8}, 250, 90, 2, 0.55, 0.42},
    {"TJ", "Tajikistan", C::Asia, {38.6, 69.0}, 200, 70, 1, 0.60, 0.35},
    {"AF", "Afghanistan", C::Asia, {34.5, 69.2}, 400, 95, 1, 0.75, 0.22},
    {"YE", "Yemen", C::Asia, {15.4, 44.2}, 350, 60, 1, 0.75, 0.18},
    {"SY", "Syria", C::Asia, {34.8, 38.0}, 250, 70, 1, 0.65, 0.25},
    {"CD", "DR Congo", C::Africa, {-3.0, 23.0}, 800, 80, 2, 0.80, 0.20},
    {"ZM", "Zambia", C::Africa, {-14.0, 28.0}, 350, 70, 3, 0.70, 0.32},
    {"NA", "Namibia", C::Africa, {-22.5, 17.5}, 400, 50, 4, 0.60, 0.40},
    {"BW", "Botswana", C::Africa, {-23.0, 24.0}, 300, 40, 3, 0.60, 0.42},
    {"MW", "Malawi", C::Africa, {-13.8, 34.0}, 250, 40, 2, 0.75, 0.26},
    {"MG", "Madagascar", C::Africa, {-19.5, 46.5}, 450, 60, 2, 0.70, 0.30},
    {"BF", "Burkina Faso", C::Africa, {12.3, -1.7}, 250, 40, 1, 0.80, 0.24},
    {"ML", "Mali", C::Africa, {14.5, -5.0}, 450, 40, 1, 0.80, 0.22},
    {"TG", "Togo", C::Africa, {8.5, 1.0}, 150, 30, 1, 0.75, 0.30},
    {"BJ", "Benin", C::Africa, {9.5, 2.3}, 180, 30, 1, 0.75, 0.30},
    {"GA", "Gabon", C::Africa, {-0.7, 11.7}, 250, 30, 1, 0.65, 0.34},
    {"BZ", "Belize", C::NorthAmerica, {17.2, -88.6}, 100, 30, 1, 0.55, 0.40},
    {"HT", "Haiti", C::NorthAmerica, {18.9, -72.4}, 120, 40, 1, 0.70, 0.20},
    {"BB", "Barbados", C::NorthAmerica, {13.1, -59.6}, 20, 40, 2, 0.50, 0.54},
    {"GY", "Guyana", C::SouthAmerica, {6.5, -58.5}, 200, 25, 2, 0.60, 0.35},
    {"SR", "Suriname", C::SouthAmerica, {5.0, -55.5}, 150, 25, 2, 0.55, 0.38},
    {"PG", "Papua New Guinea", C::Oceania, {-6.5, 146.0}, 400, 30, 1, 0.70, 0.25},
    {"NC", "New Caledonia", C::Oceania, {-21.3, 165.5}, 150, 20, 2, 0.50, 0.50},
};

}  // namespace

CountryTable::CountryTable() {
  countries_.assign(std::begin(kCountries), std::end(kCountries));
  for (const CountryInfo& c : countries_) {
    total_sc_weight_ += c.sc_weight;
    total_atlas_weight_ += c.atlas_weight;
    sc_by_continent_[index_of(c.continent)] += c.sc_weight;
    atlas_by_continent_[index_of(c.continent)] += c.atlas_weight;
  }
}

const CountryTable& CountryTable::instance() {
  static const CountryTable table;
  return table;
}

const CountryInfo* CountryTable::find(std::string_view code) const {
  for (const CountryInfo& c : countries_) {
    if (c.code == code) return &c;
  }
  return nullptr;
}

const CountryInfo& CountryTable::at(std::string_view code) const {
  const CountryInfo* info = find(code);
  if (info == nullptr) {
    throw std::out_of_range{"unknown country code: " + std::string{code}};
  }
  return *info;
}

std::vector<const CountryInfo*> CountryTable::in_continent(Continent continent) const {
  std::vector<const CountryInfo*> out;
  for (const CountryInfo& c : countries_) {
    if (c.continent == continent) out.push_back(&c);
  }
  return out;
}

double CountryTable::continent_sc_weight(Continent c) const {
  return sc_by_continent_[index_of(c)];
}

double CountryTable::continent_atlas_weight(Continent c) const {
  return atlas_by_continent_[index_of(c)];
}

}  // namespace cloudrtt::geo

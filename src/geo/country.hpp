#pragma once
// ISO-3166 country catalogue with the per-country properties that drive the
// synthetic study:
//
//  * centroid + spread: where probes and ISP PoPs are scattered,
//  * sc_weight / atlas_weight: relative probe densities of the two platforms
//    (calibrated to Fig. 1b and Fig. 2 of the paper; absolute values are in
//    "approximate real probes" so that continent sums match the figures),
//  * cell_fraction: share of Speedchecker probes on cellular vs home WiFi
//    (the paper's Africa analysis hinges on north-AF being cellular-heavy),
//  * backhaul_quality in [0,1]: how well-provisioned the public backbone is
//    (drives transit detour and jitter; EU/NA high, developing regions low).

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "geo/continent.hpp"
#include "geo/coords.hpp"

namespace cloudrtt::geo {

struct CountryInfo {
  std::string_view code;  ///< ISO 3166-1 alpha-2
  std::string_view name;
  Continent continent;
  GeoPoint centroid;
  double spread_km;       ///< rough radius for scattering probes/PoPs
  double sc_weight;       ///< ~count of Speedchecker probes (Fig. 1b scale)
  double atlas_weight;    ///< ~count of RIPE Atlas probes (Fig. 2 scale)
  double cell_fraction;   ///< P[Speedchecker probe uses cellular]
  double backhaul_quality;
};

/// Immutable catalogue; a process-wide singleton built from static data.
class CountryTable {
 public:
  [[nodiscard]] static const CountryTable& instance();

  [[nodiscard]] std::span<const CountryInfo> all() const { return countries_; }
  [[nodiscard]] const CountryInfo* find(std::string_view code) const;
  /// Throwing lookup for code paths where a miss is a programming error.
  [[nodiscard]] const CountryInfo& at(std::string_view code) const;
  [[nodiscard]] std::vector<const CountryInfo*> in_continent(Continent c) const;

  [[nodiscard]] double total_sc_weight() const { return total_sc_weight_; }
  [[nodiscard]] double total_atlas_weight() const { return total_atlas_weight_; }
  [[nodiscard]] double continent_sc_weight(Continent c) const;
  [[nodiscard]] double continent_atlas_weight(Continent c) const;

 private:
  CountryTable();

  std::vector<CountryInfo> countries_;
  double total_sc_weight_ = 0.0;
  double total_atlas_weight_ = 0.0;
  std::array<double, kContinentCount> sc_by_continent_{};
  std::array<double, kContinentCount> atlas_by_continent_{};
};

}  // namespace cloudrtt::geo

#include "obs/process.hpp"

#include <cstdio>
#include <cstring>

namespace cloudrtt::obs {

namespace {

/// Scan /proc/self/status for `key: <n> kB` and return n in bytes.
[[nodiscard]] std::uint64_t status_kb(const char* key) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  std::uint64_t bytes = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') continue;
    unsigned long long kb = 0;  // NOLINT(google-runtime-int): sscanf %llu
    if (std::sscanf(line + key_len + 1, "%llu", &kb) == 1) {
      bytes = static_cast<std::uint64_t>(kb) * 1024;
    }
    break;
  }
  std::fclose(file);
  return bytes;
}

}  // namespace

std::uint64_t current_rss_bytes() { return status_kb("VmRSS"); }

std::uint64_t peak_rss_bytes() { return status_kb("VmHWM"); }

}  // namespace cloudrtt::obs

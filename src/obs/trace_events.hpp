#pragma once
// Chrome-trace event recording: a process-global ring of timestamped events
// exportable as Trace Event Format JSON (the `chrome://tracing` / Perfetto
// "JSON array format" with complete "X" events), plus the sanctioned
// monotonic-clock helpers for code outside src/obs/ (the determinism linter
// bans raw std::chrono everywhere else — wall time may feed telemetry, never
// the dataset).
//
// The recorder is disabled by default and costs one relaxed atomic load per
// would-be event while off. When enabled (CLI `--trace-out=<file>.json`),
// phase spans (obs::Span), the parallel executor's per-worker/per-chunk
// spans, and counter samples are buffered in memory and written at exit:
//
//   obs::TraceRecorder::global().enable();
//   ...instrumented run...
//   std::ofstream out{"trace.json"};
//   obs::TraceRecorder::global().write_json(out);   // load in chrome://tracing
//
// Timestamps are microseconds relative to enable(); thread ids are small
// dense integers assigned on first use per OS thread, with "M"-phase
// thread_name metadata naming the main thread and workers.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrtt::obs {

/// Monotonic nanoseconds since an arbitrary epoch (steady clock). The one
/// sanctioned stopwatch source for instrumentation outside src/obs/.
[[nodiscard]] std::uint64_t monotonic_ns();

/// Wall-clock stopwatch over monotonic_ns() for bench drivers.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_ns()) {}
  void restart() { start_ns_ = monotonic_ns(); }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(monotonic_ns() - start_ns_) / 1e6;
  }

 private:
  std::uint64_t start_ns_;
};

class TraceRecorder {
 public:
  /// Up to four numeric args attached to an event ("args" in the JSON).
  struct Arg {
    std::string_view key;  ///< must outlive the call (string literals)
    double value = 0.0;
  };

  [[nodiscard]] static TraceRecorder& global();

  /// Start buffering events; clears any previous buffer and re-bases the
  /// timestamp origin.
  void enable();
  void disable();
  /// One inlined relaxed load — the entire cost of disabled instrumentation.
  [[nodiscard]] bool enabled() const {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  /// Record one complete ("X") event. `start_ns` is a monotonic_ns() value;
  /// events that began before enable() are clamped to ts 0. `name` and `cat`
  /// are copied. No-op while disabled.
  void record_complete(std::string_view name, std::string_view category,
                       std::uint64_t start_ns, std::uint64_t duration_ns,
                       std::initializer_list<Arg> args = {}) {
    if (enabled()) {
      record_complete_slow(name, category, start_ns, duration_ns, args);
    }
  }

  /// Record one counter ("C") sample at the current time. No-op while
  /// disabled.
  void record_counter(std::string_view name, double value) {
    if (enabled()) record_counter_slow(name, value);
  }

  /// Name the calling thread in the export ("M"-phase thread_name metadata).
  void name_this_thread(std::string_view name);

  /// Buffered event count (metadata excluded).
  [[nodiscard]] std::size_t size() const;

  /// Chrome Trace Event Format: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"} with events sorted by timestamp. Does not clear the buffer.
  void write_json(std::ostream& out) const;

  /// Drop every buffered event (tests).
  void reset();

  /// Small dense id of the calling thread, assigned on first use. Exposed so
  /// executor instrumentation can label per-worker metrics consistently with
  /// the trace export.
  [[nodiscard]] static std::uint32_t current_thread_id();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  TraceRecorder();
  void record_complete_slow(std::string_view name, std::string_view category,
                            std::uint64_t start_ns, std::uint64_t duration_ns,
                            std::initializer_list<Arg> args);
  void record_counter_slow(std::string_view name, double value);

  /// Singleton on/off state. A static member (not part of Impl) so the
  /// disabled check in the inline recording wrappers compiles down to one
  /// relaxed atomic load with no pointer chase.
  static std::atomic<bool> enabled_flag_;
  struct Impl;
  Impl* impl_;  ///< leaked: events may be recorded during static destruction
};

}  // namespace cloudrtt::obs

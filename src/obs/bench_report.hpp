#pragma once
// BenchReport: the schema-versioned performance-trajectory record behind the
// committed BENCH_<n>.json files. One report = one run of the canonical
// suite in bench/perf_trajectory.cpp (world build, a paper-scale campaign
// day swept over thread counts, checkpoint save/load, export+hash), with
// wall-clock samples over repeated runs, the dataset hash at every thread
// count (identity asserted — the bench refuses to report a fast wrong
// number), the scale knobs, and the git revision.
//
// tools/bench_compare diffs two reports via compare_reports(): wall-clock
// sections match by name and fail on >threshold p50 regression; dataset
// hashes are compared only when both reports ran the same (probes, budget,
// days, seed) scale, and a mismatch there is never a warning.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrtt::obs {

/// One timed section of the suite: repeated wall-clock samples plus
/// section-specific context (thread count, per-sweep dataset hash).
struct BenchSection {
  std::string name;
  std::vector<double> wall_ms;  ///< one sample per repetition
  int threads = 0;              ///< 0 = not a thread-sweep section
  std::string dataset_hash;     ///< empty when the section produces no dataset

  [[nodiscard]] double p50_ms() const;
  [[nodiscard]] double min_ms() const;
  [[nodiscard]] double max_ms() const;
  [[nodiscard]] double mean_ms() const;
};

struct BenchReport {
  /// Bumped on breaking layout changes; parse() refuses newer majors.
  static constexpr int kSchemaVersion = 1;
  static constexpr std::string_view kSchemaName = "cloudrtt-bench";

  int schema_version = kSchemaVersion;
  int bench_id = 0;      ///< the <n> in BENCH_<n>.json (PR number)
  std::string git_rev;   ///< HEAD at record time ("unknown" when detached)
  std::uint64_t seed = 0;
  std::size_t probes = 0;
  std::size_t daily_budget = 0;
  std::uint32_t days = 0;
  unsigned repetitions = 0;
  std::string dataset_hash;  ///< canonical (threads=1) campaign-day hash
  std::uint64_t peak_rss_bytes = 0;
  std::vector<BenchSection> sections;

  [[nodiscard]] const BenchSection* section(std::string_view name) const;

  /// Pretty-printed JSON document (stable field order, parse()-compatible).
  void write_json(std::ostream& out) const;

  /// Parse a document produced by write_json (or hand-edited within the
  /// schema). Returns nullopt and fills `error` on malformed/mismatched
  /// input.
  [[nodiscard]] static std::optional<BenchReport> parse(std::string_view text,
                                                        std::string* error);

  /// True when wall-clock and hash comparisons between the two reports are
  /// meaningful: same scale knobs and seed.
  [[nodiscard]] bool comparable_with(const BenchReport& other) const;
};

struct CompareOptions {
  /// Wall-clock regression threshold on section p50, in percent.
  double max_regress_pct = 10.0;
};

struct CompareResult {
  struct Line {
    std::string section;
    double baseline_ms = 0.0;
    double candidate_ms = 0.0;
    double delta_pct = 0.0;
    bool regression = false;
    /// Candidate-only section (a newly added benchmark): rendered with an
    /// empty baseline column and never counted as a regression.
    bool is_new = false;
  };
  std::vector<Line> lines;
  /// Sections present in only one report (renamed suite = not comparable).
  std::vector<std::string> missing_in_candidate;
  std::vector<std::string> new_in_candidate;
  bool scales_comparable = false;
  bool hash_drift = false;  ///< only ever true when scales_comparable
  [[nodiscard]] bool wall_clock_regressed() const;
};

[[nodiscard]] CompareResult compare_reports(const BenchReport& baseline,
                                            const BenchReport& candidate,
                                            const CompareOptions& options = {});

/// Human-readable comparison table + verdict lines.
void write_compare_text(std::ostream& out, const CompareResult& result,
                        const CompareOptions& options);

}  // namespace cloudrtt::obs

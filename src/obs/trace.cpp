#include "obs/trace.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_events.hpp"
#include "util/text.hpp"

namespace cloudrtt::obs {

namespace {

struct PhaseNode {
  std::string name;
  PhaseNode* parent = nullptr;
  double total_ms = 0.0;
  std::uint64_t count = 0;
  std::vector<std::unique_ptr<PhaseNode>> children;
};

[[nodiscard]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The per-thread cursor: which node new spans nest under. Null means the
// tracker's root.
thread_local PhaseNode* t_current = nullptr;

}  // namespace

struct SpanTracker::Impl {
  mutable std::mutex mutex;
  PhaseNode root;
  std::uint64_t generation = 0;  ///< bumped by reset() to orphan open spans
};

SpanTracker::SpanTracker() : impl_(new Impl) {}

SpanTracker& SpanTracker::global() {
  static SpanTracker tracker;
  return tracker;
}

Span::Span(std::string_view name) : start_ns_(now_ns()) {
  SpanTracker::Impl& impl = *SpanTracker::global().impl_;
  const std::scoped_lock lock{impl.mutex};
  generation_ = impl.generation;
  PhaseNode* parent = t_current ? t_current : &impl.root;
  for (const std::unique_ptr<PhaseNode>& child : parent->children) {
    if (child->name == name) {
      node_ = child.get();
      break;
    }
  }
  if (node_ == nullptr) {
    auto created = std::make_unique<PhaseNode>();
    created->name = std::string{name};
    created->parent = parent;
    node_ = created.get();
    parent->children.push_back(std::move(created));
  }
  t_current = static_cast<PhaseNode*>(node_);
}

Span::Span(Span&& other) noexcept
    : node_(other.node_),
      start_ns_(other.start_ns_),
      generation_(other.generation_) {
  other.node_ = nullptr;
}

void Span::end() {
  if (node_ == nullptr) return;
  auto* node = static_cast<PhaseNode*>(node_);
  node_ = nullptr;
  const std::uint64_t end_ns = now_ns();
  SpanTracker::Impl& impl = *SpanTracker::global().impl_;
  const std::scoped_lock lock{impl.mutex};
  if (generation_ != impl.generation) {
    // The tree was reset while this span was open; its node is gone.
    t_current = nullptr;
    return;
  }
  node->total_ms += static_cast<double>(end_ns - start_ns_) / 1e6;
  node->count += 1;
  t_current = node->parent == &impl.root ? nullptr : node->parent;
  // Mirror the span into the Chrome-trace buffer when --trace-out is live:
  // one complete event per span instance, stamped with this thread's id.
  if (TraceRecorder::global().enabled()) {
    TraceRecorder::global().record_complete(node->name, "phase", start_ns_,
                                            end_ns - start_ns_);
  }
}

Span::~Span() { end(); }

namespace {

void write_node_text(std::ostream& out, const PhaseNode& node, int depth) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << node.name << "  " << util::format_double(node.total_ms, 2) << " ms";
  if (node.count > 1) out << "  x" << node.count;
  out << '\n';
  for (const std::unique_ptr<PhaseNode>& child : node.children) {
    write_node_text(out, *child, depth + 1);
  }
}

void write_node_json(util::JsonWriter& json, const PhaseNode& node) {
  json.begin_object();
  json.field("name", node.name);
  json.field("total_ms", node.total_ms);
  json.field("count", node.count);
  json.key("children");
  json.begin_array();
  for (const std::unique_ptr<PhaseNode>& child : node.children) {
    write_node_json(json, *child);
  }
  json.end_array();
  json.end_object();
}

[[nodiscard]] double sum_named(const PhaseNode& node, std::string_view name) {
  double total = node.name == name ? node.total_ms : 0.0;
  for (const std::unique_ptr<PhaseNode>& child : node.children) {
    total += sum_named(*child, name);
  }
  return total;
}

}  // namespace

void SpanTracker::write_text(std::ostream& out) const {
  const std::scoped_lock lock{impl_->mutex};
  for (const std::unique_ptr<PhaseNode>& child : impl_->root.children) {
    write_node_text(out, *child, 0);
  }
}

void SpanTracker::write_json_fields(util::JsonWriter& json) const {
  const std::scoped_lock lock{impl_->mutex};
  json.key("phases");
  json.begin_array();
  for (const std::unique_ptr<PhaseNode>& child : impl_->root.children) {
    write_node_json(json, *child);
  }
  json.end_array();
}

double SpanTracker::total_ms(std::string_view name) const {
  const std::scoped_lock lock{impl_->mutex};
  double total = 0.0;
  for (const std::unique_ptr<PhaseNode>& child : impl_->root.children) {
    total += sum_named(*child, name);
  }
  return total;
}

void SpanTracker::reset() {
  const std::scoped_lock lock{impl_->mutex};
  impl_->root.children.clear();
  impl_->generation += 1;
  t_current = nullptr;
}

void write_observability_json(std::ostream& out) {
  util::JsonWriter json{out};
  json.begin_object();
  Registry::global().write_json_fields(json);
  SpanTracker::global().write_json_fields(json);
  json.end_object();
  out << '\n';
}

}  // namespace cloudrtt::obs

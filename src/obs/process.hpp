#pragma once
// Process-level resource counters for the bench/trace exports: current and
// peak resident-set size read from /proc/self/status. Returns 0 on platforms
// without procfs — callers treat 0 as "unavailable", so the bench report and
// trace counters simply omit memory data there.

#include <cstdint>

namespace cloudrtt::obs {

/// VmRSS in bytes, or 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

/// VmHWM (peak resident set) in bytes, or 0 when unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace cloudrtt::obs

#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <vector>

namespace cloudrtt::obs {

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::Warn)};
}

namespace {

constexpr std::string_view kLevelNames[] = {"trace", "debug", "info",
                                            "warn",  "error", "off"};

[[nodiscard]] std::string_view padded_level(Level level) {
  switch (level) {
    case Level::Trace: return "trace";
    case Level::Debug: return "debug";
    case Level::Info: return "info ";
    case Level::Warn: return "warn ";
    case Level::Error: return "error";
    case Level::Off: return "off  ";
  }
  return "?????";
}

/// %.10g matches util::JsonWriter's number formatting.
void write_number(std::ostream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  out << buffer;
}

void write_json_escaped(std::ostream& out, std::string_view text) {
  for (const char ch : text) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out << buffer;
        } else {
          out << ch;
        }
    }
  }
}

void write_field_value(std::ostream& out, const Field& field, bool json) {
  switch (field.kind) {
    case Field::Kind::Int: out << field.i; break;
    case Field::Kind::Uint: out << field.u; break;
    case Field::Kind::Float: write_number(out, field.d); break;
    case Field::Kind::Bool: out << (field.b ? "true" : "false"); break;
    case Field::Kind::Str:
      if (json) {
        out << '"';
        write_json_escaped(out, field.s);
        out << '"';
      } else {
        out << field.s;
      }
      break;
  }
}

}  // namespace

std::string_view to_string(Level level) {
  const auto index = static_cast<std::size_t>(level);
  if (index >= std::size(kLevelNames)) return "?";
  return kLevelNames[index];
}

std::optional<Level> level_from_string(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char ch : text) {
    lower.push_back(ch >= 'A' && ch <= 'Z' ? static_cast<char>(ch - 'A' + 'a')
                                           : ch);
  }
  for (std::size_t i = 0; i < std::size(kLevelNames); ++i) {
    if (lower == kLevelNames[i]) return static_cast<Level>(i);
  }
  return std::nullopt;
}

void TextSink::write(const LogRecord& record) {
  std::ostream& out = *out_;
  out << '[' << padded_level(record.level) << "] " << record.event;
  for (std::size_t i = 0; i < record.field_count; ++i) {
    const Field& field = record.fields[i];
    out << ' ' << field.name << '=';
    write_field_value(out, field, /*json=*/false);
  }
  out << '\n';
}

void JsonLinesSink::write(const LogRecord& record) {
  std::ostream& out = *out_;
  out << "{\"t_ms\":";
  write_number(out, record.t_ms);
  out << ",\"level\":\"" << to_string(record.level) << "\",\"event\":\"";
  write_json_escaped(out, record.event);
  out << '"';
  for (std::size_t i = 0; i < record.field_count; ++i) {
    const Field& field = record.fields[i];
    out << ",\"";
    write_json_escaped(out, field.name);
    out << "\":";
    write_field_value(out, field, /*json=*/true);
  }
  out << "}\n";
}

struct Logger::Impl {
  std::mutex mutex;
  std::vector<std::unique_ptr<Sink>> sinks;
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
};

Logger::Logger() : impl_(std::make_unique<Impl>()) {
  impl_->sinks.push_back(std::make_unique<TextSink>(std::cerr));
  if (const char* env = std::getenv("CLOUDRTT_LOG")) {
    if (const auto level = level_from_string(env)) set_level(*level);
  }
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::add_sink(std::unique_ptr<Sink> sink) {
  const std::scoped_lock lock{impl_->mutex};
  impl_->sinks.push_back(std::move(sink));
}

void Logger::clear_sinks() {
  const std::scoped_lock lock{impl_->mutex};
  impl_->sinks.clear();
}

void Logger::emit(Level level, std::string_view event,
                  std::initializer_list<Field> fields) {
  LogRecord record;
  record.level = level;
  record.event = event;
  record.fields = fields.begin();
  record.field_count = fields.size();
  record.t_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - impl_->start)
                    .count();
  const std::scoped_lock lock{impl_->mutex};
  for (const std::unique_ptr<Sink>& sink : impl_->sinks) sink->write(record);
}

}  // namespace cloudrtt::obs

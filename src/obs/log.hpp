#pragma once
// Structured logging for the simulator pipeline.
//
// Design goals, in order: (1) a disabled statement costs one relaxed atomic
// load and a predictable branch — cheap enough for the measurement hot path;
// (2) records are structured (event name + typed key/value fields), so the
// JSON-lines sink is machine-readable without parsing free text; (3) sinks
// are pluggable (stderr text, JSON-lines file, test capture).
//
//   CLOUDRTT_LOG_INFO("campaign.day", {"day", day}, {"budget_left", left});
//
// The global level comes from the CLOUDRTT_LOG environment variable
// (trace|debug|info|warn|error|off; default warn) and can be overridden at
// runtime (the CLI's --log-level / --quiet flags do this).

#include <atomic>
#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <ostream>
#include <string_view>

namespace cloudrtt::obs {

enum class Level : int { Trace = 0, Debug, Info, Warn, Error, Off };

[[nodiscard]] std::string_view to_string(Level level);
/// Parse "trace".."off" (case-insensitive); nullopt on anything else.
[[nodiscard]] std::optional<Level> level_from_string(std::string_view text);

namespace detail {
extern std::atomic<int> g_level;  ///< the one word the fast path reads
}

/// The single-branch fast path: every CLOUDRTT_LOG_* statement starts here
/// and goes no further when the level is filtered out.
[[nodiscard]] inline bool log_enabled(Level level) {
  return static_cast<int>(level) >=
         detail::g_level.load(std::memory_order_relaxed);
}

/// One typed key/value pair. Values are captured by view — fields only live
/// for the duration of the emit call.
struct Field {
  enum class Kind : unsigned char { Int, Uint, Float, Bool, Str };

  std::string_view name;
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
  std::string_view s;

  Field(std::string_view n, bool v) : name(n), kind(Kind::Bool), b(v) {}
  Field(std::string_view n, double v) : name(n), kind(Kind::Float), d(v) {}
  Field(std::string_view n, std::string_view v) : name(n), kind(Kind::Str), s(v) {}
  Field(std::string_view n, const char* v) : name(n), kind(Kind::Str), s(v) {}
  template <std::signed_integral T>
    requires(!std::same_as<T, bool>)
  Field(std::string_view n, T v)
      : name(n), kind(Kind::Int), i(static_cast<std::int64_t>(v)) {}
  template <std::unsigned_integral T>
    requires(!std::same_as<T, bool>)
  Field(std::string_view n, T v)
      : name(n), kind(Kind::Uint), u(static_cast<std::uint64_t>(v)) {}
};

struct LogRecord {
  Level level = Level::Info;
  std::string_view event;
  const Field* fields = nullptr;
  std::size_t field_count = 0;
  double t_ms = 0.0;  ///< milliseconds since logger start (steady clock)
};

/// Output backend. Implementations must tolerate concurrent emit() callers:
/// the logger serialises writes with an internal mutex.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const LogRecord& record) = 0;
};

/// Human-oriented single-line text: `[info ] campaign.day day=3 tasks=210`.
class TextSink : public Sink {
 public:
  explicit TextSink(std::ostream& out) : out_(&out) {}
  void write(const LogRecord& record) override;

 private:
  std::ostream* out_;
};

/// One JSON object per line: {"t_ms":1.2,"level":"info","event":"x","day":3}.
/// Field names and string values are escaped with the same rules as
/// util::JsonWriter, so any JSON-lines consumer can ingest the stream.
class JsonLinesSink : public Sink {
 public:
  explicit JsonLinesSink(std::ostream& out) : out_(&out) {}
  void write(const LogRecord& record) override;

 private:
  std::ostream* out_;
};

class Logger {
 public:
  /// Process-wide logger; starts with a stderr TextSink and the level from
  /// CLOUDRTT_LOG (default warn).
  [[nodiscard]] static Logger& global();

  void set_level(Level level) {
    detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] Level level() const {
    return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
  }

  void add_sink(std::unique_ptr<Sink> sink);
  void clear_sinks();

  /// Slow path; call through the CLOUDRTT_LOG_* macros so the fields are
  /// never even constructed when the level is filtered.
  void emit(Level level, std::string_view event,
            std::initializer_list<Field> fields);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  Logger();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cloudrtt::obs

// The fields argument list may contain braced initialisers with commas; the
// preprocessor splits them into multiple macro arguments and __VA_ARGS__
// splices them back together verbatim.
#define CLOUDRTT_LOG(lvl, event, ...)                                         \
  do {                                                                        \
    if (::cloudrtt::obs::log_enabled(lvl)) {                                  \
      ::cloudrtt::obs::Logger::global().emit((lvl), (event), {__VA_ARGS__});  \
    }                                                                         \
  } while (0)

#define CLOUDRTT_LOG_TRACE(event, ...) \
  CLOUDRTT_LOG(::cloudrtt::obs::Level::Trace, event, __VA_ARGS__)
#define CLOUDRTT_LOG_DEBUG(event, ...) \
  CLOUDRTT_LOG(::cloudrtt::obs::Level::Debug, event, __VA_ARGS__)
#define CLOUDRTT_LOG_INFO(event, ...) \
  CLOUDRTT_LOG(::cloudrtt::obs::Level::Info, event, __VA_ARGS__)
#define CLOUDRTT_LOG_WARN(event, ...) \
  CLOUDRTT_LOG(::cloudrtt::obs::Level::Warn, event, __VA_ARGS__)
#define CLOUDRTT_LOG_ERROR(event, ...) \
  CLOUDRTT_LOG(::cloudrtt::obs::Level::Error, event, __VA_ARGS__)

#pragma once
// Operator-facing progress reporting for long campaigns (CLI `--progress`):
// one status line per completed day with throughput (days/sec, tasks/sec),
// an ETA extrapolated from the days done so far, and the executor's
// per-worker busy fraction. Driven off the same day boundaries the phase
// spans mark, so the cost is one clock read and one stderr write per
// simulated day — nothing on the task hot path.
//
// Disabled by default; while disabled every call is a relaxed atomic load.
// The reporter is process-global like the rest of obs and prints with '\r'
// so an interactive terminal shows a single updating line; the final day of
// each campaign ends with '\n' to leave a permanent record.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace cloudrtt::obs {

class Progress {
 public:
  [[nodiscard]] static Progress& global();

  /// Route updates to `out` (defaults to std::cerr) and start reporting.
  void enable(std::ostream* out = nullptr);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Mark the start of a campaign: resets the rate window.
  void begin_campaign(std::string_view label, std::uint32_t total_days);

  /// Report one completed day. `days_done` counts from the campaign start
  /// (resume-aware callers pass completed-this-run); `tasks` is the day's
  /// delivered task count; `busy_fraction` in [0,1] (negative = unknown).
  void day_completed(std::uint32_t days_done, std::uint32_t total_days,
                     std::size_t tasks, double busy_fraction);

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

 private:
  Progress();
  std::atomic<bool> enabled_{false};
  struct Impl;
  Impl* impl_;  ///< leaked, like the other obs singletons
};

}  // namespace cloudrtt::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>

namespace cloudrtt::obs {

namespace {

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double candidate) {
  double current = target.load(std::memory_order_relaxed);
  while (current < candidate &&
         !target.compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
  }
}

[[nodiscard]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// "campaign.tasks_total" -> "cloudrtt_campaign_tasks_total".
[[nodiscard]] std::string prometheus_name(std::string_view name) {
  std::string out = "cloudrtt_";
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

/// Counters carry the conventional `_total` unit suffix in the exposition
/// even when the in-process dotted name predates the convention.
[[nodiscard]] std::string prometheus_counter_name(std::string_view name) {
  std::string out = prometheus_name(name);
  if (!ends_with(out, "_total")) out += "_total";
  return out;
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

std::size_t Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;
  const double position =
      (std::log2(value) - kMinExponent) * static_cast<double>(kSubBuckets);
  if (position <= 0.0) return 0;
  const auto index = static_cast<std::size_t>(position);
  return std::min(index, kBucketCount - 1);
}

double Histogram::bucket_lower_bound(std::size_t index) {
  return std::exp2(static_cast<double>(index) / kSubBuckets + kMinExponent);
}

void Histogram::record(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_max(max_, value);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // With one sample every quantile IS that sample; the bucket interpolation
  // below would report the bucket's geometric midpoint, up to ~9% under the
  // recorded value.
  if (total == 1) return max();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double lower = bucket_lower_bound(i);
      const double upper = bucket_lower_bound(i + 1);
      const double fraction =
          std::clamp((target - static_cast<double>(seen)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      // Geometric interpolation inside the bucket, clamped to the observed
      // maximum so the top quantiles never exceed a real sample.
      return std::min(lower * std::pow(upper / lower, fraction), max());
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::reset() {
  for (std::atomic<std::uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(histogram), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  histogram_.record(static_cast<double>(now_ns() - start_ns_) / 1e6);
}

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map keeps exports sorted and deterministic; std::deque keeps the
  // metric objects' addresses stable as the registry grows.
  // lint:guarded_by(mutex)
  std::map<std::string, Counter*, std::less<>> counters;
  // lint:guarded_by(mutex)
  std::map<std::string, Gauge*, std::less<>> gauges;
  // lint:guarded_by(mutex)
  std::map<std::string, Histogram*, std::less<>> histograms;
  std::deque<Counter> counter_storage;
  std::deque<Gauge> gauge_storage;
  std::deque<Histogram> histogram_storage;
  // Optional `# HELP` text per metric name, set on first registration.
  std::map<std::string, std::string, std::less<>> help;

  void set_help(std::string_view name, std::string_view text) {
    if (text.empty()) return;
    help.emplace(std::string{name}, std::string{text});
  }

  [[nodiscard]] std::string_view help_for(std::string_view name) const {
    const auto it = help.find(name);
    return it == help.end() ? std::string_view{} : it->second;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  // Leaked on purpose: instrumented code may hold metric references in
  // static objects whose destructors run after main().
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock{impl_->mutex};
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return *it->second;
  Counter& created = impl_->counter_storage.emplace_back();
  impl_->counters.emplace(std::string{name}, &created);
  return created;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock{impl_->mutex};
  const auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return *it->second;
  Gauge& created = impl_->gauge_storage.emplace_back();
  impl_->gauges.emplace(std::string{name}, &created);
  return created;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::scoped_lock lock{impl_->mutex};
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return *it->second;
  Histogram& created = impl_->histogram_storage.emplace_back();
  impl_->histograms.emplace(std::string{name}, &created);
  return created;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  Counter& created = counter(name);
  const std::scoped_lock lock{impl_->mutex};
  impl_->set_help(name, help);
  return created;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  Gauge& created = gauge(name);
  const std::scoped_lock lock{impl_->mutex};
  impl_->set_help(name, help);
  return created;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  Histogram& created = histogram(name);
  const std::scoped_lock lock{impl_->mutex};
  impl_->set_help(name, help);
  return created;
}

void Registry::reset_values() {
  const std::scoped_lock lock{impl_->mutex};
  for (Counter& counter : impl_->counter_storage) counter.reset();
  for (Gauge& gauge : impl_->gauge_storage) gauge.reset();
  for (Histogram& histogram : impl_->histogram_storage) histogram.reset();
}

void Registry::write_json_fields(util::JsonWriter& json) const {
  const std::scoped_lock lock{impl_->mutex};
  json.key("counters");
  json.begin_object();
  for (const auto& [name, counter] : impl_->counters) {
    json.field(name, counter->value());
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, gauge] : impl_->gauges) {
    json.field(name, gauge->value());
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, histogram] : impl_->histograms) {
    json.key(name);
    json.begin_object();
    json.field("count", histogram->count());
    json.field("sum", histogram->sum());
    json.field("mean", histogram->mean());
    json.field("p50", histogram->quantile(0.50));
    json.field("p90", histogram->quantile(0.90));
    json.field("p99", histogram->quantile(0.99));
    json.field("max", histogram->max());
    json.end_object();
  }
  json.end_object();
}

void Registry::write_json(std::ostream& out) const {
  util::JsonWriter json{out};
  json.begin_object();
  write_json_fields(json);
  json.end_object();
  out << '\n';
}

void Registry::write_prometheus(std::ostream& out) const {
  const std::scoped_lock lock{impl_->mutex};
  char buffer[64];
  const auto number = [&](double value) -> const char* {
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    return buffer;
  };
  const auto help_line = [&](const std::string& prom, std::string_view name) {
    const std::string_view help = impl_->help_for(name);
    out << "# HELP " << prom << ' ';
    if (help.empty()) {
      out << "cloudrtt metric " << name;
    } else {
      out << help;
    }
    out << '\n';
  };
  for (const auto& [name, counter] : impl_->counters) {
    const std::string prom = prometheus_counter_name(name);
    help_line(prom, name);
    out << "# TYPE " << prom << " counter\n"
        << prom << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : impl_->gauges) {
    const std::string prom = prometheus_name(name);
    help_line(prom, name);
    out << "# TYPE " << prom << " gauge\n"
        << prom << ' ' << number(gauge->value()) << '\n';
  }
  for (const auto& [name, histogram] : impl_->histograms) {
    const std::string prom = prometheus_name(name);
    help_line(prom, name);
    out << "# TYPE " << prom << " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      out << prom << "{quantile=\"" << number(q) << "\"} ";
      out << number(histogram->quantile(q)) << '\n';
    }
    out << prom << "_sum " << number(histogram->sum()) << '\n'
        << prom << "_count " << histogram->count() << '\n';
  }
}

Registry::Snapshot Registry::snapshot() const {
  const std::scoped_lock lock{impl_->mutex};
  Snapshot snap;
  for (const auto& [name, counter] : impl_->counters) {
    snap.counters.push_back({name, static_cast<double>(counter->value())});
  }
  for (const auto& [name, gauge] : impl_->gauges) {
    snap.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, histogram] : impl_->histograms) {
    snap.histograms.push_back({name, histogram->count(), histogram->mean(),
                               histogram->quantile(0.50),
                               histogram->quantile(0.90),
                               histogram->quantile(0.99), histogram->max()});
  }
  return snap;
}

}  // namespace cloudrtt::obs

#include "obs/progress.hpp"

#include <iostream>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/trace_events.hpp"
#include "util/text.hpp"

namespace cloudrtt::obs {

struct Progress::Impl {
  std::mutex mutex;
  std::ostream* out = &std::cerr;
  std::string label;
  std::uint64_t campaign_start_ns = 0;
  std::uint64_t tasks_so_far = 0;
};

Progress::Progress() : impl_(new Impl) {}

Progress& Progress::global() {
  static Progress* progress = new Progress;
  return *progress;
}

void Progress::enable(std::ostream* out) {
  const std::scoped_lock lock{impl_->mutex};
  impl_->out = out != nullptr ? out : &std::cerr;
  enabled_.store(true, std::memory_order_release);
}

void Progress::disable() {
  enabled_.store(false, std::memory_order_release);
}

void Progress::begin_campaign(std::string_view label,
                              std::uint32_t total_days) {
  if (!enabled()) return;
  const std::scoped_lock lock{impl_->mutex};
  impl_->label = std::string{label};
  impl_->campaign_start_ns = monotonic_ns();
  impl_->tasks_so_far = 0;
  *impl_->out << "[" << impl_->label << "] " << total_days
              << " days scheduled\n";
}

void Progress::day_completed(std::uint32_t days_done, std::uint32_t total_days,
                             std::size_t tasks, double busy_fraction) {
  if (!enabled()) return;
  const std::scoped_lock lock{impl_->mutex};
  impl_->tasks_so_far += tasks;
  const double elapsed_s =
      static_cast<double>(monotonic_ns() - impl_->campaign_start_ns) / 1e9;
  const double days_per_s =
      elapsed_s > 0.0 ? static_cast<double>(days_done) / elapsed_s : 0.0;
  const double tasks_per_s =
      elapsed_s > 0.0 ? static_cast<double>(impl_->tasks_so_far) / elapsed_s
                      : 0.0;
  const std::uint32_t remaining =
      total_days > days_done ? total_days - days_done : 0;
  std::string line = "\r[" + impl_->label + "] day " +
                     std::to_string(days_done) + "/" +
                     std::to_string(total_days) + " · " +
                     std::to_string(impl_->tasks_so_far) + " tasks · " +
                     util::format_double(days_per_s, 1) + " days/s · " +
                     util::format_double(tasks_per_s / 1000.0, 1) +
                     "k tasks/s";
  if (days_per_s > 0.0) {
    const double eta_s = static_cast<double>(remaining) / days_per_s;
    line += " · ETA " + util::format_double(eta_s, 1) + "s";
  }
  if (busy_fraction >= 0.0) {
    line += " · busy " + util::format_double(busy_fraction * 100.0, 0) + "%";
  }
  *impl_->out << line << (remaining == 0 ? "\n" : "") << std::flush;
}

}  // namespace cloudrtt::obs

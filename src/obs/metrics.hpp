#pragma once
// Metrics registry: named counters, gauges, and log-bucketed histograms
// behind a process-wide Registry, exportable as JSON (for --metrics-out) and
// Prometheus-style text.
//
// Hot-path cost: Counter::inc is one relaxed atomic add; Histogram::record is
// one log2 plus three relaxed atomics. Callers on hot paths should look the
// metric up once (Registry lookups take a mutex) and keep the reference —
// metric objects are never invalidated once created.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace cloudrtt::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that goes up and down (fleet sizes, budgets).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram of non-negative samples (latencies, durations).
/// Buckets are geometric with four per octave, covering 2^-10 .. 2^54, so
/// quantile estimates carry at most ~9% relative error — plenty for p50/p99
/// of RTTs while keeping record() branch-free and allocation-free.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;       ///< buckets per octave
  static constexpr int kMinExponent = -10;    ///< 2^-10 ~ 1 microsecond in ms
  static constexpr int kMaxExponent = 54;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>((kMaxExponent - kMinExponent) * kSubBuckets);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double max() const { return max_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Estimated q-quantile (q in [0,1]) by geometric interpolation inside the
  /// covering bucket; exact for max, 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  [[nodiscard]] static std::size_t bucket_index(double value);
  [[nodiscard]] static double bucket_lower_bound(std::size_t index);

  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// RAII wall-clock timer recording milliseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

/// Named-metric registry. `global()` is the process-wide instance every
/// instrumented subsystem uses; separate instances exist for tests.
/// Metric names are dotted paths ("campaign.tasks_total"); the Prometheus
/// exporter rewrites them to `cloudrtt_campaign_tasks_total`.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  [[nodiscard]] static Registry& global();

  /// Find-or-create; returned references stay valid for the registry's life.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Find-or-create with a `# HELP` description for the Prometheus
  /// exposition. The help text is set on first registration and never
  /// overwritten, so hot-path callers can keep using the plain overloads.
  [[nodiscard]] Counter& counter(std::string_view name, std::string_view help);
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view help);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::string_view help);

  /// Zero every metric value; registrations (and references) survive.
  void reset_values();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// mean, max, p50, p90, p99}}} — written into an already-open JSON object
  /// so callers can compose (the CLI adds the phase tree alongside).
  void write_json_fields(util::JsonWriter& json) const;
  /// Standalone JSON document wrapper around write_json_fields.
  void write_json(std::ostream& out) const;

  /// Prometheus text exposition with `# HELP` / `# TYPE` headers per metric
  /// family. Dotted names are sanitized (dots → underscores) under the
  /// `cloudrtt_` prefix, and counters that do not already end in the
  /// conventional `_total` unit suffix get it appended, so the output
  /// scrapes cleanly. Histograms render as summaries (quantile-labelled
  /// rows plus `_sum`/`_count`).
  void write_prometheus(std::ostream& out) const;

  struct Snapshot {
    struct Entry {
      std::string name;
      double value = 0.0;
    };
    struct HistEntry {
      std::string name;
      std::uint64_t count = 0;
      double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
    };
    std::vector<Entry> counters;
    std::vector<Entry> gauges;
    std::vector<HistEntry> histograms;
  };
  /// Sorted-by-name snapshot for summary tables.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cloudrtt::obs

#include "obs/trace_events.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>

#include "util/json.hpp"

namespace cloudrtt::obs {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

std::atomic<std::uint32_t> g_next_thread_id{0};

[[nodiscard]] std::uint32_t assign_thread_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

struct Event {
  std::string name;
  std::string cat;
  std::uint64_t ts_ns = 0;   ///< relative to the enable() origin
  std::uint64_t dur_ns = 0;  ///< X events only
  std::uint32_t tid = 0;
  char phase = 'X';  ///< 'X' complete, 'C' counter, 'M' metadata
  double counter_value = 0.0;
  std::vector<std::pair<std::string, double>> args;
};

}  // namespace

struct TraceRecorder::Impl {
  mutable std::mutex mutex;
  std::uint64_t origin_ns = 0;
  std::vector<Event> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
};

std::atomic<bool> TraceRecorder::enabled_flag_{false};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

void TraceRecorder::enable() {
  const std::scoped_lock lock{impl_->mutex};
  impl_->events.clear();
  impl_->thread_names.clear();
  impl_->origin_ns = monotonic_ns();
  enabled_flag_.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  enabled_flag_.store(false, std::memory_order_release);
}

std::uint32_t TraceRecorder::current_thread_id() { return assign_thread_id(); }

void TraceRecorder::record_complete_slow(std::string_view name,
                                         std::string_view category,
                                         std::uint64_t start_ns,
                                         std::uint64_t duration_ns,
                                         std::initializer_list<Arg> args) {
  Event event;
  event.name = std::string{name};
  event.cat = std::string{category};
  event.dur_ns = duration_ns;
  event.tid = assign_thread_id();
  event.phase = 'X';
  for (const Arg& arg : args) {
    event.args.emplace_back(std::string{arg.key}, arg.value);
  }
  const std::scoped_lock lock{impl_->mutex};
  // Spans already open when enable() ran get clamped to the origin.
  event.ts_ns =
      start_ns > impl_->origin_ns ? start_ns - impl_->origin_ns : 0;
  impl_->events.push_back(std::move(event));
}

void TraceRecorder::record_counter_slow(std::string_view name, double value) {
  Event event;
  event.name = std::string{name};
  event.cat = "counter";
  event.tid = assign_thread_id();
  event.phase = 'C';
  event.counter_value = value;
  const std::uint64_t now = monotonic_ns();
  const std::scoped_lock lock{impl_->mutex};
  event.ts_ns = now > impl_->origin_ns ? now - impl_->origin_ns : 0;
  impl_->events.push_back(std::move(event));
}

void TraceRecorder::name_this_thread(std::string_view name) {
  if (!enabled()) return;
  const std::uint32_t tid = assign_thread_id();
  const std::scoped_lock lock{impl_->mutex};
  for (auto& [existing_tid, existing_name] : impl_->thread_names) {
    if (existing_tid == tid) {
      existing_name = std::string{name};
      return;
    }
  }
  impl_->thread_names.emplace_back(tid, std::string{name});
}

std::size_t TraceRecorder::size() const {
  const std::scoped_lock lock{impl_->mutex};
  return impl_->events.size();
}

void TraceRecorder::reset() {
  const std::scoped_lock lock{impl_->mutex};
  impl_->events.clear();
  impl_->thread_names.clear();
}

void TraceRecorder::write_json(std::ostream& out) const {
  std::vector<Event> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  {
    const std::scoped_lock lock{impl_->mutex};
    events = impl_->events;
    thread_names = impl_->thread_names;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  util::JsonWriter json{out};
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  // Metadata first: process name plus any named threads.
  const auto write_meta = [&](std::string_view name, std::uint32_t tid,
                              std::string_view value) {
    json.begin_object();
    json.field("name", name);
    json.field("ph", "M");
    json.field("pid", 1);
    json.field("tid", static_cast<std::uint64_t>(tid));
    json.key("args");
    json.begin_object();
    json.field("name", value);
    json.end_object();
    json.end_object();
  };
  write_meta("process_name", 0, "cloudrtt");
  for (const auto& [tid, name] : thread_names) {
    write_meta("thread_name", tid, name);
  }
  for (const Event& event : events) {
    json.begin_object();
    json.field("name", event.name);
    json.field("cat", event.cat);
    json.field("ph", std::string_view{&event.phase, 1});
    json.field("ts", static_cast<double>(event.ts_ns) / 1e3);
    if (event.phase == 'X') {
      json.field("dur", static_cast<double>(event.dur_ns) / 1e3);
    }
    json.field("pid", 1);
    json.field("tid", static_cast<std::uint64_t>(event.tid));
    if (event.phase == 'C') {
      json.key("args");
      json.begin_object();
      json.field("value", event.counter_value);
      json.end_object();
    } else if (!event.args.empty()) {
      json.key("args");
      json.begin_object();
      for (const auto& [key, value] : event.args) {
        json.field(key, value);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.field("displayTimeUnit", "ms");
  json.end_object();
  out << '\n';
}

}  // namespace cloudrtt::obs

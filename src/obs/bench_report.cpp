#include "obs/bench_report.hpp"

#include <cstdlib>

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/json.hpp"
#include "util/json_value.hpp"
#include "util/text.hpp"

namespace cloudrtt::obs {

namespace {

[[nodiscard]] double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return (samples[mid - 1] + samples[mid]) / 2.0;
}

}  // namespace

double BenchSection::p50_ms() const { return median(wall_ms); }

double BenchSection::min_ms() const {
  return wall_ms.empty() ? 0.0
                         : *std::min_element(wall_ms.begin(), wall_ms.end());
}

double BenchSection::max_ms() const {
  return wall_ms.empty() ? 0.0
                         : *std::max_element(wall_ms.begin(), wall_ms.end());
}

double BenchSection::mean_ms() const {
  if (wall_ms.empty()) return 0.0;
  double sum = 0.0;
  for (const double sample : wall_ms) sum += sample;
  return sum / static_cast<double>(wall_ms.size());
}

const BenchSection* BenchReport::section(std::string_view name) const {
  for (const BenchSection& entry : sections) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

void BenchReport::write_json(std::ostream& out) const {
  util::JsonWriter json{out};
  json.begin_object();
  json.field("schema", std::string{kSchemaName} + "/" +
                           std::to_string(schema_version));
  json.field("bench_id", bench_id);
  json.field("git_rev", git_rev);
  json.key("scale");
  json.begin_object();
  json.field("probes", static_cast<std::uint64_t>(probes));
  json.field("daily_budget", static_cast<std::uint64_t>(daily_budget));
  json.field("days", static_cast<std::uint64_t>(days));
  json.field("seed", seed);
  json.field("repetitions", static_cast<std::uint64_t>(repetitions));
  json.end_object();
  json.field("dataset_hash", dataset_hash);
  json.field("peak_rss_bytes", peak_rss_bytes);
  json.key("sections");
  json.begin_array();
  for (const BenchSection& entry : sections) {
    json.begin_object();
    json.field("name", entry.name);
    if (entry.threads > 0) json.field("threads", entry.threads);
    json.key("wall_ms");
    json.begin_array();
    for (const double sample : entry.wall_ms) json.value(sample);
    json.end_array();
    json.field("p50_ms", entry.p50_ms());
    json.field("mean_ms", entry.mean_ms());
    json.field("min_ms", entry.min_ms());
    json.field("max_ms", entry.max_ms());
    if (!entry.dataset_hash.empty()) {
      json.field("dataset_hash", entry.dataset_hash);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

std::optional<BenchReport> BenchReport::parse(std::string_view text,
                                              std::string* error) {
  const auto fail = [&](std::string_view why) -> std::optional<BenchReport> {
    if (error != nullptr) *error = std::string{why};
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<util::JsonValue> root =
      util::JsonValue::parse(text, &parse_error);
  if (!root) return fail("invalid JSON: " + parse_error);
  if (!root->is_object()) return fail("bench report must be a JSON object");

  BenchReport report;
  const std::string schema = root->string_at("schema");
  const std::string prefix = std::string{kSchemaName} + "/";
  if (schema.rfind(prefix, 0) != 0) {
    return fail("unrecognized schema '" + schema + "'");
  }
  report.schema_version = std::atoi(schema.c_str() + prefix.size());
  if (report.schema_version < 1 || report.schema_version > kSchemaVersion) {
    return fail("unsupported schema version '" + schema + "'");
  }
  report.bench_id = static_cast<int>(root->number_at("bench_id", 0));
  report.git_rev = root->string_at("git_rev", "unknown");
  report.dataset_hash = root->string_at("dataset_hash");
  report.peak_rss_bytes =
      static_cast<std::uint64_t>(root->number_at("peak_rss_bytes", 0));
  const util::JsonValue* scale = root->find("scale");
  if (scale == nullptr || !scale->is_object()) {
    return fail("missing 'scale' object");
  }
  report.probes = static_cast<std::size_t>(scale->number_at("probes", 0));
  report.daily_budget =
      static_cast<std::size_t>(scale->number_at("daily_budget", 0));
  report.days = static_cast<std::uint32_t>(scale->number_at("days", 0));
  report.seed = static_cast<std::uint64_t>(scale->number_at("seed", 0));
  report.repetitions =
      static_cast<unsigned>(scale->number_at("repetitions", 0));

  const util::JsonValue* sections = root->find("sections");
  if (sections == nullptr || !sections->is_array()) {
    return fail("missing 'sections' array");
  }
  for (const util::JsonValue& entry : sections->items()) {
    if (!entry.is_object()) return fail("section entries must be objects");
    BenchSection section;
    section.name = entry.string_at("name");
    if (section.name.empty()) return fail("section without a name");
    section.threads = static_cast<int>(entry.number_at("threads", 0));
    section.dataset_hash = entry.string_at("dataset_hash");
    const util::JsonValue* samples = entry.find("wall_ms");
    if (samples == nullptr || !samples->is_array()) {
      return fail("section '" + section.name + "' lacks wall_ms samples");
    }
    for (const util::JsonValue& sample : samples->items()) {
      if (!sample.is_number()) {
        return fail("section '" + section.name + "' has non-numeric sample");
      }
      section.wall_ms.push_back(sample.as_number());
    }
    report.sections.push_back(std::move(section));
  }
  return report;
}

bool BenchReport::comparable_with(const BenchReport& other) const {
  return probes == other.probes && daily_budget == other.daily_budget &&
         days == other.days && seed == other.seed;
}

bool CompareResult::wall_clock_regressed() const {
  return std::any_of(lines.begin(), lines.end(),
                     [](const Line& line) { return line.regression; });
}

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& candidate,
                              const CompareOptions& options) {
  CompareResult result;
  result.scales_comparable = baseline.comparable_with(candidate);
  for (const BenchSection& base : baseline.sections) {
    const BenchSection* cand = candidate.section(base.name);
    if (cand == nullptr) {
      result.missing_in_candidate.push_back(base.name);
      continue;
    }
    CompareResult::Line line;
    line.section = base.name;
    line.baseline_ms = base.p50_ms();
    line.candidate_ms = cand->p50_ms();
    line.delta_pct = line.baseline_ms > 0.0
                         ? (line.candidate_ms - line.baseline_ms) /
                               line.baseline_ms * 100.0
                         : 0.0;
    line.regression = line.delta_pct > options.max_regress_pct;
    result.lines.push_back(line);
    if (result.scales_comparable && !base.dataset_hash.empty() &&
        !cand->dataset_hash.empty() &&
        base.dataset_hash != cand->dataset_hash) {
      result.hash_drift = true;
    }
  }
  for (const BenchSection& cand : candidate.sections) {
    if (baseline.section(cand.name) == nullptr) {
      result.new_in_candidate.push_back(cand.name);
      // Candidate-only sections still get a table line — newly added
      // benchmarks must show up in the comparison, not vanish — but with no
      // baseline there is nothing to regress against.
      CompareResult::Line line;
      line.section = cand.name;
      line.candidate_ms = cand.p50_ms();
      line.is_new = true;
      result.lines.push_back(line);
    }
  }
  if (result.scales_comparable && !baseline.dataset_hash.empty() &&
      !candidate.dataset_hash.empty() &&
      baseline.dataset_hash != candidate.dataset_hash) {
    result.hash_drift = true;
  }
  return result;
}

void write_compare_text(std::ostream& out, const CompareResult& result,
                        const CompareOptions& options) {
  util::TextTable table;
  table.set_header({"section", "baseline p50", "candidate p50", "delta"});
  for (const CompareResult::Line& line : result.lines) {
    if (line.is_new) {
      table.add_row({line.section, "-",
                     util::format_double(line.candidate_ms, 2) + " ms",
                     "new"});
      continue;
    }
    table.add_row({line.section,
                   util::format_double(line.baseline_ms, 2) + " ms",
                   util::format_double(line.candidate_ms, 2) + " ms",
                   (line.delta_pct >= 0.0 ? "+" : "") +
                       util::format_double(line.delta_pct, 1) + "%" +
                       (line.regression ? "  REGRESSION" : "")});
  }
  out << table.render();
  for (const std::string& name : result.missing_in_candidate) {
    out << "missing in candidate: " << name << "\n";
  }
  if (!result.scales_comparable) {
    out << "note: scale knobs differ, dataset hashes not compared\n";
  } else if (result.hash_drift) {
    out << "DATASET-HASH DRIFT: same scale and seed produced different "
           "bits\n";
  } else {
    out << "dataset hashes match\n";
  }
  if (result.wall_clock_regressed()) {
    out << "wall-clock regression beyond "
        << util::format_double(options.max_regress_pct, 1) << "% threshold\n";
  }
}

}  // namespace cloudrtt::obs

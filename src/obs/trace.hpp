#pragma once
// Phase tracing: lightweight nested spans that aggregate wall-time per
// pipeline phase into a process-wide tree.
//
//   {
//     obs::Span build = obs::span("topology.world.build");
//     ...  // child spans nest automatically (thread-local stack)
//   }
//   obs::SpanTracker::global().write_text(std::cout);
//
// Repeated spans with the same name under the same parent aggregate (count +
// total wall-time), so per-day campaign spans collapse into one row. Spans
// are scoped to one thread; concurrent threads build parallel subtrees under
// the shared root.

#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "util/json.hpp"

namespace cloudrtt::obs {

class SpanTracker;

/// RAII handle for one phase. Move-only; ends at destruction or end().
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// End early (idempotent).
  void end();

 private:
  void* node_ = nullptr;  ///< opaque PhaseNode*; null once ended/moved-from
  std::uint64_t start_ns_ = 0;
  std::uint64_t generation_ = 0;  ///< tracker generation at construction
};

/// Convenience factory mirroring the call-site phrasing in the ISSUE:
/// `obs::Span s = obs::span("campaign.run");`
[[nodiscard]] inline Span span(std::string_view name) { return Span{name}; }

class SpanTracker {
 public:
  [[nodiscard]] static SpanTracker& global();

  /// Indented phase tree: name, total ms, count — children under parents.
  void write_text(std::ostream& out) const;

  /// "phases": [{name, total_ms, count, children: [...]}, ...] written into
  /// an already-open JSON object (composes with Registry::write_json_fields).
  void write_json_fields(util::JsonWriter& json) const;

  /// Total recorded wall-time of a phase by dotted-path-less name, summed
  /// over every position in the tree; 0 when absent. Mostly for tests.
  [[nodiscard]] double total_ms(std::string_view name) const;

  /// Drop the whole tree (tests). Spans still open when reset runs are
  /// discarded when they end rather than recorded.
  void reset();

  SpanTracker(const SpanTracker&) = delete;
  SpanTracker& operator=(const SpanTracker&) = delete;

 private:
  SpanTracker();
  friend class Span;
  struct Impl;
  Impl* impl_;  ///< leaked: spans may end during static destruction
};

/// One JSON document with everything: the global Registry's counters, gauges
/// and histograms plus the global phase tree — the payload behind the CLI's
/// --metrics-out flag.
void write_observability_json(std::ostream& out);

}  // namespace cloudrtt::obs

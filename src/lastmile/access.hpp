#pragma once
// Last-mile access models (§5 of the paper).
//
// Three technologies:
//  * HomeWifi — user device -> home router over the air, then router -> ISP
//    over the managed wired tail. The paper splits these as USR-ISP vs
//    RTR-ISP; we model the two sub-segments separately so the split is
//    measurable.
//  * Cellular — user device -> base station; the paper's SC cell category.
//  * Wired    — RIPE Atlas style managed/wired access.
//
// Calibration targets from the paper: wireless last-mile median ~20-25 ms
// with coefficient of variation ~0.5 across a probe's measurements; the
// wired part (router->ISP, and Atlas probes) ~10 ms with low variation.

#include "util/rng.hpp"

namespace cloudrtt::lastmile {

enum class AccessTech : unsigned char { HomeWifi, Cellular, Wired };

[[nodiscard]] constexpr std::string_view to_string(AccessTech tech) {
  switch (tech) {
    case AccessTech::HomeWifi: return "home-wifi";
    case AccessTech::Cellular: return "cellular";
    case AccessTech::Wired: return "wired";
  }
  return "?";
}

/// Per-probe last-mile parameters: each probe draws its own medians once
/// (location, RF environment, plan quality), then per-measurement samples
/// vary around them.
struct Profile {
  AccessTech tech = AccessTech::HomeWifi;
  double air_median_ms = 0.0;    ///< wireless segment median (0 for wired)
  double air_sigma = 0.0;        ///< per-sample lognormal sigma of the air leg
  double wired_median_ms = 0.0;  ///< router->ISP (home) or whole leg (wired)
  double wired_sigma = 0.0;
};

/// One measurement's last-mile contribution.
struct Sample {
  double air_ms = 0.0;
  double wired_ms = 0.0;
  [[nodiscard]] double total_ms() const { return air_ms + wired_ms; }
};

/// Draw the per-probe profile. `backhaul_quality` in [0,1] worsens both the
/// medians and the variability slightly in poorly-provisioned regions.
[[nodiscard]] Profile make_profile(AccessTech tech, double backhaul_quality,
                                   util::Rng& rng);

/// Draw one measurement's last-mile latencies from a probe profile.
[[nodiscard]] Sample draw(const Profile& profile, util::Rng& rng);

}  // namespace cloudrtt::lastmile

#include "lastmile/access.hpp"

#include <algorithm>

namespace cloudrtt::lastmile {

Profile make_profile(AccessTech tech, double backhaul_quality, util::Rng& rng) {
  Profile profile;
  profile.tech = tech;
  // Poor backhaul correlates with slightly slower, noisier access links.
  const double degrade = 1.0 + 0.30 * (1.0 - std::clamp(backhaul_quality, 0.0, 1.0));
  switch (tech) {
    case AccessTech::HomeWifi:
      // Air leg: WiFi contention/retransmissions, heavy-ish tail.
      profile.air_median_ms = rng.lognormal_median(11.0 * degrade, 0.35);
      profile.air_sigma = rng.uniform(0.38, 0.52);
      // Wired tail to the ISP: DSL/cable/fibre mix.
      profile.wired_median_ms = rng.lognormal_median(9.0 * degrade, 0.30);
      profile.wired_sigma = rng.uniform(0.22, 0.34);
      break;
    case AccessTech::Cellular:
      // One radio leg covering device -> base station (+ small backhaul).
      profile.air_median_ms = rng.lognormal_median(21.0 * degrade, 0.30);
      profile.air_sigma = rng.uniform(0.40, 0.55);
      profile.wired_median_ms = 0.0;
      profile.wired_sigma = 0.0;
      break;
    case AccessTech::Wired:
      profile.air_median_ms = 0.0;
      profile.air_sigma = 0.0;
      profile.wired_median_ms = rng.lognormal_median(9.0 * degrade, 0.28);
      profile.wired_sigma = rng.uniform(0.16, 0.28);
      break;
  }
  return profile;
}

Sample draw(const Profile& profile, util::Rng& rng) {
  Sample sample;
  if (profile.air_median_ms > 0.0) {
    sample.air_ms = rng.lognormal_median(profile.air_median_ms, profile.air_sigma);
    // Occasional contention spike (buffer bloat, rate adaptation).
    if (rng.chance(0.04)) sample.air_ms += rng.exponential(25.0);
  }
  if (profile.wired_median_ms > 0.0) {
    sample.wired_ms =
        rng.lognormal_median(profile.wired_median_ms, profile.wired_sigma);
    if (rng.chance(0.015)) sample.wired_ms += rng.exponential(12.0);
  }
  return sample;
}

}  // namespace cloudrtt::lastmile

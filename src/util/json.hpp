#pragma once
// Minimal streaming JSON writer (output only, no DOM): enough to export the
// study's experiment results for external plotting. Handles nesting, commas
// and string escaping; numbers are emitted with full precision.

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace cloudrtt::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, bool pretty = true)
      : out_(out), pretty_(pretty) {}

  // Containers. Every begin_* must be matched by the corresponding end_*;
  // enforced with asserts in debug and a validity flag in release.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key inside an object; must be followed by a value or container.
  void key(std::string_view name);

  // Values.
  void value(std::string_view text);
  void value(const char* text) { value(std::string_view{text}); }
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);
  void null();

  // Convenience: key + value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// All containers closed?
  [[nodiscard]] bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Frame : unsigned char { Object, Array };

  void prepare_for_value();
  void newline_indent();
  void write_escaped(std::string_view text);

  std::ostream& out_;
  bool pretty_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool pending_key_ = false;
  bool wrote_root_ = false;
};

}  // namespace cloudrtt::util

#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace cloudrtt::util {

void check_failed(std::string_view expression, std::string_view file, long line,
                  std::string_view message) noexcept {
  std::fprintf(stderr, "CLOUDRTT_CHECK failed: %.*s at %.*s:%ld",
               static_cast<int>(expression.size()), expression.data(),
               static_cast<int>(file.size()), file.data(), line);
  if (!message.empty()) {
    std::fprintf(stderr, ": %.*s", static_cast<int>(message.size()),
                 message.data());
  }
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace cloudrtt::util

#pragma once
// Descriptive statistics used throughout the study.
//
// The paper's primary metric is the *median* RTT (§3.3, robust to probe
// outliers); last-mile consistency uses the coefficient of variation
// Cv = sigma/mu (§5); and the methodology derives a minimum per-country
// sample size n = z^2 p(1-p) / eps^2 (§3.3). All of those live here.

#include <cstddef>
#include <optional>
#include <vector>

namespace cloudrtt::util {

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7 / numpy default). `q` in [0,1]. Empty input -> 0.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Quantile assuming `sorted` is already ascending (no copy).
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

[[nodiscard]] double median(std::vector<double> values);
[[nodiscard]] double mean(const std::vector<double>& values);
/// Population standard deviation (the paper's Cv uses sigma/mu over all
/// samples of a probe, not an unbiased estimator).
[[nodiscard]] double stddev(const std::vector<double>& values);

/// Coefficient of variation sigma/mu; nullopt when fewer than 2 samples or
/// mu == 0 (matches the paper's >=10-samples-per-pair guard, enforced by
/// callers).
[[nodiscard]] std::optional<double> coefficient_of_variation(
    const std::vector<double>& values);

/// Five-number summary + mean, as used by the box plots in Figs. 6/12/13/15.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  [[nodiscard]] double iqr() const { return p75 - p25; }
};

[[nodiscard]] Summary summarize(std::vector<double> values);

/// Empirical CDF over a fixed sample; evaluate() returns P[X <= x].
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] double evaluate(double x) const;
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Minimum sample size for estimating a proportion `p` with margin of error
/// `epsilon` at the z-score `z` (§3.3: z=1.96, p=0.5, eps=0.02 -> 2401).
[[nodiscard]] std::size_t required_sample_size(double z, double p, double epsilon);

/// z-score for the common two-sided confidence levels used in measurement
/// papers (0.90, 0.95, 0.99); interpolation is not attempted for others.
[[nodiscard]] double z_score_for_confidence(double confidence);

/// Bootstrap confidence interval for the median: resample with replacement
/// `resamples` times and take the (1-confidence)/2 quantiles of the
/// resampled medians. Deterministic given the RNG.
struct Interval {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] bool contains(double x) const { return x >= low && x <= high; }
  [[nodiscard]] double width() const { return high - low; }
};

class Rng;  // from util/rng.hpp

[[nodiscard]] Interval bootstrap_median_ci(const std::vector<double>& samples,
                                           double confidence, Rng& rng,
                                           std::size_t resamples = 500);

}  // namespace cloudrtt::util

#include "util/text.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cloudrtt::util {

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

void TextTable::set_header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const Row& row : rows_) absorb(row.cells);

  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const Row& row : rows_) {
    if (row.rule) {
      out << std::string(total, '-') << '\n';
    } else {
      emit(row.cells);
    }
  }
  return out.str();
}

std::string render_cdf_table(const std::vector<Series>& series,
                             const std::vector<double>& percentiles,
                             const std::string& value_unit) {
  TextTable table;
  std::vector<std::string> header{"pct"};
  std::vector<EmpiricalCdf> cdfs;
  cdfs.reserve(series.size());
  for (const Series& s : series) {
    header.push_back(s.label + " [" + value_unit + "]");
    cdfs.emplace_back(s.values);
  }
  table.set_header(std::move(header));
  for (const double p : percentiles) {
    std::vector<std::string> row{"p" + format_double(p * 100.0, 0)};
    for (const EmpiricalCdf& cdf : cdfs) {
      row.push_back(cdf.empty() ? "-" : format_double(cdf.quantile(p), 1));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_threshold_table(const std::vector<Series>& series,
                                   const std::vector<double>& thresholds,
                                   const std::string& value_unit) {
  TextTable table;
  std::vector<std::string> header{"series"};
  for (const double t : thresholds) {
    header.push_back("<= " + format_double(t, 0) + value_unit);
  }
  header.emplace_back("n");
  table.set_header(std::move(header));
  for (const Series& s : series) {
    const EmpiricalCdf cdf{s.values};
    std::vector<std::string> row{s.label};
    for (const double t : thresholds) {
      row.push_back(format_double(cdf.evaluate(t) * 100.0, 1) + "%");
    }
    row.push_back(std::to_string(cdf.size()));
    table.add_row(std::move(row));
  }
  return table.render();
}

namespace {

std::string box_glyph(const Summary& s, double axis_min, double axis_max,
                      std::size_t width) {
  if (s.count == 0 || axis_max <= axis_min) return std::string(width, ' ');
  std::string glyph(width, ' ');
  const auto pos = [&](double v) {
    double frac = (v - axis_min) / (axis_max - axis_min);
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<std::size_t>(std::lround(frac * static_cast<double>(width - 1)));
  };
  for (std::size_t i = pos(s.min); i <= pos(s.max); ++i) glyph[i] = '-';
  for (std::size_t i = pos(s.p25); i <= pos(s.p75); ++i) glyph[i] = '=';
  glyph[pos(s.median)] = '|';
  return glyph;
}

}  // namespace

std::string render_box_table(const std::vector<Series>& series,
                             const std::string& value_unit) {
  std::vector<Summary> summaries;
  summaries.reserve(series.size());
  double axis_min = 0.0;
  double axis_max = 0.0;
  for (const Series& s : series) {
    summaries.push_back(summarize(s.values));
    if (summaries.back().count > 0) {
      axis_max = std::max(axis_max, summaries.back().p90 * 1.1);
    }
  }
  TextTable table;
  table.set_header({"series", "n", "min", "p25", "median", "p75", "p90",
                    "box (" + value_unit + ", axis 0.." + format_double(axis_max, 0) + ")"});
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Summary& s = summaries[i];
    table.add_row({series[i].label, std::to_string(s.count), format_double(s.min, 1),
                   format_double(s.p25, 1), format_double(s.median, 1),
                   format_double(s.p75, 1), format_double(s.p90, 1),
                   box_glyph(s, axis_min, axis_max, 32)});
  }
  return table.render();
}

std::string bar(double value, double maximum, std::size_t width) {
  if (maximum <= 0.0) return std::string(width, ' ');
  const double frac = std::clamp(value / maximum, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(std::lround(frac * static_cast<double>(width)));
  std::string out(filled, '#');
  out.append(width - filled, '.');
  return out;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out << ',';
    const std::string& cell = cells[i];
    const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
      out << cell;
      continue;
    }
    out << '"';
    for (const char ch : cell) {
      if (ch == '"') out << '"';
      out << ch;
    }
    out << '"';
  }
  out << '\n';
}

std::vector<std::string> parse_csv_row(std::string_view line) {
  std::vector<std::string> cells;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else if (ch == '\r') {
      // tolerate CRLF
    } else {
      current += ch;
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

void write_series_csv(std::ostream& out, const std::vector<Series>& series) {
  write_csv_row(out, {"label", "value"});
  for (const Series& s : series) {
    for (const double v : s.values) {
      write_csv_row(out, {s.label, format_double(v, 4)});
    }
  }
}

}  // namespace cloudrtt::util

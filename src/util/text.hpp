#pragma once
// Plain-text rendering for the bench harnesses: aligned tables, ASCII box
// plots and CDF tables mirroring the paper's figures, and CSV export so the
// series can be re-plotted externally.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace cloudrtt::util {

/// Fixed-point formatting helper (avoids iostream state juggling).
[[nodiscard]] std::string format_double(double value, int decimals = 1);

/// Simple column-aligned table. First added row can be marked as header.
class TextTable {
 public:
  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  void add_rule();  ///< horizontal separator

  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// One labelled series of samples, e.g. one continent in Fig. 4.
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Render a CDF table: one row per requested percentile, one column per
/// series — the textual equivalent of the paper's CDF figures.
[[nodiscard]] std::string render_cdf_table(const std::vector<Series>& series,
                                           const std::vector<double>& percentiles,
                                           const std::string& value_unit = "ms");

/// Fraction of each series below each threshold (e.g. MTP/HPL/HRT lines).
[[nodiscard]] std::string render_threshold_table(
    const std::vector<Series>& series, const std::vector<double>& thresholds,
    const std::string& value_unit = "ms");

/// Render box-plot rows (min/p25/median/p75/p90/max) plus an ASCII glyph of
/// the IQR whiskers on a shared axis.
[[nodiscard]] std::string render_box_table(const std::vector<Series>& series,
                                           const std::string& value_unit = "ms");

/// A horizontal bar of `width` cells filled proportionally to value/maximum.
[[nodiscard]] std::string bar(double value, double maximum, std::size_t width = 24);

/// Write series out as tidy CSV (label,value) for external plotting.
void write_series_csv(std::ostream& out, const std::vector<Series>& series);

/// Write arbitrary rows as CSV with proper quoting.
void write_csv_row(std::ostream& out, const std::vector<std::string>& cells);

/// Parse one CSV line (RFC-4180 style quoting). Inverse of write_csv_row.
[[nodiscard]] std::vector<std::string> parse_csv_row(std::string_view line);

}  // namespace cloudrtt::util

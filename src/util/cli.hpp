#pragma once
// Tiny command-line parser for the tools/ binaries: long options with values
// (--days 6), boolean flags (--no-atlas), positionals, and generated help.
// No dependencies, strict by default (unknown options are errors).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrtt::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declare an option taking a value, e.g. add_option("days", "6", "...").
  void add_option(std::string name, std::string default_value, std::string help);
  /// Declare a boolean flag (false unless present).
  void add_flag(std::string name, std::string help);
  /// Declare a positional argument (required in declaration order unless a
  /// default is given).
  void add_positional(std::string name, std::string help,
                      std::optional<std::string> default_value = std::nullopt);

  /// Parse argv. Returns false (after printing a message) on error or when
  /// --help was requested.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] long get_int(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;

  [[nodiscard]] std::string help() const;
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  struct Option {
    std::string name;
    std::string value;
    std::string help;
    bool is_flag = false;
    bool flag_set = false;
  };
  struct Positional {
    std::string name;
    std::string help;
    std::optional<std::string> value;
    bool has_default = false;
  };

  Option* find(std::string_view name);
  [[nodiscard]] const Option* find(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<Positional> positionals_;
  std::string error_;
};

}  // namespace cloudrtt::util

#include "util/json_value.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

namespace cloudrtt::util {

namespace {
const std::string kEmptyString;
}  // namespace

bool JsonValue::as_bool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

double JsonValue::as_number(double fallback) const {
  return kind_ == Kind::Number ? number_ : fallback;
}

const std::string& JsonValue::as_string() const {
  return kind_ == Kind::String ? string_ : kEmptyString;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_at(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr ? member->as_number(fallback) : fallback;
}

std::string JsonValue::string_at(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = find(key);
  if (member == nullptr || !member->is_string()) return std::string{fallback};
  return member->as_string();
}

/// Recursive-descent parser over a string_view; depth-capped so malicious
/// nesting cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  [[nodiscard]] std::optional<JsonValue> run(std::string* error) {
    JsonValue root;
    if (!parse_value(root, 0)) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) + ": " + error_;
      }
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "offset " + std::to_string(pos_) + ": trailing content";
      }
      return std::nullopt;
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool fail(std::string_view why) {
    if (error_.empty()) error_ = std::string{why};
    return false;
  }

  [[nodiscard]] bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    // Caller consumed nothing; pos_ is at the opening quote.
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (ch == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("bad escape");
        const char escaped = text_[pos_ + 1];
        pos_ += 2;
        switch (escaped) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            std::uint32_t code = 0;
            for (int i = 0; i < 4; ++i) {
              const char hex = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4U;
              if (hex >= '0' && hex <= '9') {
                code |= static_cast<std::uint32_t>(hex - '0');
              } else if (hex >= 'a' && hex <= 'f') {
                code |= static_cast<std::uint32_t>(hex - 'a' + 10);
              } else if (hex >= 'A' && hex <= 'F') {
                code |= static_cast<std::uint32_t>(hex - 'A' + 10);
              } else {
                return fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // Encode the BMP code point as UTF-8 (surrogate pairs are passed
            // through unpaired; the writer never emits them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
              out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
            } else {
              out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
              out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
              out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out.push_back(ch);
      ++pos_;
    }
    return fail("unterminated string");
  }

  [[nodiscard]] bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double parsed = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, parsed);
    if (ec != std::errc{} || end != text_.data() + pos_) {
      return fail("invalid number");
    }
    out.kind_ = JsonValue::Kind::Number;
    out.number_ = parsed;
    return true;
  }

  [[nodiscard]] bool parse_value(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char ch = text_[pos_];
    switch (ch) {
      case '{': {
        ++pos_;
        out.kind_ = JsonValue::Kind::Object;
        skip_whitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_whitespace();
          std::string key;
          if (!parse_string(key)) return false;
          skip_whitespace();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':' after object key");
          }
          ++pos_;
          JsonValue member;
          if (!parse_value(member, depth + 1)) return false;
          out.members_.emplace_back(std::move(key), std::move(member));
          skip_whitespace();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        out.kind_ = JsonValue::Kind::Array;
        skip_whitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue item;
          if (!parse_value(item, depth + 1)) return false;
          out.items_.push_back(std::move(item));
          skip_whitespace();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '"': {
        out.kind_ = JsonValue::Kind::String;
        return parse_string(out.string_);
      }
      case 't':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = true;
        return consume_literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = false;
        return consume_literal("false");
      case 'n':
        out.kind_ = JsonValue::Kind::Null;
        return consume_literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  JsonParser parser{text};
  return parser.run(error);
}

}  // namespace cloudrtt::util

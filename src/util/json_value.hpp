#pragma once
// Minimal JSON parser (DOM, read side of util/json.hpp's writer): enough to
// load a BENCH_*.json report back for regression comparison and to validate
// the Chrome-trace export in tests. Strict on structure (unterminated
// containers, trailing garbage and bad escapes are errors), permissive on
// whitespace. Object member order is preserved, so round-tripping a document
// written by JsonWriter is deterministic.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cloudrtt::util {

class JsonValue {
 public:
  enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

  /// Parse one complete JSON document. Returns nullopt (and fills `error`
  /// with "offset N: reason" when given) on malformed input, including
  /// non-whitespace trailing content.
  [[nodiscard]] static std::optional<JsonValue> parse(
      std::string_view text, std::string* error = nullptr);

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }

  /// Typed accessors; the fallback is returned when the kind mismatches.
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] double as_number(double fallback = 0.0) const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array elements (empty for non-arrays).
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (empty for non-objects).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return members_;
  }
  /// First object member named `key`; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Convenience lookups for the common "object with scalar fields" shape.
  [[nodiscard]] double number_at(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_at(std::string_view key,
                                      std::string_view fallback = "") const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace cloudrtt::util

#pragma once
// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component of the study (probe placement, last-mile draws,
// transit jitter, hop responsiveness, ...) derives its stream from a single
// study seed via Rng::fork(), so a whole campaign is reproducible bit-for-bit
// from one integer. We implement xoshiro256++ (public-domain algorithm by
// Blackman & Vigna) seeded through splitmix64 rather than relying on
// std::mt19937 so that results are stable across standard libraries.

#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace cloudrtt::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a 64-bit offset basis: fnv1a_accum(kFnv1aBasis, text) == fnv1a(text).
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ULL;

/// Streaming FNV-1a: continue `hash` over more bytes. One shared definition
/// so the export trailer, the import validator and the store block codec can
/// never drift apart.
[[nodiscard]] constexpr std::uint64_t fnv1a_accum(std::uint64_t hash,
                                                  std::string_view text) noexcept {
  for (const char ch : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// FNV-1a 64-bit hash of a string; used to derive per-entity substreams
/// (e.g. fork("probe/DE/1234")) without global coordination.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) noexcept {
  return fnv1a_accum(kFnv1aBasis, text);
}

/// FNV-1a folded over 64-bit host-order words (the zero-padded tail and the
/// byte count fold in last). Byte-wise FNV-1a is one dependent multiply per
/// byte — a ~5 cycle/byte serial chain — which made it the single biggest
/// CPU item of the store's spill worker; folding words cuts the chain 8x
/// while keeping the same mixing algebra. NOT interchangeable with fnv1a():
/// both sides of an artefact must agree on which variant covers it.
[[nodiscard]] inline std::uint64_t fnv1a_words(std::string_view bytes) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t hash = kFnv1aBasis;
  const char* cursor = bytes.data();
  std::size_t left = bytes.size();
  for (; left >= 8; left -= 8, cursor += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, cursor, 8);
    hash = (hash ^ word) * kPrime;
  }
  if (left > 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, cursor, left);
    hash = (hash ^ word) * kPrime;
  }
  return (hash ^ bytes.size()) * kPrime;
}

/// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent stream for a named sub-component.
  [[nodiscard]] Rng fork(std::string_view label) const noexcept {
    std::uint64_t mix = state_[0] ^ (state_[2] * 0x9e3779b97f4a7c15ULL);
    return Rng{mix ^ fnv1a(label)};
  }

  /// Derive an independent stream for an indexed sub-component.
  [[nodiscard]] Rng fork(std::uint64_t index) const noexcept {
    std::uint64_t mix = state_[1] ^ (state_[3] + index * 0xd1342543de82ef95ULL);
    std::uint64_t sm = mix;
    return Rng{splitmix64(sm)};
  }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  [[nodiscard]] bool chance(double probability) noexcept {
    return uniform() < probability;
  }

  /// Standard normal via Box–Muller (cached second value).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal with the given *location/scale* parameters (of the
  /// underlying normal), i.e. median = exp(mu).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Lognormal parameterised by its median and the sigma of the log;
  /// convenient for latency models calibrated on medians.
  [[nodiscard]] double lognormal_median(double median, double sigma) noexcept;

  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto (heavy tail) with given scale (minimum) and shape alpha > 0.
  [[nodiscard]] double pareto(double scale, double alpha) noexcept;

  /// Index drawn according to non-negative weights (at least one > 0).
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Pick a uniformly random element of a non-empty container.
  template <typename Container>
  [[nodiscard]] const auto& pick(const Container& items) noexcept {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cloudrtt::util

#pragma once
// Bump-pointer arena for hot-loop scratch.
//
// The campaign executor allocates the same shapes every simulated day —
// result staging slots, hop vectors, trace rows — then throws them all away
// at once. A chained-block bump allocator turns that churn into pointer
// arithmetic: allocation is an add, deallocation is free (reset() rewinds
// every block in one step and keeps the memory for the next day). Blocks are
// retained across reset() so a steady-state day performs zero heap calls.
//
// Not thread-safe: one Arena per owner (per worker, per cache shard). The
// owner is responsible for external synchronisation, exactly like any other
// non-atomic member.

#include <cstddef>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace cloudrtt::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{64} * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Raw storage, aligned to `align` (a power of two no larger than
  /// alignof(std::max_align_t) — blocks come from operator new[]).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    CLOUDRTT_DCHECK(align != 0 && (align & (align - 1)) == 0,
                    "arena alignment ", align, " is not a power of two");
    CLOUDRTT_DCHECK(align <= alignof(std::max_align_t), "arena alignment ",
                    align, " exceeds the block alignment");
    if (bytes == 0) bytes = 1;
    while (true) {
      if (active_ < blocks_.size()) {
        Block& block = blocks_[active_];
        const std::size_t aligned = align_up(block.used, align);
        if (aligned <= block.capacity && bytes <= block.capacity - aligned) {
          live_ += (aligned - block.used) + bytes;
          if (live_ > high_water_) high_water_ = live_;
          block.used = aligned + bytes;
          return block.data.get() + aligned;
        }
        ++active_;  // bump semantics: never revisit a filled block
        continue;
      }
      // Oversized requests get a dedicated block; everything else shares
      // uniform blocks so reset() can recycle them for any workload.
      const std::size_t capacity =
          bytes + align > block_bytes_ ? bytes + align : block_bytes_;
      blocks_.push_back(
          Block{std::make_unique<std::byte[]>(capacity), capacity, 0});
      reserved_ += capacity;
    }
  }

  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Invalidate every allocation and rewind; blocks are retained, so the
  /// next fill of the same shape performs no heap calls.
  void reset() {
    for (Block& block : blocks_) block.used = 0;
    active_ = 0;
    live_ = 0;
  }

  /// Bytes handed out (including alignment padding) since the last reset().
  [[nodiscard]] std::size_t live_bytes() const { return live_; }
  /// Largest live_bytes() ever observed — the gauge the metrics export.
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }
  /// Bytes held from the system across resets.
  [[nodiscard]] std::size_t reserved_bytes() const { return reserved_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] static std::size_t align_up(std::size_t offset,
                                            std::size_t align) {
    return (offset + align - 1) & ~(align - 1);
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< blocks_[active_] is the current bump target
  std::size_t block_bytes_;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  std::size_t reserved_ = 0;
};

/// std::allocator-compatible handle so standard containers (the executor's
/// per-day staging vectors) can draw from an Arena. deallocate() is a no-op:
/// memory comes back only via Arena::reset(), which the container's owner
/// calls after the container is gone.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor): rebind requires converting construction
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t count) {
    return arena_->allocate_array<T>(count);
  }
  void deallocate(T* /*ptr*/, std::size_t /*count*/) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  [[nodiscard]] bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace cloudrtt::util

#pragma once
// Contract macros for invariants and preconditions.
//
//   CLOUDRTT_CHECK(day < days_, "day ", day, " out of range [0,", days_, ")");
//   CLOUDRTT_DCHECK(bound > 0, "below() needs a positive bound");
//
// CLOUDRTT_CHECK is always on: a violated condition aborts with the failing
// expression, file:line, and the formatted context, in release builds too —
// a campaign that silently continues past a broken invariant produces
// plausible-looking but wrong datasets, which is worse than a crash.
// CLOUDRTT_DCHECK compiles to nothing under NDEBUG; use it on hot paths
// (per-sample RNG draws, per-row writers) where the predicate itself would
// show up in profiles. Context arguments are only evaluated on failure.
//
// These replace raw assert() in library code (lint rule raw-assert): assert
// vanishes in release, and its message carries no runtime values.

#include <sstream>
#include <string_view>

namespace cloudrtt::util {

namespace detail {

/// Render the variadic context into one string; empty context is fine.
template <typename... Args>
[[nodiscard]] std::string format_check_message(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

}  // namespace detail

/// Print "<expr> failed at <file>:<line>: <message>" to stderr and abort.
[[noreturn]] void check_failed(std::string_view expression, std::string_view file,
                               long line, std::string_view message) noexcept;

}  // namespace cloudrtt::util

/// Always-on invariant: aborts (never throws) when `condition` is false.
#define CLOUDRTT_CHECK(condition, ...)                                         \
  do {                                                                         \
    if (!(condition)) [[unlikely]] {                                           \
      ::cloudrtt::util::check_failed(                                          \
          #condition, __FILE__, __LINE__,                                      \
          ::cloudrtt::util::detail::format_check_message(__VA_ARGS__));        \
    }                                                                          \
  } while (false)

/// Debug-only invariant: compiled out (arguments unevaluated) under NDEBUG.
#ifdef NDEBUG
#define CLOUDRTT_DCHECK(condition, ...) \
  do {                                  \
  } while (false)
#else
#define CLOUDRTT_DCHECK(condition, ...) CLOUDRTT_CHECK(condition, __VA_ARGS__)
#endif

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace cloudrtt::util {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - frac) + sorted[lower + 1] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mu = mean(values);
  double accum = 0.0;
  for (const double v : values) accum += (v - mu) * (v - mu);
  return std::sqrt(accum / static_cast<double>(values.size()));
}

std::optional<double> coefficient_of_variation(const std::vector<double>& values) {
  if (values.size() < 2) return std::nullopt;
  const double mu = mean(values);
  if (mu == 0.0) return std::nullopt;
  return stddev(values) / mu;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p25 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.p75 = quantile_sorted(values, 0.75);
  s.p90 = quantile_sorted(values, 0.90);
  s.mean = mean(values);
  s.stddev = stddev(values);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::evaluate(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const { return quantile_sorted(sorted_, q); }

std::size_t required_sample_size(double z, double p, double epsilon) {
  if (epsilon <= 0.0 || p < 0.0 || p > 1.0 || z <= 0.0) {
    throw std::invalid_argument{"required_sample_size: invalid parameters"};
  }
  return static_cast<std::size_t>(std::ceil(z * z * p * (1.0 - p) / (epsilon * epsilon)));
}

double z_score_for_confidence(double confidence) {
  if (confidence == 0.90) return 1.645;
  if (confidence == 0.95) return 1.96;
  if (confidence == 0.99) return 2.576;
  throw std::invalid_argument{"z_score_for_confidence: supported levels are 0.90/0.95/0.99"};
}

Interval bootstrap_median_ci(const std::vector<double>& samples, double confidence,
                             Rng& rng, std::size_t resamples) {
  if (samples.empty() || confidence <= 0.0 || confidence >= 1.0 || resamples == 0) {
    throw std::invalid_argument{"bootstrap_median_ci: invalid input"};
  }
  std::vector<double> medians;
  medians.reserve(resamples);
  std::vector<double> draw(samples.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& v : draw) {
      v = samples[rng.below(samples.size())];
    }
    std::sort(draw.begin(), draw.end());
    medians.push_back(quantile_sorted(draw, 0.5));
  }
  std::sort(medians.begin(), medians.end());
  const double alpha = (1.0 - confidence) / 2.0;
  return Interval{quantile_sorted(medians, alpha),
                  quantile_sorted(medians, 1.0 - alpha)};
}

}  // namespace cloudrtt::util

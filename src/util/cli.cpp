#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cloudrtt::util {

void ArgParser::add_option(std::string name, std::string default_value,
                           std::string help_text) {
  options_.push_back(Option{std::move(name), std::move(default_value),
                            std::move(help_text), false, false});
}

void ArgParser::add_flag(std::string name, std::string help_text) {
  options_.push_back(Option{std::move(name), "", std::move(help_text), true, false});
}

void ArgParser::add_positional(std::string name, std::string help_text,
                               std::optional<std::string> default_value) {
  Positional positional;
  positional.name = std::move(name);
  positional.help = std::move(help_text);
  positional.has_default = default_value.has_value();
  positional.value = std::move(default_value);
  positionals_.push_back(std::move(positional));
}

ArgParser::Option* ArgParser::find(std::string_view name) {
  for (Option& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

const ArgParser::Option* ArgParser::find(std::string_view name) const {
  for (const Option& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string_view name = arg.substr(2);
      std::optional<std::string_view> inline_value;
      if (const auto eq = name.find('='); eq != std::string_view::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
      }
      Option* option = find(name);
      if (option == nullptr) {
        error_ = "unknown option --" + std::string{name};
        std::fprintf(stderr, "%s\n%s", error_.c_str(), help().c_str());
        return false;
      }
      if (option->is_flag) {
        if (inline_value) {
          error_ = "flag --" + option->name + " takes no value";
          std::fprintf(stderr, "%s\n", error_.c_str());
          return false;
        }
        option->flag_set = true;
      } else if (inline_value) {
        option->value = std::string{*inline_value};
      } else {
        if (i + 1 >= argc) {
          error_ = "option --" + option->name + " needs a value";
          std::fprintf(stderr, "%s\n", error_.c_str());
          return false;
        }
        option->value = argv[++i];
      }
    } else {
      if (next_positional >= positionals_.size()) {
        error_ = "unexpected argument: " + std::string{arg};
        std::fprintf(stderr, "%s\n%s", error_.c_str(), help().c_str());
        return false;
      }
      positionals_[next_positional++].value = std::string{arg};
    }
  }
  for (const Positional& positional : positionals_) {
    if (!positional.value) {
      error_ = "missing required argument <" + positional.name + ">";
      std::fprintf(stderr, "%s\n%s", error_.c_str(), help().c_str());
      return false;
    }
  }
  return true;
}

const std::string& ArgParser::get(std::string_view name) const {
  if (const Option* option = find(name)) return option->value;
  for (const Positional& positional : positionals_) {
    if (positional.name == name && positional.value) return *positional.value;
  }
  throw std::out_of_range{"ArgParser::get: unknown argument " + std::string{name}};
}

double ArgParser::get_double(std::string_view name) const {
  return std::stod(get(name));
}

long ArgParser::get_int(std::string_view name) const { return std::stol(get(name)); }

bool ArgParser::get_flag(std::string_view name) const {
  const Option* option = find(name);
  if (option == nullptr || !option->is_flag) {
    throw std::out_of_range{"ArgParser::get_flag: unknown flag " +
                            std::string{name}};
  }
  return option->flag_set;
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nusage: " << program_;
  for (const Positional& positional : positionals_) {
    out << (positional.has_default ? " [" : " <") << positional.name
        << (positional.has_default ? "]" : ">");
  }
  out << " [options]\n";
  if (!positionals_.empty()) {
    out << "\narguments:\n";
    for (const Positional& positional : positionals_) {
      out << "  " << positional.name << "  " << positional.help;
      if (positional.has_default) out << " (default: " << *positional.value << ")";
      out << "\n";
    }
  }
  out << "\noptions:\n";
  for (const Option& option : options_) {
    out << "  --" << option.name;
    if (!option.is_flag) out << " <value>";
    out << "  " << option.help;
    if (!option.is_flag && !option.value.empty()) {
      out << " (default: " << option.value << ")";
    }
    out << "\n";
  }
  out << "  --help  show this message\n";
  return out.str();
}

}  // namespace cloudrtt::util

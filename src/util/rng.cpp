#include "util/rng.hpp"

#include "util/check.hpp"

#include <cmath>
#include <numbers>

namespace cloudrtt::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  CLOUDRTT_DCHECK(bound > 0, "below() needs a positive bound");
  // Lemire's unbiased bounded generation (rejection on the low product).
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  CLOUDRTT_DCHECK(lo <= hi, "between(", lo, ", ", hi, ") is an empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  CLOUDRTT_CHECK(median > 0.0, "lognormal_median needs median > 0, got ",
                 median);
  return lognormal(std::log(median), sigma);
}

double Rng::exponential(double mean) noexcept {
  CLOUDRTT_CHECK(mean > 0.0, "exponential needs mean > 0, got ", mean);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

double Rng::pareto(double scale, double alpha) noexcept {
  CLOUDRTT_CHECK(scale > 0.0 && alpha > 0.0,
                 "pareto needs positive scale/alpha, got ", scale, "/", alpha);
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return scale / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  CLOUDRTT_CHECK(total > 0.0, "weighted_index needs a positive weight among ",
                 weights.size(), " entries");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric edge: land on the last bucket
}

}  // namespace cloudrtt::util

#include "util/json.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace cloudrtt::util {

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::prepare_for_value() {
  if (stack_.empty()) {
    wrote_root_ = true;
    return;
  }
  if (stack_.back() == Frame::Array) {
    if (!first_in_frame_.back()) out_ << ',';
    first_in_frame_.back() = false;
    newline_indent();
  } else {
    // Inside an object a value must follow a key; key() already handled the
    // comma and indent.
    CLOUDRTT_DCHECK(pending_key_, "JsonWriter: value inside object without key");
    pending_key_ = false;
  }
}

void JsonWriter::key(std::string_view name) {
  CLOUDRTT_DCHECK(!stack_.empty() && stack_.back() == Frame::Object,
                  "JsonWriter: key() outside an object");
  CLOUDRTT_DCHECK(!pending_key_, "JsonWriter: two keys in a row");
  if (!first_in_frame_.back()) out_ << ',';
  first_in_frame_.back() = false;
  newline_indent();
  out_ << '"';
  write_escaped(name);
  out_ << "\": ";
  pending_key_ = true;
}

void JsonWriter::begin_object() {
  prepare_for_value();
  out_ << '{';
  stack_.push_back(Frame::Object);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_object() {
  CLOUDRTT_DCHECK(!stack_.empty() && stack_.back() == Frame::Object,
                  "JsonWriter: end_object without matching begin_object");
  const bool empty = first_in_frame_.back();
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (!empty) newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  prepare_for_value();
  out_ << '[';
  stack_.push_back(Frame::Array);
  first_in_frame_.push_back(true);
}

void JsonWriter::end_array() {
  CLOUDRTT_DCHECK(!stack_.empty() && stack_.back() == Frame::Array,
                  "JsonWriter: end_array without matching begin_array");
  const bool empty = first_in_frame_.back();
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (!empty) newline_indent();
  out_ << ']';
}

void JsonWriter::value(std::string_view text) {
  prepare_for_value();
  out_ << '"';
  write_escaped(text);
  out_ << '"';
}

void JsonWriter::value(double number) {
  prepare_for_value();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", number);
  out_ << buffer;
}

void JsonWriter::value(std::int64_t number) {
  prepare_for_value();
  out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  prepare_for_value();
  out_ << number;
}

void JsonWriter::value(bool flag) {
  prepare_for_value();
  out_ << (flag ? "true" : "false");
}

void JsonWriter::null() {
  prepare_for_value();
  out_ << "null";
}

void JsonWriter::write_escaped(std::string_view text) {
  for (const char ch : text) {
    switch (ch) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out_ << buffer;
        } else {
          out_ << ch;
        }
    }
  }
}

}  // namespace cloudrtt::util

#pragma once
// PathBuilder: turns <probe, endpoint, interconnection mode> into a concrete
// router-level forwarding path with a calibrated latency budget.
//
// Path shapes per mode (§6.1 of the paper):
//  * Direct:    probe -> ISP -> cloud edge PoP (in the probe's country when
//               the provider deploys one) -> private WAN -> DC.
//  * DirectIxp: same, but the peering crosses a visible IXP fabric.
//  * OneAs:     probe -> ISP -> Tier-1 carrier hub(s) -> cloud PoP at the
//               carrier facility -> WAN -> DC (PNI). Without a WAN serving
//               the destination, the carrier hauls all the way to the DC.
//  * Public:    probe -> ISP -> continental upstream -> carrier hub(s) ->
//               DC metro; the cloud AS appears only at the datacenter.
//
// Latency is composed from backbone segment costs (geography + quality
// detours + border penalties), private-WAN great-circle runs, and per-hop
// processing, with an absolute jitter budget accumulated per segment type.

#include "probes/fleet.hpp"
#include "routing/path.hpp"
#include "topology/world.hpp"

namespace cloudrtt::routing {

class PathBuilder {
 public:
  explicit PathBuilder(const topology::World& world) : world_(world) {}

  [[nodiscard]] ForwardingPath build(const probes::Probe& probe,
                                     const topology::CloudEndpoint& endpoint,
                                     topology::InterconnectMode mode) const;

  /// build() into caller-owned storage: `out` is cleared but keeps its hop
  /// capacity, so a reused scratch path allocates only on its deepest build.
  /// This is the PathCache miss/bypass entry point — the allocation-free
  /// variant the per-visit hot loop calls.
  void build_into(const probes::Probe& probe,
                  const topology::CloudEndpoint& endpoint,
                  topology::InterconnectMode mode, ForwardingPath& out) const;

  /// "Horizontal" inter-datacenter path (§3.1): providers with a WAN serving
  /// both regions ride their private backbone; everyone else hauls between
  /// the DC metros over carriers and the public Internet — which is exactly
  /// how the paper describes small providers moving traffic between DCs.
  [[nodiscard]] ForwardingPath build_interdc(
      const topology::CloudEndpoint& src,
      const topology::CloudEndpoint& dst) const;

  /// Does the provider's WAN carry traffic to this destination region?
  [[nodiscard]] static bool wan_serves(cloud::ProviderId provider,
                                       const cloud::RegionInfo& region);

 private:
  const topology::World& world_;
};

}  // namespace cloudrtt::routing

#pragma once
// Forwarding paths: the ground-truth router-level route a packet takes from
// a probe to a cloud VM, with deterministic base RTT and accumulated jitter
// accounted per hop. The measurement engine layers last-mile samples,
// congestion noise and traceroute artefacts on top; the analysis pipeline
// only ever sees the resulting hop/IP lists.

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "geo/coords.hpp"
#include "net/ipv4.hpp"
#include "topology/asn.hpp"
#include "topology/interconnect.hpp"

namespace cloudrtt::routing {

struct RouterHop {
  net::Ipv4Address ip;
  topology::Asn asn = 0;          ///< ground-truth owner
  geo::GeoPoint location;
  bool is_private = false;        ///< RFC1918/CGN hop (home router, CGN gw)
  bool cloud_owned = false;       ///< owned by the target provider's WAN
  double base_rtt_ms = 0.0;       ///< probe->hop RTT, excluding last-mile/noise
  double noise_abs_ms = 0.0;      ///< accumulated absolute jitter (1 sigma)
  /// ECMP sibling interface: transit segments are load-balanced, and classic
  /// per-TTL traceroute may be answered by either interface (the Paris
  /// traceroute problem, Augustin et al. — cited by the paper's §2.1/§3.3
  /// caveats). Zero when the segment has a single forwarding path.
  net::Ipv4Address alt_ip{};
  [[nodiscard]] bool has_alt() const { return alt_ip.value() != 0; }
};

struct ForwardingPath {
  std::vector<RouterHop> hops;    ///< first post-probe hop ... target VM
  topology::InterconnectMode mode = topology::InterconnectMode::Public;

  [[nodiscard]] const RouterHop& target() const { return hops.back(); }
  [[nodiscard]] double base_rtt_ms() const { return hops.back().base_rtt_ms; }
  [[nodiscard]] double noise_abs_ms() const { return hops.back().noise_abs_ms; }
  [[nodiscard]] std::size_t cloud_owned_hops() const {
    std::size_t n = 0;
    for (const RouterHop& hop : hops) n += hop.cloud_owned ? 1 : 0;
    return n;
  }
};

/// Non-owning view of a forwarding path with the same accessor surface as
/// ForwardingPath. The measurement engine's per-visit draw holds one of
/// these: on a PathCache hit it aliases the immutable cached hop block, on a
/// miss/bypass it aliases the caller's scratch build — either way the view
/// is consumed within the visit, before the scratch is reused.
struct PathView {
  std::span<const RouterHop> hops;
  topology::InterconnectMode mode = topology::InterconnectMode::Public;

  PathView() = default;
  PathView(std::span<const RouterHop> path_hops, topology::InterconnectMode m)
      : hops(path_hops), mode(m) {}
  explicit PathView(const ForwardingPath& path)
      : hops(path.hops), mode(path.mode) {}

  [[nodiscard]] const RouterHop& target() const { return hops.back(); }
  [[nodiscard]] double base_rtt_ms() const { return hops.back().base_rtt_ms; }
  [[nodiscard]] double noise_abs_ms() const {
    return hops.back().noise_abs_ms;
  }
};

}  // namespace cloudrtt::routing

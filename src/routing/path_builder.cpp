#include "routing/path_builder.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <string_view>

namespace cloudrtt::routing {

namespace {

using topology::InterconnectMode;

constexpr double kWanDetour = 1.05;       // private WAN over the cable systems
constexpr double kCarrierDetour = 1.10;   // tier-1 inter-hub backbone
constexpr double kWanMidHopKm = 3000.0;   // long WAN runs expose a mid router

const net::Ipv4Address kHomeRouterIp{192, 168, 1, 1};

struct HubRef {
  const topology::TransitCarrier* carrier = nullptr;
  const topology::TransitHub* hub = nullptr;
};

/// Nearest hub of any carrier (optionally excluding one) to a location.
[[nodiscard]] HubRef nearest_hub(const geo::GeoPoint& from,
                                 const topology::TransitCarrier* exclude = nullptr) {
  HubRef best;
  double best_km = std::numeric_limits<double>::infinity();
  for (const topology::TransitCarrier& carrier : topology::tier1_carriers()) {
    if (&carrier == exclude) continue;
    for (const topology::TransitHub& hub : carrier.hubs) {
      const double km = geo::haversine_km(from, hub.location);
      if (km < best_km) {
        best_km = km;
        best = HubRef{&carrier, &hub};
      }
    }
  }
  return best;
}

/// Nearest hub of one specific carrier to a location.
[[nodiscard]] const topology::TransitHub* nearest_hub_of(
    const topology::TransitCarrier& carrier, const geo::GeoPoint& from) {
  const topology::TransitHub* best = nullptr;
  double best_km = std::numeric_limits<double>::infinity();
  for (const topology::TransitHub& hub : carrier.hubs) {
    const double km = geo::haversine_km(from, hub.location);
    if (km < best_km) {
      best_km = km;
      best = &hub;
    }
  }
  return best;
}

/// Best <carrier, entry hub, exit hub> for a single-carrier (PNI) haul.
struct CarrierPlan {
  const topology::TransitCarrier* carrier = nullptr;
  const topology::TransitHub* entry = nullptr;
  const topology::TransitHub* exit = nullptr;
};

[[nodiscard]] CarrierPlan best_single_carrier(const geo::GeoPoint& from,
                                              const geo::GeoPoint& to) {
  CarrierPlan best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const topology::TransitCarrier& carrier : topology::tier1_carriers()) {
    for (const topology::TransitHub& entry : carrier.hubs) {
      for (const topology::TransitHub& exit : carrier.hubs) {
        const double cost = geo::haversine_km(from, entry.location) +
                            geo::haversine_km(entry.location, exit.location) +
                            geo::haversine_km(exit.location, to);
        if (cost < best_cost) {
          best_cost = cost;
          best = CarrierPlan{&carrier, &entry, &exit};
        }
      }
    }
  }
  return best;
}

[[nodiscard]] const topology::IxpInfo* choose_ixp(std::string_view country,
                                                  const geo::GeoPoint& near) {
  const topology::IxpInfo* best = nullptr;
  double best_km = std::numeric_limits<double>::infinity();
  for (const topology::IxpInfo& ixp : topology::known_ixps()) {
    if (ixp.country == country) return &ixp;
    const double km = geo::haversine_km(near, ixp.location);
    if (km < best_km) {
      best_km = km;
      best = &ixp;
    }
  }
  return best;
}

/// Mutable builder state threading location, RTT and jitter budget.
class Builder {
 public:
  Builder(const topology::World& world, ForwardingPath& path)
      : world_(world), path_(path) {}

  void push(net::Ipv4Address ip, topology::Asn asn, const geo::GeoPoint& loc,
            bool is_private, bool cloud_owned, double processing_ms = 0.2,
            net::Ipv4Address alt_ip = net::Ipv4Address{}) {
    rtt_ += processing_ms;
    path_.hops.push_back(RouterHop{ip, asn, loc, is_private, cloud_owned, rtt_,
                                   std::sqrt(var_), alt_ip});
  }

  /// `load_balanced` segments expose an ECMP sibling interface that classic
  /// per-TTL traceroute may hit instead (transit cores are ECMP-heavy;
  /// access and cloud segments are pinned).
  void push_router(topology::Asn asn, std::string_view site,
                   const geo::GeoPoint& loc, bool cloud_owned,
                   double processing_ms = 0.2, bool load_balanced = false) {
    net::Ipv4Address alt;
    if (load_balanced) {
      alt_scratch_.assign(site);
      alt_scratch_ += "/ecmp-b";
      alt = world_.router_ip(asn, alt_scratch_);
    }
    push(world_.router_ip(asn, site), asn, loc, false, cloud_owned, processing_ms,
         alt);
  }

  /// Compose a router site label in the reused scratch buffer: the returned
  /// view is valid until the next site() call, which is exactly long enough
  /// for the push_router it feeds. One path mints at most two heap buffers
  /// (the scratches), not one string per visible router.
  [[nodiscard]] std::string_view site(std::string_view a, std::string_view b,
                                      std::string_view c = {},
                                      std::string_view d = {}) {
    site_scratch_.clear();
    site_scratch_.append(a);
    site_scratch_.append(b);
    site_scratch_.append(c);
    site_scratch_.append(d);
    return site_scratch_;
  }

  /// Move over the public backbone between two concrete points.
  void advance_public(const geo::GeoPoint& to, std::string_view to_cc,
                      double sigma_base, double jitter_mult) {
    const auto cost = world_.backbone().segment_cost(loc_, cc_, to, to_cc);
    const double seg_rtt = geo::fibre_rtt_ms(cost.effective_km) + cost.penalty_ms;
    rtt_ += seg_rtt;
    const double sigma_abs =
        (sigma_base + jitter_mult * cost.jitter_scale) * seg_rtt;
    var_ += sigma_abs * sigma_abs;
    loc_ = to;
    cc_ = to_cc;
  }

  /// Move along a pre-priced leg of `km` cable to a new location (used to
  /// split one physical run across several visible routers).
  void advance_fixed(double km, const geo::GeoPoint& to, std::string_view to_cc,
                     double sigma) {
    const double seg_rtt = geo::fibre_rtt_ms(km);
    rtt_ += seg_rtt;
    const double sigma_abs = sigma * seg_rtt;
    var_ += sigma_abs * sigma_abs;
    loc_ = to;
    cc_ = to_cc;
  }

  /// Move over a private/managed backbone (cloud WAN or carrier core):
  /// low jitter, no transit-border penalties, but the glass still follows
  /// the physical cable systems, not the great circle.
  void advance_managed(const geo::GeoPoint& to, std::string_view to_cc,
                       double detour, double sigma) {
    const double km = world_.backbone().physical_km(loc_, cc_, to, to_cc);
    const double seg_rtt = geo::fibre_rtt_ms(km * detour);
    rtt_ += seg_rtt;
    const double sigma_abs = sigma * seg_rtt;
    var_ += sigma_abs * sigma_abs;
    loc_ = to;
    cc_ = to_cc;
  }

  void set_origin(const geo::GeoPoint& loc, std::string_view cc) {
    loc_ = loc;
    cc_ = cc;
    var_ = 0.35 * 0.35;  // floor: NIC/serialisation noise
  }

  [[nodiscard]] const geo::GeoPoint& location() const { return loc_; }
  [[nodiscard]] std::string_view country() const { return cc_; }

 private:
  const topology::World& world_;
  ForwardingPath& path_;
  geo::GeoPoint loc_{};
  std::string_view cc_;
  double rtt_ = 0.0;
  double var_ = 0.0;
  std::string site_scratch_;  ///< backs site(); reused across push_router calls
  std::string alt_scratch_;   ///< ECMP sibling label (site() view stays valid)
};

}  // namespace

bool PathBuilder::wan_serves(cloud::ProviderId provider,
                             const cloud::RegionInfo& region) {
  switch (cloud::provider_info(provider).backbone) {
    case cloud::BackboneClass::Private:
      return true;
    case cloud::BackboneClass::Semi:
      if (provider == cloud::ProviderId::Alibaba) {
        return region.country == std::string_view{"CN"} ||
               region.country == std::string_view{"HK"};
      }
      return region.continent == geo::Continent::Europe ||
             region.continent == geo::Continent::NorthAmerica;
    case cloud::BackboneClass::Public:
      return false;
  }
  return false;
}

ForwardingPath PathBuilder::build(const probes::Probe& probe,
                                  const topology::CloudEndpoint& endpoint,
                                  topology::InterconnectMode mode) const {
  ForwardingPath path;
  build_into(probe, endpoint, mode, path);
  return path;
}

// lint:hot
void PathBuilder::build_into(const probes::Probe& probe,
                             const topology::CloudEndpoint& endpoint,
                             topology::InterconnectMode mode,
                             ForwardingPath& path) const {
  path.hops.clear();
  path.mode = mode;
  Builder b{world_, path};

  const topology::IspNetwork& isp = *probe.isp;
  const cloud::RegionInfo& region = *endpoint.region;
  const cloud::ProviderInfo& provider = cloud::provider_info(region.provider);
  const topology::Asn cloud_asn = provider.asn;
  const bool wan = wan_serves(region.provider, region);

  b.set_origin(probe.location, isp.country);

  // Gateway hairpins only exist when the world models them (ablation knob).
  // Stack buffer, not a vector: no country funnels through more than a
  // couple of gateways.
  std::string_view gateway_buffer[4];
  const std::size_t gateway_count =
      world_.config().enable_uplink_gateways
          ? topology::uplink_gateways(isp.country, gateway_buffer)
          : 0;
  const std::span<const std::string_view> gateways{gateway_buffer,
                                                   gateway_count};

  // --- last-mile hops (latency added by the engine, not here) --------------
  if (probe.access == lastmile::AccessTech::HomeWifi) {
    b.push(kHomeRouterIp, isp.asn, probe.location, /*is_private=*/true,
           /*cloud_owned=*/false, 0.0);
  }
  if (probe.behind_cgn) {
    b.push(isp.cgn_prefix.address_at(1), isp.asn, probe.location,
           /*is_private=*/true, /*cloud_owned=*/false, 0.1);
  }

  // --- inside the serving ISP ------------------------------------------------
  b.push_router(isp.asn, b.site("edge/", probe.city->name),
                probe.city->location, false, 0.7);
  const geo::CountryInfo& home = world_.countries().at(isp.country);
  b.advance_public(home.centroid, isp.country, 0.05, 0.10);
  b.push_router(isp.asn, b.site("core/", isp.country), home.centroid, false,
                0.3);

  // --- interconnection-specific middle ---------------------------------------
  const auto wan_run = [&](std::string_view from_label) {
    // Inside the provider's WAN towards the DC. The leg is priced once over
    // the physical cable systems; long hauls expose a mid backbone router
    // (the paper's pervasiveness counts these).
    const double km = world_.backbone().physical_km(
        b.location(), b.country(), region.location, region.country);
    const bool long_haul = km > kWanMidHopKm;
    if (long_haul) {
      const geo::GeoPoint mid{(b.location().lat_deg + region.location.lat_deg) / 2.0,
                              (b.location().lon_deg + region.location.lon_deg) / 2.0};
      b.advance_fixed(km * kWanDetour / 2.0, mid, region.country, 0.02);
      b.push_router(cloud_asn,
                    b.site("wan/", from_label, "-", region.region_name), mid,
                    true, 0.25);
      b.advance_fixed(km * kWanDetour / 2.0, region.location, region.country, 0.02);
    } else {
      b.advance_fixed(km * kWanDetour, region.location, region.country, 0.02);
    }
  };

  switch (mode) {
    case InterconnectMode::DirectIxp: {
      if (const topology::IxpInfo* ixp = choose_ixp(isp.country, b.location())) {
        b.advance_public(ixp->location, ixp->country, 0.04, 0.08);
        b.push_router(ixp->asn, b.site("lan/", ixp->country), ixp->location,
                      false, 0.25);
      }
      [[fallthrough]];
    }
    case InterconnectMode::Direct: {
      const bool pop = world_.has_pop(region.provider, isp.country);
      const std::string_view ingress_cc = pop ? std::string_view{isp.country}
                                              : std::string_view{region.country};
      const geo::CountryInfo& ingress = world_.countries().at(ingress_cc);
      b.advance_public(ingress.centroid, ingress_cc, 0.03, 0.06);
      b.push_router(cloud_asn, b.site("pop/", ingress_cc), ingress.centroid,
                    true, 0.35);
      wan_run(ingress_cc);
      break;
    }
    case InterconnectMode::OneAs: {
      // The ISP hauls to its (possibly remote) uplink gateway itself.
      for (const std::string_view gw : gateways) {
        const geo::CountryInfo& info = world_.countries().at(gw);
        b.advance_public(info.centroid, gw, 0.06, 0.18);
        b.push_router(isp.asn, b.site("gw/", gw), info.centroid, false, 0.3);
      }
      const geo::GeoPoint target_ref =
          wan ? region.location : region.location;  // PNI lands near the DC side
      const CarrierPlan plan = best_single_carrier(b.location(), target_ref);
      b.advance_public(plan.entry->location, plan.entry->country, 0.06, 0.16);
      b.push_router(plan.carrier->asn, b.site("hub/", plan.entry->city),
                    plan.entry->location, false, 0.3, /*load_balanced=*/true);
      if (plan.exit != plan.entry) {
        b.advance_managed(plan.exit->location, plan.exit->country, kCarrierDetour,
                          0.085);
        b.push_router(plan.carrier->asn, b.site("hub/", plan.exit->city),
                      plan.exit->location, false, 0.3,
                      /*load_balanced=*/true);
      }
      if (wan) {
        // Cloud edge PoP hosted at the carrier facility (PNI).
        b.push_router(cloud_asn, b.site("pop@", plan.exit->city),
                      plan.exit->location, true, 0.35);
        wan_run(plan.exit->country);
      } else {
        b.advance_public(region.location, region.country, 0.06, 0.18);
      }
      break;
    }
    case InterconnectMode::Public: {
      // Continental upstream first (the extra AS of "2+").
      const topology::Asn upstream = world_.continental_transit(home.continent);
      b.push_router(upstream, b.site("up/", isp.country), b.location(), false,
                    0.3, /*load_balanced=*/true);
      for (const std::string_view gw : gateways) {
        const geo::CountryInfo& info = world_.countries().at(gw);
        b.advance_public(info.centroid, gw, 0.07, 0.22);
        b.push_router(upstream, b.site("gw/", gw), info.centroid, false, 0.3);
      }
      const HubRef first = nearest_hub(b.location());
      b.advance_public(first.hub->location, first.hub->country, 0.07, 0.20);
      b.push_router(first.carrier->asn, b.site("hub/", first.hub->city),
                    first.hub->location, false, 0.3, /*load_balanced=*/true);
      // Carrier hubs expose separate ingress/egress interfaces in
      // traceroutes — public paths look longer at router level.
      b.push_router(first.carrier->asn, b.site("hub-out/", first.hub->city),
                    first.hub->location, false, 0.15);
      const topology::TransitHub* own_exit =
          nearest_hub_of(*first.carrier, region.location);
      if (geo::haversine_km(own_exit->location, region.location) > 2500.0) {
        // Hand off to a second carrier closer to the destination.
        const HubRef second = nearest_hub(region.location, first.carrier);
        b.advance_managed(second.hub->location, second.hub->country, kCarrierDetour,
                          0.09);
        b.push_router(second.carrier->asn, b.site("hub/", second.hub->city),
                      second.hub->location, false, 0.3,
                      /*load_balanced=*/true);
      } else if (own_exit != first.hub) {
        b.advance_managed(own_exit->location, own_exit->country, kCarrierDetour,
                          0.085);
        b.push_router(first.carrier->asn, b.site("hub/", own_exit->city),
                      own_exit->location, false, 0.3,
                      /*load_balanced=*/true);
      }
      b.advance_public(region.location, region.country, 0.06, 0.18);
      break;
    }
  }

  // --- datacenter -------------------------------------------------------------
  b.push(endpoint.dc_router, cloud_asn, region.location, false, true, 0.35);
  b.push(endpoint.vm_ip, cloud_asn, region.location, false, true, 0.25);
}

ForwardingPath PathBuilder::build_interdc(const topology::CloudEndpoint& src,
                                          const topology::CloudEndpoint& dst) const {
  ForwardingPath path;
  const cloud::RegionInfo& from = *src.region;
  const cloud::RegionInfo& to = *dst.region;
  const topology::Asn src_asn = cloud::provider_info(from.provider).asn;
  const topology::Asn dst_asn = cloud::provider_info(to.provider).asn;

  Builder b{world_, path};
  b.set_origin(from.location, from.country);
  b.push(src.vm_ip, src_asn, from.location, false, true, 0.1);
  b.push(src.dc_router, src_asn, from.location, false, true, 0.25);

  const bool same_provider = from.provider == to.provider;
  const bool private_haul = same_provider && wan_serves(from.provider, from) &&
                            wan_serves(to.provider, to);
  if (private_haul) {
    path.mode = InterconnectMode::Direct;
    const double km = world_.backbone().physical_km(from.location, from.country,
                                                    to.location, to.country);
    if (km > kWanMidHopKm) {
      const geo::GeoPoint mid{(from.location.lat_deg + to.location.lat_deg) / 2.0,
                              (from.location.lon_deg + to.location.lon_deg) / 2.0};
      b.advance_fixed(km * kWanDetour / 2.0, mid, to.country, 0.02);
      b.push_router(src_asn,
                    "wan/" + std::string{from.region_name} + "-" +
                        std::string{to.region_name},
                    mid, true, 0.25);
      b.advance_fixed(km * kWanDetour / 2.0, to.location, to.country, 0.02);
    } else {
      b.advance_fixed(km * kWanDetour, to.location, to.country, 0.02);
    }
  } else {
    // Public haul between the DC metros, via the nearest carrier hubs --
    // small providers' "horizontal" traffic (§3.1) and all multi-cloud
    // traffic look like this.
    path.mode = InterconnectMode::Public;
    const HubRef first = nearest_hub(b.location());
    b.advance_public(first.hub->location, first.hub->country, 0.06, 0.16);
    b.push_router(first.carrier->asn, "hub/" + std::string{first.hub->city},
                  first.hub->location, false, 0.3);
    const topology::TransitHub* exit = nearest_hub_of(*first.carrier, to.location);
    if (geo::haversine_km(exit->location, to.location) > 2500.0) {
      const HubRef second = nearest_hub(to.location, first.carrier);
      b.advance_managed(second.hub->location, second.hub->country, kCarrierDetour,
                        0.08);
      b.push_router(second.carrier->asn, "hub/" + std::string{second.hub->city},
                    second.hub->location, false, 0.3);
    } else if (exit != first.hub) {
      b.advance_managed(exit->location, exit->country, kCarrierDetour, 0.08);
      b.push_router(first.carrier->asn, "hub/" + std::string{exit->city},
                    exit->location, false, 0.3);
    }
    b.advance_public(to.location, to.country, 0.06, 0.16);
  }

  b.push(dst.dc_router, dst_asn, to.location, false, true, 0.35);
  b.push(dst.vm_ip, dst_asn, to.location, false, true, 0.25);
  return path;
}

}  // namespace cloudrtt::routing

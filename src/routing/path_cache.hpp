#pragma once
// PathCache: memoized forwarding-path skeletons.
//
// PathBuilder::build() is a pure function of (world, probe, endpoint, mode) —
// it draws no RNG — yet a campaign day rebuilds the same path thousands of
// times: every visit of a probe to an endpoint under the same rolled mode
// re-derives the identical hop/base-RTT skeleton, string-assembling router
// site names along the way. This cache stores each skeleton once and hands
// out views; the engine keeps re-drawing per-visit noise/congestion/spikes
// from the visit RNG, so the dataset stays bit-identical at any --threads N.
//
// Key: (probe address, endpoint index, mode). The probe address is globally
// unique per world (customer and CGN allocators never overlap), and the
// probe's jittered location / access tech / CGN flag — all of which shape the
// skeleton — are fixed per probe, so the address subsumes them. Bypasses
// (cache consulted but not used, falls back to a scratch build):
//  * backbone outages active — fault days overlay segment costs, so cached
//    nominal skeletons would be stale; entries stay valid for nominal days
//    and nothing is ever flushed;
//  * the endpoint is not in world.endpoints() (tests probing hand-built
//    endpoints) or the probe has no allocated address;
//  * CLOUDRTT_PATH_CACHE=off|0 in the environment (the A/B switch the bench
//    and CI use to prove cache-on/cache-off hash identity).
//
// Concurrency: 16 shards, each a shared_mutex over an open-address map and an
// arena holding the immutable hop blocks. Lookups take a shared lock; a miss
// builds OUTSIDE any lock (builds are pure, duplicate results bit-identical)
// and inserts under the exclusive lock, re-checking for a lost race. Entries
// are never evicted, so returned views stay valid for the cache's lifetime.

#include <array>
#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "probes/fleet.hpp"
#include "routing/path.hpp"
#include "routing/path_builder.hpp"
#include "topology/world.hpp"
#include "util/arena.hpp"

namespace cloudrtt::routing {

class PathCache {
 public:
  PathCache(const topology::World& world, const PathBuilder& builder);

  PathCache(const PathCache&) = delete;
  PathCache& operator=(const PathCache&) = delete;

  /// False when CLOUDRTT_PATH_CACHE=off|0 disabled the cache at construction.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// The memoized equivalent of PathBuilder::build(). On a hit the view
  /// aliases the immutable cached block; on a miss or bypass the path is
  /// built into `scratch` (reusing its capacity) and the view aliases that —
  /// so the view is only valid until `scratch` is rebuilt. Both branches
  /// return bit-identical hops and consume zero RNG.
  [[nodiscard]] PathView lookup(const probes::Probe& probe,
                                const topology::CloudEndpoint& endpoint,
                                topology::InterconnectMode mode,
                                ForwardingPath& scratch) const;

  /// Entries currently stored across all shards (gauge mirror, for tests).
  [[nodiscard]] std::size_t size() const {
    return entry_count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShardCount = 16;

  struct Entry {
    const RouterHop* hops = nullptr;
    std::uint32_t count = 0;
  };
  struct Shard {
    mutable std::shared_mutex mutex;
    // lint:guarded_by(mutex)
    // lint:allow(mutable-member): guarded by mutex
    mutable std::unordered_map<std::uint64_t, Entry> map;
    // lint:guarded_by(mutex)
    // lint:allow(mutable-member): guarded by mutex
    mutable util::Arena arena;
  };

  /// Pack the cache key; false when the pair is uncacheable (foreign
  /// endpoint, unaddressed probe).
  [[nodiscard]] bool key_for(const probes::Probe& probe,
                             const topology::CloudEndpoint& endpoint,
                             topology::InterconnectMode mode,
                             std::uint64_t& key) const;

  const topology::World& world_;
  const PathBuilder& builder_;
  bool enabled_;
  std::array<Shard, kShardCount> shards_;
  // Monotonic statistics mirrored into gauges; atomics need no guard.
  mutable std::atomic<std::size_t> entry_count_{0};
  mutable std::atomic<std::size_t> arena_bytes_{0};
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& bypasses_;
  obs::Gauge& entries_gauge_;
  obs::Gauge& arena_gauge_;
};

}  // namespace cloudrtt::routing

#include "routing/path_cache.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <type_traits>

#include "util/check.hpp"

namespace cloudrtt::routing {

namespace {

// Cached blocks are raw-copied into shard arenas; the hop record must stay a
// plain value type for that to be legal.
static_assert(std::is_trivially_copyable_v<RouterHop>,
              "RouterHop must be trivially copyable for arena caching");

[[nodiscard]] bool cache_disabled_by_env() {
  // Reading a configuration switch, not entropy; getenv is deterministic here.
  const char* value = std::getenv("CLOUDRTT_PATH_CACHE");
  if (value == nullptr) return false;
  return std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0;
}

}  // namespace

PathCache::PathCache(const topology::World& world, const PathBuilder& builder)
    : world_(world),
      builder_(builder),
      enabled_(!cache_disabled_by_env()),
      hits_(obs::Registry::global().counter(
          "routing.path_cache.hits",
          "Forwarding-path lookups served from the memoized skeleton")),
      misses_(obs::Registry::global().counter(
          "routing.path_cache.misses",
          "Forwarding-path lookups that built and inserted a new skeleton")),
      bypasses_(obs::Registry::global().counter(
          "routing.path_cache.bypasses",
          "Forwarding-path lookups that skipped the cache (outage overlay "
          "active, uncacheable key, or cache disabled)")),
      entries_gauge_(obs::Registry::global().gauge(
          "routing.path_cache.entries", "Distinct cached path skeletons")),
      arena_gauge_(obs::Registry::global().gauge(
          "routing.path_cache.arena_bytes",
          "Bytes of hop storage held by the path-cache arenas")) {}

bool PathCache::key_for(const probes::Probe& probe,
                        const topology::CloudEndpoint& endpoint,
                        topology::InterconnectMode mode,
                        std::uint64_t& key) const {
  const std::uint32_t address = probe.address.value();
  if (address == 0) return false;  // hand-built probe without an address
  const auto& endpoints = world_.endpoints();
  // Range-check via uintptr before any pointer subtraction: subtracting
  // pointers into different arrays is UB, and tests do probe hand-built
  // endpoints that live outside the world's directory.
  const auto addr = reinterpret_cast<std::uintptr_t>(&endpoint);
  const auto first = reinterpret_cast<std::uintptr_t>(endpoints.data());
  const auto last = reinterpret_cast<std::uintptr_t>(endpoints.data() +
                                                     endpoints.size());
  if (addr < first || addr >= last) return false;
  const std::uint64_t index =
      (addr - first) / sizeof(topology::CloudEndpoint);
  // 32 bits of probe address | 30 bits of endpoint index | 2 bits of mode.
  CLOUDRTT_DCHECK(index < (std::uint64_t{1} << 30),
                  "endpoint index ", index, " overflows the cache key");
  key = (std::uint64_t{address} << 32) | (index << 2) |
        static_cast<std::uint64_t>(mode);
  return true;
}

// lint:hot
PathView PathCache::lookup(const probes::Probe& probe,
                           const topology::CloudEndpoint& endpoint,
                           topology::InterconnectMode mode,
                           ForwardingPath& scratch) const {
  std::uint64_t key = 0;
  if (!enabled_ || world_.backbone().outages_active() ||
      !key_for(probe, endpoint, mode, key)) {
    bypasses_.inc();
    builder_.build_into(probe, endpoint, mode, scratch);
    return PathView{scratch};
  }

  const Shard& shard = shards_[(key * 0x9e3779b97f4a7c15ull) >> 60];
  {
    const std::shared_lock lock{shard.mutex};
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.inc();
      return PathView{{it->second.hops, it->second.count}, mode};
    }
  }

  // Miss: build outside any lock. build() is pure, so a racing builder of
  // the same key produces bit-identical hops and losing the insert below is
  // harmless — we simply return the winner's block.
  builder_.build_into(probe, endpoint, mode, scratch);
  misses_.inc();

  const std::unique_lock lock{shard.mutex};
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    const std::size_t count = scratch.hops.size();
    RouterHop* stored = shard.arena.allocate_array<RouterHop>(count);
    std::memcpy(stored, scratch.hops.data(), count * sizeof(RouterHop));
    it = shard.map
             .emplace(key, Entry{stored, static_cast<std::uint32_t>(count)})
             .first;
    const std::size_t entries =
        entry_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::size_t bytes =
        arena_bytes_.fetch_add(count * sizeof(RouterHop),
                               std::memory_order_relaxed) +
        count * sizeof(RouterHop);
    entries_gauge_.set(static_cast<double>(entries));
    arena_gauge_.set(static_cast<double>(bytes));
  }
  return PathView{{it->second.hops, it->second.count}, mode};
}

}  // namespace cloudrtt::routing

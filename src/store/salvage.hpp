#pragma once
// Opening a streaming store: validate what the manifest committed, salvage
// what the crash left beyond it.
//
// The committed region of each lane (the manifest's byte mark) is parsed
// *strictly* — a shorter file, a straddling or damaged block, a checksum or
// sequence mismatch there means the commit point itself lied, and the open
// refuses with a structured error rather than guessing. Bytes beyond the
// mark are the uncommitted tail of an interrupted run: salvage walks them
// block by block and adopts the longest prefix that continues the campaign
// exactly where the manifest stopped (the chain rule in open_store), counts
// what it had to drop, and — when `repair` is set — truncates each lane back
// to its last adopted byte so the next append lands on a block boundary.
//
// The resume contract: open_store() + replaying the remainder of the
// interrupted day from the RNG (the campaign's per-day streams are forked
// from the never-advanced base seed) reproduces the exact dataset an
// uninterrupted run would have produced — core::dataset_hash is the oracle
// the crash-loop CI gate checks.

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "measure/campaign.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"
#include "store/io_env.hpp"
#include "store/shard_writer.hpp"

namespace cloudrtt::store {

/// What salvage did to the uncommitted tail of a store.
struct SalvageReport {
  std::uint64_t committed_blocks = 0;  ///< blocks inside the manifest marks
  std::uint64_t salvaged_blocks = 0;   ///< tail blocks adopted into the data
  std::uint64_t salvaged_rows = 0;     ///< task rows (ping+trace pairs) adopted
  std::uint64_t dropped_blocks = 0;    ///< structurally valid but rejected
  std::uint64_t truncated_bytes = 0;   ///< tail bytes cut (or cuttable) away
  bool repaired = false;               ///< lanes physically truncated
  /// True when the store needed no recovery at all.
  [[nodiscard]] bool clean() const {
    return salvaged_blocks == 0 && dropped_blocks == 0 &&
           truncated_bytes == 0;
  }
};

/// Everything a resume needs from an opened store.
struct OpenResult {
  measure::Dataset data;
  measure::CampaignState state;
  StoreMeta meta;
  std::vector<LaneState> lane_states;
  SalvageReport salvage;
  /// Task rows (ping+trace pairs) durably on disk after salvage: committed
  /// plus adopted tail. Equals data.pings.size() on a binding open; the only
  /// row count available on a structural open (which parses no rows).
  std::uint64_t durable_rows = 0;
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Manifest format under `dir` for `platform`: 3 (streaming store),
/// 2 (legacy CSV checkpoint), 1 (pre-address-plan legacy), 0 (none/unreadable).
[[nodiscard]] int manifest_format(const std::filesystem::path& dir,
                                  std::string_view platform, IoEnv& io);

/// Open a format=3 store: strict-validate the committed region, salvage the
/// tail, rebuild the dataset and resume state. `repair` additionally
/// truncates torn/dropped tail bytes so a ShardWriter can continue in place;
/// read-only callers (load_checkpoint, fsck) pass false.
[[nodiscard]] OpenResult open_store(const std::filesystem::path& dir,
                                    std::string_view platform, IoEnv& io,
                                    const probes::ProbeFleet* sc_fleet,
                                    const probes::ProbeFleet* atlas_fleet,
                                    bool repair);

/// Structural open: same committed-region validation, salvage chain and
/// repair as open_store, but no row binding — `data` comes back empty and
/// `durable_rows` carries the on-disk row count. This is what a *streaming*
/// resume uses: it needs the lane states and campaign state to continue
/// appending, never the rows themselves (RAM stays O(day)).
[[nodiscard]] OpenResult open_store_structural(
    const std::filesystem::path& dir, std::string_view platform, IoEnv& io,
    bool repair);

/// Offline integrity check (`cloudrtt study --fsck`): same validation as
/// open_store but structural only — no probe fleets, no row binding, never
/// repairs.
struct FsckReport {
  int format = 0;
  std::uint64_t committed_blocks = 0;
  std::uint64_t committed_rows = 0;
  std::uint64_t tail_blocks = 0;     ///< salvageable on the next resume
  std::uint64_t tail_rows = 0;
  std::uint64_t dropped_blocks = 0;
  std::uint64_t torn_bytes = 0;      ///< bytes a resume would truncate
  std::string error;                 ///< committed-region violation, if any
  [[nodiscard]] bool healthy() const { return error.empty(); }
  /// One human-readable summary line per store.
  [[nodiscard]] std::string render(std::string_view platform) const;
};

[[nodiscard]] FsckReport fsck(const std::filesystem::path& dir,
                              std::string_view platform, IoEnv& io);

}  // namespace cloudrtt::store

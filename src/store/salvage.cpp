#include "store/salvage.hpp"

#include <algorithm>
#include <charconv>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "store/codec.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cloudrtt::store {

namespace {

namespace fs = std::filesystem;

template <typename T>
[[nodiscard]] bool parse_number(std::string_view text, T& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size() &&
         !text.empty();
}

/// The format=3 manifest, fully parsed.
struct Manifest {
  std::string platform;
  std::string fault_profile = "none";
  std::uint64_t seed = 0;
  std::uint32_t next_day = 0;
  std::uint64_t cursor = 0;
  std::uint32_t day_tasks_done = 0;
  std::uint64_t pings = 0;
  std::uint64_t traces = 0;
  std::vector<LaneState> lanes;
};

[[nodiscard]] std::string parse_manifest(const std::string& text,
                                         std::string_view platform,
                                         Manifest& out) {
  std::unordered_map<std::string, std::string> kv;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string_view line{text.data() + begin, end - begin};
    begin = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return "damaged manifest line: '" + std::string{line} + "'";
    }
    kv.emplace(line.substr(0, eq), line.substr(eq + 1));
  }
  const auto number = [&](const char* key, auto& value) {
    const auto it = kv.find(key);
    return it != kv.end() && parse_number(it->second, value);
  };
  std::uint64_t lane_count = 0;
  if (kv["format"] != "3" || !number("seed", out.seed) ||
      !number("lanes", lane_count) || lane_count == 0 ||
      !number("next_day", out.next_day) || !number("cursor", out.cursor) ||
      !number("day_tasks_done", out.day_tasks_done) ||
      !number("pings", out.pings) || !number("traces", out.traces)) {
    return "manifest missing or damaged fields";
  }
  if (kv["platform"] != platform) {
    return "manifest platform '" + kv["platform"] +
           "' does not match requested '" + std::string{platform} + "'";
  }
  if (out.pings != out.traces) {
    return "manifest ping/trace totals disagree (" +
           std::to_string(out.pings) + " vs " + std::to_string(out.traces) +
           ")";
  }
  out.platform = kv["platform"];
  if (kv.contains("fault_profile")) out.fault_profile = kv["fault_profile"];
  out.lanes.resize(lane_count);
  for (std::uint64_t lane = 0; lane < lane_count; ++lane) {
    const auto it = kv.find("lane" + std::to_string(lane));
    if (it == kv.end()) {
      return "manifest missing lane" + std::to_string(lane) + " entry";
    }
    const std::string& entry = it->second;
    const std::size_t colon = entry.find(':');
    LaneState& state = out.lanes[lane];
    if (colon == std::string::npos ||
        !parse_number(std::string_view{entry}.substr(0, colon),
                      state.durable_bytes) ||
        !parse_number(std::string_view{entry}.substr(colon + 1),
                      state.next_seq)) {
      return "damaged manifest lane entry '" + entry + "'";
    }
  }
  return {};
}

/// One parsed block, with its rows when a binder was supplied.
struct ScannedBlock {
  BlockHeader header;
  measure::Dataset rows;
  std::uint64_t bytes = 0;  ///< framed size: header line + payload
  std::size_t lane = 0;
};

/// What one lane's file yielded.
struct LaneScan {
  std::vector<ScannedBlock> committed;
  std::vector<ScannedBlock> tail;
  std::uint64_t dropped_blocks = 0;  ///< valid frame, wrong sequence
  std::uint64_t torn_bytes = 0;      ///< unusable bytes past the last keeper
  std::string error;                 ///< committed-region violation
};

/// Parse the block starting at `offset`. True on success (offset advanced
/// past the block); false leaves `why` describing the damage.
[[nodiscard]] bool next_block(std::string_view text, std::size_t& offset,
                              const RowBinder* binder, ScannedBlock& out,
                              std::string& why) {
  const std::size_t header_end = text.find('\n', offset);
  if (header_end == std::string_view::npos) {
    why = "incomplete block header";
    return false;
  }
  if (!parse_block_header(text.substr(offset, header_end - offset),
                          out.header)) {
    why = "malformed block header";
    return false;
  }
  const std::size_t payload_begin = header_end + 1;
  if (out.header.bytes > text.size() - payload_begin) {
    why = "payload truncated (header claims " +
          std::to_string(out.header.bytes) + " bytes, " +
          std::to_string(text.size() - payload_begin) + " remain)";
    return false;
  }
  const std::string_view payload =
      text.substr(payload_begin, out.header.bytes);
  if (util::fnv1a_words(payload) != out.header.fnv1a) {
    why = "payload checksum mismatch (fnv1a)";
    return false;
  }
  if (binder != nullptr) {
    out.rows.clear_rows();
    out.rows.bind(binder->sc_fleet(), binder->atlas_fleet());
    if (std::string parse_error =
            binder->parse_block(payload, out.header, out.rows);
        !parse_error.empty()) {
      why = "unparseable payload: " + parse_error;
      return false;
    }
  }
  out.bytes = (payload_begin - offset) + out.header.bytes;
  offset = payload_begin + out.header.bytes;
  return true;
}

/// Scan one lane file: strict inside the committed region, salvage beyond.
[[nodiscard]] LaneScan scan_lane(const std::optional<std::string>& content,
                                 const LaneState& durable, std::size_t lane,
                                 const RowBinder* binder) {
  LaneScan scan;
  const std::string text = content.value_or(std::string{});
  const auto lane_label = [&] { return "lane " + std::to_string(lane); };
  if (!content.has_value() && durable.durable_bytes > 0) {
    scan.error = lane_label() + ": shard file missing but manifest commits " +
                 std::to_string(durable.durable_bytes) + " bytes";
    return scan;
  }
  if (text.size() < durable.durable_bytes) {
    scan.error = lane_label() + ": shard holds " +
                 std::to_string(text.size()) + " bytes, manifest commits " +
                 std::to_string(durable.durable_bytes);
    return scan;
  }

  std::size_t offset = 0;
  std::uint64_t expected_seq = 0;
  while (offset < durable.durable_bytes) {
    ScannedBlock block;
    block.lane = lane;
    std::string why;
    if (!next_block(text, offset, binder, block, why)) {
      scan.error = lane_label() + ": committed block " +
                   std::to_string(expected_seq) + ": " + why;
      return scan;
    }
    if (offset > durable.durable_bytes) {
      scan.error = lane_label() + ": committed block " +
                   std::to_string(expected_seq) +
                   " straddles the manifest's byte mark";
      return scan;
    }
    if (block.header.seq != expected_seq) {
      scan.error = lane_label() + ": committed block has seq " +
                   std::to_string(block.header.seq) + ", expected " +
                   std::to_string(expected_seq);
      return scan;
    }
    ++expected_seq;
    scan.committed.push_back(std::move(block));
  }
  if (expected_seq != durable.next_seq) {
    scan.error = lane_label() + ": committed region holds " +
                 std::to_string(expected_seq) +
                 " blocks, manifest expects " +
                 std::to_string(durable.next_seq);
    return scan;
  }

  // Beyond the commit point: keep the longest valid run, count the rest.
  while (offset < text.size()) {
    const std::size_t block_start = offset;
    ScannedBlock block;
    block.lane = lane;
    std::string why;
    if (!next_block(text, offset, binder, block, why)) {
      scan.torn_bytes = text.size() - block_start;
      break;
    }
    if (block.header.seq != expected_seq) {
      // A duplicated or replayed frame: structurally fine, but it does not
      // continue this lane — everything from here on is unusable.
      ++scan.dropped_blocks;
      scan.torn_bytes = text.size() - block_start;
      break;
    }
    ++expected_seq;
    scan.tail.push_back(std::move(block));
  }
  return scan;
}

/// Sort key for cross-lane assembly: global append order is (day, start).
[[nodiscard]] bool block_order(const ScannedBlock* a, const ScannedBlock* b) {
  return a->header.day != b->header.day ? a->header.day < b->header.day
                                        : a->header.start < b->header.start;
}

void append_rows(measure::Dataset& out, const ScannedBlock& block) {
  // Both datasets are bound to the same fleets and block rows never mint
  // extras codes, so this is a raw column splice.
  out.append(block.rows);
}

/// Shared core of open_store and fsck. `binder` null = structural only.
[[nodiscard]] OpenResult open_impl(const fs::path& dir,
                                   std::string_view platform, IoEnv& io,
                                   const RowBinder* binder, bool repair) {
  OpenResult result;
  const std::optional<std::string> manifest_text =
      io.read_file(store_manifest_path(dir, platform));
  if (!manifest_text.has_value()) {
    result.error =
        "missing manifest " + store_manifest_path(dir, platform).string();
    return result;
  }
  Manifest manifest;
  if (std::string err = parse_manifest(*manifest_text, platform, manifest);
      !err.empty()) {
    result.error = std::move(err);
    return result;
  }
  result.meta.platform = manifest.platform;
  result.meta.seed = manifest.seed;
  result.meta.fault_profile = manifest.fault_profile;
  if (binder != nullptr) {
    result.data.bind(binder->sc_fleet(), binder->atlas_fleet());
  }

  // Lanes are independent on disk, so the scan — the expensive part of a
  // resume — runs one thread per lane; this is what keeps reopening a
  // campaign flat-cost as --threads (== lanes) grows.
  const std::size_t lane_count = manifest.lanes.size();
  std::vector<LaneScan> scans(lane_count);
  {
    std::vector<std::thread> workers;
    workers.reserve(lane_count);
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
      workers.emplace_back([&, lane] {
        scans[lane] = scan_lane(io.read_file(store_lane_path(dir, platform, lane)),
                                manifest.lanes[lane], lane, binder);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  for (const LaneScan& scan : scans) {
    if (!scan.error.empty()) {
      result.error = "store refused: " + scan.error;
      return result;
    }
  }

  // Committed region, cross-lane: global order must reassemble into
  // contiguous per-day task runs whose total matches the manifest.
  std::vector<ScannedBlock*> committed;
  for (LaneScan& scan : scans) {
    for (ScannedBlock& block : scan.committed) committed.push_back(&block);
  }
  std::stable_sort(committed.begin(), committed.end(), block_order);
  std::uint64_t committed_tasks = 0;
  {
    std::uint32_t current_day = 0;
    std::uint64_t expected_start = 0;
    bool have_day = false;
    for (const ScannedBlock* block : committed) {
      const BlockHeader& header = block->header;
      if (block->lane != header.day % lane_count) {
        result.error = "store refused: committed block for day " +
                       std::to_string(header.day) + " sits in lane " +
                       std::to_string(block->lane) + ", expected lane " +
                       std::to_string(header.day % lane_count);
        return result;
      }
      if (!have_day || header.day != current_day) {
        if (have_day && header.day < current_day) {
          result.error = "store refused: committed days out of order";
          return result;
        }
        current_day = header.day;
        expected_start = 0;
        have_day = true;
      }
      if (header.start != expected_start) {
        result.error = "store refused: day " + std::to_string(header.day) +
                       " tasks are not contiguous (block starts at " +
                       std::to_string(header.start) + ", expected " +
                       std::to_string(expected_start) + ")";
        return result;
      }
      expected_start += header.tasks;
      committed_tasks += header.tasks;
    }
  }
  if (committed_tasks != manifest.pings) {
    result.error = "store refused: shards hold " +
                   std::to_string(committed_tasks) +
                   " committed task rows, manifest expects " +
                   std::to_string(manifest.pings);
    return result;
  }
  result.salvage.committed_blocks = committed.size();
  for (ScannedBlock* block : committed) append_rows(result.data, *block);

  // The uncommitted tail: adopt the longest chain that continues exactly
  // where the manifest stopped. Same-day blocks must extend the task run;
  // a later day may start only at task 0 (appends are globally FIFO, so a
  // day-N block on disk proves every earlier day finished; empty days
  // legitimately write nothing). Anything else ends the chain.
  std::vector<ScannedBlock*> tail;
  for (LaneScan& scan : scans) {
    for (ScannedBlock& block : scan.tail) tail.push_back(&block);
    result.salvage.dropped_blocks += scan.dropped_blocks;
    result.salvage.truncated_bytes += scan.torn_bytes;
  }
  std::stable_sort(tail.begin(), tail.end(), block_order);
  std::vector<std::uint64_t> adopted_bytes(lane_count, 0);
  std::vector<std::uint64_t> adopted_blocks(lane_count, 0);
  std::uint32_t chain_day = manifest.next_day;
  std::uint64_t chain_start = manifest.day_tasks_done;
  std::uint64_t chain_cursor = manifest.cursor;
  bool adopted_any = false;
  std::size_t kept = 0;
  for (ScannedBlock* block : tail) {
    const BlockHeader& header = block->header;
    const bool extends_day =
        header.day == chain_day && header.start == chain_start;
    const bool opens_day = header.day > chain_day && header.start == 0;
    if ((!extends_day && !opens_day) ||
        block->lane != header.day % lane_count) {
      break;
    }
    if (opens_day) chain_day = header.day;
    chain_start = opens_day ? header.tasks
                            : chain_start + header.tasks;
    chain_cursor = header.cursor;
    adopted_any = true;
    adopted_bytes[block->lane] += block->bytes;
    adopted_blocks[block->lane] += 1;
    ++result.salvage.salvaged_blocks;
    result.salvage.salvaged_rows += header.tasks;
    append_rows(result.data, *block);
    ++kept;
  }
  for (std::size_t i = kept; i < tail.size(); ++i) {
    ++result.salvage.dropped_blocks;
    result.salvage.truncated_bytes += tail[i]->bytes;
  }

  result.durable_rows = committed_tasks + result.salvage.salvaged_rows;
  result.lane_states.resize(lane_count);
  for (std::size_t lane = 0; lane < lane_count; ++lane) {
    result.lane_states[lane].durable_bytes =
        manifest.lanes[lane].durable_bytes + adopted_bytes[lane];
    result.lane_states[lane].next_seq =
        manifest.lanes[lane].next_seq + adopted_blocks[lane];
  }
  if (adopted_any) {
    CLOUDRTT_CHECK(chain_start <= 0xffffffffULL,
                   "salvaged day task count overflows");
    result.state.next_day = chain_day;
    result.state.cursor = static_cast<std::size_t>(chain_cursor);
    result.state.day_tasks_done = static_cast<std::uint32_t>(chain_start);
  } else {
    result.state.next_day = manifest.next_day;
    result.state.cursor = static_cast<std::size_t>(manifest.cursor);
    result.state.day_tasks_done = manifest.day_tasks_done;
  }

  if (repair && result.salvage.truncated_bytes > 0) {
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
      const fs::path path = store_lane_path(dir, platform, lane);
      const std::optional<std::uint64_t> size = io.file_size(path);
      if (size.has_value() &&
          *size > result.lane_states[lane].durable_bytes) {
        if (const IoStatus cut =
                io.truncate(path, result.lane_states[lane].durable_bytes);
            !cut.ok()) {
          result.error = "store repair failed: " + cut.error;
          return result;
        }
      }
    }
    result.salvage.repaired = true;
  }
  return result;
}

}  // namespace

int manifest_format(const fs::path& dir, std::string_view platform,
                    IoEnv& io) {
  const std::optional<std::string> text =
      io.read_file(store_manifest_path(dir, platform));
  if (!text.has_value()) return 0;
  const std::string_view view{*text};
  constexpr std::string_view kKey = "format=";
  if (!view.starts_with(kKey)) return 0;
  const std::size_t end = view.find('\n', kKey.size());
  int format = 0;
  if (!parse_number(view.substr(kKey.size(),
                                end == std::string_view::npos
                                    ? std::string_view::npos
                                    : end - kKey.size()),
                    format)) {
    return 0;
  }
  return format;
}

OpenResult open_store_structural(const fs::path& dir,
                                 std::string_view platform, IoEnv& io,
                                 bool repair) {
  return open_impl(dir, platform, io, /*binder=*/nullptr, repair);
}

OpenResult open_store(const fs::path& dir, std::string_view platform,
                      IoEnv& io, const probes::ProbeFleet* sc_fleet,
                      const probes::ProbeFleet* atlas_fleet, bool repair) {
  const RowBinder binder{sc_fleet, atlas_fleet};
  OpenResult result = open_impl(dir, platform, io, &binder, repair);
  if (result.ok() && !result.salvage.clean()) {
    obs::Registry& registry = obs::Registry::global();
    registry
        .counter("store.salvage_blocks_total",
                 "uncommitted blocks adopted on resume")
        .inc(result.salvage.salvaged_blocks);
    registry
        .counter("store.salvage_rows_total",
                 "task rows recovered from uncommitted tails")
        .inc(result.salvage.salvaged_rows);
    registry
        .counter("store.salvage_dropped_blocks_total",
                 "tail blocks rejected during salvage")
        .inc(result.salvage.dropped_blocks);
    registry
        .counter("store.salvage_truncated_bytes_total",
                 "torn tail bytes cut away during salvage")
        .inc(result.salvage.truncated_bytes);
  }
  return result;
}

FsckReport fsck(const fs::path& dir, std::string_view platform, IoEnv& io) {
  FsckReport report;
  report.format = manifest_format(dir, platform, io);
  switch (report.format) {
    case 0:
      report.error = "no store or checkpoint manifest found";
      return report;
    case 1:
      report.error =
          "legacy format=1 checkpoint (router-replay quartets); cannot be "
          "resumed — re-run the campaign from scratch";
      return report;
    case 2: {
      // Legacy CSV checkpoints validate at load time (integrity trailers);
      // fsck only confirms the files are present.
      for (const char* suffix : {".pings.csv", ".traces.csv"}) {
        const fs::path path = dir / (std::string{platform} + suffix);
        if (!io.file_size(path).has_value()) {
          report.error = "legacy checkpoint is missing " + path.string();
          return report;
        }
      }
      return report;
    }
    default:
      break;
  }
  const OpenResult opened =
      open_impl(dir, platform, io, /*binder=*/nullptr, /*repair=*/false);
  if (!opened.ok()) {
    report.error = opened.error;
    return report;
  }
  report.committed_blocks = opened.salvage.committed_blocks;
  report.committed_rows = 0;
  report.tail_blocks = opened.salvage.salvaged_blocks;
  report.tail_rows = opened.salvage.salvaged_rows;
  report.dropped_blocks = opened.salvage.dropped_blocks;
  report.torn_bytes = opened.salvage.truncated_bytes;
  // Structural scan skips row binding, so count rows from the manifest.
  const std::optional<std::string> manifest_text =
      io.read_file(store_manifest_path(dir, platform));
  if (manifest_text.has_value()) {
    Manifest manifest;
    if (parse_manifest(*manifest_text, platform, manifest).empty()) {
      report.committed_rows = manifest.pings;
    }
  }
  return report;
}

std::string FsckReport::render(std::string_view platform) const {
  std::string line{platform};
  line += ": ";
  if (format == 2 && healthy()) {
    line +=
        "format=2 legacy CSV checkpoint (a resume migrates it to the "
        "streaming store) — HEALTHY";
    return line;
  }
  if (!healthy()) {
    line += "DAMAGED: " + error;
    return line;
  }
  line += "format=3, " + std::to_string(committed_blocks) +
          " committed blocks (" + std::to_string(committed_rows) +
          " task rows)";
  if (tail_blocks > 0 || dropped_blocks > 0 || torn_bytes > 0) {
    line += ", uncommitted tail: " + std::to_string(tail_blocks) +
            " salvageable blocks (" + std::to_string(tail_rows) +
            " task rows), " + std::to_string(dropped_blocks) + " dropped, " +
            std::to_string(torn_bytes) + " torn bytes";
  } else {
    line += ", no uncommitted tail";
  }
  line += " — HEALTHY";
  return line;
}

}  // namespace cloudrtt::store

#include "store/codec.hpp"

#include <bit>
#include <charconv>
#include <cstring>

#include "net/ipv4.hpp"
#include "topology/interconnect.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cloudrtt::store {

namespace {

// The payload is raw little-endian bytes; a big-endian port would need
// byte-swapping in put_raw/get_raw before its stores interoperate.
static_assert(std::endian::native == std::endian::little,
              "store payload codec assumes a little-endian host");

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  CLOUDRTT_DCHECK(ec == std::errc{}, "u64 to_chars cannot fail");
  out.append(buffer, ptr);
}

void append_hex16(std::string& out, std::uint64_t value) {
  char buffer[17] = {};
  std::to_chars(buffer, buffer + 16, value, 16);
  out.append(16 - std::string_view{buffer}.size(), '0');
  out += buffer;
}

template <typename T>
[[nodiscard]] bool parse_number(std::string_view text, T& out, int base = 10) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out, base);
  return ec == std::errc{} && ptr == text.data() + text.size() &&
         !text.empty();
}

/// `key=value` scanner for the header line; returns false when `key` is not
/// the next token.
[[nodiscard]] bool take_field(std::string_view& rest, std::string_view key,
                              std::string_view& value) {
  if (!rest.starts_with(key) || rest.size() <= key.size() ||
      rest[key.size()] != '=') {
    return false;
  }
  rest.remove_prefix(key.size() + 1);
  const std::size_t space = rest.find(' ');
  value = rest.substr(0, space);
  rest.remove_prefix(space == std::string_view::npos ? rest.size()
                                                     : space + 1);
  return true;
}

// -- fixed-layout payload primitives ----------------------------------------
// One memcpy per field: the serializer runs on the spill worker, whose CPU
// bill is the streaming mode's wall-clock overhead on single-core machines.

template <typename T>
void put_raw(char*& cursor, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(cursor, &value, sizeof(T));
  cursor += sizeof(T);
}

void put_f64(char*& cursor, double value) {
  put_raw(cursor, std::bit_cast<std::uint64_t>(value));
}

/// Largest serialised task: 16 B ping + 22 B trace core + 255 * 14 B hops.
inline constexpr std::size_t kMaxTaskBytes = 16 + 22 + 255 * 14;

/// Reading cursor over a payload; get_raw advances it and fails instead of
/// reading past the end (a checksum-valid block can still be logically
/// malformed — e.g. written by a different build — so every read is bounded).
struct Reader {
  const char* cursor;
  const char* end;

  template <typename T>
  [[nodiscard]] bool get_raw(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (static_cast<std::size_t>(end - cursor) < sizeof(T)) return false;
    std::memcpy(&out, cursor, sizeof(T));
    cursor += sizeof(T);
    return true;
  }

  [[nodiscard]] bool get_f64(double& out) {
    std::uint64_t bits = 0;
    if (!get_raw(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  }
};

/// Records carry pointers into the static RegionCatalog (world construction
/// aliases its entries), so a catalog index is the exact, O(1) encoding.
[[nodiscard]] std::uint16_t region_index(const cloud::RegionInfo* region) {
  const std::span<const cloud::RegionInfo> all =
      cloud::RegionCatalog::instance().all();
  const auto index = static_cast<std::size_t>(region - all.data());
  CLOUDRTT_CHECK(index < all.size(),
                 "serialized record's region must come from the catalog");
  return static_cast<std::uint16_t>(index);
}

}  // namespace

std::string format_block_header(const BlockHeader& header) {
  std::string line{kBlockMagic};
  line += "seq=";
  append_u64(line, header.seq);
  line += " day=";
  append_u64(line, header.day);
  line += " start=";
  append_u64(line, header.start);
  line += " tasks=";
  append_u64(line, header.tasks);
  line += " cursor=";
  append_u64(line, header.cursor);
  line += " bytes=";
  append_u64(line, header.bytes);
  line += " fnv1a=";
  append_hex16(line, header.fnv1a);
  line += '\n';
  return line;
}

bool parse_block_header(std::string_view line, BlockHeader& out) {
  if (!line.starts_with(kBlockMagic)) return false;
  std::string_view rest = line.substr(kBlockMagic.size());
  std::string_view value;
  return take_field(rest, "seq", value) && parse_number(value, out.seq) &&
         take_field(rest, "day", value) && parse_number(value, out.day) &&
         take_field(rest, "start", value) && parse_number(value, out.start) &&
         take_field(rest, "tasks", value) && parse_number(value, out.tasks) &&
         take_field(rest, "cursor", value) &&
         parse_number(value, out.cursor) &&
         take_field(rest, "bytes", value) && parse_number(value, out.bytes) &&
         take_field(rest, "fnv1a", value) &&
         parse_number(value, out.fnv1a, 16) && rest.empty();
}

void serialize_task(std::string& out, const measure::PingRecord& ping,
                    const measure::TraceRecord& trace) {
  const std::span<const measure::HopRecord> hops{trace.hops};
  char buffer[kMaxTaskBytes];
  char* cursor = buffer;
  CLOUDRTT_CHECK(hops.size() <= 255,
                 "trace hop list exceeds the codec's u8 hop count");
  put_raw(cursor, ping.probe->id);
  put_raw(cursor, region_index(ping.region));
  put_raw(cursor, static_cast<std::uint8_t>(ping.protocol));
  put_raw(cursor, ping.slot);
  put_f64(cursor, ping.rtt_ms);
  put_raw(cursor, trace.probe->id);
  put_raw(cursor, region_index(trace.region));
  put_raw(cursor, static_cast<std::uint8_t>(trace.completed ? 1 : 0));
  put_raw(cursor, trace.slot);
  put_raw(cursor, trace.target_ip.value());
  put_f64(cursor, trace.end_to_end_ms);
  put_raw(cursor, static_cast<std::uint8_t>(trace.true_mode));
  put_raw(cursor, static_cast<std::uint8_t>(hops.size()));
  for (const measure::HopRecord& hop : hops) {
    put_raw(cursor, hop.ttl);
    put_raw(cursor, static_cast<std::uint8_t>(hop.responded ? 1 : 0));
    put_raw(cursor, hop.ip.value());
    put_f64(cursor, hop.rtt_ms);
  }
  out.append(buffer, cursor);
}

// lint:hot
void serialize_task(std::string& out, const measure::Dataset& data,
                    std::size_t row) {
  // Assembled in a stack buffer and appended once: the serializer runs per
  // task on the spill worker, so one bounds-checked string append beats
  // ~46 field-sized ones. The columnar cells already hold the on-disk
  // encoding — probe ids and catalog region indices — so there is no
  // pointer chasing here at all.
  const measure::PingColumn& pings = data.pings;
  const measure::TraceColumn& traces = data.traces;
  const std::span<const measure::HopRecord> hops = traces.hops(row);
  char buffer[kMaxTaskBytes];
  char* cursor = buffer;

  // Ping: u32 probe | u16 region | u8 protocol | u8 slot | f64 rtt (16 B).
  put_raw(cursor, pings.probe_id(row));
  put_raw(cursor, pings.region_index(row));
  put_raw(cursor, static_cast<std::uint8_t>(pings.protocol(row)));
  put_raw(cursor, pings.slot(row));
  put_f64(cursor, pings.rtt_ms(row));

  // Trace core: u32 probe | u16 region | u8 completed | u8 slot |
  // u32 target | f64 end-to-end | u8 mode | u8 hop count (22 B).
  CLOUDRTT_CHECK(hops.size() <= 255,
                 "trace hop list exceeds the codec's u8 hop count");
  put_raw(cursor, traces.probe_id(row));
  put_raw(cursor, traces.region_index(row));
  put_raw(cursor, static_cast<std::uint8_t>(traces.completed(row) ? 1 : 0));
  put_raw(cursor, traces.slot(row));
  put_raw(cursor, traces.target_ip(row).value());
  put_f64(cursor, traces.end_to_end_ms(row));
  put_raw(cursor, static_cast<std::uint8_t>(traces.true_mode(row)));
  put_raw(cursor, static_cast<std::uint8_t>(hops.size()));

  // Hops: u8 ttl | u8 responded | u32 ip | f64 rtt (14 B each). Silent
  // hops keep their (zero) ip/rtt bytes: fixed layout beats the few bytes
  // a conditional encoding would save.
  for (const measure::HopRecord& hop : hops) {
    put_raw(cursor, hop.ttl);
    put_raw(cursor, static_cast<std::uint8_t>(hop.responded ? 1 : 0));
    put_raw(cursor, hop.ip.value());
    put_f64(cursor, hop.rtt_ms);
  }
  out.append(buffer, cursor);
}

RowBinder::RowBinder(const probes::ProbeFleet* sc_fleet,
                     const probes::ProbeFleet* atlas_fleet)
    : sc_fleet_(sc_fleet), atlas_fleet_(atlas_fleet) {}

std::string RowBinder::parse_block(std::string_view payload,
                                   const BlockHeader& header,
                                   measure::Dataset& out) const {
  const std::span<const cloud::RegionInfo> regions =
      cloud::RegionCatalog::instance().all();
  Reader in{payload.data(), payload.data() + payload.size()};
  const auto fail = [&](std::uint32_t task, std::string_view what) {
    return "task " + std::to_string(header.start + task) + " of day " +
           std::to_string(header.day) + ": " + std::string{what};
  };
  // Dense per-fleet ids make presence an O(1) range probe; the on-disk probe
  // id is also the column cell, so a validated id is appended as-is.
  const auto known_probe = [&](std::uint32_t id) {
    return (sc_fleet_ != nullptr && sc_fleet_->by_id(id) != nullptr) ||
           (atlas_fleet_ != nullptr && atlas_fleet_->by_id(id) != nullptr);
  };
  // One hop scratch per block: cleared per task, its capacity amortises over
  // the block's 512 tasks (function-local keeps parse_block const-thread-safe).
  std::vector<measure::HopRecord> hop_scratch;

  for (std::uint32_t task = 0; task < header.tasks; ++task) {
    // -- ping row -----------------------------------------------------------
    std::uint32_t probe_id = 0;
    std::uint16_t region = 0;
    std::uint8_t protocol = 0;
    std::uint8_t ping_slot = 0;
    double rtt_ms = 0.0;
    if (!in.get_raw(probe_id) || !in.get_raw(region) ||
        !in.get_raw(protocol) || !in.get_raw(ping_slot) ||
        !in.get_f64(rtt_ms)) {
      return fail(task, "payload ends inside the ping record");
    }
    if (protocol > 1 || ping_slot > 5 || region >= regions.size()) {
      return fail(task, "bad ping fields");
    }
    if (!known_probe(probe_id)) {
      return fail(task, "unknown probe id " + std::to_string(probe_id));
    }
    out.pings.append_row(probe_id, region,
                         static_cast<measure::Protocol>(protocol), rtt_ms,
                         header.day, ping_slot);

    // -- trace row ----------------------------------------------------------
    std::uint8_t completed = 0;
    std::uint8_t trace_slot = 0;
    std::uint32_t target = 0;
    double end_to_end_ms = 0.0;
    std::uint8_t mode = 0;
    std::uint8_t hop_count = 0;
    if (!in.get_raw(probe_id) || !in.get_raw(region) ||
        !in.get_raw(completed) || !in.get_raw(trace_slot) ||
        !in.get_raw(target) || !in.get_f64(end_to_end_ms) ||
        !in.get_raw(mode) || !in.get_raw(hop_count)) {
      return fail(task, "payload ends inside the trace record");
    }
    if (completed > 1 || trace_slot > 5 || mode > 3 ||
        region >= regions.size()) {
      return fail(task, "bad trace fields");
    }
    if (!known_probe(probe_id)) {
      return fail(task, "unknown probe id " + std::to_string(probe_id));
    }

    hop_scratch.clear();
    hop_scratch.reserve(hop_count);
    for (std::uint8_t h = 0; h < hop_count; ++h) {
      measure::HopRecord hop;
      std::uint8_t responded = 0;
      std::uint32_t ip = 0;
      if (!in.get_raw(hop.ttl) || !in.get_raw(responded) ||
          !in.get_raw(ip) || !in.get_f64(hop.rtt_ms)) {
        return fail(task, "payload ends inside the hop list");
      }
      if (hop.ttl == 0 || responded > 1) {
        return fail(task, "bad hop fields");
      }
      hop.responded = responded == 1;
      hop.ip = net::Ipv4Address{ip};
      hop_scratch.push_back(hop);
    }
    out.traces.append_row(probe_id, region, target, completed == 1,
                          end_to_end_ms, header.day, trace_slot,
                          static_cast<topology::InterconnectMode>(mode),
                          hop_scratch);
  }
  if (in.cursor != in.end) {
    return "payload has " + std::to_string(in.end - in.cursor) +
           " trailing bytes after task " +
           std::to_string(header.start + header.tasks - 1);
  }
  return {};
}

std::filesystem::path store_manifest_path(const std::filesystem::path& dir,
                                          std::string_view platform) {
  return dir / (std::string{platform} + ".manifest");
}

std::filesystem::path store_lane_path(const std::filesystem::path& dir,
                                      std::string_view platform,
                                      std::size_t lane) {
  return dir / (std::string{platform} + ".s" + std::to_string(lane) +
                ".shard");
}

}  // namespace cloudrtt::store

#pragma once
// Injectable filesystem seam for the streaming store.
//
// Every byte the store persists flows through an IoEnv, so tests (and the
// CLI's --io-fault-profile) can inject the disk-failure modes a paper-scale
// campaign actually meets — EIO, torn appends, ENOSPC, lying fsyncs — while
// production runs use the plain POSIX implementation below. Reads are never
// faulted: recovery must be able to see whatever made it to disk.
//
// Durability contract:
//  * append()       open(O_APPEND) + write-all + fsync + close. Shard blocks
//                   rely on block framing + salvage, not atomicity: a torn
//                   append leaves a tail the next open truncates away.
//  * write_atomic() write to a .tmp sibling, fsync it, rename over the
//                   target, fsync the directory. The store's commit point
//                   (manifests): a crash leaves either the old or the new
//                   file, never a mix.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace cloudrtt::store {

/// Outcome of one I/O operation; `error` is empty on success.
struct IoStatus {
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Plain POSIX filesystem operations. Virtual so FaultyIoEnv (and tests) can
/// interpose on the write path.
class IoEnv {
 public:
  IoEnv() = default;
  IoEnv(const IoEnv&) = delete;
  IoEnv& operator=(const IoEnv&) = delete;
  virtual ~IoEnv() = default;

  /// Append `data` to `path` (created if missing), fsync before returning.
  [[nodiscard]] virtual IoStatus append(const std::filesystem::path& path,
                                        std::string_view data);

  /// Write `data` via .tmp + fsync + atomic rename + directory fsync.
  [[nodiscard]] virtual IoStatus write_atomic(const std::filesystem::path& path,
                                              std::string_view data);

  /// Shrink `path` to `size` bytes (salvage truncating a torn tail).
  [[nodiscard]] virtual IoStatus truncate(const std::filesystem::path& path,
                                          std::uint64_t size);

  [[nodiscard]] virtual IoStatus remove(const std::filesystem::path& path);

  [[nodiscard]] virtual IoStatus create_directories(
      const std::filesystem::path& path);

  /// Size of `path`, or nullopt when it does not exist.
  [[nodiscard]] virtual std::optional<std::uint64_t> file_size(
      const std::filesystem::path& path) const;

  /// Whole-file read; nullopt when missing/unreadable. Never faulted.
  [[nodiscard]] virtual std::optional<std::string> read_file(
      const std::filesystem::path& path) const;
};

/// IoEnv decorator that injects disk faults per fault::IoFaults. Draws are
/// deterministic given the seed, but carry no cross-resume contract: I/O
/// faults decide what is durable, never what the dataset contains.
class FaultyIoEnv final : public IoEnv {
 public:
  FaultyIoEnv(const fault::IoFaults& faults, std::uint64_t seed)
      : faults_(faults), rng_(seed) {}

  [[nodiscard]] IoStatus append(const std::filesystem::path& path,
                                std::string_view data) override;
  [[nodiscard]] IoStatus write_atomic(const std::filesystem::path& path,
                                      std::string_view data) override;

  /// Clear the fault intensities — the disk "recovers" (tests drive the
  /// degrade-don't-die catch-up path with this).
  void heal() { faults_ = fault::IoFaults{}; }

  /// Injected failures so far (tests assert the chaos actually happened).
  [[nodiscard]] std::uint64_t faults_injected() const { return injected_; }

 private:
  fault::IoFaults faults_;
  util::Rng rng_;
  std::uint64_t bytes_written_ = 0;  ///< ENOSPC accounting
  std::uint64_t injected_ = 0;
};

}  // namespace cloudrtt::store

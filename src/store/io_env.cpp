#include "store/io_env.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

#include "obs/metrics.hpp"

namespace cloudrtt::store {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::string errno_text() {
  return std::error_code{errno, std::generic_category()}.message();
}

void count_fsync() {
  obs::Registry::global()
      .counter("store.fsyncs_total",
               "fsync calls issued by the streaming store's I/O layer")
      .inc();
}

/// Write the whole buffer, retrying on partial writes and EINTR.
[[nodiscard]] IoStatus write_all(int fd, std::string_view data,
                                 const fs::path& path) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoStatus{"write " + path.string() + ": " + errno_text()};
    }
    written += static_cast<std::size_t>(n);
  }
  return {};
}

[[nodiscard]] IoStatus fsync_fd(int fd, const fs::path& path) {
  count_fsync();
  if (::fsync(fd) != 0) {
    return IoStatus{"fsync " + path.string() + ": " + errno_text()};
  }
  return {};
}

/// fsync the directory holding `path` so a rename into it is durable.
[[nodiscard]] IoStatus fsync_parent(const fs::path& path) {
  const fs::path dir = path.parent_path().empty() ? fs::path{"."}
                                                  : path.parent_path();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return IoStatus{"open dir " + dir.string() + ": " + errno_text()};
  }
  IoStatus status = fsync_fd(fd, dir);
  ::close(fd);
  return status;
}

}  // namespace

IoStatus IoEnv::append(const fs::path& path, std::string_view data) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return IoStatus{"open " + path.string() + ": " + errno_text()};
  }
  IoStatus status = write_all(fd, data, path);
  if (status.ok()) status = fsync_fd(fd, path);
  ::close(fd);
  return status;
}

IoStatus IoEnv::write_atomic(const fs::path& path, std::string_view data) {
  const fs::path tmp = path.string() + ".tmp";
  {
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return IoStatus{"open " + tmp.string() + ": " + errno_text()};
    }
    IoStatus status = write_all(fd, data, tmp);
    if (status.ok()) status = fsync_fd(fd, tmp);
    ::close(fd);
    if (!status.ok()) return status;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return IoStatus{"rename to " + path.string() + ": " + ec.message()};
  }
  return fsync_parent(path);
}

IoStatus IoEnv::truncate(const fs::path& path, std::uint64_t size) {
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    // Truncating a missing file to zero is a no-op, not an error.
    if (size == 0) return {};
    return IoStatus{"truncate " + path.string() + ": file does not exist"};
  }
  fs::resize_file(path, size, ec);
  if (ec) {
    return IoStatus{"truncate " + path.string() + ": " + ec.message()};
  }
  return {};
}

IoStatus IoEnv::remove(const fs::path& path) {
  std::error_code ec;
  fs::remove(path, ec);  // removing a missing file is fine
  if (ec) return IoStatus{"remove " + path.string() + ": " + ec.message()};
  return {};
}

IoStatus IoEnv::create_directories(const fs::path& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return IoStatus{"mkdir " + path.string() + ": " + ec.message()};
  return {};
}

std::optional<std::uint64_t> IoEnv::file_size(const fs::path& path) const {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  return static_cast<std::uint64_t>(size);
}

std::optional<std::string> IoEnv::read_file(const fs::path& path) const {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::string content;
  char buffer[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    content.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return content;
}

IoStatus FaultyIoEnv::append(const fs::path& path, std::string_view data) {
  // ENOSPC first: a full disk trumps the probabilistic failures.
  if (faults_.disk_capacity_bytes > 0 &&
      bytes_written_ + data.size() > faults_.disk_capacity_bytes) {
    const std::uint64_t room =
        faults_.disk_capacity_bytes > bytes_written_
            ? faults_.disk_capacity_bytes - bytes_written_
            : 0;
    if (room > 0) {
      // Whatever fits lands as a torn tail, exactly like a real ENOSPC.
      (void)IoEnv::append(path, data.substr(0, room));
      bytes_written_ += room;
    }
    ++injected_;
    return IoStatus{"injected ENOSPC appending to " + path.string()};
  }
  if (faults_.append_error_rate > 0.0 &&
      rng_.chance(faults_.append_error_rate)) {
    ++injected_;
    return IoStatus{"injected EIO appending to " + path.string()};
  }
  if (faults_.short_write_rate > 0.0 && data.size() > 1 &&
      rng_.chance(faults_.short_write_rate)) {
    const std::uint64_t torn = 1 + rng_.below(data.size() - 1);
    (void)IoEnv::append(path, data.substr(0, torn));
    bytes_written_ += torn;
    ++injected_;
    return IoStatus{"injected short write (" + std::to_string(torn) + " of " +
                    std::to_string(data.size()) + " bytes) to " +
                    path.string()};
  }
  const IoStatus status = IoEnv::append(path, data);
  if (!status.ok()) return status;
  bytes_written_ += data.size();
  if (faults_.fsync_failure_rate > 0.0 &&
      rng_.chance(faults_.fsync_failure_rate)) {
    // The data is on disk but durability was never acknowledged; the caller
    // must treat the block as lost and re-append after truncating.
    ++injected_;
    return IoStatus{"injected fsync failure on " + path.string()};
  }
  return status;
}

IoStatus FaultyIoEnv::write_atomic(const fs::path& path,
                                   std::string_view data) {
  if (faults_.append_error_rate > 0.0 &&
      rng_.chance(faults_.append_error_rate)) {
    ++injected_;
    return IoStatus{"injected EIO writing " + path.string()};
  }
  const IoStatus status = IoEnv::write_atomic(path, data);
  if (status.ok()) bytes_written_ += data.size();
  return status;
}

}  // namespace cloudrtt::store

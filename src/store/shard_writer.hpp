#pragma once
// ShardWriter: the crash-safe streaming spine of a campaign.
//
// One writer per (store directory, platform). Rows stream out at the end of
// every executed day as framed, checksummed blocks (see codec.hpp) appended
// to per-lane shard files; the format=3 manifest — rewritten atomically at
// day boundaries — is the commit point that makes them part of the dataset.
// Anything on disk beyond the manifest's per-lane byte marks is an
// *uncommitted tail* that salvage (salvage.hpp) re-validates block by block
// on resume.
//
// Lanes: the store is created with L lanes (the --threads value at creation,
// recorded in the manifest and reused on every resume); day D's blocks all
// go to lane D % L. Appends stay strictly sequential — a single writer
// thread retires blocks in global day/task order, which is what lets
// salvage trust that a later-day block implies every earlier day was fully
// appended — while resume *reads* scan all L lanes in parallel, so
// reopening a long campaign stays flat-cost as --threads grows.
//
// Asynchrony: append_day() and commit() only copy the rows and enqueue a
// job; one background worker serialises, checksums, appends (a day's
// blocks frame into one buffer and retire with a single fsynced write) and
// rewrites the manifest. The campaign thread therefore pays row copies,
// not disk I/O, and the spill overlaps the execution of later days. drain() blocks until
// every queued job has retired; the destructor drains, so by the time the
// writer goes out of scope the store is quiescent and everything the disk
// accepted is durable. restore() must be called before the first enqueue.
//
// Degrade-don't-die: when the disk misbehaves (see store::FaultyIoEnv) the
// worker keeps serialised blocks queued in memory, logs one loud warning,
// flips the store.degraded gauge and the campaign runs on. Every later
// append or commit first retries the queue in order; the manifest is never
// advanced past data that is not durably on disk, so a crash during a
// degraded episode loses only what the disk had already refused to take.
// append_day()/commit() return the advisory "store was healthy as of the
// last retired job" — the ground truth after a drain() is degraded().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "measure/campaign.hpp"
#include "measure/records.hpp"
#include "obs/metrics.hpp"
#include "store/codec.hpp"
#include "store/io_env.hpp"

namespace cloudrtt::store {

/// Identity stamped into the manifest; resume refuses a seed mismatch.
struct StoreMeta {
  std::string platform;
  std::uint64_t seed = 0;
  std::string fault_profile = "none";
};

/// Per-lane continuation state: where durable data ends and the next block
/// sequence number. Produced by open_store(), consumed by restore().
struct LaneState {
  std::uint64_t durable_bytes = 0;
  std::uint64_t next_seq = 0;
};

class ShardWriter {
 public:
  /// Open the store directory for writing. `fresh` wipes any existing
  /// artefacts for the platform (a non-resume run starts over); a resume
  /// passes false and then restore()s the state open_store() recovered.
  /// `lanes` is clamped to >= 1 and fixed for the store's lifetime.
  ShardWriter(std::filesystem::path dir, StoreMeta meta, std::size_t lanes,
              IoEnv& io, bool fresh);

  /// Drains the queue and joins the worker: the store is quiescent (and as
  /// durable as the disk allowed) once the writer is gone.
  ~ShardWriter();

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// Continue writing where a salvaged store left off. Must run before the
  /// first append_day()/commit() — the writer refuses once jobs are in
  /// flight.
  void restore(const std::vector<LaneState>& lanes,
               std::uint64_t durable_pings, std::uint64_t durable_traces);

  /// Stream one executed day: ping rows [ping_begin, data.pings.size()) and
  /// trace rows [trace_begin, data.traces.size()) of `data` are tasks
  /// [first_task, ...) of `day`, with `day_start_cursor` the country cursor
  /// at the day's start. Copies the row slice (a columnar splice — a handful
  /// of bulk copies, no per-trace allocation) and enqueues it for the
  /// worker; returns the advisory "not degraded as of the last retired job".
  bool append_day(std::uint32_t day, std::size_t day_start_cursor,
                  std::uint32_t first_task, const measure::Dataset& data,
                  std::size_t ping_begin, std::size_t trace_begin);

  /// Enqueue a manifest commit of `state`. The worker skips it while blocks
  /// are still pending — the manifest must never claim rows the disk does
  /// not hold. Advisory return, like append_day().
  bool commit(const measure::CampaignState& state);

  /// Migrate a legacy (format=2) checkpoint wholesale: write every day of
  /// `data` as blocks, commit `state`, then drain. Unlike the streaming
  /// calls this returns the ground truth: false when the disk rejected part
  /// of it (the store stays uncommitted/degraded; the campaign can still
  /// run on).
  bool adopt(const measure::Dataset& data,
             const measure::CampaignState& state);

  /// Block until every enqueued job has retired. On return degraded() and
  /// pending_blocks() describe the store's true state.
  void drain();

  [[nodiscard]] bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t pending_blocks() const {
    return pending_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t lanes() const { return lane_.size(); }
  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }
  [[nodiscard]] std::filesystem::path manifest_path() const {
    return store_manifest_path(dir_, meta_.platform);
  }
  [[nodiscard]] std::filesystem::path lane_path(std::size_t lane) const {
    return store_lane_path(dir_, meta_.platform, lane);
  }

 private:
  /// One enqueued unit: a day's rows (a columnar slice copied off the
  /// campaign thread — hop lists already live in the column's flat pool, so
  /// the copy is a fixed number of bulk vector splices) or a manifest
  /// commit.
  struct Job {
    bool is_commit = false;
    std::uint32_t day = 0;
    std::size_t cursor = 0;
    std::uint32_t first_task = 0;
    measure::Dataset rows;
    measure::CampaignState state;
  };

  /// One day's framed blocks, already concatenated: the unit the disk
  /// accepts (one append + fsync) or refuses (requeued until it heals).
  struct PendingAppend {
    std::size_t lane = 0;
    std::string bytes;         ///< header line + payload, per block, in order
    std::uint64_t rows = 0;    ///< tasks (== pings == traces) across blocks
    std::uint64_t blocks = 0;  ///< framed blocks in `bytes`
  };

  void enqueue(Job job);
  void worker_loop();
  void do_append_day(const Job& job);
  void do_commit(const measure::CampaignState& state);
  /// Drain the pending queue in order; stops at the first failed append.
  bool flush();
  void enter_degraded(const std::string& reason);

  std::filesystem::path dir_;
  StoreMeta meta_;
  IoEnv& io_;

  // -- worker-owned state (the caller touches it only in the constructor
  //    and restore(), both strictly before the first enqueue) --------------
  std::vector<LaneState> lane_;
  std::vector<std::uint64_t> alloc_seq_;  ///< next seq to assign per lane
  /// 1 when the lane may carry torn bytes past durable_bytes (a failed
  /// append); the next flush truncates before appending again.
  std::vector<std::uint8_t> lane_torn_;
  std::deque<PendingAppend> pending_;
  std::uint64_t pending_bytes_ = 0;
  std::uint64_t pending_block_count_ = 0;
  std::string payload_scratch_;  ///< per-block payload, capacity reused
  std::uint64_t durable_pings_ = 0;
  std::uint64_t durable_traces_ = 0;

  // -- queue + cross-thread state ------------------------------------------
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  // lint:guarded_by(mutex_)
  std::deque<Job> jobs_;
  // lint:guarded_by(mutex_)
  bool worker_busy_ = false;
  // lint:guarded_by(mutex_)
  bool started_ = false;  ///< any job ever enqueued (restore() guard)
  // lint:guarded_by(mutex_)
  bool stop_ = false;
  std::atomic<bool> degraded_{false};
  std::atomic<std::size_t> pending_count_{0};

  obs::Counter& spill_bytes_;
  obs::Counter& spill_blocks_;
  obs::Counter& append_failures_;
  obs::Counter& commits_;
  obs::Counter& commits_skipped_;
  obs::Counter& commit_failures_;
  obs::Gauge& pending_blocks_gauge_;
  obs::Gauge& pending_bytes_gauge_;
  obs::Gauge& degraded_gauge_;

  std::thread worker_;  ///< last member: joins after everything else lives
};

}  // namespace cloudrtt::store

#include "store/shard_writer.hpp"

#include <algorithm>
#include <utility>

#include "obs/log.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cloudrtt::store {

namespace {

namespace fs = std::filesystem;

obs::Registry& registry() { return obs::Registry::global(); }

}  // namespace

ShardWriter::ShardWriter(fs::path dir, StoreMeta meta, std::size_t lanes,
                         IoEnv& io, bool fresh)
    : dir_(std::move(dir)),
      meta_(std::move(meta)),
      io_(io),
      lane_(std::max<std::size_t>(lanes, 1)),
      alloc_seq_(lane_.size(), 0),
      lane_torn_(lane_.size(), 0),
      spill_bytes_(registry().counter(
          "store.spill_bytes_total",
          "bytes of framed blocks durably appended to shard files")),
      spill_blocks_(registry().counter(
          "store.spill_blocks_total", "framed blocks durably appended")),
      append_failures_(registry().counter(
          "store.append_failures_total",
          "shard appends the I/O layer refused (degrade-don't-die)")),
      commits_(registry().counter("store.commits_total",
                                  "manifest commits that reached disk")),
      commits_skipped_(registry().counter(
          "store.commits_skipped_total",
          "manifest commits skipped because blocks were still pending")),
      commit_failures_(registry().counter(
          "store.commit_failures_total",
          "manifest writes the I/O layer refused")),
      pending_blocks_gauge_(registry().gauge(
          "store.pending_blocks", "serialised blocks waiting for the disk")),
      pending_bytes_gauge_(registry().gauge(
          "store.pending_bytes", "bytes of blocks waiting for the disk")),
      degraded_gauge_(registry().gauge(
          "store.degraded", "1 while the store is spilling to memory")) {
  const IoStatus made = io_.create_directories(dir_);
  if (!made.ok()) {
    enter_degraded(made.error);
  }
  if (fresh) {
    // A non-resume run starts over: drop the manifest first (the commit
    // point), then the data files it described, so a crash mid-wipe can
    // never resurrect a half-deleted store.
    (void)io_.remove(manifest_path());
    for (std::size_t lane = 0; lane < lane_.size(); ++lane) {
      (void)io_.remove(lane_path(lane));
    }
  }
  // Everything above happens-before the worker's first load: thread start
  // synchronises, and every later handoff goes through mutex_.
  worker_ = std::thread{[this] { worker_loop(); }};
}

ShardWriter::~ShardWriter() {
  drain();
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void ShardWriter::restore(const std::vector<LaneState>& lanes,
                          std::uint64_t durable_pings,
                          std::uint64_t durable_traces) {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    CLOUDRTT_CHECK(!started_,
                   "restore() must run before the first append/commit");
  }
  CLOUDRTT_CHECK(lanes.size() == lane_.size(),
                 "restore() lane count must match the writer's");
  lane_ = lanes;
  for (std::size_t lane = 0; lane < lane_.size(); ++lane) {
    alloc_seq_[lane] = lane_[lane].next_seq;
  }
  durable_pings_ = durable_pings;
  durable_traces_ = durable_traces;
}

void ShardWriter::enqueue(Job job) {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    started_ = true;
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

bool ShardWriter::append_day(std::uint32_t day, std::size_t day_start_cursor,
                             std::uint32_t first_task,
                             const measure::Dataset& data,
                             std::size_t ping_begin, std::size_t trace_begin) {
  CLOUDRTT_CHECK(data.pings.size() - ping_begin ==
                     data.traces.size() - trace_begin,
                 "a day's ping and trace counts must match 1:1");
  // Copy the row slice off the campaign thread — the caller may clear its
  // dataset the moment this returns (streaming mode does), and the worker
  // serialises at its own pace. A columnar splice is a fixed number of bulk
  // vector copies; the fresh job dataset adopts the source binding so the
  // codes transfer verbatim.
  Job job;
  job.day = day;
  job.cursor = day_start_cursor;
  job.first_task = first_task;
  job.rows.append_slice(data, ping_begin, data.pings.size(), trace_begin,
                        data.traces.size());
  enqueue(std::move(job));
  return !degraded();
}

bool ShardWriter::commit(const measure::CampaignState& state) {
  Job job;
  job.is_commit = true;
  job.state = state;
  enqueue(std::move(job));
  return !degraded();
}

bool ShardWriter::adopt(const measure::Dataset& data,
                        const measure::CampaignState& state) {
  CLOUDRTT_CHECK(data.pings.size() == data.traces.size(),
                 "adopted dataset must pair pings and traces 1:1");
  // Rows arrive in canonical campaign order: grouped by day, days ascending,
  // pings and traces advancing in lockstep. Stream each day's contiguous
  // segment; cursor/first_task are 0 because adopted blocks always start a
  // day (a format=2 checkpoint only exists at day boundaries).
  std::size_t begin = 0;
  while (begin < data.pings.size()) {
    const std::uint32_t day = data.pings.day(begin);
    std::size_t end = begin;
    while (end < data.pings.size() && data.pings.day(end) == day) ++end;
    CLOUDRTT_CHECK(data.traces.day(begin) == day &&
                       data.traces.day(end - 1) == day,
                   "adopted pings and traces disagree on day boundaries");
    // Carve the day into its own dataset so the job copies exactly that
    // day's rows (adoption is the cold legacy path; the extra splice is
    // fine).
    measure::Dataset day_rows;
    day_rows.append_slice(data, begin, end, begin, end);
    (void)append_day(day, 0, 0, day_rows, 0, 0);
    begin = end;
  }
  (void)commit(state);
  drain();
  return !degraded();
}

void ShardWriter::drain() {
  std::unique_lock<std::mutex> lock{mutex_};
  idle_cv_.wait(lock, [this] { return jobs_.empty() && !worker_busy_; });
}

void ShardWriter::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and nothing left to retire
      job = std::move(jobs_.front());
      jobs_.pop_front();
      worker_busy_ = true;
    }
    if (job.is_commit) {
      do_commit(job.state);
    } else {
      do_append_day(job);
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      worker_busy_ = false;
      if (jobs_.empty()) idle_cv_.notify_all();
    }
  }
}

void ShardWriter::do_append_day(const Job& job) {
  const std::size_t tasks = job.rows.pings.size();
  PendingAppend entry;
  entry.lane = job.day % lane_.size();
  entry.rows = tasks;
  // Exact payload size (fixed-layout records) plus slack per header line.
  entry.bytes.reserve(tasks * 38 + job.rows.traces.hop_pool().size() * 14 +
                      (tasks / kBlockTasks + 1) * 112);
  for (std::size_t begin = 0; begin < tasks; begin += kBlockTasks) {
    const std::size_t count = std::min(kBlockTasks, tasks - begin);
    payload_scratch_.clear();
    for (std::size_t i = begin; i < begin + count; ++i) {
      serialize_task(payload_scratch_, job.rows, i);
    }
    BlockHeader header;
    header.seq = alloc_seq_[entry.lane]++;
    header.day = job.day;
    header.start = job.first_task + static_cast<std::uint32_t>(begin);
    header.tasks = static_cast<std::uint32_t>(count);
    header.cursor = job.cursor;
    header.bytes = payload_scratch_.size();
    header.fnv1a = util::fnv1a_words(payload_scratch_);
    entry.bytes += format_block_header(header);
    entry.bytes += payload_scratch_;
    ++entry.blocks;
  }
  if (entry.blocks > 0) {
    pending_bytes_ += entry.bytes.size();
    pending_block_count_ += entry.blocks;
    pending_.push_back(std::move(entry));
  }
  (void)flush();
}

bool ShardWriter::flush() {
  while (!pending_.empty()) {
    const PendingAppend& entry = pending_.front();
    const fs::path path = lane_path(entry.lane);
    if (lane_torn_[entry.lane] != 0) {
      // A previous append may have left torn bytes past the durable mark;
      // cut them off so the retry lands at a block boundary.
      const IoStatus cut = io_.truncate(path, lane_[entry.lane].durable_bytes);
      if (!cut.ok()) {
        enter_degraded(cut.error);
        return false;
      }
      lane_torn_[entry.lane] = 0;
    }
    // One append + fsync per entry: a day's blocks were framed into a
    // single buffer when serialised, so the healthy path never re-copies
    // them, and a degraded backlog drains one day at a time.
    const IoStatus status = io_.append(path, entry.bytes);
    if (!status.ok()) {
      // Even a "failed" append may have written a prefix (short write,
      // ENOSPC) or written everything without durability (fsync failure):
      // assume the worst and truncate before the next retry.
      lane_torn_[entry.lane] = 1;
      append_failures_.inc();
      enter_degraded(status.error);
      return false;
    }
    lane_[entry.lane].durable_bytes += entry.bytes.size();
    lane_[entry.lane].next_seq += entry.blocks;
    durable_pings_ += entry.rows;
    durable_traces_ += entry.rows;
    spill_bytes_.inc(entry.bytes.size());
    spill_blocks_.inc(entry.blocks);
    pending_bytes_ -= entry.bytes.size();
    pending_block_count_ -= entry.blocks;
    pending_.pop_front();
  }
  pending_count_.store(0, std::memory_order_relaxed);
  pending_blocks_gauge_.set(0.0);
  pending_bytes_gauge_.set(0.0);
  if (degraded()) {
    degraded_.store(false, std::memory_order_relaxed);
    degraded_gauge_.set(0.0);
    CLOUDRTT_LOG_INFO("store.recovered", {"platform", meta_.platform},
                      {"dir", dir_.string()});
  }
  return true;
}

void ShardWriter::enter_degraded(const std::string& reason) {
  pending_count_.store(static_cast<std::size_t>(pending_block_count_),
                       std::memory_order_relaxed);
  pending_blocks_gauge_.set(static_cast<double>(pending_block_count_));
  pending_bytes_gauge_.set(static_cast<double>(pending_bytes_));
  if (!degraded()) {
    degraded_.store(true, std::memory_order_relaxed);
    degraded_gauge_.set(1.0);
    CLOUDRTT_LOG_WARN("store.degraded", {"platform", meta_.platform},
                      {"reason", reason},
                      {"pending_blocks", pending_block_count_},
                      {"pending_bytes", pending_bytes_});
  }
}

void ShardWriter::do_commit(const measure::CampaignState& state) {
  if (!flush()) {
    // The manifest must never advance past data the disk refused: skip the
    // commit and let a later day (or the final commit) catch up.
    commits_skipped_.inc();
    return;
  }
  std::string manifest;
  manifest.reserve(256 + lane_.size() * 32);
  manifest += "format=3\n";
  manifest += "platform=" + meta_.platform + '\n';
  manifest += "seed=" + std::to_string(meta_.seed) + '\n';
  manifest += "fault_profile=" + meta_.fault_profile + '\n';
  manifest += "lanes=" + std::to_string(lane_.size()) + '\n';
  manifest += "next_day=" + std::to_string(state.next_day) + '\n';
  manifest += "cursor=" + std::to_string(state.cursor) + '\n';
  manifest +=
      "day_tasks_done=" + std::to_string(state.day_tasks_done) + '\n';
  manifest += "pings=" + std::to_string(durable_pings_) + '\n';
  manifest += "traces=" + std::to_string(durable_traces_) + '\n';
  for (std::size_t lane = 0; lane < lane_.size(); ++lane) {
    manifest += "lane" + std::to_string(lane) + '=' +
                std::to_string(lane_[lane].durable_bytes) + ':' +
                std::to_string(lane_[lane].next_seq) + '\n';
  }
  const IoStatus status = io_.write_atomic(manifest_path(), manifest);
  if (!status.ok()) {
    commit_failures_.inc();
    enter_degraded(status.error);
    return;
  }
  commits_.inc();
}

}  // namespace cloudrtt::store

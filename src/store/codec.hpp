#pragma once
// Block framing and row serialisation for the streaming store.
//
// A shard (lane) file is a sequence of framed blocks, each:
//
//   #cloudrtt-blk seq=<n> day=<d> start=<t> tasks=<k> cursor=<c>
//       bytes=<B> fnv1a=<16 hex>   (one line, then a newline)
//   <exactly B payload bytes>
//
// The payload serialises tasks [start, start+k) of `day` as fixed-layout
// little-endian binary records — per task a 16-byte ping, a 22-byte trace
// core and 14 bytes per hop. Doubles are raw IEEE-754 bits, regions are
// indices into the static RegionCatalog, probes are ids re-bound on load:
// exact round-trip by construction (core::dataset_hash is the oracle) and
// cheap enough that the spill worker's CPU stays invisible next to the
// campaign even on single-core machines. The framing stays a text line so
// a shard is greppable for block boundaries; the payload's integrity comes
// from `fnv1a`, never from being readable. `seq` increases by one per
// block within a lane; `cursor` is the country-cycle cursor at the *start*
// of the block's day, which is what a mid-day salvage needs to replay the
// schedule phase. `fnv1a` is FNV-1a folded over 64-bit words of the
// payload (util::fnv1a_words — the byte-serial variant was the worker's
// single biggest CPU item): any bit flip or torn tail is detectable
// without trusting file sizes.

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>

#include "cloud/region.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"

namespace cloudrtt::store {

inline constexpr std::string_view kBlockMagic = "#cloudrtt-blk ";

/// Tasks per block: bounds the blast radius of a torn append (at most one
/// block of rows re-executed) while keeping per-append syscall cost amortised.
inline constexpr std::size_t kBlockTasks = 512;

struct BlockHeader {
  std::uint64_t seq = 0;     ///< per-lane block sequence, contiguous from 0
  std::uint32_t day = 0;
  std::uint32_t start = 0;   ///< first task index of the day in this block
  std::uint32_t tasks = 0;   ///< tasks serialised (1 ping + 1 trace each)
  std::uint64_t cursor = 0;  ///< country-cycle cursor at the day's start
  std::uint64_t bytes = 0;   ///< payload length
  std::uint64_t fnv1a = 0;   ///< util::fnv1a_words over the payload bytes
};

[[nodiscard]] std::string format_block_header(const BlockHeader& header);

/// Parse a header line (without the trailing newline). False on anything
/// that is not a well-formed block header.
[[nodiscard]] bool parse_block_header(std::string_view line, BlockHeader& out);

/// Serialise one task's ping + trace pair onto `out` from owning records
/// (tests, adoption of hand-built rows).
void serialize_task(std::string& out, const measure::PingRecord& ping,
                    const measure::TraceRecord& trace);

/// Columnar hot path: serialise task `row` (ping row `row` paired with trace
/// row `row`) straight from the dataset's columns — the cells already hold
/// the on-disk encoding (probe id, catalog region index), so the spill
/// worker does no pointer chasing and no binding at all.
void serialize_task(std::string& out, const measure::Dataset& data,
                    std::size_t row);

/// Validates serialised rows against live probe fleets and the static region
/// catalogue when a store is opened, appending them column-direct.
class RowBinder {
 public:
  RowBinder(const probes::ProbeFleet* sc_fleet,
            const probes::ProbeFleet* atlas_fleet);

  /// Parse `header.tasks` serialised tasks from `payload`, appending to
  /// `out` (whose binding must cover this binder's fleets — open_store binds
  /// the result dataset before any block is parsed). Returns empty on
  /// success, else what was wrong (the caller decides whether that refuses a
  /// committed block or ends a salvage scan).
  [[nodiscard]] std::string parse_block(std::string_view payload,
                                        const BlockHeader& header,
                                        measure::Dataset& out) const;

  [[nodiscard]] const probes::ProbeFleet* sc_fleet() const { return sc_fleet_; }
  [[nodiscard]] const probes::ProbeFleet* atlas_fleet() const {
    return atlas_fleet_;
  }

 private:
  const probes::ProbeFleet* sc_fleet_ = nullptr;
  const probes::ProbeFleet* atlas_fleet_ = nullptr;
};

// Store artefact paths, shared by the writer, salvage and fsck.
[[nodiscard]] std::filesystem::path store_manifest_path(
    const std::filesystem::path& dir, std::string_view platform);
[[nodiscard]] std::filesystem::path store_lane_path(
    const std::filesystem::path& dir, std::string_view platform,
    std::size_t lane);

}  // namespace cloudrtt::store

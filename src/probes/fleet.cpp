#include "probes/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cloudrtt::probes {

namespace {

[[nodiscard]] double platform_weight(Platform platform, const geo::CountryInfo& c) {
  return platform == Platform::Speedchecker ? c.sc_weight : c.atlas_weight;
}

}  // namespace

ProbeFleet::ProbeFleet(topology::World& world, const FleetConfig& config)
    : config_(config) {
  const bool speedchecker = config.platform == Platform::Speedchecker;
  obs::Span build = obs::span(speedchecker ? "probes.fleet.build.speedchecker"
                                           : "probes.fleet.build.atlas");
  util::Rng rng = world.fork_rng(config.platform == Platform::Speedchecker
                                     ? "fleet/speedchecker"
                                     : "fleet/atlas");
  const auto& countries = world.countries();
  const double total_weight = config.platform == Platform::Speedchecker
                                  ? countries.total_sc_weight()
                                  : countries.total_atlas_weight();
  std::uint32_t next_id = config.platform == Platform::Speedchecker ? 1 : 1'000'000;

  for (const geo::CountryInfo& country : countries.all()) {
    const double weight = platform_weight(config.platform, country);
    if (weight <= 0.0) continue;
    const double exact =
        weight / total_weight * static_cast<double>(config.target_count);
    // Stochastic rounding keeps small countries represented proportionally.
    auto count = static_cast<std::size_t>(exact);
    if (rng.chance(exact - static_cast<double>(count))) ++count;
    if (count == 0) continue;

    const auto cities = geo::CityDirectory::instance().cities(country.code);
    const auto isps = world.isps_in(country.code);
    std::vector<double> city_weights;
    city_weights.reserve(cities.size());
    for (const geo::City& city : cities) city_weights.push_back(city.weight);
    std::vector<double> isp_weights;
    isp_weights.reserve(isps.size());
    for (const topology::IspNetwork* isp : isps) isp_weights.push_back(isp->share);

    for (std::size_t i = 0; i < count; ++i) {
      Probe probe;
      probe.id = next_id++;
      probe.platform = config.platform;
      probe.country = &country;
      probe.city = &cities[rng.weighted_index(city_weights)];
      probe.isp = isps[rng.weighted_index(isp_weights)];
      // Jitter within the metro area.
      probe.location =
          geo::offset(probe.city->location, rng.uniform(0.0, 360.0),
                      rng.uniform(0.0, 15.0));

      if (config.platform == Platform::Speedchecker) {
        probe.access = rng.chance(country.cell_fraction)
                           ? lastmile::AccessTech::Cellular
                           : lastmile::AccessTech::HomeWifi;
        if (config.access_override) probe.access = *config.access_override;
        // Android probes churn heavily (§3.3): only a fraction is connected
        // at any instant.
        probe.availability = rng.uniform(0.10, 0.60);
      } else {
        probe.access = lastmile::AccessTech::Wired;
        probe.availability = rng.uniform(0.85, 0.99);
      }
      probe.lastmile =
          lastmile::make_profile(probe.access, country.backhaul_quality, rng);
      probe.lastmile.air_median_ms *= config.air_scale;

      double cgn_prob = probe.isp->cgn_fraction;
      if (probe.access == lastmile::AccessTech::Cellular) {
        cgn_prob = std::min(0.9, cgn_prob * 2.2);  // mobile carriers love CGN
      } else if (probe.access == lastmile::AccessTech::Wired) {
        cgn_prob *= 0.2;  // managed deployments usually have public addresses
      }
      probe.behind_cgn = rng.chance(cgn_prob);
      probe.address = probe.behind_cgn ? world.allocate_cgn_ip(probe.isp->asn)
                                       : world.allocate_customer_ip(probe.isp->asn);
      probes_.push_back(std::move(probe));
    }
  }
  std::size_t cgn = 0;
  for (const Probe& probe : probes_) {
    if (probe.behind_cgn) ++cgn;
  }
  obs::Registry& registry = obs::Registry::global();
  registry.counter("fleet.probes_built_total").inc(probes_.size());
  registry.gauge(speedchecker ? "fleet.speedchecker.probes"
                              : "fleet.atlas.probes")
      .set(static_cast<double>(probes_.size()));
  CLOUDRTT_LOG_DEBUG("fleet.built",
                     {"platform", to_string(config.platform)},
                     {"requested", config.target_count},
                     {"probes", probes_.size()}, {"behind_cgn", cgn});
}

std::vector<const Probe*> ProbeFleet::in_country(std::string_view code) const {
  std::vector<const Probe*> out;
  for (const Probe& probe : probes_) {
    if (probe.country->code == code) out.push_back(&probe);
  }
  return out;
}

std::size_t ProbeFleet::count_in_country(std::string_view code) const {
  std::size_t n = 0;
  for (const Probe& probe : probes_) {
    if (probe.country->code == code) ++n;
  }
  return n;
}

}  // namespace cloudrtt::probes

#pragma once
// Probe fleets for the two measurement platforms.
//
// Speedchecker (§3.2): software probes on end-user Android devices —
// wireless last-mile (WiFi or cellular per the country's mix), resident in
// access ISPs proportional to market share, transient availability.
// RIPE Atlas: hardware probes in managed environments — wired last-mile,
// high availability, deployment densities per Fig. 2.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "geo/cities.hpp"
#include "geo/country.hpp"
#include "lastmile/access.hpp"
#include "net/ipv4.hpp"
#include "topology/isp.hpp"
#include "topology/world.hpp"

namespace cloudrtt::probes {

enum class Platform : unsigned char { Speedchecker, RipeAtlas };

[[nodiscard]] constexpr std::string_view to_string(Platform p) {
  return p == Platform::Speedchecker ? "Speedchecker" : "RIPE Atlas";
}

struct Probe {
  std::uint32_t id = 0;
  Platform platform = Platform::Speedchecker;
  const geo::CountryInfo* country = nullptr;
  const topology::IspNetwork* isp = nullptr;
  const geo::City* city = nullptr;
  geo::GeoPoint location;
  lastmile::AccessTech access = lastmile::AccessTech::HomeWifi;
  lastmile::Profile lastmile;
  net::Ipv4Address address;   ///< public customer or CGN address
  bool behind_cgn = false;
  double availability = 1.0;  ///< P[connected] at a scheduling instant
};

struct FleetConfig {
  FleetConfig() = default;
  FleetConfig(Platform p, std::size_t count) : platform(p), target_count(count) {}

  Platform platform = Platform::Speedchecker;
  std::size_t target_count = 8000;  ///< scaled-down stand-in for 115k / 8.5k
  /// Ablation: force every probe onto one access technology (e.g. wire the
  /// Speedchecker fleet to isolate the wireless contribution of Fig. 5/7).
  std::optional<lastmile::AccessTech> access_override;
  /// What-if: scale the wireless air-segment medians (e.g. 0.15 ~ a 5G world
  /// with ~3 ms radio legs — the §7 discussion).
  double air_scale = 1.0;
};

class ProbeFleet {
 public:
  /// Generates the fleet; allocates subscriber addresses from the world.
  ProbeFleet(topology::World& world, const FleetConfig& config);

  [[nodiscard]] Platform platform() const { return config_.platform; }
  [[nodiscard]] const std::vector<Probe>& probes() const { return probes_; }
  [[nodiscard]] std::vector<const Probe*> in_country(std::string_view code) const;
  [[nodiscard]] std::size_t count_in_country(std::string_view code) const;
  [[nodiscard]] std::size_t size() const { return probes_.size(); }

  /// O(1) id lookup: fleet ids are assigned densely (Speedchecker from 1,
  /// Atlas from 1'000'000), so a probe's slot is `id - front().id`. Returns
  /// nullptr for ids outside this fleet — the columnar dataset's row binding
  /// probes both fleets and falls back to its extras table.
  [[nodiscard]] const Probe* by_id(std::uint32_t id) const {
    if (probes_.empty() || id < probes_.front().id) return nullptr;
    const std::size_t index = id - probes_.front().id;
    return index < probes_.size() ? &probes_[index] : nullptr;
  }

  /// Per-day churn resampling: one Bernoulli draw deciding whether `probe`
  /// is connected at this scheduling instant. `churn_factor` scales the
  /// probe's nominal availability (fault injection: churn episodes push it
  /// below 1.0); with factor 1.0 the draw is exactly the nominal one, so
  /// fault-free campaigns consume an identical RNG stream.
  [[nodiscard]] static bool connected_now(const Probe& probe, util::Rng& rng,
                                          double churn_factor = 1.0) {
    const double p = probe.availability * churn_factor;
    return rng.chance(p < 1.0 ? p : 1.0);
  }

  /// The per-country probe threshold of the paper (>=100 of 115k probes),
  /// scaled to this fleet's size.
  [[nodiscard]] double scaled_country_threshold(double paper_threshold = 100.0,
                                                double paper_total = 115000.0) const {
    return paper_threshold * static_cast<double>(probes_.size()) / paper_total;
  }

 private:
  FleetConfig config_;
  std::vector<Probe> probes_;
};

}  // namespace cloudrtt::probes

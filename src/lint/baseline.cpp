#include "lint/baseline.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "util/json.hpp"
#include "util/json_value.hpp"
#include "util/rng.hpp"

namespace cloudrtt::lint {

namespace {

[[nodiscard]] std::string entry_key(std::string_view file,
                                    std::string_view rule,
                                    std::string_view snippet) {
  std::string key{file};
  key.push_back('|');
  key.append(rule);
  key.push_back('|');
  key.append(snippet);
  return key;
}

}  // namespace

std::string finding_fingerprint(const Finding& finding) {
  const std::uint64_t hash =
      util::fnv1a(entry_key(finding.file, rule_key(finding.rule),
                            finding.snippet));
  char buffer[17] = {};
  std::to_chars(buffer, buffer + 16, hash, 16);
  return std::string{buffer};
}

std::string write_baseline_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  util::JsonWriter json{out};
  json.begin_object();
  json.field("schema", "cloudrtt-lint-baseline/1");
  json.key("entries");
  json.begin_array();
  for (const Finding& finding : findings) {
    if (finding.suppressed) continue;
    json.begin_object();
    json.field("id", finding_fingerprint(finding));
    json.field("file", finding.file);
    json.field("rule", rule_key(finding.rule));
    json.field("snippet", finding.snippet);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
  return out.str();
}

bool parse_baseline_json(std::string_view text, Baseline& out) {
  out.entries.clear();
  const std::optional<util::JsonValue> doc = util::JsonValue::parse(text);
  if (!doc || !doc->is_object() ||
      doc->string_at("schema") != "cloudrtt-lint-baseline/1") {
    return false;
  }
  const util::JsonValue* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_array()) return false;
  for (const util::JsonValue& item : entries->items()) {
    BaselineEntry entry;
    entry.file = item.string_at("file");
    entry.rule = item.string_at("rule");
    entry.snippet = item.string_at("snippet");
    if (entry.file.empty() || entry.rule.empty()) return false;
    out.entries.push_back(std::move(entry));
  }
  return true;
}

std::vector<std::string> apply_baseline(const Baseline& baseline,
                                        std::vector<Finding>& findings) {
  // Count-based multiset: one line can legitimately carry several identical
  // findings (e.g. three std::string temporaries in one statement), so each
  // baseline entry absorbs exactly one match.
  std::map<std::string, std::size_t> budget;
  for (const BaselineEntry& entry : baseline.entries) {
    ++budget[entry_key(entry.file, entry.rule, entry.snippet)];
  }
  for (Finding& finding : findings) {
    if (finding.suppressed) continue;
    const auto it = budget.find(
        entry_key(finding.file, rule_key(finding.rule), finding.snippet));
    if (it == budget.end() || it->second == 0) continue;
    --it->second;
    finding.baselined = true;
  }
  std::vector<std::string> stale;
  for (const auto& [key, left] : budget) {
    for (std::size_t i = 0; i < left; ++i) {
      stale.push_back("stale baseline entry (no matching finding): " + key);
    }
  }
  return stale;
}

}  // namespace cloudrtt::lint

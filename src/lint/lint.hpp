#pragma once
// cloudrtt-lint: project-specific static analysis for determinism, contract
// hygiene, and concurrency/hot-path discipline (see README "Static analysis
// & determinism").
//
// The simulator's headline guarantees — same seed => bit-identical dataset,
// checkpoint resume == uninterrupted run — only hold while no code path lets
// incidental runtime state (hash-map iteration order, wall clocks, libc
// rand()) leak into exported output. The parallel executor adds a second
// family of invariants: the world is frozen after construction, shared
// mutable state hides behind named mutexes, and the per-visit path allocates
// nothing. This library enforces both families as machine checks instead of
// review folklore:
//
//   unordered-iter   range-for over a std::unordered_{map,set} (declared in
//                    the scanned tree, including via alias or auto-bound
//                    function result). Iteration order of unordered
//                    containers is unspecified, and for pointer keys it
//                    varies run-to-run with ASLR.
//   nondeterminism   rand()/srand(), std::random_device, time()/clock(),
//                    std::chrono clocks, std:: engines (mt19937, ...)
//                    outside src/util/rng.* (the one sanctioned entropy
//                    source) and src/obs/ (wall-clock timing for telemetry
//                    is fine; it never feeds the dataset).
//   raw-assert       assert() in library code — vanishes under NDEBUG and
//                    carries no runtime context. Use CLOUDRTT_CHECK /
//                    CLOUDRTT_DCHECK from util/check.hpp.
//   header-hygiene   headers must contain #pragma once and must not contain
//                    `using namespace`.
//   mutable-member   `mutable` data members in headers. Lazy mutable caches
//                    behind const interfaces are hidden shared state — the
//                    exact pattern the parallel campaign executor cannot
//                    tolerate. Synchronization primitives (mutex, atomic,
//                    once_flag, condition_variable) are allowed; anything
//                    else needs a justified lint:allow naming its guard.
//   local-static     function-local `static` non-const objects in library
//                    code: initialization order and lifetime are process
//                    state, and mutable singletons are thread-hostile.
//                    `static const`/`constexpr`/`constinit` are fine.
//   guarded-by       a field annotated `// lint:guarded_by(mu)` accessed in
//                    a function body (header + sibling .cpp) outside a
//                    scope that locks `mu` (lock_guard/unique_lock/
//                    shared_lock/scoped_lock over it, or mu.lock()).
//                    Constructors/destructors of the owning type are exempt
//                    — no concurrent access can exist yet/any more.
//   frozen           a type annotated `// lint:frozen` (deeply immutable
//                    after construction) declaring a public non-const member
//                    function, or a const_cast anywhere in its header/.cpp
//                    pair.
//   hot-path-alloc   inside a `// lint:hot` function (or `lint:hot(file)`
//                    file): `new`, make_unique/make_shared, std::function,
//                    to_string, ostringstream, std::string/std::vector
//                    value declarations or temporaries, and operator[] on a
//                    map-typed symbol. Steer toward util::Arena, caller
//                    scratch, and string_view.
//   layering-dag     an `#include "module/..."` edge between src/ modules
//                    that points against the declared layer order
//                    (src/lint/layers.hpp) — the cycle class PR 5 broke by
//                    hand with cities.*.
//   allow-hygiene    a lint:allow with an empty justification, an unknown
//                    rule key, or no finding of that rule on its line or the
//                    line below (an orphan — the code it excused is gone).
//
// Findings are suppressed line-by-line with a justified annotation:
//
//   for (const auto& [asn, sites] : cache_) {  // lint:allow(unordered-iter): sorted below
//
// or, when the line is too long, a comment-only line directly above. A
// suppression without a `: justification` does NOT suppress — and is itself
// an allow-hygiene finding.
//
// Pre-existing findings can be parked in a checked-in baseline
// (baseline.hpp): baselined findings don't fail the run but stay visible in
// the reports, so the debt burns down instead of growing.
//
// The scanner is token-aware, not a parser: comments, string literals
// (including raw strings), and char literals never produce findings, and
// type knowledge comes from a cross-file symbol index (pass 1, cacheable on
// content hashes), so members declared unordered or guarded in a header are
// recognised when touched in a .cpp.

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrtt::lint {

enum class Rule {
  UnorderedIter,
  Nondeterminism,
  RawAssert,
  HeaderHygiene,
  MutableMember,
  LocalStatic,
  GuardedBy,
  Frozen,
  HotPathAlloc,
  LayeringDag,
  AllowHygiene,
};

inline constexpr std::size_t kRuleCount = 11;

/// Every rule in enum (and report) order; --list-rules and the report
/// writers iterate this.
inline constexpr std::array<Rule, kRuleCount> kAllRules = {
    Rule::UnorderedIter, Rule::Nondeterminism, Rule::RawAssert,
    Rule::HeaderHygiene, Rule::MutableMember,  Rule::LocalStatic,
    Rule::GuardedBy,     Rule::Frozen,         Rule::HotPathAlloc,
    Rule::LayeringDag,   Rule::AllowHygiene,
};

/// Stable key used in suppressions, JSON/SARIF output and the summary table.
[[nodiscard]] std::string_view rule_key(Rule rule);
/// One-line human description for the summary table and --list-rules.
[[nodiscard]] std::string_view rule_summary(Rule rule);

struct Finding {
  std::string file;   ///< path as handed to add()
  std::size_t line{}; ///< 1-based
  Rule rule{};
  std::string message;
  std::string snippet;  ///< trimmed offending source line
  bool suppressed = false;
  bool baselined = false;  ///< matched a checked-in baseline entry
  std::string justification;  ///< text after "lint:allow(<rule>):"
};

/// Which rules apply to a given path. Paths are matched on '/'-separated
/// suffix-normalised form, so both "src/obs/log.cpp" and
/// "/abs/repo/src/obs/log.cpp" hit the "src/obs/" exemption.
struct LintOptions {
  /// Prefixes where `nondeterminism` does not apply (sanctioned entropy /
  /// telemetry clocks).
  std::vector<std::string> nondeterminism_exempt{"src/util/rng.", "src/obs/"};
  /// Prefixes where `raw-assert` does not apply (tests may use assert and
  /// the gtest macros freely).
  std::vector<std::string> raw_assert_exempt{"tests/"};
  /// Prefixes where `mutable-member` does not apply (test fixtures may fake
  /// whatever state they like).
  std::vector<std::string> mutable_member_exempt{"tests/"};
  /// Prefixes where `local-static` does not apply: binaries and benchmarks
  /// are single-threaded drivers, src/obs hosts the sanctioned telemetry
  /// singletons (whose registries are internally synchronized), and the rng
  /// module owns the one sanctioned entropy source.
  std::vector<std::string> local_static_exempt{
      "tests/", "bench/", "examples/", "tools/", "src/obs/", "src/util/rng."};
  /// Prefixes where `hot-path-alloc` does not apply even to lint:hot-marked
  /// code: figure generators and examples trade allocations for clarity.
  std::vector<std::string> hot_alloc_exempt{"bench/", "examples/"};
  /// Prefixes whose comments are NOT mined for annotation markers and that
  /// `allow-hygiene` skips: the linter's own sources document the
  /// annotation grammar, which would otherwise register as orphan allows.
  std::vector<std::string> annotation_exempt{"src/lint/"};

  [[nodiscard]] bool applies(Rule rule, std::string_view path) const;
  /// True when `path`'s annotation markers should be harvested.
  [[nodiscard]] bool harvest_markers(std::string_view path) const;
};

/// Two-pass linter: add() every file first (pass 1 builds the project-wide
/// symbol index — unordered symbols, guarded fields, frozen types, hot
/// regions, include edges, allow uses), then run() scans and returns
/// findings from every rule family.
class Linter {
 public:
  explicit Linter(LintOptions options = {});
  ~Linter();
  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  /// Register a source file. `path` is used for reporting and rule scoping;
  /// `content` is the full file text.
  void add(std::string path, std::string content);

  /// Seed pass 1 from a cache document (write_index_cache()): files whose
  /// content hash matches reuse the cached index instead of re-scanning.
  /// Call before the first add(). Returns false on a malformed document
  /// (the cache is ignored, not an error).
  bool load_index_cache(std::string_view json);

  /// Serialize the post-run index of every added file for --index-cache.
  [[nodiscard]] std::string write_index_cache() const;

  /// Scan every added file. Findings are ordered by (file, line, rule).
  [[nodiscard]] std::vector<Finding> run();

  /// Symbols the harvest pass classified as unordered containers (variables,
  /// members, aliases, and functions returning unordered types). Exposed for
  /// tests and --dump-symbols.
  [[nodiscard]] std::vector<std::string> unordered_symbols() const;

  /// Per-rule count of lint:allow uses across the scanned tree (justified
  /// or not; unknown rule keys count under allow-hygiene). Valid after
  /// run().
  [[nodiscard]] std::array<std::size_t, kRuleCount> allow_uses() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Per-rule totals plus the overall verdict.
struct Summary {
  struct PerRule {
    std::size_t total = 0;       ///< all findings, suppressed included
    std::size_t suppressed = 0;  ///< carried a justified lint:allow
    std::size_t baselined = 0;   ///< parked in the checked-in baseline
    std::size_t allow_uses = 0;  ///< lint:allow(<rule>) uses in the tree
  };
  PerRule rules[kRuleCount];
  std::size_t files = 0;

  /// Findings neither suppressed nor baselined — what fails the run.
  [[nodiscard]] std::size_t unsuppressed_total() const;
  /// True when every finding is suppressed or baselined (lint exit code 0).
  [[nodiscard]] bool clean() const { return unsuppressed_total() == 0; }
};

[[nodiscard]] Summary summarize(
    const std::vector<Finding>& findings, std::size_t files,
    const std::array<std::size_t, kRuleCount>& allow_uses = {});

/// Human-readable report: one line per unsuppressed finding, then the
/// per-rule count table.
void write_text_report(std::ostream& out, const std::vector<Finding>& findings,
                       const Summary& summary, bool show_suppressed = false);

/// Machine-readable report (findings array + per-rule summary incl. allow
/// uses), built with util::JsonWriter.
void write_json_report(std::ostream& out, const std::vector<Finding>& findings,
                       const Summary& summary);

/// SARIF 2.1.0 report: one run, one result per unsuppressed finding
/// (baselined findings carry baselineState "unchanged", fresh ones "new"),
/// for github/codeql-action/upload-sarif PR annotations.
void write_sarif_report(std::ostream& out,
                        const std::vector<Finding>& findings);

}  // namespace cloudrtt::lint

#pragma once
// cloudrtt-lint: project-specific static analysis for determinism and
// contract hygiene (see README "Static analysis & determinism").
//
// The simulator's headline guarantees — same seed => bit-identical dataset,
// checkpoint resume == uninterrupted run — only hold while no code path lets
// incidental runtime state (hash-map iteration order, wall clocks, libc
// rand()) leak into exported output. This library enforces that as machine
// checks instead of review folklore:
//
//   unordered-iter   range-for over a std::unordered_{map,set} (declared in
//                    the scanned tree, including via alias or auto-bound
//                    function result). Iteration order of unordered
//                    containers is unspecified, and for pointer keys it
//                    varies run-to-run with ASLR.
//   nondeterminism   rand()/srand(), std::random_device, time()/clock(),
//                    std::chrono clocks, std:: engines (mt19937, ...)
//                    outside src/util/rng.* (the one sanctioned entropy
//                    source) and src/obs/ (wall-clock timing for telemetry
//                    is fine; it never feeds the dataset).
//   raw-assert       assert() in library code — vanishes under NDEBUG and
//                    carries no runtime context. Use CLOUDRTT_CHECK /
//                    CLOUDRTT_DCHECK from util/check.hpp.
//   header-hygiene   headers must contain #pragma once and must not contain
//                    `using namespace`.
//   mutable-member   `mutable` data members in headers. Lazy mutable caches
//                    behind const interfaces are hidden shared state — the
//                    exact pattern the parallel campaign executor cannot
//                    tolerate. Synchronization primitives (mutex, atomic,
//                    once_flag, condition_variable) are allowed; anything
//                    else needs a justified lint:allow naming its guard.
//   local-static     function-local `static` non-const objects in library
//                    code: initialization order and lifetime are process
//                    state, and mutable singletons are thread-hostile.
//                    `static const`/`constexpr`/`constinit` are fine.
//
// Findings are suppressed line-by-line with a justified annotation:
//
//   for (const auto& [asn, sites] : cache_) {  // lint:allow(unordered-iter): sorted below
//
// or, when the line is too long, a comment-only line directly above. A
// suppression without a `: justification` does NOT suppress.
//
// The scanner is token-aware, not a parser: comments, string literals
// (including raw strings), and char literals never produce findings, and
// type knowledge comes from a cross-file symbol harvest, so members declared
// unordered in a header are recognised when iterated in a .cpp.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrtt::lint {

enum class Rule {
  UnorderedIter,
  Nondeterminism,
  RawAssert,
  HeaderHygiene,
  MutableMember,
  LocalStatic,
};

inline constexpr std::size_t kRuleCount = 6;

/// Stable key used in suppressions, JSON output and the summary table.
[[nodiscard]] std::string_view rule_key(Rule rule);
/// One-line human description for the summary table.
[[nodiscard]] std::string_view rule_summary(Rule rule);

struct Finding {
  std::string file;   ///< path as handed to add()
  std::size_t line{}; ///< 1-based
  Rule rule{};
  std::string message;
  std::string snippet;  ///< trimmed offending source line
  bool suppressed = false;
  std::string justification;  ///< text after "lint:allow(<rule>):"
};

/// Which rules apply to a given path. Paths are matched on '/'-separated
/// suffix-normalised form, so both "src/obs/log.cpp" and
/// "/abs/repo/src/obs/log.cpp" hit the "src/obs/" exemption.
struct LintOptions {
  /// Prefixes where `nondeterminism` does not apply (sanctioned entropy /
  /// telemetry clocks).
  std::vector<std::string> nondeterminism_exempt{"src/util/rng.", "src/obs/"};
  /// Prefixes where `raw-assert` does not apply (tests may use assert and
  /// the gtest macros freely).
  std::vector<std::string> raw_assert_exempt{"tests/"};
  /// Prefixes where `mutable-member` does not apply (test fixtures may fake
  /// whatever state they like).
  std::vector<std::string> mutable_member_exempt{"tests/"};
  /// Prefixes where `local-static` does not apply: binaries and benchmarks
  /// are single-threaded drivers, src/obs hosts the sanctioned telemetry
  /// singletons (whose registries are internally synchronized), and the rng
  /// module owns the one sanctioned entropy source.
  std::vector<std::string> local_static_exempt{
      "tests/", "bench/", "examples/", "tools/", "src/obs/", "src/util/rng."};

  [[nodiscard]] bool applies(Rule rule, std::string_view path) const;
};

/// Two-pass linter: add() every file first (pass 1 harvests unordered
/// symbols across the whole tree), then run() scans and returns findings.
class Linter {
 public:
  explicit Linter(LintOptions options = {});
  ~Linter();
  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  /// Register a source file. `path` is used for reporting and rule scoping;
  /// `content` is the full file text.
  void add(std::string path, std::string content);

  /// Scan every added file. Findings are ordered by (file, line, rule).
  [[nodiscard]] std::vector<Finding> run();

  /// Symbols the harvest pass classified as unordered containers (variables,
  /// members, aliases, and functions returning unordered types). Exposed for
  /// tests and --dump-symbols.
  [[nodiscard]] std::vector<std::string> unordered_symbols() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Per-rule totals plus the overall verdict.
struct Summary {
  struct PerRule {
    std::size_t total = 0;       ///< all findings, suppressed included
    std::size_t suppressed = 0;  ///< carried a justified lint:allow
  };
  PerRule rules[kRuleCount];
  std::size_t files = 0;

  [[nodiscard]] std::size_t unsuppressed_total() const;
  /// True when every finding is suppressed (lint exit code 0).
  [[nodiscard]] bool clean() const { return unsuppressed_total() == 0; }
};

[[nodiscard]] Summary summarize(const std::vector<Finding>& findings,
                                std::size_t files);

/// Human-readable report: one line per unsuppressed finding, then the
/// per-rule count table.
void write_text_report(std::ostream& out, const std::vector<Finding>& findings,
                       const Summary& summary, bool show_suppressed = false);

/// Machine-readable report (findings array + per-rule summary), built with
/// util::JsonWriter.
void write_json_report(std::ostream& out, const std::vector<Finding>& findings,
                       const Summary& summary);

}  // namespace cloudrtt::lint

// SARIF 2.1.0 export: one run, one reportingDescriptor per rule, one result
// per unsuppressed finding. Baselined findings carry baselineState
// "unchanged" (GitHub code scanning hides them from PR annotations), fresh
// ones "new". The fingerprint matches the baseline file's entry id so the
// two artefacts cross-reference.

#include <ostream>

#include "lint/baseline.hpp"
#include "lint/lint.hpp"
#include "util/json.hpp"

namespace cloudrtt::lint {

void write_sarif_report(std::ostream& out,
                        const std::vector<Finding>& findings) {
  util::JsonWriter json{out};
  json.begin_object();
  json.field("version", "2.1.0");
  json.field("$schema",
             "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
             "Schemata/sarif-schema-2.1.0.json");
  json.key("runs");
  json.begin_array();
  json.begin_object();
  json.key("tool");
  json.begin_object();
  json.key("driver");
  json.begin_object();
  json.field("name", "cloudrtt-lint");
  json.field("informationUri",
             "https://github.com/cloudrtt/cloudrtt#static-analysis--determinism");
  json.key("rules");
  json.begin_array();
  for (const Rule rule : kAllRules) {
    json.begin_object();
    json.field("id", rule_key(rule));
    json.key("shortDescription");
    json.begin_object();
    json.field("text", rule_summary(rule));
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();
  json.key("results");
  json.begin_array();
  for (const Finding& finding : findings) {
    if (finding.suppressed) continue;
    json.begin_object();
    json.field("ruleId", rule_key(finding.rule));
    json.field("level", "error");
    json.key("message");
    json.begin_object();
    json.field("text", finding.message);
    json.end_object();
    json.key("locations");
    json.begin_array();
    json.begin_object();
    json.key("physicalLocation");
    json.begin_object();
    json.key("artifactLocation");
    json.begin_object();
    json.field("uri", finding.file);
    json.end_object();
    json.key("region");
    json.begin_object();
    json.field("startLine",
               static_cast<std::uint64_t>(
                   finding.line == 0 ? std::size_t{1} : finding.line));
    json.end_object();
    json.end_object();
    json.end_object();
    json.end_array();
    json.field("baselineState", finding.baselined ? "unchanged" : "new");
    json.key("partialFingerprints");
    json.begin_object();
    json.field("cloudrttLint/v1", finding_fingerprint(finding));
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace cloudrtt::lint

#pragma once
// The layering DAG: the single place the module order under src/ is declared.
// An `#include "module/..."` edge is legal only when it points from a
// higher-ranked module to a strictly lower-ranked one; edges the other way
// (or self-edges, which are always fine) are layering-dag findings.

#include <array>
#include <cstddef>
#include <string_view>

namespace cloudrtt::lint {

/// src/ modules from foundation to application. Position is the rank; a
/// module may include any module that appears *earlier* in this list.
inline constexpr std::array<std::string_view, 15> kLayerOrder = {
    "util",   "obs",      "net",   "geo",     "lastmile",
    "cloud",  "lint",     "topology", "fault", "probes",
    "routing", "measure", "store", "analysis", "core",
};

/// Rank of a module name, or -1 when the module is not part of the DAG
/// (unknown directories are skipped, not flagged).
[[nodiscard]] constexpr int layer_rank(std::string_view module) {
  for (std::size_t i = 0; i < kLayerOrder.size(); ++i) {
    if (kLayerOrder[i] == module) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace cloudrtt::lint

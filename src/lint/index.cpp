#include "lint/index.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "util/json.hpp"
#include "util/json_value.hpp"

namespace cloudrtt::lint {

namespace {

/// Module directory of a src/ file ("src/routing/x.cpp" -> "routing");
/// "" for files outside src/ or directly under it.
[[nodiscard]] std::string_view module_of(std::string_view path) {
  std::size_t at = 0;
  for (;; ++at) {
    at = path.find("src/", at);
    if (at == std::string_view::npos) return {};
    if (at == 0 || path[at - 1] == '/') break;
  }
  const std::size_t begin = at + 4;
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string_view::npos) return {};
  return path.substr(begin, slash - begin);
}

/// The content of 0-based line `index` in `code`.
[[nodiscard]] std::string_view line_text(std::string_view code,
                                         std::size_t index) {
  const std::size_t begin = offset_of_line(code, index + 1);
  if (begin == std::string_view::npos) return {};
  std::size_t end = code.find('\n', begin);
  if (end == std::string_view::npos) end = code.size();
  return code.substr(begin, end - begin);
}

/// The declaration a field annotation binds to: the same line when it holds
/// code, otherwise the next line with code. Returns the 0-based line, or
/// npos when the file ends first.
[[nodiscard]] std::size_t binding_line(std::string_view code,
                                       std::size_t comment_line) {
  const std::size_t total = 1 + static_cast<std::size_t>(std::count(
                                    code.begin(), code.end(), '\n'));
  for (std::size_t at = comment_line; at < total; ++at) {
    if (!trim(line_text(code, at)).empty()) return at;
  }
  return std::string_view::npos;
}

/// Field name of a member declaration line: the trailing identifier of the
/// text before the first ';', '=', or '{'.
[[nodiscard]] std::string field_name_of(std::string_view decl) {
  const std::size_t cut = decl.find_first_of(";={");
  std::string_view head = trim(decl.substr(0, cut));
  std::size_t end = head.size();
  while (end > 0 && !is_ident_char(head[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(head[begin - 1])) --begin;
  return std::string{head.substr(begin, end - begin)};
}

/// Innermost enclosing Type brace's name at `pos` ("" at namespace scope).
[[nodiscard]] std::string owner_at(const FileShape& shape, std::size_t pos) {
  for (int i = shape.innermost(pos); i >= 0;
       i = shape.braces[static_cast<std::size_t>(i)].parent) {
    const BraceInfo& info = shape.braces[static_cast<std::size_t>(i)];
    if (info.kind == BraceKind::Type) return info.name;
  }
  return {};
}

/// First brace of `kind` opening at or after `from`; -1 when none.
[[nodiscard]] int next_brace(const FileShape& shape, BraceKind kind,
                             std::size_t from) {
  int best = -1;
  for (std::size_t i = 0; i < shape.braces.size(); ++i) {
    if (shape.braces[i].kind != kind || shape.braces[i].open < from) continue;
    if (best < 0 ||
        shape.braces[i].open < shape.braces[static_cast<std::size_t>(best)].open) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

[[nodiscard]] std::string hex64(std::uint64_t value) {
  char buffer[17] = {};
  std::to_chars(buffer, buffer + 16, value, 16);
  return std::string{buffer};
}

[[nodiscard]] bool parse_hex64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out, 16);
  return ec == std::errc{} && ptr == text.data() + text.size() &&
         !text.empty();
}

void write_string_array(util::JsonWriter& json, std::string_view name,
                        const std::vector<std::string>& values) {
  json.key(name);
  json.begin_array();
  for (const std::string& value : values) json.value(value);
  json.end_array();
}

void parse_string_array(const util::JsonValue* node,
                        std::vector<std::string>& out) {
  if (node == nullptr) return;
  for (const util::JsonValue& item : node->items()) {
    out.push_back(item.as_string());
  }
}

[[nodiscard]] std::size_t size_at(const util::JsonValue& node,
                                  std::string_view key) {
  return static_cast<std::size_t>(node.number_at(key, 0.0));
}

}  // namespace

void index_annotations(const std::string& path, std::string_view original,
                       const Scrubbed& scrubbed, const FileShape& shape,
                       bool harvest_markers, FileIndex& out) {
  const std::string_view code = scrubbed.code;
  const std::string stem{path_stem(path)};
  const std::string_view from_module = module_of(path);

  for (std::size_t i = 0; harvest_markers && i < scrubbed.comments.size();
       ++i) {
    const std::string& comment = scrubbed.comments[i];
    if (comment.find("lint:") == std::string::npos) continue;

    std::size_t at = comment.find("lint:guarded_by(");
    if (at != std::string::npos) {
      const std::size_t open = at + 16;
      const std::size_t close = comment.find(')', open);
      const std::string guard{
          trim(comment.substr(open, close == std::string::npos
                                        ? std::string::npos
                                        : close - open))};
      const std::size_t decl_line = binding_line(code, i);
      if (!guard.empty() && decl_line != std::string_view::npos) {
        const std::size_t pos = offset_of_line(code, decl_line + 1);
        GuardedField field;
        field.owner = owner_at(shape, pos);
        field.field = field_name_of(line_text(code, decl_line));
        field.guard = guard;
        field.file = path;
        field.stem = stem;
        field.line = decl_line + 1;
        if (!field.field.empty()) out.guarded.push_back(std::move(field));
      }
    }

    at = comment.find("lint:frozen");
    if (at != std::string::npos &&
        comment.compare(at, 12, "lint:frozen(") != 0) {
      const std::size_t pos = offset_of_line(code, i + 1);
      const int brace = next_brace(shape, BraceKind::Type, pos);
      if (brace >= 0) {
        const BraceInfo& info =
            shape.braces[static_cast<std::size_t>(brace)];
        if (!info.name.empty()) {
          FrozenType frozen;
          frozen.name = info.name;
          frozen.file = path;
          frozen.stem = stem;
          frozen.line = line_of(code, info.open);
          out.frozen.push_back(std::move(frozen));
        }
      }
    }

    at = comment.find("lint:hot");
    if (at != std::string::npos &&
        comment.compare(at, 9, "lint:hot(") != 0) {
      const std::size_t pos = offset_of_line(code, i + 1);
      const int brace = next_brace(shape, BraceKind::Function, pos);
      if (brace >= 0) {
        const BraceInfo& info =
            shape.braces[static_cast<std::size_t>(brace)];
        HotRegion region;
        region.file = path;
        region.begin = info.open;
        region.end = info.close;
        region.label = info.name;
        region.line = i + 1;
        out.hot.push_back(std::move(region));
      }
    } else if (comment.find("lint:hot(file)") != std::string::npos) {
      HotRegion region;
      region.file = path;
      region.begin = 0;
      region.end = original.size();
      region.label = "file";
      region.line = i + 1;
      out.hot.push_back(std::move(region));
    }

    for (at = comment.find("lint:allow("); at != std::string::npos;
         at = comment.find("lint:allow(", at + 1)) {
      const std::size_t open = at + 11;
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) continue;
      AllowUse allow;
      allow.rule = std::string{trim(comment.substr(open, close - open))};
      allow.line = i + 1;
      const std::string_view rest =
          trim(std::string_view{comment}.substr(close + 1));
      allow.has_justification =
          rest.starts_with(':') && !trim(rest.substr(1)).empty();
      out.allows.push_back(std::move(allow));
    }
  }

  // Include edges come from the original text (the scrubber blanks string
  // contents), gated on the scrubbed line so commented-out includes don't
  // register. Only src/<module>/ files contribute to the layering DAG.
  if (from_module.empty()) return;
  for (std::size_t i = 0;; ++i) {
    const std::string_view scrubbed_line = line_text(code, i);
    const std::size_t begin = offset_of_line(code, i + 1);
    if (begin == std::string_view::npos) break;
    if (!trim(scrubbed_line).starts_with("#include")) continue;
    const std::string_view raw = original.substr(begin, scrubbed_line.size());
    const std::size_t quote = raw.find('"');
    if (quote == std::string_view::npos) continue;
    const std::size_t close = raw.find('"', quote + 1);
    if (close == std::string_view::npos) continue;
    const std::string_view header = raw.substr(quote + 1, close - quote - 1);
    const std::size_t slash = header.find('/');
    if (slash == std::string_view::npos) continue;
    IncludeEdge edge;
    edge.from_module = std::string{from_module};
    edge.to_module = std::string{header.substr(0, slash)};
    edge.header = std::string{header};
    edge.line = i + 1;
    out.edges.push_back(std::move(edge));
  }
}

std::string write_index_cache_json(
    const std::map<std::string, FileIndex>& files) {
  std::ostringstream out;
  util::JsonWriter json{out};
  json.begin_object();
  json.field("schema", "cloudrtt-lint-index/1");
  json.key("files");
  json.begin_object();
  for (const auto& [path, index] : files) {
    json.key(path);
    json.begin_object();
    json.field("hash", hex64(index.hash));
    write_string_array(json, "unordered_vars", index.unordered_vars);
    write_string_array(json, "unordered_fns", index.unordered_fns);
    write_string_array(json, "unordered_aliases", index.unordered_aliases);
    write_string_array(json, "map_like", index.map_like);
    json.key("guarded");
    json.begin_array();
    for (const GuardedField& field : index.guarded) {
      json.begin_object();
      json.field("owner", field.owner);
      json.field("field", field.field);
      json.field("guard", field.guard);
      json.field("file", field.file);
      json.field("stem", field.stem);
      json.field("line", static_cast<std::uint64_t>(field.line));
      json.end_object();
    }
    json.end_array();
    json.key("frozen");
    json.begin_array();
    for (const FrozenType& frozen : index.frozen) {
      json.begin_object();
      json.field("name", frozen.name);
      json.field("file", frozen.file);
      json.field("stem", frozen.stem);
      json.field("line", static_cast<std::uint64_t>(frozen.line));
      json.end_object();
    }
    json.end_array();
    json.key("hot");
    json.begin_array();
    for (const HotRegion& region : index.hot) {
      json.begin_object();
      json.field("file", region.file);
      json.field("begin", static_cast<std::uint64_t>(region.begin));
      json.field("end", static_cast<std::uint64_t>(region.end));
      json.field("label", region.label);
      json.field("line", static_cast<std::uint64_t>(region.line));
      json.end_object();
    }
    json.end_array();
    json.key("edges");
    json.begin_array();
    for (const IncludeEdge& edge : index.edges) {
      json.begin_object();
      json.field("from", edge.from_module);
      json.field("to", edge.to_module);
      json.field("header", edge.header);
      json.field("line", static_cast<std::uint64_t>(edge.line));
      json.end_object();
    }
    json.end_array();
    json.key("allows");
    json.begin_array();
    for (const AllowUse& allow : index.allows) {
      json.begin_object();
      json.field("rule", allow.rule);
      json.field("line", static_cast<std::uint64_t>(allow.line));
      json.field("justified", allow.has_justification);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
  out << '\n';
  return out.str();
}

bool parse_index_cache_json(std::string_view text,
                            std::map<std::string, FileIndex>& out) {
  out.clear();
  const std::optional<util::JsonValue> doc = util::JsonValue::parse(text);
  if (!doc || !doc->is_object() ||
      doc->string_at("schema") != "cloudrtt-lint-index/1") {
    return false;
  }
  const util::JsonValue* files = doc->find("files");
  if (files == nullptr || !files->is_object()) return false;
  for (const auto& [path, node] : files->members()) {
    FileIndex index;
    if (!parse_hex64(node.string_at("hash"), index.hash)) {
      out.clear();
      return false;
    }
    parse_string_array(node.find("unordered_vars"), index.unordered_vars);
    parse_string_array(node.find("unordered_fns"), index.unordered_fns);
    parse_string_array(node.find("unordered_aliases"),
                       index.unordered_aliases);
    parse_string_array(node.find("map_like"), index.map_like);
    if (const util::JsonValue* list = node.find("guarded")) {
      for (const util::JsonValue& item : list->items()) {
        GuardedField field;
        field.owner = item.string_at("owner");
        field.field = item.string_at("field");
        field.guard = item.string_at("guard");
        field.file = item.string_at("file");
        field.stem = item.string_at("stem");
        field.line = size_at(item, "line");
        index.guarded.push_back(std::move(field));
      }
    }
    if (const util::JsonValue* list = node.find("frozen")) {
      for (const util::JsonValue& item : list->items()) {
        FrozenType frozen;
        frozen.name = item.string_at("name");
        frozen.file = item.string_at("file");
        frozen.stem = item.string_at("stem");
        frozen.line = size_at(item, "line");
        index.frozen.push_back(std::move(frozen));
      }
    }
    if (const util::JsonValue* list = node.find("hot")) {
      for (const util::JsonValue& item : list->items()) {
        HotRegion region;
        region.file = item.string_at("file");
        region.begin = size_at(item, "begin");
        region.end = size_at(item, "end");
        region.label = item.string_at("label");
        region.line = size_at(item, "line");
        index.hot.push_back(std::move(region));
      }
    }
    if (const util::JsonValue* list = node.find("edges")) {
      for (const util::JsonValue& item : list->items()) {
        IncludeEdge edge;
        edge.from_module = item.string_at("from");
        edge.to_module = item.string_at("to");
        edge.header = item.string_at("header");
        edge.line = size_at(item, "line");
        index.edges.push_back(std::move(edge));
      }
    }
    if (const util::JsonValue* list = node.find("allows")) {
      for (const util::JsonValue& item : list->items()) {
        AllowUse allow;
        allow.rule = item.string_at("rule");
        allow.line = size_at(item, "line");
        if (const util::JsonValue* flag = item.find("justified")) {
          allow.has_justification = flag->as_bool();
        }
        index.allows.push_back(std::move(allow));
      }
    }
    out.emplace(path, std::move(index));
  }
  return true;
}

}  // namespace cloudrtt::lint

#pragma once
// Checked-in finding baseline: pre-existing findings are parked in
// lint-baseline.json so the debt burns down incrementally while anything new
// hard-fails. An entry matches on (file, rule, snippet text) — line numbers
// would churn on every unrelated edit — and matching is count-based, so a
// line repeated N times in the baseline absorbs at most N identical
// findings. Entries that no longer match anything are reported as stale so
// the file shrinks as code improves.

#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace cloudrtt::lint {

struct BaselineEntry {
  std::string file;
  std::string rule;     ///< stable rule key
  std::string snippet;  ///< trimmed source line, as in Finding::snippet
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Stable fingerprint of a finding: fnv1a hex over file|rule|snippet. Used
/// as the SARIF partialFingerprint and the baseline entry id.
[[nodiscard]] std::string finding_fingerprint(const Finding& finding);

/// Serialize the unsuppressed findings as a baseline document
/// (--write-baseline).
[[nodiscard]] std::string write_baseline_json(
    const std::vector<Finding>& findings);

/// Parse a baseline document. Returns false on malformed input.
[[nodiscard]] bool parse_baseline_json(std::string_view text, Baseline& out);

/// Mark findings matched by the baseline (`Finding::baselined`); suppressed
/// findings never consume an entry. Returns a description per stale entry —
/// baseline lines that matched nothing and should be deleted.
[[nodiscard]] std::vector<std::string> apply_baseline(
    const Baseline& baseline, std::vector<Finding>& findings);

}  // namespace cloudrtt::lint

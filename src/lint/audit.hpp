#pragma once
// Pass 2 of the auditor (internal to the lint library): the rule families
// that need the merged project-wide symbol index — guarded-by, frozen,
// hot-path-alloc, layering-dag — plus allow-hygiene, which additionally
// needs every other family's findings to spot orphan suppressions.

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/index.hpp"
#include "lint/lint.hpp"
#include "lint/scrub.hpp"

namespace cloudrtt::lint {

/// One scanned file as pass 2 sees it: views into the Linter's storage.
struct AuditFile {
  std::string_view path;
  std::string_view original;
  const Scrubbed* scrubbed = nullptr;
  const FileShape* shape = nullptr;
  const FileIndex* index = nullptr;
};

/// report(file index, rule, 1-based line, message).
using AuditReport =
    std::function<void(std::size_t, Rule, std::size_t, std::string)>;

/// Run guarded-by, frozen, hot-path-alloc and layering-dag over the merged
/// index. `map_like` is the cross-file set of map-typed symbols feeding the
/// hot-path operator[] check.
void run_audit(const std::vector<AuditFile>& files,
               const std::set<std::string>& map_like,
               const LintOptions& options, const AuditReport& report);

/// Run allow-hygiene: empty justifications, unknown rule keys, and orphan
/// allows (a justified allow with no finding of its rule on its own line or
/// the line below). `findings` must already hold every other family's
/// findings, suppressed included.
void run_allow_hygiene(const std::vector<AuditFile>& files,
                       const LintOptions& options,
                       const std::vector<Finding>& findings,
                       const AuditReport& report);

/// Rule for a stable key ("unordered-iter" -> Rule::UnorderedIter); false
/// when the key names no rule.
[[nodiscard]] bool rule_from_key(std::string_view key, Rule& out);

}  // namespace cloudrtt::lint

#include "lint/scrub.hpp"

#include <algorithm>
#include <cctype>

namespace cloudrtt::lint {

bool is_ident_char(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_';
}

bool is_space(char ch) {
  return std::isspace(static_cast<unsigned char>(ch)) != 0;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

Scrubbed scrub(std::string_view text) {
  Scrubbed out;
  out.code.reserve(text.size());
  out.comments.emplace_back();
  std::size_t line = 0;

  const auto emit = [&](char ch) { out.code.push_back(ch); };
  const auto blank = [&](char ch) {
    out.code.push_back(ch == '\n' ? '\n' : ' ');
  };
  const auto newline = [&] {
    ++line;
    out.comments.emplace_back();
  };

  enum class State { Code, Line, Block, Str, Chr, Raw };
  State state = State::Code;
  std::string raw_delim;  // the ")delim" terminator of the active raw string
  char prev_code = '\0';  // last significant char emitted in Code state

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (ch == '/' && next == '/') {
          state = State::Line;
          blank(ch);
        } else if (ch == '/' && next == '*') {
          state = State::Block;
          blank(ch);
          blank(next);
          ++i;
        } else if (ch == '"') {
          // Raw string when the preceding token ends in R (u8R, LR, ...).
          if (prev_code == 'R' && !out.code.empty()) {
            std::size_t open = text.find('(', i + 1);
            if (open != std::string_view::npos && open - i <= 18) {
              raw_delim = ")";
              raw_delim.append(text.substr(i + 1, open - i - 1));
              raw_delim.push_back('"');
              state = State::Raw;
              emit(ch);
              break;
            }
          }
          state = State::Str;
          emit(ch);
        } else if (ch == '\'' && !is_ident_char(prev_code)) {
          state = State::Chr;
          emit(ch);
        } else {
          emit(ch);
          if (!is_space(ch)) prev_code = ch;
          if (ch == '\n') newline();
        }
        break;
      case State::Line:
        if (ch == '\n') {
          state = State::Code;
          blank(ch);
          newline();
        } else {
          out.comments[line].push_back(ch);
          blank(ch);
        }
        break;
      case State::Block:
        if (ch == '*' && next == '/') {
          state = State::Code;
          blank(ch);
          blank(next);
          ++i;
        } else {
          if (ch != '\n') out.comments[line].push_back(ch);
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
      case State::Str:
        if (ch == '\\' && next != '\0') {
          blank(ch);
          blank(next);
          ++i;
        } else if (ch == '"') {
          state = State::Code;
          emit(ch);
          prev_code = ch;
        } else {
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
      case State::Chr:
        if (ch == '\\' && next != '\0') {
          blank(ch);
          blank(next);
          ++i;
        } else if (ch == '\'') {
          state = State::Code;
          emit(ch);
          prev_code = ch;
        } else {
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
      case State::Raw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            blank(text[i + k]);
          }
          i += raw_delim.size() - 1;
          state = State::Code;
          prev_code = '"';
        } else {
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(std::string_view code, std::size_t pos) {
  return 1 + static_cast<std::size_t>(std::count(
                 code.begin(), code.begin() + static_cast<long>(pos), '\n'));
}

std::size_t offset_of_line(std::string_view code, std::size_t line) {
  std::size_t current = 1;
  std::size_t pos = 0;
  while (current < line) {
    pos = code.find('\n', pos);
    if (pos == std::string_view::npos) return std::string_view::npos;
    ++pos;
    ++current;
  }
  return pos;
}

std::string snippet_at(std::string_view original, std::string_view code,
                       std::size_t pos) {
  std::size_t begin = code.rfind('\n', pos);
  begin = begin == std::string_view::npos ? 0 : begin + 1;
  std::size_t end = code.find('\n', pos);
  if (end == std::string_view::npos) end = code.size();
  return std::string{trim(original.substr(begin, end - begin))};
}

std::size_t find_token(std::string_view code, std::string_view token,
                       std::size_t from) {
  for (std::size_t pos = code.find(token, from); pos != std::string_view::npos;
       pos = code.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

std::size_t skip_spaces(std::string_view code, std::size_t pos) {
  while (pos < code.size() && is_space(code[pos])) ++pos;
  return pos;
}

std::string read_qualified_ident(std::string_view code, std::size_t& pos) {
  std::string last;
  while (pos < code.size()) {
    if (!is_ident_char(code[pos])) break;
    std::size_t start = pos;
    while (pos < code.size() && is_ident_char(code[pos])) ++pos;
    last.assign(code.substr(start, pos - start));
    if (pos + 1 < code.size() && code[pos] == ':' && code[pos + 1] == ':') {
      pos += 2;
      continue;
    }
    break;
  }
  return last;
}

std::size_t skip_template_args(std::string_view code, std::size_t pos) {
  int depth = 0;
  for (; pos < code.size(); ++pos) {
    if (code[pos] == '<') ++depth;
    if (code[pos] == '>' && --depth == 0) return pos + 1;
  }
  return std::string_view::npos;
}

std::string normalise(std::string_view path) {
  std::string out{path};
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_matches(std::string_view path, std::string_view prefix) {
  // Exempt prefixes are repo-relative; accept them anywhere in the path so
  // absolute invocations ("/repo/src/obs/log.cpp") scope identically.
  for (std::size_t pos = 0;; ++pos) {
    pos = path.find(prefix, pos);
    if (pos == std::string_view::npos) return false;
    if (pos == 0 || path[pos - 1] == '/') return true;
  }
}

bool is_header(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

std::string_view path_stem(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return path;
  const std::size_t slash = path.rfind('/');
  if (slash != std::string_view::npos && slash > dot) return path;
  return path.substr(0, dot);
}

std::string strip_angle_brackets(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  int depth = 0;
  for (const char ch : text) {
    if (ch == '<') {
      ++depth;
      continue;
    }
    if (ch == '>') {
      if (depth > 0) --depth;
      continue;
    }
    if (depth == 0) out.push_back(ch);
  }
  return out;
}

BraceKind classify_brace(std::string_view code, std::size_t open) {
  // The statement introducing this brace: back to the previous ';', '{', '}'.
  std::size_t begin = open;
  while (begin > 0) {
    const char ch = code[begin - 1];
    if (ch == ';' || ch == '{' || ch == '}') break;
    --begin;
  }
  const std::string intro =
      strip_angle_brackets(code.substr(begin, open - begin));
  for (const std::string_view keyword : {"class", "struct", "union", "enum"}) {
    if (find_token(intro, keyword, 0) != std::string::npos) {
      return BraceKind::Type;
    }
  }
  if (find_token(intro, "namespace", 0) != std::string::npos) {
    return BraceKind::Namespace;
  }
  // A parameter list (or trailing function qualifiers after one) marks a
  // function body; `) {`, `] {` (lambda), `} {` (after brace-init members)
  // and the block keywords cover control flow.
  if (intro.find('(') != std::string::npos) return BraceKind::Function;
  std::size_t j = open;
  while (j > begin && is_space(code[j - 1])) --j;
  if (j == begin) return BraceKind::Other;
  const char prev = code[j - 1];
  if (prev == ')' || prev == ']' || prev == '}') return BraceKind::Function;
  if (is_ident_char(prev)) {
    std::size_t start = j;
    while (start > begin && is_ident_char(code[start - 1])) --start;
    const std::string_view word = code.substr(start, j - start);
    if (word == "else" || word == "do" || word == "try") {
      return BraceKind::Function;
    }
  }
  return BraceKind::Other;
}

bool in_function_body(const std::vector<BraceKind>& stack) {
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i] == BraceKind::Other) continue;
    return stack[i] == BraceKind::Function;
  }
  return false;
}

namespace {

/// With code[close] a ')' or '}', the position of the matching opener
/// scanning backwards; npos when unbalanced.
[[nodiscard]] std::size_t match_backwards(std::string_view code,
                                          std::size_t close) {
  const char shut = code[close];
  const char open = shut == ')' ? '(' : '{';
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (code[i] == shut) ++depth;
    if (code[i] == open && --depth == 0) return i;
  }
  return std::string_view::npos;
}

[[nodiscard]] std::size_t skip_spaces_back(std::string_view code,
                                           std::size_t pos) {
  while (pos > 0 && is_space(code[pos - 1])) --pos;
  return pos;
}

/// The class/struct/union/enum name introduced by the statement before the
/// Type brace at `open`; "" when anonymous.
[[nodiscard]] std::string type_name_at(std::string_view code, std::size_t open,
                                       bool& is_class) {
  std::size_t begin = open;
  while (begin > 0) {
    const char ch = code[begin - 1];
    if (ch == ';' || ch == '{' || ch == '}') break;
    --begin;
  }
  const std::string intro =
      strip_angle_brackets(code.substr(begin, open - begin));
  is_class = false;
  std::size_t at = std::string::npos;
  std::size_t keyword_len = 0;
  for (const std::string_view keyword : {"class", "struct", "union"}) {
    const std::size_t pos = find_token(intro, keyword, 0);
    if (pos != std::string::npos && (at == std::string::npos || pos > at)) {
      at = pos;  // `enum class X` / `template <...> class X`: last keyword
      keyword_len = keyword.size();
      is_class = keyword == "class";
    }
  }
  if (at == std::string::npos) return {};
  std::size_t cursor = skip_spaces(intro, at + keyword_len);
  std::string name = read_qualified_ident(intro, cursor);
  if (name == "final" || name == "alignas") return {};
  return name;
}

}  // namespace

std::string function_name_at(std::string_view code, std::size_t open) {
  std::size_t j = skip_spaces_back(code, open);
  // Trailing qualifiers between the parameter list and the body.
  for (;;) {
    std::size_t w = j;
    while (w > 0 && is_ident_char(code[w - 1])) --w;
    const std::string_view word = code.substr(w, j - w);
    if (word == "const" || word == "noexcept" || word == "override" ||
        word == "final" || word == "mutable") {
      j = skip_spaces_back(code, w);
      continue;
    }
    break;
  }
  // Walk backwards over `(...)`/`{...}` groups: constructor member-init
  // items (separated by ',' after a ':') until the parameter list, whose
  // preceding identifier is the function name.
  for (;;) {
    if (j == 0) return {};
    const char ch = code[j - 1];
    if (ch != ')' && ch != '}') return {};
    const std::size_t opener = match_backwards(code, j - 1);
    if (opener == std::string_view::npos || opener == 0) return {};
    const std::size_t w = skip_spaces_back(code, opener);
    std::size_t start = w;
    while (start > 0 && is_ident_char(code[start - 1])) --start;
    if (start == w) return {};  // lambda / operator / brace-init without name
    std::string name{code.substr(start, w - start)};
    const std::size_t k = skip_spaces_back(code, start);
    if (k > 0 && code[k - 1] == ',') {
      j = k - 1;  // a member-init item; keep walking left
      continue;
    }
    if (k > 0 && code[k - 1] == ':' && (k < 2 || code[k - 2] != ':')) {
      j = skip_spaces_back(code, k - 1);  // init-list ':'; param list next
      continue;
    }
    if (k > 0 && code[k - 1] == '~') return "~" + name;
    return name;
  }
}

int FileShape::innermost(std::size_t pos) const {
  int best = -1;
  for (std::size_t i = 0; i < braces.size(); ++i) {
    if (braces[i].open < pos && pos < braces[i].close) {
      if (best < 0 || braces[i].open > braces[static_cast<std::size_t>(best)].open) {
        best = static_cast<int>(i);
      }
    }
  }
  return best;
}

bool FileShape::in_function(std::size_t pos) const {
  for (int i = innermost(pos); i >= 0;
       i = braces[static_cast<std::size_t>(i)].parent) {
    const BraceInfo& info = braces[static_cast<std::size_t>(i)];
    if (info.kind == BraceKind::Other) continue;
    return info.kind == BraceKind::Function;
  }
  return false;
}

std::size_t FileShape::enclosing_close(std::size_t pos,
                                       std::size_t fallback) const {
  const int i = innermost(pos);
  return i < 0 ? fallback : braces[static_cast<std::size_t>(i)].close;
}

FileShape analyze_braces(std::string_view code) {
  FileShape shape;
  std::vector<int> stack;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') {
      BraceInfo info;
      info.open = i;
      info.close = code.size();
      info.kind = classify_brace(code, i);
      info.parent = stack.empty() ? -1 : stack.back();
      if (info.kind == BraceKind::Type) {
        info.name = type_name_at(code, i, info.is_class);
      } else if (info.kind == BraceKind::Function) {
        info.name = function_name_at(code, i);
      }
      stack.push_back(static_cast<int>(shape.braces.size()));
      shape.braces.push_back(std::move(info));
    } else if (code[i] == '}' && !stack.empty()) {
      shape.braces[static_cast<std::size_t>(stack.back())].close = i;
      stack.pop_back();
    }
  }
  return shape;
}

}  // namespace cloudrtt::lint

#include "lint/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/audit.hpp"
#include "lint/index.hpp"
#include "lint/scrub.hpp"
#include "util/rng.hpp"

namespace cloudrtt::lint {

std::string_view rule_key(Rule rule) {
  switch (rule) {
    case Rule::UnorderedIter: return "unordered-iter";
    case Rule::Nondeterminism: return "nondeterminism";
    case Rule::RawAssert: return "raw-assert";
    case Rule::HeaderHygiene: return "header-hygiene";
    case Rule::MutableMember: return "mutable-member";
    case Rule::LocalStatic: return "local-static";
    case Rule::GuardedBy: return "guarded-by";
    case Rule::Frozen: return "frozen";
    case Rule::HotPathAlloc: return "hot-path-alloc";
    case Rule::LayeringDag: return "layering-dag";
    case Rule::AllowHygiene: return "allow-hygiene";
  }
  return "?";
}

std::string_view rule_summary(Rule rule) {
  switch (rule) {
    case Rule::UnorderedIter:
      return "range-for over an unordered container (iteration order leak)";
    case Rule::Nondeterminism:
      return "entropy/clock source outside util/rng and obs";
    case Rule::RawAssert:
      return "raw assert() in library code (use CLOUDRTT_CHECK/DCHECK)";
    case Rule::HeaderHygiene:
      return "header without #pragma once / with using namespace";
    case Rule::MutableMember:
      return "mutable member in a header (hidden shared state, thread-hostile)";
    case Rule::LocalStatic:
      return "function-local static non-const object in library code";
    case Rule::GuardedBy:
      return "lint:guarded_by field accessed outside a scope locking its "
             "mutex";
    case Rule::Frozen:
      return "lint:frozen type with a public non-const member function or "
             "const_cast";
    case Rule::HotPathAlloc:
      return "allocation or temporary in a lint:hot function (use "
             "util::Arena / caller scratch)";
    case Rule::LayeringDag:
      return "include edge against the src/ layer order (lint/layers.hpp)";
    case Rule::AllowHygiene:
      return "lint:allow without justification, with an unknown rule, or "
             "orphaned";
  }
  return "?";
}

bool rule_from_key(std::string_view key, Rule& out) {
  for (const Rule rule : kAllRules) {
    if (rule_key(rule) == key) {
      out = rule;
      return true;
    }
  }
  return false;
}

bool LintOptions::applies(Rule rule, std::string_view path) const {
  const std::vector<std::string>* exempt = nullptr;
  if (rule == Rule::Nondeterminism) exempt = &nondeterminism_exempt;
  if (rule == Rule::RawAssert) exempt = &raw_assert_exempt;
  if (rule == Rule::MutableMember) exempt = &mutable_member_exempt;
  if (rule == Rule::LocalStatic) exempt = &local_static_exempt;
  if (rule == Rule::HotPathAlloc) exempt = &hot_alloc_exempt;
  if (rule == Rule::AllowHygiene) exempt = &annotation_exempt;
  if (exempt == nullptr) return true;
  for (const std::string& prefix : *exempt) {
    if (path_matches(path, prefix)) return false;
  }
  return true;
}

bool LintOptions::harvest_markers(std::string_view path) const {
  for (const std::string& prefix : annotation_exempt) {
    if (path_matches(path, prefix)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Linter

struct Linter::Impl {
  struct File {
    std::string path;
    std::string original;
    Scrubbed scrubbed;
    FileShape shape;
    FileIndex index;
    bool index_cached = false;  ///< index reused from --index-cache
  };

  LintOptions options;
  std::vector<File> files;
  std::map<std::string, FileIndex> cache;
  // std::set: the symbol tables themselves must never introduce iteration-
  // order nondeterminism into reports.
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_fns;
  std::set<std::string> unordered_aliases;
  std::set<std::string> map_like;

  void harvest(File& file);
  void harvest_alias_uses(const File& file);
  void check_file(const File& file, std::vector<Finding>& findings) const;
  void apply_suppressions(const File& file, Finding& finding) const;
};

Linter::Linter(LintOptions options) : impl_(new Impl) {
  impl_->options = std::move(options);
}

Linter::~Linter() { delete impl_; }

bool Linter::load_index_cache(std::string_view json) {
  return parse_index_cache_json(json, impl_->cache);
}

std::string Linter::write_index_cache() const {
  std::map<std::string, FileIndex> files;
  for (const Impl::File& file : impl_->files) {
    files.emplace(file.path, file.index);
  }
  return write_index_cache_json(files);
}

void Linter::add(std::string path, std::string content) {
  Impl::File file;
  file.path = normalise(path);
  file.scrubbed = scrub(content);
  file.shape = analyze_braces(file.scrubbed.code);
  file.original = std::move(content);
  file.index.hash = util::fnv1a(file.original);
  const auto cached = impl_->cache.find(file.path);
  if (cached != impl_->cache.end() && cached->second.hash == file.index.hash) {
    // Same bytes, same index: skip pass 1 for this file. Byte offsets in
    // the cached hot regions stay valid because the content is identical.
    file.index = cached->second;
    file.index_cached = true;
  } else {
    index_annotations(file.path, file.original, file.scrubbed, file.shape,
                      impl_->options.harvest_markers(file.path), file.index);
    impl_->harvest(file);
  }
  impl_->files.push_back(std::move(file));
}

// Pass 1a+1b: record every name declared with an unordered or map type —
// variables and members (`std::unordered_map<K,V> index_;`), functions
// returning one (`std::unordered_map<K,V> compute() const;`), and aliases
// (`using Index = std::unordered_map<...>;`). Map-typed variables
// additionally feed the hot-path operator[] check.
void Linter::Impl::harvest(File& file) {
  const std::string& code = file.scrubbed.code;
  for (const std::string_view kind : {"unordered_map", "unordered_set", "map"}) {
    const bool unordered = kind != "map";
    const bool maplike = kind != "unordered_set";
    for (std::size_t pos = find_token(code, kind, 0);
         pos != std::string::npos; pos = find_token(code, kind, pos + 1)) {
      std::size_t cursor = skip_spaces(code, pos + kind.size());
      // `#include <unordered_map>` puts '>' right after the name; a real
      // type use puts '<'.
      if (cursor >= code.size() || code[cursor] != '<') continue;
      // Alias? Look back along the line for `using NAME =`.
      {
        std::size_t bol = code.rfind('\n', pos);
        bol = bol == std::string::npos ? 0 : bol + 1;
        const std::string_view before{code.data() + bol, pos - bol};
        const std::size_t using_pos = find_token(before, "using", 0);
        if (using_pos != std::string_view::npos &&
            before.find('=', using_pos) != std::string_view::npos) {
          std::size_t name_pos = skip_spaces(before, using_pos + 5);
          const std::string alias = read_qualified_ident(before, name_pos);
          if (unordered && !alias.empty()) {
            file.index.unordered_aliases.push_back(alias);
          }
          continue;
        }
      }
      cursor = skip_template_args(code, cursor);
      if (cursor == std::string::npos) continue;
      cursor = skip_spaces(code, cursor);
      while (cursor < code.size() &&
             (code[cursor] == '&' || code[cursor] == '*')) {
        cursor = skip_spaces(code, cursor + 1);
      }
      const std::string name = read_qualified_ident(code, cursor);
      if (name.empty() || name == "const") continue;
      cursor = skip_spaces(code, cursor);
      if (cursor < code.size() && code[cursor] == '(') {
        if (unordered) file.index.unordered_fns.push_back(name);
      } else {
        if (unordered) file.index.unordered_vars.push_back(name);
        if (maplike) file.index.map_like.push_back(name);
      }
    }
  }
  // lint:allow(unordered-iter): iterating a braced list of vectors, not a map
  for (std::vector<std::string>* list :
       {&file.index.unordered_vars, &file.index.unordered_fns,
        &file.index.unordered_aliases, &file.index.map_like}) {
    std::sort(list->begin(), list->end());
    list->erase(std::unique(list->begin(), list->end()), list->end());
  }
}

// Pass 1c: `IndexAlias name` declares an unordered variable too, and
// `auto name = unordered_fn(...)` binds the function's unordered result.
// Runs live every time (it depends on the merged alias set, so it is not
// part of the per-file cache).
void Linter::Impl::harvest_alias_uses(const File& file) {
  const std::string& code = file.scrubbed.code;
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& alias : unordered_aliases) {
    for (std::size_t pos = find_token(code, alias, 0); pos != std::string::npos;
         pos = find_token(code, alias, pos + 1)) {
      std::size_t cursor = skip_spaces(code, pos + alias.size());
      while (cursor < code.size() &&
             (code[cursor] == '&' || code[cursor] == '*')) {
        cursor = skip_spaces(code, cursor + 1);
      }
      std::string name = read_qualified_ident(code, cursor);
      if (name.empty() || name == alias) continue;
      cursor = skip_spaces(code, cursor);
      // `IdSet name;` declares a variable, `IdSet name(...)` a function
      // whose result is unordered too.
      if (cursor < code.size() && code[cursor] == '(') {
        unordered_fns.insert(std::move(name));
      } else {
        unordered_vars.insert(std::move(name));
      }
    }
  }
  for (std::size_t pos = find_token(code, "auto", 0); pos != std::string::npos;
       pos = find_token(code, "auto", pos + 1)) {
    std::size_t cursor = skip_spaces(code, pos + 4);
    while (cursor < code.size() && (code[cursor] == '&' || code[cursor] == '*')) {
      cursor = skip_spaces(code, cursor + 1);
    }
    const std::string name = read_qualified_ident(code, cursor);
    if (name.empty()) continue;
    cursor = skip_spaces(code, cursor);
    if (cursor >= code.size() || code[cursor] != '=') continue;
    cursor = skip_spaces(code, cursor + 1);
    std::string callee = read_qualified_ident(code, cursor);
    // Follow one member access: `index.samples()` / `view->probes()`.
    while (cursor + 1 < code.size() &&
           (code[cursor] == '.' ||
            (code[cursor] == '-' && code[cursor + 1] == '>'))) {
      cursor += code[cursor] == '.' ? std::size_t{1} : std::size_t{2};
      callee = read_qualified_ident(code, cursor);
    }
    if (cursor < code.size() && code[cursor] == '(' &&
        unordered_fns.count(callee) > 0) {
      unordered_vars.insert(name);
    }
  }
}

namespace {

/// Entropy/clock tokens banned outside the sanctioned modules. Tokens with
/// `needs_call` only match when followed by '(' so that e.g. a variable
/// named `time` in exported CSV headers can never trip the rule.
struct BannedToken {
  std::string_view token;
  bool needs_call;
  std::string_view why;
};

constexpr BannedToken kNondeterminismTokens[] = {
    {"rand", true, "libc rand() is not seedable per-study"},
    {"srand", true, "global libc seeding breaks stream forking"},
    {"random_device", false, "hardware entropy differs every run"},
    {"mt19937", false, "std engines differ across standard libraries"},
    {"mt19937_64", false, "std engines differ across standard libraries"},
    {"minstd_rand", false, "std engines differ across standard libraries"},
    {"default_random_engine", false, "implementation-defined engine"},
    {"time", true, "wall-clock seeding breaks reproducibility"},
    {"clock", true, "process clocks vary run-to-run"},
    {"steady_clock", false, "clock reads must stay inside src/obs"},
    {"system_clock", false, "clock reads must stay inside src/obs"},
    {"high_resolution_clock", false, "clock reads must stay inside src/obs"},
};

/// Member types whose mutability is the point: synchronization primitives
/// guarding other state. Matched as substrings so std::shared_mutex,
/// std::atomic<...>, std::once_flag etc. all qualify.
constexpr std::string_view kMutableAllowedTypes[] = {
    "mutex", "atomic", "once_flag", "condition_variable"};

}  // namespace

void Linter::Impl::check_file(const File& file,
                              std::vector<Finding>& findings) const {
  const std::string& code = file.scrubbed.code;
  const std::string& original = file.original;

  const auto report = [&](Rule rule, std::size_t pos, std::string message) {
    Finding finding;
    finding.file = file.path;
    finding.line = line_of(code, pos);
    finding.rule = rule;
    finding.message = std::move(message);
    finding.snippet = snippet_at(original, code, pos);
    apply_suppressions(file, finding);
    findings.push_back(std::move(finding));
  };

  // R1 — range-for over unordered containers.
  for (std::size_t pos = find_token(code, "for", 0); pos != std::string::npos;
       pos = find_token(code, "for", pos + 1)) {
    std::size_t cursor = skip_spaces(code, pos + 3);
    if (cursor >= code.size() || code[cursor] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = cursor; i < code.size(); ++i) {
      const char ch = code[i];
      if (ch == '(') ++depth;
      if (ch == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (ch == ';' && depth == 1) break;  // classic three-clause for
      if (ch == ':' && depth == 1 && colon == std::string::npos &&
          (i == 0 || code[i - 1] != ':') &&
          (i + 1 >= code.size() || code[i + 1] != ':')) {
        colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string_view range =
        trim(std::string_view{code}.substr(colon + 1, close - colon - 1));
    std::string culprit;
    if (range.find("unordered_") != std::string_view::npos) {
      culprit.assign(range.substr(0, 40));
    } else {
      // Classify by the trailing component of the range expression, so
      // member (`cache.entries_`), pointer (`impl_->table_`) and qualified
      // accesses all resolve against the harvested symbol tables.
      std::string_view expr = range;
      bool call = false;
      if (!expr.empty() && expr.back() == ')') {
        int args = 0;
        std::size_t open = std::string_view::npos;
        for (std::size_t i = expr.size(); i-- > 0;) {
          if (expr[i] == ')') ++args;
          if (expr[i] == '(' && --args == 0) {
            open = i;
            break;
          }
        }
        if (open == std::string_view::npos) continue;
        expr = trim(expr.substr(0, open));
        call = true;
      }
      if (expr.empty() || !is_ident_char(expr.back())) continue;
      std::size_t start = expr.size();
      while (start > 0 && is_ident_char(expr[start - 1])) --start;
      const std::string tail{expr.substr(start)};
      if (call && unordered_fns.count(tail) > 0) {
        culprit = tail + "()";
      } else if (!call && unordered_vars.count(tail) > 0) {
        culprit = tail;
      }
    }
    if (!culprit.empty()) {
      report(Rule::UnorderedIter, pos,
             "range-for over unordered container '" + culprit +
                 "': iteration order is unspecified and may leak into "
                 "ordered output");
    }
  }

  // R2 — entropy and clock sources.
  if (options.applies(Rule::Nondeterminism, file.path)) {
    for (const BannedToken& banned : kNondeterminismTokens) {
      for (std::size_t pos = find_token(code, banned.token, 0);
           pos != std::string::npos;
           pos = find_token(code, banned.token, pos + 1)) {
        if (banned.needs_call) {
          const std::size_t after = skip_spaces(code, pos + banned.token.size());
          if (after >= code.size() || code[after] != '(') continue;
        }
        report(Rule::Nondeterminism, pos,
               "'" + std::string{banned.token} + "' outside util/rng and obs: " +
                   std::string{banned.why});
      }
    }
  }

  // R3 — raw assert() in library code.
  if (options.applies(Rule::RawAssert, file.path)) {
    for (std::size_t pos = find_token(code, "assert", 0);
         pos != std::string::npos; pos = find_token(code, "assert", pos + 1)) {
      const std::size_t after = skip_spaces(code, pos + 6);
      if (after >= code.size() || code[after] != '(') continue;
      report(Rule::RawAssert, pos,
             "raw assert() vanishes under NDEBUG; use CLOUDRTT_CHECK or "
             "CLOUDRTT_DCHECK (util/check.hpp)");
    }
  }

  // R5 — mutable members in headers. A lambda's `mutable` qualifier (body
  // brace, trailing return or noexcept right after it) is not a member.
  if (is_header(file.path) && options.applies(Rule::MutableMember, file.path)) {
    for (std::size_t pos = find_token(code, "mutable", 0);
         pos != std::string::npos; pos = find_token(code, "mutable", pos + 1)) {
      const std::size_t cursor = skip_spaces(code, pos + 7);
      if (cursor >= code.size() || code[cursor] == '{' || code[cursor] == '-') {
        continue;
      }
      if (code.compare(cursor, 8, "noexcept") == 0) continue;
      const std::size_t end = code.find_first_of(";{=", cursor);
      const std::string_view decl = std::string_view{code}.substr(
          cursor, end == std::string::npos ? code.size() - cursor : end - cursor);
      bool allowed = false;
      for (const std::string_view type : kMutableAllowedTypes) {
        if (decl.find(type) != std::string_view::npos) {
          allowed = true;
          break;
        }
      }
      if (allowed) continue;
      report(Rule::MutableMember, pos,
             "mutable member in a header: lazy caches behind const interfaces "
             "are hidden shared state the parallel executor cannot tolerate; "
             "guard it and justify with lint:allow, or materialize up front");
    }
  }

  // R6 — function-local static non-const objects.
  if (options.applies(Rule::LocalStatic, file.path)) {
    std::vector<std::size_t> statics;
    for (std::size_t pos = find_token(code, "static", 0);
         pos != std::string::npos; pos = find_token(code, "static", pos + 1)) {
      statics.push_back(pos);
    }
    if (!statics.empty()) {
      std::vector<BraceKind> stack;
      std::size_t next = 0;
      for (std::size_t i = 0; i < code.size() && next < statics.size(); ++i) {
        if (i == statics[next]) {
          if (in_function_body(stack)) {
            std::size_t cursor = skip_spaces(code, i + 6);
            const std::string qualifier = read_qualified_ident(code, cursor);
            if (qualifier != "const" && qualifier != "constexpr" &&
                qualifier != "constinit") {
              report(Rule::LocalStatic, i,
                     "function-local static non-const object: initialization "
                     "order and lifetime are process state, and mutation is "
                     "thread-hostile; hoist it or make it const");
            }
          }
          ++next;
        }
        if (code[i] == '{') {
          stack.push_back(classify_brace(code, i));
        } else if (code[i] == '}' && !stack.empty()) {
          stack.pop_back();
        }
      }
    }
  }

  // R4 — header hygiene.
  if (is_header(file.path)) {
    if (code.find("#pragma once") == std::string::npos) {
      report(Rule::HeaderHygiene, 0, "header is missing #pragma once");
    }
    for (std::size_t pos = find_token(code, "using", 0);
         pos != std::string::npos; pos = find_token(code, "using", pos + 1)) {
      const std::size_t after = skip_spaces(code, pos + 5);
      if (code.compare(after, 9, "namespace") == 0 &&
          (after + 9 >= code.size() || !is_ident_char(code[after + 9]))) {
        report(Rule::HeaderHygiene, pos,
               "'using namespace' in a header leaks into every includer");
      }
    }
  }
}

// A finding is suppressed by `// lint:allow(<rule>): <justification>` on the
// finding's own line, or on a comment-only line directly above it. The
// justification is mandatory: an allow without one does not suppress.
void Linter::Impl::apply_suppressions(const File& file, Finding& finding) const {
  const auto try_line = [&](std::size_t line_index) -> bool {
    if (line_index >= file.scrubbed.comments.size()) return false;
    const std::string& comment = file.scrubbed.comments[line_index];
    const std::string needle = "lint:allow(" + std::string{rule_key(finding.rule)} + ")";
    const std::size_t pos = comment.find(needle);
    if (pos == std::string::npos) return false;
    std::string_view rest = trim(std::string_view{comment}.substr(pos + needle.size()));
    if (rest.starts_with(':')) {
      rest = trim(rest.substr(1));
      if (!rest.empty()) {
        finding.suppressed = true;
        finding.justification.assign(rest);
        return true;
      }
    }
    finding.message += " [lint:allow without ': justification' ignored]";
    return true;
  };
  const std::size_t line_index = finding.line - 1;
  if (try_line(line_index)) return;
  if (line_index == 0) return;
  // The line above only counts when it carries no code of its own.
  std::size_t bol = 0, eol = 0, current = 0;
  const std::string& code = file.scrubbed.code;
  for (std::size_t i = 0; i <= code.size(); ++i) {
    if (i == code.size() || code[i] == '\n') {
      if (current + 1 == line_index) {
        bol = eol == 0 ? 0 : eol + 1;
        const std::string_view above{code.data() + bol, i - bol};
        if (trim(above).empty()) try_line(line_index - 1);
        return;
      }
      eol = i;
      ++current;
    }
  }
}

std::vector<Finding> Linter::run() {
  // Merge every per-file index (fresh or cached) into the global tables.
  for (const Impl::File& file : impl_->files) {
    impl_->unordered_vars.insert(file.index.unordered_vars.begin(),
                                 file.index.unordered_vars.end());
    impl_->unordered_fns.insert(file.index.unordered_fns.begin(),
                                file.index.unordered_fns.end());
    impl_->unordered_aliases.insert(file.index.unordered_aliases.begin(),
                                    file.index.unordered_aliases.end());
    impl_->map_like.insert(file.index.map_like.begin(),
                           file.index.map_like.end());
  }
  for (const Impl::File& file : impl_->files) {
    impl_->harvest_alias_uses(file);
  }

  std::vector<Finding> findings;
  for (const Impl::File& file : impl_->files) {
    impl_->check_file(file, findings);
  }

  std::vector<AuditFile> views;
  views.reserve(impl_->files.size());
  for (const Impl::File& file : impl_->files) {
    views.push_back(AuditFile{file.path, file.original, &file.scrubbed,
                              &file.shape, &file.index});
  }
  const auto report = [&](std::size_t file_index, Rule rule, std::size_t line,
                          std::string message) {
    const Impl::File& file = impl_->files[file_index];
    Finding finding;
    finding.file = file.path;
    finding.line = line;
    finding.rule = rule;
    finding.message = std::move(message);
    const std::size_t pos = offset_of_line(file.scrubbed.code, line);
    if (pos != std::string::npos) {
      finding.snippet = snippet_at(file.original, file.scrubbed.code, pos);
    }
    impl_->apply_suppressions(file, finding);
    findings.push_back(std::move(finding));
  };
  run_audit(views, impl_->map_like, impl_->options, report);
  // Allow-hygiene last: orphan detection needs every other family's
  // findings, suppressed included.
  run_allow_hygiene(views, impl_->options, findings, report);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return findings;
}

std::vector<std::string> Linter::unordered_symbols() const {
  std::vector<std::string> out;
  // The symbol tables are std::set (ordered) — only their *contents* are
  // names of unordered symbols, which trips the scanner's own heuristic.
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& name : impl_->unordered_vars) out.push_back(name);
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& name : impl_->unordered_fns) out.push_back(name + "()");
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& name : impl_->unordered_aliases) {
    out.push_back("using " + name);
  }
  return out;
}

std::array<std::size_t, kRuleCount> Linter::allow_uses() const {
  std::array<std::size_t, kRuleCount> counts{};
  for (const Impl::File& file : impl_->files) {
    for (const AllowUse& allow : file.index.allows) {
      Rule rule = Rule::AllowHygiene;  // unknown keys tally here
      (void)rule_from_key(allow.rule, rule);
      ++counts[static_cast<std::size_t>(rule)];
    }
  }
  return counts;
}

Summary summarize(const std::vector<Finding>& findings, std::size_t files,
                  const std::array<std::size_t, kRuleCount>& allow_uses) {
  Summary summary;
  summary.files = files;
  for (const Finding& finding : findings) {
    Summary::PerRule& row = summary.rules[static_cast<std::size_t>(finding.rule)];
    ++row.total;
    if (finding.suppressed) ++row.suppressed;
    if (finding.baselined) ++row.baselined;
  }
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    summary.rules[i].allow_uses = allow_uses[i];
  }
  return summary;
}

std::size_t Summary::unsuppressed_total() const {
  std::size_t total = 0;
  for (const PerRule& row : rules) {
    total += row.total - row.suppressed - row.baselined;
  }
  return total;
}

}  // namespace cloudrtt::lint

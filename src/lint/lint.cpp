#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace cloudrtt::lint {

namespace {

[[nodiscard]] bool is_ident_char(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_';
}

[[nodiscard]] bool is_space(char ch) {
  return std::isspace(static_cast<unsigned char>(ch)) != 0;
}

[[nodiscard]] std::string_view trim(std::string_view text) {
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

// ---------------------------------------------------------------------------
// Scrubber: strip comments / string / char literals so the rule passes only
// ever see real code, and collect per-line comment text for suppressions.

struct Scrubbed {
  std::string code;                   ///< same length/line layout as input
  std::vector<std::string> comments;  ///< comment text per 0-based line
};

/// Replace comments and literal contents with spaces, preserving newlines so
/// positions map 1:1 to the original text. Handles //, /*...*/, "...",
/// '...', and raw strings R"delim(...)delim". Digit separators (1'000) are
/// not treated as char literals.
[[nodiscard]] Scrubbed scrub(std::string_view text) {
  Scrubbed out;
  out.code.reserve(text.size());
  out.comments.emplace_back();
  std::size_t line = 0;

  const auto emit = [&](char ch) { out.code.push_back(ch); };
  const auto blank = [&](char ch) { out.code.push_back(ch == '\n' ? '\n' : ' '); };
  const auto newline = [&] {
    ++line;
    out.comments.emplace_back();
  };

  enum class State { Code, Line, Block, Str, Chr, Raw };
  State state = State::Code;
  std::string raw_delim;  // the ")delim" terminator of the active raw string
  char prev_code = '\0';  // last significant char emitted in Code state

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (ch == '/' && next == '/') {
          state = State::Line;
          blank(ch);
        } else if (ch == '/' && next == '*') {
          state = State::Block;
          blank(ch);
          blank(next);
          ++i;
        } else if (ch == '"') {
          // Raw string when the preceding token ends in R (u8R, LR, ...).
          if (prev_code == 'R' && !out.code.empty()) {
            std::size_t open = text.find('(', i + 1);
            if (open != std::string_view::npos && open - i <= 18) {
              raw_delim = ")";
              raw_delim.append(text.substr(i + 1, open - i - 1));
              raw_delim.push_back('"');
              state = State::Raw;
              emit(ch);
              break;
            }
          }
          state = State::Str;
          emit(ch);
        } else if (ch == '\'' && !is_ident_char(prev_code)) {
          state = State::Chr;
          emit(ch);
        } else {
          emit(ch);
          if (!is_space(ch)) prev_code = ch;
          if (ch == '\n') newline();
        }
        break;
      case State::Line:
        if (ch == '\n') {
          state = State::Code;
          blank(ch);
          newline();
        } else {
          out.comments[line].push_back(ch);
          blank(ch);
        }
        break;
      case State::Block:
        if (ch == '*' && next == '/') {
          state = State::Code;
          blank(ch);
          blank(next);
          ++i;
        } else {
          if (ch != '\n') out.comments[line].push_back(ch);
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
      case State::Str:
        if (ch == '\\' && next != '\0') {
          blank(ch);
          blank(next);
          ++i;
        } else if (ch == '"') {
          state = State::Code;
          emit(ch);
          prev_code = ch;
        } else {
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
      case State::Chr:
        if (ch == '\\' && next != '\0') {
          blank(ch);
          blank(next);
          ++i;
        } else if (ch == '\'') {
          state = State::Code;
          emit(ch);
          prev_code = ch;
        } else {
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
      case State::Raw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) blank(text[i + k]);
          i += raw_delim.size() - 1;
          state = State::Code;
          prev_code = '"';
        } else {
          blank(ch);
          if (ch == '\n') newline();
        }
        break;
    }
  }
  return out;
}

/// 1-based line number of a position in the scrubbed code.
[[nodiscard]] std::size_t line_of(std::string_view code, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(code.begin(), code.begin() + static_cast<long>(pos), '\n'));
}

/// The trimmed source line containing `pos` (for finding snippets).
[[nodiscard]] std::string snippet_at(std::string_view original, std::string_view code,
                                     std::size_t pos) {
  std::size_t begin = code.rfind('\n', pos);
  begin = begin == std::string_view::npos ? 0 : begin + 1;
  std::size_t end = code.find('\n', pos);
  if (end == std::string_view::npos) end = code.size();
  return std::string{trim(original.substr(begin, end - begin))};
}

/// Next occurrence of `token` at or after `from` with identifier boundaries
/// on both sides; npos when absent.
[[nodiscard]] std::size_t find_token(std::string_view code, std::string_view token,
                                     std::size_t from) {
  for (std::size_t pos = code.find(token, from); pos != std::string_view::npos;
       pos = code.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

[[nodiscard]] std::size_t skip_spaces(std::string_view code, std::size_t pos) {
  while (pos < code.size() && is_space(code[pos])) ++pos;
  return pos;
}

/// Read an identifier (possibly qualified, A::b::c) starting at `pos`;
/// returns the last component and advances `pos` past the whole name.
[[nodiscard]] std::string read_qualified_ident(std::string_view code,
                                               std::size_t& pos) {
  std::string last;
  while (pos < code.size()) {
    if (!is_ident_char(code[pos])) break;
    std::size_t start = pos;
    while (pos < code.size() && is_ident_char(code[pos])) ++pos;
    last.assign(code.substr(start, pos - start));
    if (pos + 1 < code.size() && code[pos] == ':' && code[pos + 1] == ':') {
      pos += 2;
      continue;
    }
    break;
  }
  return last;
}

/// With `pos` at the '<' opening a template argument list, return the
/// position just past the matching '>'; npos if unbalanced.
[[nodiscard]] std::size_t skip_template_args(std::string_view code,
                                             std::size_t pos) {
  int depth = 0;
  for (; pos < code.size(); ++pos) {
    if (code[pos] == '<') ++depth;
    if (code[pos] == '>' && --depth == 0) return pos + 1;
  }
  return std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Path scoping

/// Normalise for suffix matching: backslashes to slashes.
[[nodiscard]] std::string normalise(std::string_view path) {
  std::string out{path};
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

[[nodiscard]] bool path_matches(std::string_view path, std::string_view prefix) {
  // Exempt prefixes are repo-relative; accept them anywhere in the path so
  // absolute invocations ("/repo/src/obs/log.cpp") scope identically.
  for (std::size_t pos = 0;; ++pos) {
    pos = path.find(prefix, pos);
    if (pos == std::string_view::npos) return false;
    if (pos == 0 || path[pos - 1] == '/') return true;
  }
}

[[nodiscard]] bool is_header(std::string_view path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

}  // namespace

std::string_view rule_key(Rule rule) {
  switch (rule) {
    case Rule::UnorderedIter: return "unordered-iter";
    case Rule::Nondeterminism: return "nondeterminism";
    case Rule::RawAssert: return "raw-assert";
    case Rule::HeaderHygiene: return "header-hygiene";
    case Rule::MutableMember: return "mutable-member";
    case Rule::LocalStatic: return "local-static";
  }
  return "?";
}

std::string_view rule_summary(Rule rule) {
  switch (rule) {
    case Rule::UnorderedIter:
      return "range-for over an unordered container (iteration order leak)";
    case Rule::Nondeterminism:
      return "entropy/clock source outside util/rng and obs";
    case Rule::RawAssert:
      return "raw assert() in library code (use CLOUDRTT_CHECK/DCHECK)";
    case Rule::HeaderHygiene:
      return "header without #pragma once / with using namespace";
    case Rule::MutableMember:
      return "mutable member in a header (hidden shared state, thread-hostile)";
    case Rule::LocalStatic:
      return "function-local static non-const object in library code";
  }
  return "?";
}

bool LintOptions::applies(Rule rule, std::string_view path) const {
  const std::vector<std::string>* exempt = nullptr;
  if (rule == Rule::Nondeterminism) exempt = &nondeterminism_exempt;
  if (rule == Rule::RawAssert) exempt = &raw_assert_exempt;
  if (rule == Rule::MutableMember) exempt = &mutable_member_exempt;
  if (rule == Rule::LocalStatic) exempt = &local_static_exempt;
  if (exempt == nullptr) return true;
  for (const std::string& prefix : *exempt) {
    if (path_matches(path, prefix)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Linter

struct Linter::Impl {
  struct File {
    std::string path;
    std::string original;
    Scrubbed scrubbed;
  };

  LintOptions options;
  std::vector<File> files;
  // std::set: the symbol tables themselves must never introduce iteration-
  // order nondeterminism into reports.
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_fns;
  std::set<std::string> unordered_aliases;

  void harvest(const File& file);
  void harvest_alias_uses(const File& file);
  void check_file(const File& file, std::vector<Finding>& findings) const;
  void apply_suppressions(const File& file, Finding& finding) const;
};

Linter::Linter(LintOptions options) : impl_(new Impl) {
  impl_->options = std::move(options);
}

Linter::~Linter() { delete impl_; }

void Linter::add(std::string path, std::string content) {
  Impl::File file;
  file.path = normalise(path);
  file.scrubbed = scrub(content);
  file.original = std::move(content);
  impl_->files.push_back(std::move(file));
}

// Pass 1a+1b: record every name declared with an unordered type — variables
// and members (`std::unordered_map<K,V> index_;`), functions returning one
// (`std::unordered_map<K,V> compute() const;`), and aliases
// (`using Index = std::unordered_map<...>;`).
void Linter::Impl::harvest(const File& file) {
  const std::string& code = file.scrubbed.code;
  for (const std::string_view kind : {"unordered_map", "unordered_set"}) {
    for (std::size_t pos = find_token(code, kind, 0);
         pos != std::string::npos; pos = find_token(code, kind, pos + 1)) {
      std::size_t cursor = skip_spaces(code, pos + kind.size());
      // `#include <unordered_map>` puts '>' right after the name; a real
      // type use puts '<'.
      if (cursor >= code.size() || code[cursor] != '<') continue;
      // Alias? Look back along the line for `using NAME =`.
      {
        std::size_t bol = code.rfind('\n', pos);
        bol = bol == std::string::npos ? 0 : bol + 1;
        const std::string_view before{code.data() + bol, pos - bol};
        const std::size_t using_pos = find_token(before, "using", 0);
        if (using_pos != std::string_view::npos &&
            before.find('=', using_pos) != std::string_view::npos) {
          std::size_t name_pos = skip_spaces(before, using_pos + 5);
          const std::string alias = read_qualified_ident(before, name_pos);
          if (!alias.empty()) unordered_aliases.insert(alias);
          continue;
        }
      }
      cursor = skip_template_args(code, cursor);
      if (cursor == std::string::npos) continue;
      cursor = skip_spaces(code, cursor);
      while (cursor < code.size() &&
             (code[cursor] == '&' || code[cursor] == '*')) {
        cursor = skip_spaces(code, cursor + 1);
      }
      const std::string name = read_qualified_ident(code, cursor);
      if (name.empty() || name == "const") continue;
      cursor = skip_spaces(code, cursor);
      if (cursor < code.size() && code[cursor] == '(') {
        unordered_fns.insert(name);
      } else {
        unordered_vars.insert(name);
      }
    }
  }
}

// Pass 1c: `IndexAlias name` declares an unordered variable too, and
// `auto name = unordered_fn(...)` binds the function's unordered result.
void Linter::Impl::harvest_alias_uses(const File& file) {
  const std::string& code = file.scrubbed.code;
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& alias : unordered_aliases) {
    for (std::size_t pos = find_token(code, alias, 0); pos != std::string::npos;
         pos = find_token(code, alias, pos + 1)) {
      std::size_t cursor = skip_spaces(code, pos + alias.size());
      while (cursor < code.size() &&
             (code[cursor] == '&' || code[cursor] == '*')) {
        cursor = skip_spaces(code, cursor + 1);
      }
      std::string name = read_qualified_ident(code, cursor);
      if (name.empty() || name == alias) continue;
      cursor = skip_spaces(code, cursor);
      // `IdSet name;` declares a variable, `IdSet name(...)` a function
      // whose result is unordered too.
      if (cursor < code.size() && code[cursor] == '(') {
        unordered_fns.insert(std::move(name));
      } else {
        unordered_vars.insert(std::move(name));
      }
    }
  }
  for (std::size_t pos = find_token(code, "auto", 0); pos != std::string::npos;
       pos = find_token(code, "auto", pos + 1)) {
    std::size_t cursor = skip_spaces(code, pos + 4);
    while (cursor < code.size() && (code[cursor] == '&' || code[cursor] == '*')) {
      cursor = skip_spaces(code, cursor + 1);
    }
    const std::string name = read_qualified_ident(code, cursor);
    if (name.empty()) continue;
    cursor = skip_spaces(code, cursor);
    if (cursor >= code.size() || code[cursor] != '=') continue;
    cursor = skip_spaces(code, cursor + 1);
    std::string callee = read_qualified_ident(code, cursor);
    // Follow one member access: `index.samples()` / `view->probes()`.
    while (cursor + 1 < code.size() &&
           (code[cursor] == '.' ||
            (code[cursor] == '-' && code[cursor + 1] == '>'))) {
      cursor += code[cursor] == '.' ? std::size_t{1} : std::size_t{2};
      callee = read_qualified_ident(code, cursor);
    }
    if (cursor < code.size() && code[cursor] == '(' &&
        unordered_fns.count(callee) > 0) {
      unordered_vars.insert(name);
    }
  }
}

namespace {

/// Entropy/clock tokens banned outside the sanctioned modules. Tokens with
/// `needs_call` only match when followed by '(' so that e.g. a variable
/// named `time` in exported CSV headers can never trip the rule.
struct BannedToken {
  std::string_view token;
  bool needs_call;
  std::string_view why;
};

constexpr BannedToken kNondeterminismTokens[] = {
    {"rand", true, "libc rand() is not seedable per-study"},
    {"srand", true, "global libc seeding breaks stream forking"},
    {"random_device", false, "hardware entropy differs every run"},
    {"mt19937", false, "std engines differ across standard libraries"},
    {"mt19937_64", false, "std engines differ across standard libraries"},
    {"minstd_rand", false, "std engines differ across standard libraries"},
    {"default_random_engine", false, "implementation-defined engine"},
    {"time", true, "wall-clock seeding breaks reproducibility"},
    {"clock", true, "process clocks vary run-to-run"},
    {"steady_clock", false, "clock reads must stay inside src/obs"},
    {"system_clock", false, "clock reads must stay inside src/obs"},
    {"high_resolution_clock", false, "clock reads must stay inside src/obs"},
};

/// Member types whose mutability is the point: synchronization primitives
/// guarding other state. Matched as substrings so std::shared_mutex,
/// std::atomic<...>, std::once_flag etc. all qualify.
constexpr std::string_view kMutableAllowedTypes[] = {
    "mutex", "atomic", "once_flag", "condition_variable"};

/// What an opening brace belongs to, decided by the statement text before it.
enum class BraceKind : unsigned char {
  Function,   ///< function/lambda body or a control-flow block inside one
  Type,       ///< class/struct/union/enum body
  Namespace,  ///< namespace body
  Other,      ///< initializer lists etc. — transparent, inherits the parent
};

/// Remove template-argument text between balanced <...> so keywords inside
/// parameter lists (`template <class T>`) don't confuse classification.
[[nodiscard]] std::string strip_angle_brackets(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  int depth = 0;
  for (const char ch : text) {
    if (ch == '<') {
      ++depth;
      continue;
    }
    if (ch == '>') {
      if (depth > 0) --depth;
      continue;
    }
    if (depth == 0) out.push_back(ch);
  }
  return out;
}

[[nodiscard]] BraceKind classify_brace(std::string_view code, std::size_t open) {
  // The statement introducing this brace: back to the previous ';', '{', '}'.
  std::size_t begin = open;
  while (begin > 0) {
    const char ch = code[begin - 1];
    if (ch == ';' || ch == '{' || ch == '}') break;
    --begin;
  }
  const std::string intro = strip_angle_brackets(code.substr(begin, open - begin));
  for (const std::string_view keyword : {"class", "struct", "union", "enum"}) {
    if (find_token(intro, keyword, 0) != std::string::npos) return BraceKind::Type;
  }
  if (find_token(intro, "namespace", 0) != std::string::npos) {
    return BraceKind::Namespace;
  }
  // A parameter list (or trailing function qualifiers after one) marks a
  // function body; `) {`, `] {` (lambda), `} {` (after brace-init members)
  // and the block keywords cover control flow.
  if (intro.find('(') != std::string::npos) return BraceKind::Function;
  std::size_t j = open;
  while (j > begin && is_space(code[j - 1])) --j;
  if (j == begin) return BraceKind::Other;
  const char prev = code[j - 1];
  if (prev == ')' || prev == ']' || prev == '}') return BraceKind::Function;
  if (is_ident_char(prev)) {
    std::size_t start = j;
    while (start > begin && is_ident_char(code[start - 1])) --start;
    const std::string_view word = code.substr(start, j - start);
    if (word == "else" || word == "do" || word == "try") {
      return BraceKind::Function;
    }
  }
  return BraceKind::Other;
}

/// True when the innermost non-transparent scope enclosing `stack` is a
/// function body (Other braces inherit their parent's classification).
[[nodiscard]] bool in_function_body(const std::vector<BraceKind>& stack) {
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i] == BraceKind::Other) continue;
    return stack[i] == BraceKind::Function;
  }
  return false;
}

}  // namespace

void Linter::Impl::check_file(const File& file,
                              std::vector<Finding>& findings) const {
  const std::string& code = file.scrubbed.code;
  const std::string& original = file.original;

  const auto report = [&](Rule rule, std::size_t pos, std::string message) {
    Finding finding;
    finding.file = file.path;
    finding.line = line_of(code, pos);
    finding.rule = rule;
    finding.message = std::move(message);
    finding.snippet = snippet_at(original, code, pos);
    apply_suppressions(file, finding);
    findings.push_back(std::move(finding));
  };

  // R1 — range-for over unordered containers.
  for (std::size_t pos = find_token(code, "for", 0); pos != std::string::npos;
       pos = find_token(code, "for", pos + 1)) {
    std::size_t cursor = skip_spaces(code, pos + 3);
    if (cursor >= code.size() || code[cursor] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = cursor; i < code.size(); ++i) {
      const char ch = code[i];
      if (ch == '(') ++depth;
      if (ch == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (ch == ';' && depth == 1) break;  // classic three-clause for
      if (ch == ':' && depth == 1 && colon == std::string::npos &&
          (i == 0 || code[i - 1] != ':') &&
          (i + 1 >= code.size() || code[i + 1] != ':')) {
        colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string_view range =
        trim(std::string_view{code}.substr(colon + 1, close - colon - 1));
    std::string culprit;
    if (range.find("unordered_") != std::string_view::npos) {
      culprit.assign(range.substr(0, 40));
    } else {
      // Classify by the trailing component of the range expression, so
      // member (`cache.entries_`), pointer (`impl_->table_`) and qualified
      // accesses all resolve against the harvested symbol tables.
      std::string_view expr = range;
      bool call = false;
      if (!expr.empty() && expr.back() == ')') {
        int args = 0;
        std::size_t open = std::string_view::npos;
        for (std::size_t i = expr.size(); i-- > 0;) {
          if (expr[i] == ')') ++args;
          if (expr[i] == '(' && --args == 0) {
            open = i;
            break;
          }
        }
        if (open == std::string_view::npos) continue;
        expr = trim(expr.substr(0, open));
        call = true;
      }
      if (expr.empty() || !is_ident_char(expr.back())) continue;
      std::size_t start = expr.size();
      while (start > 0 && is_ident_char(expr[start - 1])) --start;
      const std::string tail{expr.substr(start)};
      if (call && unordered_fns.count(tail) > 0) {
        culprit = tail + "()";
      } else if (!call && unordered_vars.count(tail) > 0) {
        culprit = tail;
      }
    }
    if (!culprit.empty()) {
      report(Rule::UnorderedIter, pos,
             "range-for over unordered container '" + culprit +
                 "': iteration order is unspecified and may leak into "
                 "ordered output");
    }
  }

  // R2 — entropy and clock sources.
  if (options.applies(Rule::Nondeterminism, file.path)) {
    for (const BannedToken& banned : kNondeterminismTokens) {
      for (std::size_t pos = find_token(code, banned.token, 0);
           pos != std::string::npos;
           pos = find_token(code, banned.token, pos + 1)) {
        if (banned.needs_call) {
          const std::size_t after = skip_spaces(code, pos + banned.token.size());
          if (after >= code.size() || code[after] != '(') continue;
        }
        report(Rule::Nondeterminism, pos,
               "'" + std::string{banned.token} + "' outside util/rng and obs: " +
                   std::string{banned.why});
      }
    }
  }

  // R3 — raw assert() in library code.
  if (options.applies(Rule::RawAssert, file.path)) {
    for (std::size_t pos = find_token(code, "assert", 0);
         pos != std::string::npos; pos = find_token(code, "assert", pos + 1)) {
      const std::size_t after = skip_spaces(code, pos + 6);
      if (after >= code.size() || code[after] != '(') continue;
      report(Rule::RawAssert, pos,
             "raw assert() vanishes under NDEBUG; use CLOUDRTT_CHECK or "
             "CLOUDRTT_DCHECK (util/check.hpp)");
    }
  }

  // R5 — mutable members in headers. A lambda's `mutable` qualifier (body
  // brace, trailing return or noexcept right after it) is not a member.
  if (is_header(file.path) && options.applies(Rule::MutableMember, file.path)) {
    for (std::size_t pos = find_token(code, "mutable", 0);
         pos != std::string::npos; pos = find_token(code, "mutable", pos + 1)) {
      const std::size_t cursor = skip_spaces(code, pos + 7);
      if (cursor >= code.size() || code[cursor] == '{' || code[cursor] == '-') {
        continue;
      }
      if (code.compare(cursor, 8, "noexcept") == 0) continue;
      const std::size_t end = code.find_first_of(";{=", cursor);
      const std::string_view decl = std::string_view{code}.substr(
          cursor, end == std::string::npos ? code.size() - cursor : end - cursor);
      bool allowed = false;
      for (const std::string_view type : kMutableAllowedTypes) {
        if (decl.find(type) != std::string_view::npos) {
          allowed = true;
          break;
        }
      }
      if (allowed) continue;
      report(Rule::MutableMember, pos,
             "mutable member in a header: lazy caches behind const interfaces "
             "are hidden shared state the parallel executor cannot tolerate; "
             "guard it and justify with lint:allow, or materialize up front");
    }
  }

  // R6 — function-local static non-const objects.
  if (options.applies(Rule::LocalStatic, file.path)) {
    std::vector<std::size_t> statics;
    for (std::size_t pos = find_token(code, "static", 0);
         pos != std::string::npos; pos = find_token(code, "static", pos + 1)) {
      statics.push_back(pos);
    }
    if (!statics.empty()) {
      std::vector<BraceKind> stack;
      std::size_t next = 0;
      for (std::size_t i = 0; i < code.size() && next < statics.size(); ++i) {
        if (i == statics[next]) {
          if (in_function_body(stack)) {
            std::size_t cursor = skip_spaces(code, i + 6);
            const std::string qualifier = read_qualified_ident(code, cursor);
            if (qualifier != "const" && qualifier != "constexpr" &&
                qualifier != "constinit") {
              report(Rule::LocalStatic, i,
                     "function-local static non-const object: initialization "
                     "order and lifetime are process state, and mutation is "
                     "thread-hostile; hoist it or make it const");
            }
          }
          ++next;
        }
        if (code[i] == '{') {
          stack.push_back(classify_brace(code, i));
        } else if (code[i] == '}' && !stack.empty()) {
          stack.pop_back();
        }
      }
    }
  }

  // R4 — header hygiene.
  if (is_header(file.path)) {
    if (code.find("#pragma once") == std::string::npos) {
      report(Rule::HeaderHygiene, 0, "header is missing #pragma once");
    }
    for (std::size_t pos = find_token(code, "using", 0);
         pos != std::string::npos; pos = find_token(code, "using", pos + 1)) {
      const std::size_t after = skip_spaces(code, pos + 5);
      if (code.compare(after, 9, "namespace") == 0 &&
          (after + 9 >= code.size() || !is_ident_char(code[after + 9]))) {
        report(Rule::HeaderHygiene, pos,
               "'using namespace' in a header leaks into every includer");
      }
    }
  }
}

// A finding is suppressed by `// lint:allow(<rule>): <justification>` on the
// finding's own line, or on a comment-only line directly above it. The
// justification is mandatory: an allow without one does not suppress.
void Linter::Impl::apply_suppressions(const File& file, Finding& finding) const {
  const auto try_line = [&](std::size_t line_index) -> bool {
    if (line_index >= file.scrubbed.comments.size()) return false;
    const std::string& comment = file.scrubbed.comments[line_index];
    const std::string needle = "lint:allow(" + std::string{rule_key(finding.rule)} + ")";
    const std::size_t pos = comment.find(needle);
    if (pos == std::string::npos) return false;
    std::string_view rest = trim(std::string_view{comment}.substr(pos + needle.size()));
    if (rest.starts_with(':')) {
      rest = trim(rest.substr(1));
      if (!rest.empty()) {
        finding.suppressed = true;
        finding.justification.assign(rest);
        return true;
      }
    }
    finding.message += " [lint:allow without ': justification' ignored]";
    return true;
  };
  const std::size_t line_index = finding.line - 1;
  if (try_line(line_index)) return;
  if (line_index == 0) return;
  // The line above only counts when it carries no code of its own.
  std::size_t bol = 0, eol = 0, current = 0;
  const std::string& code = file.scrubbed.code;
  for (std::size_t i = 0; i <= code.size(); ++i) {
    if (i == code.size() || code[i] == '\n') {
      if (current + 1 == line_index) {
        bol = eol == 0 ? 0 : eol + 1;
        const std::string_view above{code.data() + bol, i - bol};
        if (trim(above).empty()) try_line(line_index - 1);
        return;
      }
      eol = i;
      ++current;
    }
  }
}

std::vector<Finding> Linter::run() {
  for (const Impl::File& file : impl_->files) impl_->harvest(file);
  for (const Impl::File& file : impl_->files) impl_->harvest_alias_uses(file);
  std::vector<Finding> findings;
  for (const Impl::File& file : impl_->files) {
    impl_->check_file(file, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return findings;
}

std::vector<std::string> Linter::unordered_symbols() const {
  std::vector<std::string> out;
  // The symbol tables are std::set (ordered) — only their *contents* are
  // names of unordered symbols, which trips the scanner's own heuristic.
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& name : impl_->unordered_vars) out.push_back(name);
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& name : impl_->unordered_fns) out.push_back(name + "()");
  // lint:allow(unordered-iter): std::set of names; iteration is ordered
  for (const std::string& name : impl_->unordered_aliases) {
    out.push_back("using " + name);
  }
  return out;
}

Summary summarize(const std::vector<Finding>& findings, std::size_t files) {
  Summary summary;
  summary.files = files;
  for (const Finding& finding : findings) {
    Summary::PerRule& row = summary.rules[static_cast<std::size_t>(finding.rule)];
    ++row.total;
    if (finding.suppressed) ++row.suppressed;
  }
  return summary;
}

std::size_t Summary::unsuppressed_total() const {
  std::size_t total = 0;
  for (const PerRule& row : rules) total += row.total - row.suppressed;
  return total;
}

}  // namespace cloudrtt::lint

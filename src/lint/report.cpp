#include <ostream>

#include "lint/lint.hpp"
#include "util/json.hpp"
#include "util/text.hpp"

namespace cloudrtt::lint {

namespace {

[[nodiscard]] std::size_t active_of(const Summary::PerRule& row) {
  return row.total - row.suppressed - row.baselined;
}

}  // namespace

void write_text_report(std::ostream& out, const std::vector<Finding>& findings,
                       const Summary& summary, bool show_suppressed) {
  for (const Finding& finding : findings) {
    if ((finding.suppressed || finding.baselined) && !show_suppressed) {
      continue;
    }
    out << finding.file << ':' << finding.line << ": ["
        << rule_key(finding.rule) << "] "
        << (finding.suppressed
                ? "(suppressed) "
                : finding.baselined ? "(baselined) " : "")
        << finding.message << '\n';
    if (!finding.snippet.empty()) out << "    " << finding.snippet << '\n';
    if (finding.suppressed) {
      out << "    justification: " << finding.justification << '\n';
    }
  }

  util::TextTable table;
  table.set_header(
      {"rule", "findings", "suppressed", "baselined", "allows", "active"});
  for (const Rule rule : kAllRules) {
    const Summary::PerRule& row = summary.rules[static_cast<std::size_t>(rule)];
    table.add_row({std::string{rule_key(rule)}, std::to_string(row.total),
                   std::to_string(row.suppressed),
                   std::to_string(row.baselined),
                   std::to_string(row.allow_uses),
                   std::to_string(active_of(row))});
  }
  out << '\n' << table.render();
  out << summary.files << " files scanned, " << summary.unsuppressed_total()
      << " active finding(s)\n";
}

void write_json_report(std::ostream& out, const std::vector<Finding>& findings,
                       const Summary& summary) {
  util::JsonWriter json{out};
  json.begin_object();
  json.key("findings");
  json.begin_array();
  for (const Finding& finding : findings) {
    json.begin_object();
    json.field("file", finding.file);
    json.field("line", static_cast<std::uint64_t>(finding.line));
    json.field("rule", rule_key(finding.rule));
    json.field("message", finding.message);
    json.field("snippet", finding.snippet);
    json.field("suppressed", finding.suppressed);
    json.field("baselined", finding.baselined);
    if (finding.suppressed) json.field("justification", finding.justification);
    json.end_object();
  }
  json.end_array();
  json.key("summary");
  json.begin_object();
  json.field("files", static_cast<std::uint64_t>(summary.files));
  json.key("rules");
  json.begin_object();
  for (const Rule rule : kAllRules) {
    const Summary::PerRule& row = summary.rules[static_cast<std::size_t>(rule)];
    json.key(rule_key(rule));
    json.begin_object();
    json.field("total", static_cast<std::uint64_t>(row.total));
    json.field("suppressed", static_cast<std::uint64_t>(row.suppressed));
    json.field("baselined", static_cast<std::uint64_t>(row.baselined));
    json.field("allow_uses", static_cast<std::uint64_t>(row.allow_uses));
    json.field("active", static_cast<std::uint64_t>(active_of(row)));
    json.end_object();
  }
  json.end_object();
  json.field("clean", summary.clean());
  json.end_object();
  json.end_object();
  out << '\n';
}

}  // namespace cloudrtt::lint

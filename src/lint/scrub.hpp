#pragma once
// Shared lexical layer for cloudrtt-lint: the comment/string scrubber, token
// scanning helpers, and the brace-structure machinery both passes build on.
//
// The scanner is deliberately not a C++ parser. Every helper here works on
// "scrubbed" text — same byte length and line layout as the original file,
// with comments and literal contents blanked to spaces — so byte offsets map
// 1:1 between the two and findings can quote the original source line.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cloudrtt::lint {

struct Scrubbed {
  std::string code;                   ///< same length/line layout as input
  std::vector<std::string> comments;  ///< comment text per 0-based line
};

/// Replace comments and literal contents with spaces, preserving newlines so
/// positions map 1:1 to the original text. Handles //, /*...*/, "...",
/// '...', and raw strings R"delim(...)delim". Digit separators (1'000) are
/// not treated as char literals.
[[nodiscard]] Scrubbed scrub(std::string_view text);

[[nodiscard]] bool is_ident_char(char ch);
[[nodiscard]] bool is_space(char ch);
[[nodiscard]] std::string_view trim(std::string_view text);

/// 1-based line number of a position in the scrubbed code.
[[nodiscard]] std::size_t line_of(std::string_view code, std::size_t pos);

/// Byte offset of the first character of 1-based line `line`; npos when the
/// file has fewer lines.
[[nodiscard]] std::size_t offset_of_line(std::string_view code,
                                         std::size_t line);

/// The trimmed source line containing `pos` (for finding snippets).
[[nodiscard]] std::string snippet_at(std::string_view original,
                                     std::string_view code, std::size_t pos);

/// Next occurrence of `token` at or after `from` with identifier boundaries
/// on both sides; npos when absent.
[[nodiscard]] std::size_t find_token(std::string_view code,
                                     std::string_view token, std::size_t from);

[[nodiscard]] std::size_t skip_spaces(std::string_view code, std::size_t pos);

/// Read an identifier (possibly qualified, A::b::c) starting at `pos`;
/// returns the last component and advances `pos` past the whole name.
[[nodiscard]] std::string read_qualified_ident(std::string_view code,
                                               std::size_t& pos);

/// With `pos` at the '<' opening a template argument list, return the
/// position just past the matching '>'; npos if unbalanced.
[[nodiscard]] std::size_t skip_template_args(std::string_view code,
                                             std::size_t pos);

// ---------------------------------------------------------------------------
// Path scoping

/// Normalise for suffix matching: backslashes to slashes.
[[nodiscard]] std::string normalise(std::string_view path);

/// True when the repo-relative `prefix` appears at a path-component boundary
/// anywhere in `path`, so absolute invocations scope identically.
[[nodiscard]] bool path_matches(std::string_view path, std::string_view prefix);

[[nodiscard]] bool is_header(std::string_view path);

/// Path without its extension ("src/routing/path_cache.hpp" ->
/// "src/routing/path_cache"). Annotation-driven rules enforce over the
/// header + sibling .cpp sharing one stem.
[[nodiscard]] std::string_view path_stem(std::string_view path);

// ---------------------------------------------------------------------------
// Brace structure

/// What an opening brace belongs to, decided by the statement text before it.
enum class BraceKind : unsigned char {
  Function,   ///< function/lambda body or a control-flow block inside one
  Type,       ///< class/struct/union/enum body
  Namespace,  ///< namespace body
  Other,      ///< initializer lists etc. — transparent, inherits the parent
};

/// Remove template-argument text between balanced <...> so keywords inside
/// parameter lists (`template <class T>`) don't confuse classification.
[[nodiscard]] std::string strip_angle_brackets(std::string_view text);

[[nodiscard]] BraceKind classify_brace(std::string_view code, std::size_t open);

/// True when the innermost non-transparent scope enclosing `stack` is a
/// function body (Other braces inherit their parent's classification).
[[nodiscard]] bool in_function_body(const std::vector<BraceKind>& stack);

/// One matched `{...}` pair plus its classification and nesting parent.
struct BraceInfo {
  std::size_t open = 0;
  std::size_t close = 0;  ///< position of the matching '}' (or code end)
  BraceKind kind = BraceKind::Other;
  int parent = -1;      ///< index of the enclosing pair, -1 at top level
  std::string name;     ///< Type: class name; Function: see function_name()
  bool is_class = false;  ///< Type pairs: `class` (default-private) vs struct
};

/// Every matched brace pair of a file, in opening order.
struct FileShape {
  std::vector<BraceInfo> braces;

  /// Index of the innermost pair containing `pos`, -1 when at top level.
  [[nodiscard]] int innermost(std::size_t pos) const;
  /// True when `pos` sits inside a function body (transparent braces skipped).
  [[nodiscard]] bool in_function(std::size_t pos) const;
  /// Close position of the innermost pair containing `pos`; `fallback` when
  /// `pos` is at top level.
  [[nodiscard]] std::size_t enclosing_close(std::size_t pos,
                                            std::size_t fallback) const;
};

[[nodiscard]] FileShape analyze_braces(std::string_view code);

/// Name of the function whose body opens at `open` ("" when the brace is a
/// control-flow block, lambda, or not a function at all). Understands
/// constructor member-init lists (`C::C(...) : a_{x}, b_(y) {`), returns the
/// unqualified last component, and prefixes destructors with '~'.
[[nodiscard]] std::string function_name_at(std::string_view code,
                                           std::size_t open);

}  // namespace cloudrtt::lint

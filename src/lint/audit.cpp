#include "lint/audit.hpp"

#include <tuple>

#include "lint/layers.hpp"

namespace cloudrtt::lint {

namespace {

/// Position of the closer matching `open` (code[open] must be the opener);
/// npos when unbalanced.
[[nodiscard]] std::size_t matching_close(std::string_view code,
                                         std::size_t open, char opener,
                                         char closer) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == opener) ++depth;
    if (code[i] == closer && --depth == 0) return i;
  }
  return std::string_view::npos;
}

// ---------------------------------------------------------------------------
// guarded-by

struct LockRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Byte ranges of `file` where `guard` is held: from an RAII lock declaration
/// whose argument list names the guard (trailing-component match, so
/// `shard.mutex` satisfies guard `mutex`) to the end of the enclosing block,
/// and likewise from a manual `guard.lock()` / `.lock_shared()` call.
[[nodiscard]] std::vector<LockRange> lock_ranges(const AuditFile& file,
                                                 std::string_view guard) {
  const std::string& code = file.scrubbed->code;
  std::vector<LockRange> ranges;
  for (const std::string_view decl :
       {"lock_guard", "unique_lock", "shared_lock", "scoped_lock"}) {
    for (std::size_t pos = find_token(code, decl, 0);
         pos != std::string_view::npos;
         pos = find_token(code, decl, pos + 1)) {
      std::size_t cursor = pos + decl.size();
      if (cursor < code.size() && code[cursor] == '<') {
        cursor = skip_template_args(code, cursor);
        if (cursor == std::string_view::npos) continue;
      }
      cursor = skip_spaces(code, cursor);
      // Named lock or a temporary (`std::lock_guard{mu}` — a bug, but the
      // guard is still held for the statement; count the declaration form).
      (void)read_qualified_ident(code, cursor);
      cursor = skip_spaces(code, cursor);
      if (cursor >= code.size() ||
          (code[cursor] != '(' && code[cursor] != '{')) {
        continue;
      }
      const char opener = code[cursor];
      const char closer = opener == '(' ? ')' : '}';
      const std::size_t close = matching_close(code, cursor, opener, closer);
      if (close == std::string_view::npos) continue;
      const std::string_view args =
          std::string_view{code}.substr(cursor + 1, close - cursor - 1);
      if (find_token(args, guard, 0) == std::string_view::npos) continue;
      ranges.push_back(
          {close, file.shape->enclosing_close(pos, code.size())});
    }
  }
  for (std::size_t pos = find_token(code, guard, 0);
       pos != std::string_view::npos; pos = find_token(code, guard, pos + 1)) {
    std::size_t cursor = pos + guard.size();
    if (cursor < code.size() && code[cursor] == '.') {
      ++cursor;
    } else if (cursor + 1 < code.size() && code[cursor] == '-' &&
               code[cursor + 1] == '>') {
      cursor += 2;
    } else {
      continue;
    }
    const std::string member = read_qualified_ident(code, cursor);
    if (member != "lock" && member != "lock_shared") continue;
    cursor = skip_spaces(code, cursor);
    if (cursor >= code.size() || code[cursor] != '(') continue;
    ranges.push_back({pos, file.shape->enclosing_close(pos, code.size())});
  }
  return ranges;
}

[[nodiscard]] bool covered(const std::vector<LockRange>& ranges,
                           std::size_t pos) {
  for (const LockRange& range : ranges) {
    if (range.begin < pos && pos < range.end) return true;
  }
  return false;
}

/// True when `pos` sits inside a constructor or destructor of `owner` — no
/// concurrent access can exist before construction finishes or after
/// destruction starts, so guarded fields may be touched lock-free there.
[[nodiscard]] bool in_ctor_or_dtor(const AuditFile& file, std::size_t pos,
                                   std::string_view owner) {
  const std::vector<BraceInfo>& braces = file.shape->braces;
  for (int i = file.shape->innermost(pos); i >= 0;
       i = braces[static_cast<std::size_t>(i)].parent) {
    const BraceInfo& info = braces[static_cast<std::size_t>(i)];
    if (info.kind != BraceKind::Function || info.name.empty()) continue;
    if (info.name == owner) return true;
    if (info.name[0] == '~' &&
        std::string_view{info.name}.substr(1) == owner) {
      return true;
    }
  }
  return false;
}

void check_guarded_by(const std::vector<AuditFile>& files,
                      const AuditReport& report) {
  for (const AuditFile& source : files) {
    for (const GuardedField& field : source.index->guarded) {
      for (std::size_t target = 0; target < files.size(); ++target) {
        const AuditFile& file = files[target];
        if (path_stem(file.path) != field.stem) continue;
        const std::string& code = file.scrubbed->code;
        const std::vector<LockRange> held = lock_ranges(file, field.guard);
        for (std::size_t pos = find_token(code, field.field, 0);
             pos != std::string_view::npos;
             pos = find_token(code, field.field, pos + 1)) {
          if (!file.shape->in_function(pos)) continue;
          if (covered(held, pos)) continue;
          if (in_ctor_or_dtor(file, pos, field.owner)) continue;
          report(target, Rule::GuardedBy, line_of(code, pos),
                 "field '" + field.field + "' is lint:guarded_by('" +
                     field.guard + "') (" + field.file + ":" +
                     std::to_string(field.line) +
                     ") but is accessed without holding it; lock it or "
                     "justify with lint:allow(guarded-by)");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// frozen

void scan_frozen_body(const AuditFile& file, std::size_t file_index,
                      const BraceInfo& body, const FrozenType& type,
                      const AuditReport& report) {
  const std::string& code = file.scrubbed->code;
  bool public_access = !body.is_class;  // struct members default to public
  std::size_t pos = body.open + 1;
  while (pos < body.close) {
    const char ch = code[pos];
    if (ch == '{') {
      // Member-function body, nested type, or brace initializer: opaque.
      const std::size_t close = matching_close(code, pos, '{', '}');
      pos = close == std::string_view::npos ? body.close : close + 1;
      continue;
    }
    if (!is_ident_char(ch) || (pos > 0 && is_ident_char(code[pos - 1]))) {
      ++pos;
      continue;
    }
    std::size_t end = pos;
    while (end < body.close && is_ident_char(code[end])) ++end;
    const std::string_view word =
        std::string_view{code}.substr(pos, end - pos);
    std::size_t after = skip_spaces(code, end);
    if (word == "public" || word == "private" || word == "protected") {
      if (after < code.size() && code[after] == ':' &&
          (after + 1 >= code.size() || code[after + 1] != ':')) {
        public_access = word == "public";
        pos = after + 1;
        continue;
      }
    }
    if (after >= body.close || code[after] != '(') {
      pos = end;
      continue;
    }
    // `word(` at class depth 0: a member function — unless the identifier
    // is part of an initializer expression (`int x_ = compute();`).
    std::size_t before = pos;
    while (before > body.open + 1 && is_space(code[before - 1])) --before;
    const char prev = before > 0 ? code[before - 1] : '\0';
    if (prev == '=') {
      pos = end;
      continue;
    }
    const bool is_dtor = prev == '~';
    const std::size_t params = matching_close(code, after, '(', ')');
    if (params == std::string_view::npos || params >= body.close) {
      pos = end;
      continue;
    }
    const std::size_t term = code.find_first_of(";{", params);
    if (term == std::string_view::npos || term > body.close) {
      pos = params + 1;
      continue;
    }
    const std::string_view quals =
        std::string_view{code}.substr(params + 1, term - params - 1);
    // The statement's leading tokens (storage class, friend, return type).
    std::size_t intro_begin = before;
    while (intro_begin > body.open + 1) {
      const char c = code[intro_begin - 1];
      if (c == ';' || c == '{' || c == '}') break;
      if (c == ':') {
        // `::` is part of a qualified return type; a lone `:` ends the
        // statement (access specifier).
        if (intro_begin >= 2 && code[intro_begin - 2] == ':') {
          intro_begin -= 2;
          continue;
        }
        break;
      }
      --intro_begin;
    }
    const std::string_view intro =
        std::string_view{code}.substr(intro_begin, before - intro_begin);
    const bool is_const = find_token(quals, "const", 0) != std::string::npos;
    const bool is_deleted =
        find_token(quals, "delete", 0) != std::string::npos;
    const bool is_static = find_token(intro, "static", 0) != std::string::npos;
    const bool is_friend = find_token(intro, "friend", 0) != std::string::npos;
    const bool is_ctor = word == type.name;
    if (public_access && !is_const && !is_deleted && !is_static &&
        !is_friend && !is_ctor && !is_dtor) {
      report(file_index, Rule::Frozen, line_of(code, pos),
             "'" + type.name + "' is lint:frozen (immutable after "
             "construction) but declares public non-const member '" +
                 std::string{word} +
                 "'; make it const, private to the build phase, or justify "
                 "with lint:allow(frozen)");
    }
    pos = term;
  }
}

void check_frozen(const std::vector<AuditFile>& files,
                  const AuditReport& report) {
  std::vector<std::pair<std::string, std::string>> stems;  // stem, type name
  for (std::size_t i = 0; i < files.size(); ++i) {
    const AuditFile& file = files[i];
    for (const FrozenType& type : file.index->frozen) {
      stems.emplace_back(type.stem, type.name);
      for (const BraceInfo& body : file.shape->braces) {
        if (body.kind != BraceKind::Type || body.name != type.name) continue;
        if (line_of(file.scrubbed->code, body.open) != type.line) continue;
        scan_frozen_body(file, i, body, type, report);
      }
    }
  }
  // const_cast anywhere in a frozen type's header/.cpp pair defeats the
  // freeze no matter which member it targets.
  for (std::size_t i = 0; i < files.size(); ++i) {
    const AuditFile& file = files[i];
    const std::string_view stem = path_stem(file.path);
    std::string_view type_name;
    for (const auto& [frozen_stem, name] : stems) {
      if (frozen_stem == stem) {
        type_name = name;
        break;
      }
    }
    if (type_name.empty()) continue;
    const std::string& code = file.scrubbed->code;
    for (std::size_t pos = find_token(code, "const_cast", 0);
         pos != std::string_view::npos;
         pos = find_token(code, "const_cast", pos + 1)) {
      report(i, Rule::Frozen, line_of(code, pos),
             "const_cast in the header/.cpp pair of lint:frozen type '" +
                 std::string{type_name} + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// hot-path-alloc

void check_hot_region(const AuditFile& file, std::size_t file_index,
                      const HotRegion& region,
                      const std::set<std::string>& map_like,
                      const AuditReport& report) {
  const std::string& code = file.scrubbed->code;
  const std::size_t begin = region.begin;
  const std::size_t end = std::min(region.end, code.size());
  const std::string where = "lint:hot " +
                            (region.label == "file"
                                 ? std::string{"file"}
                                 : "function '" + region.label + "'") +
                            ": ";

  const auto flag = [&](std::size_t pos, std::string_view what) {
    report(file_index, Rule::HotPathAlloc, line_of(code, pos),
           where + std::string{what} +
               "; steer toward util::Arena, caller scratch, or string_view");
  };

  struct SimpleBan {
    std::string_view token;
    bool needs_call;
    std::string_view what;
  };
  constexpr SimpleBan kBans[] = {
      {"new", false, "operator new allocates per call"},
      {"make_unique", false, "make_unique allocates per call"},
      {"make_shared", false, "make_shared allocates per call"},
      {"to_string", true, "to_string builds a heap string"},
      {"ostringstream", false, "stream formatting allocates"},
      {"stringstream", false, "stream formatting allocates"},
  };
  for (const SimpleBan& ban : kBans) {
    for (std::size_t pos = find_token(code, ban.token, begin);
         pos != std::string_view::npos && pos < end;
         pos = find_token(code, ban.token, pos + 1)) {
      if (ban.needs_call) {
        const std::size_t after = skip_spaces(code, pos + ban.token.size());
        if (after >= code.size() || code[after] != '(') continue;
      }
      flag(pos, ban.what);
    }
  }

  // std::function is type-erased and allocates for non-trivial captures.
  for (std::size_t pos = find_token(code, "function", begin);
       pos != std::string_view::npos && pos < end;
       pos = find_token(code, "function", pos + 1)) {
    if (pos >= 5 && code.compare(pos - 5, 5, "std::") == 0) {
      flag(pos, "std::function type-erases and may allocate");
    }
  }

  // std::string / std::vector value declarations and temporaries.
  for (const std::string_view type : {"string", "vector"}) {
    for (std::size_t pos = find_token(code, type, begin);
         pos != std::string_view::npos && pos < end;
         pos = find_token(code, type, pos + 1)) {
      if (pos < 5 || code.compare(pos - 5, 5, "std::") != 0) continue;
      std::size_t cursor = pos + type.size();
      if (cursor < code.size() && code[cursor] == '<') {
        cursor = skip_template_args(code, cursor);
        if (cursor == std::string_view::npos) continue;
      }
      cursor = skip_spaces(code, cursor);
      if (cursor >= code.size()) continue;
      const char next = code[cursor];
      if (is_ident_char(next)) {
        flag(pos, "owning std::" + std::string{type} +
                      " value declared in the hot path");
      } else if (next == '{' || next == '(') {
        flag(pos, "std::" + std::string{type} + " temporary in the hot path");
      }
    }
  }

  // operator[] on a map-typed symbol inserts on miss and rehashes.
  for (std::size_t pos = code.find('[', begin);
       pos != std::string_view::npos && pos < end;
       pos = code.find('[', pos + 1)) {
    if (pos + 1 < code.size() && code[pos + 1] == '[') continue;
    if (pos > 0 && code[pos - 1] == '[') continue;
    std::size_t name_end = pos;
    while (name_end > begin && is_space(code[name_end - 1])) --name_end;
    std::size_t name_begin = name_end;
    while (name_begin > begin && is_ident_char(code[name_begin - 1])) {
      --name_begin;
    }
    if (name_begin == name_end) continue;
    const std::string name{
        std::string_view{code}.substr(name_begin, name_end - name_begin)};
    if (map_like.count(name) == 0) continue;
    flag(pos, "operator[] on map '" + name + "' inserts on miss");
  }
}

void check_hot_paths(const std::vector<AuditFile>& files,
                     const std::set<std::string>& map_like,
                     const LintOptions& options, const AuditReport& report) {
  for (std::size_t i = 0; i < files.size(); ++i) {
    const AuditFile& file = files[i];
    if (!options.applies(Rule::HotPathAlloc, file.path)) continue;
    for (const HotRegion& region : file.index->hot) {
      check_hot_region(file, i, region, map_like, report);
    }
  }
}

// ---------------------------------------------------------------------------
// layering-dag

void check_layering(const std::vector<AuditFile>& files,
                    const AuditReport& report) {
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const IncludeEdge& edge : files[i].index->edges) {
      if (edge.from_module == edge.to_module) continue;
      const int from = layer_rank(edge.from_module);
      const int to = layer_rank(edge.to_module);
      if (from < 0 || to < 0) continue;  // unknown modules are not in the DAG
      if (from > to) continue;           // downward edge: legal
      report(i, Rule::LayeringDag, edge.line,
             "backward include edge: module '" + edge.from_module +
                 "' (layer " + std::to_string(from) +
                 ") may not include \"" + edge.header + "\" from '" +
                 edge.to_module + "' (layer " + std::to_string(to) +
                 "); the order is declared in src/lint/layers.hpp");
    }
  }
}

}  // namespace

void run_audit(const std::vector<AuditFile>& files,
               const std::set<std::string>& map_like,
               const LintOptions& options, const AuditReport& report) {
  check_guarded_by(files, report);
  check_frozen(files, report);
  check_hot_paths(files, map_like, options, report);
  check_layering(files, report);
}

void run_allow_hygiene(const std::vector<AuditFile>& files,
                       const LintOptions& options,
                       const std::vector<Finding>& findings,
                       const AuditReport& report) {
  // (file, rule, line) of every finding so far, suppressed included — a
  // justified allow is healthy iff a finding of its rule sits on its own
  // line (trailing form) or the line below (comment-line-above form).
  std::set<std::tuple<std::string, int, std::size_t>> at;
  for (const Finding& finding : findings) {
    at.emplace(finding.file, static_cast<int>(finding.rule), finding.line);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    const AuditFile& file = files[i];
    if (!options.applies(Rule::AllowHygiene, file.path)) continue;
    for (const AllowUse& allow : file.index->allows) {
      if (!allow.has_justification) {
        report(i, Rule::AllowHygiene, allow.line,
               "lint:allow(" + allow.rule +
                   ") without ': justification' — it suppresses nothing; "
                   "justify it or remove it");
        continue;
      }
      Rule rule{};
      if (!rule_from_key(allow.rule, rule)) {
        report(i, Rule::AllowHygiene, allow.line,
               "lint:allow names unknown rule '" + allow.rule +
                   "' (see --list-rules)");
        continue;
      }
      const std::string path{file.path};
      if (at.count({path, static_cast<int>(rule), allow.line}) == 0 &&
          at.count({path, static_cast<int>(rule), allow.line + 1}) == 0) {
        report(i, Rule::AllowHygiene, allow.line,
               "orphan lint:allow(" + allow.rule +
                   "): no finding of that rule here or on the next line — "
                   "the code it excused is gone; remove the allow");
      }
    }
  }
}

}  // namespace cloudrtt::lint

#pragma once
// Pass 1 of the auditor: the per-file symbol index. Each scanned file yields
// a FileIndex — its harvested unordered-container symbols plus every
// annotation marker (`lint:guarded_by`, `lint:frozen`, `lint:hot`,
// `lint:allow`) and internal include edge. Pass 2 (audit.cpp) runs the rule
// families against the merged index. A FileIndex depends only on its own
// file's bytes, so it is cached on the content hash (`--index-cache`).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/scrub.hpp"

namespace cloudrtt::lint {

/// A field marked `// lint:guarded_by(guard)`: every access outside a scope
/// that locks `guard` (within the header + sibling .cpp) is a finding.
struct GuardedField {
  std::string owner;  ///< enclosing class/struct name
  std::string field;
  std::string guard;  ///< the mutex member named in the annotation
  std::string file;
  std::string stem;  ///< path without extension; pairs header with .cpp
  std::size_t line = 0;
};

/// A type marked `// lint:frozen`: deeply immutable after construction.
struct FrozenType {
  std::string name;
  std::string file;
  std::string stem;
  std::size_t line = 0;
};

/// A `// lint:hot` function body (byte range) or whole file
/// (`lint:hot(file)`): allocation and temporary-heavy constructs flagged.
struct HotRegion {
  std::string file;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string label;  ///< function name, or "file"
  std::size_t line = 0;
};

/// One `#include "module/..."` edge from a file under src/.
struct IncludeEdge {
  std::string from_module;
  std::string to_module;
  std::string header;  ///< the quoted include path
  std::size_t line = 0;
};

/// One `lint:allow(rule)` use, justified or not.
struct AllowUse {
  std::string rule;
  std::size_t line = 0;
  bool has_justification = false;
};

/// Everything pass 2 needs from one file. Derivable from the file's bytes
/// alone — the cache contract.
struct FileIndex {
  std::uint64_t hash = 0;  ///< fnv1a of the file's original content

  // Unordered-container harvest feeding the unordered-iter rule.
  std::vector<std::string> unordered_vars;
  std::vector<std::string> unordered_fns;
  std::vector<std::string> unordered_aliases;
  std::vector<std::string> map_like;  ///< map-typed vars for map::operator[]

  std::vector<GuardedField> guarded;
  std::vector<FrozenType> frozen;
  std::vector<HotRegion> hot;
  std::vector<IncludeEdge> edges;
  std::vector<AllowUse> allows;
};

/// Harvest annotation markers and include edges for one file into `out`
/// (appends; the unordered_* members are filled by the linter's own
/// harvest). `shape` must be analyze_braces(scrubbed.code). With
/// `harvest_markers` false only include edges are collected — src/lint/'s
/// own sources document the annotation grammar in comments, so their
/// marker-shaped text must not register, but they still sit in the DAG.
void index_annotations(const std::string& path, std::string_view original,
                       const Scrubbed& scrubbed, const FileShape& shape,
                       bool harvest_markers, FileIndex& out);

/// Serialize a path → FileIndex map as the on-disk cache document.
[[nodiscard]] std::string write_index_cache_json(
    const std::map<std::string, FileIndex>& files);

/// Parse a cache document written by write_index_cache_json. Returns false
/// (leaving `out` empty) on malformed input — a stale or corrupt cache is
/// simply ignored.
[[nodiscard]] bool parse_index_cache_json(std::string_view text,
                                          std::map<std::string, FileIndex>& out);

}  // namespace cloudrtt::lint

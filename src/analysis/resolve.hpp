#pragma once
// IP -> ASN resolution: the PyASN / Team Cymru / CAIDA-IXP pipeline of §3.3.
//
// The resolver is bootstrapped from the same kinds of inputs the paper used:
// a RIB dump (announced prefixes), registration (whois) data for prefixes
// that are routed but not announced, and the IXP peering-LAN prefix list.
// Analysis code resolves every traceroute hop through this class; it never
// reads ground truth off the simulator.

#include <optional>
#include <unordered_set>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "topology/asn.hpp"
#include "topology/world.hpp"

namespace cloudrtt::analysis {

enum class ResolutionSource : unsigned char { Rib, Whois };

struct Resolution {
  topology::Asn asn = 0;
  ResolutionSource source = ResolutionSource::Rib;
  bool is_ixp = false;
};

class IpToAsn {
 public:
  IpToAsn() = default;

  /// Bootstrap from the world's public data products (RIB dump, whois
  /// registry, IXP prefix list).
  [[nodiscard]] static IpToAsn from_world(const topology::World& world);

  void add_rib(const net::Ipv4Prefix& prefix, topology::Asn asn);
  void add_whois(const net::Ipv4Prefix& prefix, topology::Asn asn);
  void add_ixp(const net::Ipv4Prefix& prefix, topology::Asn asn);

  /// Longest-prefix match over the RIB, falling back to whois; nullopt for
  /// private space and unknown addresses.
  [[nodiscard]] std::optional<Resolution> resolve(net::Ipv4Address addr) const;

  [[nodiscard]] bool is_ixp_asn(topology::Asn asn) const {
    return ixp_asns_.contains(asn);
  }

  [[nodiscard]] std::size_t rib_size() const { return rib_.entry_count(); }
  [[nodiscard]] std::size_t whois_size() const { return whois_.entry_count(); }

 private:
  net::PrefixTrie<topology::Asn> rib_;
  net::PrefixTrie<topology::Asn> whois_;
  net::PrefixTrie<topology::Asn> ixp_;
  std::unordered_set<topology::Asn> ixp_asns_;
};

}  // namespace cloudrtt::analysis

#include "analysis/trace_analysis.hpp"

#include <algorithm>

namespace cloudrtt::analysis {

AsPath as_level_path(const measure::TraceRef& trace, const IpToAsn& resolver) {
  AsPath path;
  for (const measure::HopRecord& hop : trace.hops) {
    if (!hop.responded) continue;
    const auto res = resolver.resolve(hop.ip);
    if (!res) continue;  // private or unknown space
    if (res->is_ixp) path.crossed_ixp = true;
    if (res->source == ResolutionSource::Whois) path.used_whois = true;
    if (path.asns.empty() || path.asns.back() != res->asn) {
      path.asns.push_back(res->asn);
    }
  }
  return path;
}

InterconnectObservation classify_interconnect(const measure::TraceRef& trace,
                                              const IpToAsn& resolver) {
  InterconnectObservation out;
  const auto target = resolver.resolve(trace.target_ip);
  if (!target) return out;
  out.cloud_asn = target->asn;

  // Ordered, collapsed AS path with IXP hops tagged.
  struct Entry {
    topology::Asn asn;
    bool ixp;
  };
  std::vector<Entry> path;
  for (const measure::HopRecord& hop : trace.hops) {
    if (!hop.responded) continue;
    const auto res = resolver.resolve(hop.ip);
    if (!res) continue;
    if (path.empty() || path.back().asn != res->asn) {
      path.push_back(Entry{res->asn, res->is_ixp});
    }
  }

  // Serving ISP: the first non-IXP AS on the path.
  std::size_t isp_pos = path.size();
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!path[i].ixp) {
      isp_pos = i;
      out.isp_asn = path[i].asn;
      break;
    }
  }
  if (isp_pos == path.size()) return out;

  // First appearance of the cloud WAN.
  std::size_t cloud_pos = path.size();
  for (std::size_t i = isp_pos + 1; i < path.size(); ++i) {
    if (path[i].asn == out.cloud_asn) {
      cloud_pos = i;
      break;
    }
  }
  if (cloud_pos == path.size()) return out;  // never reached the cloud AS

  // Count distinct intermediate ASes, removing IXPs (they are points of
  // traffic exchange, not transit — §6.1).
  std::vector<topology::Asn> intermediates;
  for (std::size_t i = isp_pos + 1; i < cloud_pos; ++i) {
    if (path[i].ixp || resolver.is_ixp_asn(path[i].asn)) {
      out.crossed_ixp = true;
      continue;
    }
    if (path[i].asn == out.isp_asn) continue;  // ISP reappearing (own backhaul)
    if (std::find(intermediates.begin(), intermediates.end(), path[i].asn) ==
        intermediates.end()) {
      intermediates.push_back(path[i].asn);
    }
  }

  out.valid = true;
  out.intermediate_as_count = static_cast<int>(intermediates.size());
  if (intermediates.empty()) {
    out.mode = out.crossed_ixp ? topology::InterconnectMode::DirectIxp
                               : topology::InterconnectMode::Direct;
  } else if (intermediates.size() == 1) {
    out.mode = topology::InterconnectMode::OneAs;
  } else {
    out.mode = topology::InterconnectMode::Public;
  }
  return out;
}

LastMileObservation infer_last_mile(const measure::TraceRef& trace,
                                    const IpToAsn& resolver) {
  LastMileObservation out;
  bool saw_private = false;
  std::optional<double> first_private_rtt;
  bool first_hop_examined = false;

  for (const measure::HopRecord& hop : trace.hops) {
    if (!hop.responded) {
      first_hop_examined = true;
      continue;
    }
    if (net::is_private(hop.ip)) {
      if (!saw_private) first_private_rtt = hop.rtt_ms;
      saw_private = true;
      first_hop_examined = true;
      continue;
    }
    // First public hop: must belong to some AS to anchor the ISP ingress.
    if (!resolver.resolve(hop.ip)) {
      first_hop_examined = true;
      continue;
    }
    out.valid = true;
    out.usr_isp_ms = hop.rtt_ms;
    out.access = saw_private ? AccessClass::Home : AccessClass::Cell;
    if (saw_private && first_private_rtt) {
      out.rtr_isp_ms = std::max(0.0, out.usr_isp_ms - *first_private_rtt);
    }
    return out;
  }
  (void)first_hop_examined;
  return out;  // nothing usable responded
}

std::optional<double> pervasiveness(const measure::TraceRef& trace,
                                    const IpToAsn& resolver) {
  const auto target = resolver.resolve(trace.target_ip);
  if (!target) return std::nullopt;
  std::size_t resolved = 0;
  std::size_t cloud_owned = 0;
  for (const measure::HopRecord& hop : trace.hops) {
    if (!hop.responded) continue;
    const auto res = resolver.resolve(hop.ip);
    if (!res) continue;
    ++resolved;
    if (res->asn == target->asn) ++cloud_owned;
  }
  if (resolved < 3) return std::nullopt;
  return static_cast<double>(cloud_owned) / static_cast<double>(resolved);
}

}  // namespace cloudrtt::analysis

#include "analysis/geolocate.hpp"

#include <string_view>

namespace cloudrtt::analysis {

namespace {

struct Headquarters {
  cloud::ProviderId provider;
  std::string_view country;
  geo::GeoPoint location;
};

// Where the providers' corporate allocations geolocate when a database only
// has the registration record.
constexpr Headquarters kHeadquarters[] = {
    {cloud::ProviderId::Amazon, "US", {47.61, -122.33}},       // Seattle
    {cloud::ProviderId::Google, "US", {37.42, -122.08}},       // Mountain View
    {cloud::ProviderId::Microsoft, "US", {47.67, -122.12}},    // Redmond
    {cloud::ProviderId::DigitalOcean, "US", {40.71, -74.01}},  // New York
    {cloud::ProviderId::Alibaba, "CN", {30.27, 120.15}},       // Hangzhou
    {cloud::ProviderId::Vultr, "US", {28.54, -81.38}},         // Orlando-ish
    {cloud::ProviderId::Linode, "US", {39.95, -75.17}},        // Philadelphia
    {cloud::ProviderId::Lightsail, "US", {47.61, -122.33}},
    {cloud::ProviderId::Oracle, "US", {30.27, -97.74}},        // Austin
    {cloud::ProviderId::Ibm, "US", {41.11, -73.72}},           // Armonk
};

const Headquarters& headquarters_of(cloud::ProviderId provider) {
  for (const Headquarters& hq : kHeadquarters) {
    if (hq.provider == provider) return hq;
  }
  return kHeadquarters[0];
}

}  // namespace

void GeoDatabase::add(const net::Ipv4Prefix& prefix, GeoEntry entry) {
  trie_.insert(prefix, std::move(entry));
}

std::optional<GeoEntry> GeoDatabase::lookup(net::Ipv4Address addr) const {
  if (net::is_private(addr)) return std::nullopt;
  return trie_.lookup(addr);
}

GeoDatabase GeoDatabase::from_world(const topology::World& world,
                                    double error_rate) {
  GeoDatabase db;
  util::Rng rng = world.fork_rng("geoip");
  const auto& countries = world.countries();
  const auto all_countries = countries.all();

  const auto stale_country = [&]() -> const geo::CountryInfo& {
    return all_countries[rng.below(all_countries.size())];
  };

  // Eyeball networks: customer + infra prefixes at the country centroid,
  // stale entries somewhere else entirely.
  for (const topology::IspNetwork& isp : world.isps()) {
    const geo::CountryInfo& home = countries.at(isp.country);
    for (const net::Ipv4Prefix& prefix : {isp.customer_prefix, isp.infra_prefix}) {
      if (rng.chance(error_rate)) {
        const geo::CountryInfo& wrong = stale_country();
        db.add(prefix, GeoEntry{wrong.centroid, std::string{wrong.code}, true});
      } else {
        db.add(prefix, GeoEntry{home.centroid, std::string{home.code}, false});
      }
    }
  }

  // Cloud WAN + regional-transit infrastructure from the RIB: always at the
  // registration location — a backbone spanning the planet geolocated to one
  // campus. (Region /24s are refined afterwards, below.)
  for (const topology::RibEntry& entry : world.rib_dump()) {
    const topology::AsInfo* info = world.registry().find(entry.asn);
    if (info == nullptr) continue;
    if (info->type == topology::AsType::CloudWan) {
      const Headquarters& hq = headquarters_of(info->provider);
      db.add(entry.prefix, GeoEntry{hq.location, std::string{hq.country}, true});
    }
    if (info->type == topology::AsType::RegionalTransit) {
      // Continental carriers register at their continent's biggest market.
      const geo::CountryInfo* biggest = nullptr;
      for (const geo::CountryInfo& country : all_countries) {
        if (country.continent != info->continent) continue;
        if (biggest == nullptr || country.sc_weight > biggest->sc_weight) {
          biggest = &country;
        }
      }
      if (biggest != nullptr) {
        db.add(entry.prefix,
               GeoEntry{biggest->centroid, std::string{biggest->code}, true});
      }
    }
  }

  // Global carriers: whole backbone at the registration hub (first hub).
  const auto locate_carrier = [&](topology::Asn asn,
                                  const std::vector<topology::RibEntry>& entries) {
    for (const topology::TransitCarrier& carrier : topology::tier1_carriers()) {
      if (carrier.asn != asn || carrier.hubs.empty()) continue;
      const topology::TransitHub& registration = carrier.hubs.front();
      for (const topology::RibEntry& entry : entries) {
        if (entry.asn == asn) {
          db.add(entry.prefix,
                 GeoEntry{registration.location, std::string{registration.country},
                          true});
        }
      }
    }
  };
  for (const topology::TransitCarrier& carrier : topology::tier1_carriers()) {
    locate_carrier(carrier.asn, world.rib_dump());
    locate_carrier(carrier.asn, world.whois_entries());
  }

  // Cloud region /24s: mostly at the DC metro, sometimes stale at HQ. Added
  // after the WAN pass so the specific entries win over the blanket ones.
  for (const topology::CloudEndpoint& endpoint : world.endpoints()) {
    const cloud::RegionInfo& region = *endpoint.region;
    if (rng.chance(error_rate * 0.8)) {
      const Headquarters& hq = headquarters_of(region.provider);
      db.add(endpoint.prefix,
             GeoEntry{hq.location, std::string{hq.country}, true});
    } else {
      db.add(endpoint.prefix,
             GeoEntry{region.location, std::string{region.country}, false});
    }
  }

  // IXP peering LANs: the exchange metro (these the databases do get right).
  for (const topology::RibEntry& entry : world.ixp_prefixes()) {
    for (const topology::IxpInfo& ixp : topology::known_ixps()) {
      if (ixp.asn == entry.asn) {
        db.add(entry.prefix,
               GeoEntry{ixp.location, std::string{ixp.country}, false});
      }
    }
  }
  return db;
}

}  // namespace cloudrtt::analysis

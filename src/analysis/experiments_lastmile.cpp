#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/nearest.hpp"

namespace cloudrtt::analysis {

std::string_view to_string(LastMileCategory category) {
  switch (category) {
    case LastMileCategory::HomeUsrIsp: return "SC home (USR-ISP)";
    case LastMileCategory::Cell: return "SC cell";
    case LastMileCategory::HomeRtrIsp: return "SC home (RTR-ISP)";
    case LastMileCategory::Atlas: return "Atlas";
  }
  return "?";
}

namespace {

/// Push a value into a per-continent bucket set plus the Global bucket.
template <typename Buckets>
void push_bucketed(Buckets& buckets, LastMileCategory category,
                   geo::Continent continent, double value) {
  auto& per_continent = buckets[static_cast<std::size_t>(category)];
  per_continent[geo::index_of(continent)].push_back(value);
  per_continent[kGlobalIndex].push_back(value);
}

void accumulate_lastmile(const StudyView& view, const measure::Dataset& data,
                         bool is_atlas, bool nearest_only, LastMileStats& stats) {
  // For Fig. 19 we need each probe's nearest DC (within its continent).
  std::unordered_map<const probes::Probe*, const cloud::RegionInfo*> nearest_of;
  if (nearest_only) {
    const NearestIndex index{data};
    for (const probes::Probe* probe : index.probes()) {
      nearest_of.emplace(probe, index.nearest(probe, probe->country->continent));
    }
  }

  for (const measure::TraceRef& trace : data.traces) {
    if (!trace.completed || trace.end_to_end_ms <= 0.0) continue;
    if (nearest_only) {
      const auto it = nearest_of.find(trace.probe);
      if (it == nearest_of.end() || it->second != trace.region) continue;
    }
    const LastMileObservation obs = infer_last_mile(trace, *view.resolver);
    if (!obs.valid) continue;
    const geo::Continent continent = trace.probe->country->continent;
    const double share =
        std::clamp(obs.usr_isp_ms / trace.end_to_end_ms * 100.0, 0.0, 100.0);

    if (is_atlas) {
      push_bucketed(stats.share_pct, LastMileCategory::Atlas, continent, share);
      push_bucketed(stats.absolute_ms, LastMileCategory::Atlas, continent,
                    obs.usr_isp_ms);
      continue;
    }
    if (obs.access == AccessClass::Home) {
      push_bucketed(stats.share_pct, LastMileCategory::HomeUsrIsp, continent, share);
      push_bucketed(stats.absolute_ms, LastMileCategory::HomeUsrIsp, continent,
                    obs.usr_isp_ms);
      if (obs.rtr_isp_ms) {
        const double rtr_share = std::clamp(
            *obs.rtr_isp_ms / trace.end_to_end_ms * 100.0, 0.0, 100.0);
        push_bucketed(stats.share_pct, LastMileCategory::HomeRtrIsp, continent,
                      rtr_share);
        push_bucketed(stats.absolute_ms, LastMileCategory::HomeRtrIsp, continent,
                      *obs.rtr_isp_ms);
      }
    } else if (obs.access == AccessClass::Cell) {
      push_bucketed(stats.share_pct, LastMileCategory::Cell, continent, share);
      push_bucketed(stats.absolute_ms, LastMileCategory::Cell, continent,
                    obs.usr_isp_ms);
    }
  }
}

/// Per-probe last-mile sample streams for the Cv analyses. The probe's
/// home/cell class is the majority of its per-trace inferences (the paper
/// cannot see the real access type either).
struct ProbeLastMile {
  std::vector<double> samples;
  std::size_t home_votes = 0;
  std::size_t cell_votes = 0;
  [[nodiscard]] bool is_home() const { return home_votes >= cell_votes; }
};

/// Per-probe last-mile summaries in ascending probe-id order. The
/// accumulation map is keyed by probe pointer, so its iteration order would
/// change with every run's heap layout; fig8/fig9 append to their box-plot
/// series while walking this, so the result is sorted before it is returned
/// — otherwise the exported series order (and the dataset report) would
/// differ between two same-seed runs.
std::vector<std::pair<const probes::Probe*, ProbeLastMile>> collect_per_probe(
    const StudyView& view) {
  std::unordered_map<const probes::Probe*, ProbeLastMile> accumulator;
  for (const measure::TraceRef& trace : view.sc_data->traces) {
    const LastMileObservation obs = infer_last_mile(trace, *view.resolver);
    if (!obs.valid) continue;
    ProbeLastMile& entry = accumulator[trace.probe];
    entry.samples.push_back(obs.usr_isp_ms);
    if (obs.access == AccessClass::Home) {
      ++entry.home_votes;
    } else {
      ++entry.cell_votes;
    }
  }
  std::vector<std::pair<const probes::Probe*, ProbeLastMile>> out;
  out.reserve(accumulator.size());
  for (auto& [probe, entry] : accumulator) {  // lint:allow(unordered-iter): sorted by probe id on the next line
    out.emplace_back(probe, std::move(entry));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first->id < b.first->id;
  });
  return out;
}

constexpr std::size_t kMinCvSamples = 10;  ///< the paper's >=10-sample rule

}  // namespace

LastMileStats lastmile_stats(const StudyView& view, bool nearest_only) {
  LastMileStats stats;
  accumulate_lastmile(view, *view.sc_data, /*is_atlas=*/false, nearest_only, stats);
  if (view.has_atlas()) {
    accumulate_lastmile(view, *view.atlas_data, /*is_atlas=*/true, nearest_only,
                        stats);
  }
  return stats;
}

std::vector<CvGroup> fig8_cv_by_continent(const StudyView& view) {
  const auto per_probe = collect_per_probe(view);
  std::vector<CvGroup> groups;
  for (const geo::Continent c : geo::kAllContinents) {
    groups.push_back(CvGroup{std::string{geo::to_code(c)}, {}, {}, true});
  }
  for (const auto& [probe, entry] : per_probe) {
    if (entry.samples.size() < kMinCvSamples) continue;
    const auto cv = util::coefficient_of_variation(entry.samples);
    if (!cv) continue;
    CvGroup& group = groups[geo::index_of(probe->country->continent)];
    (entry.is_home() ? group.home : group.cell).push_back(*cv);
  }
  return groups;
}

std::vector<CvGroup> fig9_cv_by_country(const StudyView& view) {
  static constexpr std::array<std::string_view, 10> kCountries{
      "ZA", "MA", "JP", "IR", "GB", "UA", "US", "MX", "BR", "AR"};
  constexpr std::size_t kMinProbesPerBox = 8;

  const auto per_probe = collect_per_probe(view);
  std::vector<CvGroup> groups;
  for (const std::string_view code : kCountries) {
    groups.push_back(CvGroup{std::string{code}, {}, {}, true});
  }
  for (const auto& [probe, entry] : per_probe) {
    if (entry.samples.size() < kMinCvSamples) continue;
    const auto it = std::find(kCountries.begin(), kCountries.end(),
                              std::string_view{probe->country->code});
    if (it == kCountries.end()) continue;
    const auto cv = util::coefficient_of_variation(entry.samples);
    if (!cv) continue;
    CvGroup& group = groups[static_cast<std::size_t>(it - kCountries.begin())];
    (entry.is_home() ? group.home : group.cell).push_back(*cv);
  }
  // The paper excludes home boxes with insufficient samples (ZA & MA there).
  for (CvGroup& group : groups) {
    if (group.home.size() < kMinProbesPerBox) {
      group.home_sufficient = false;
      group.home.clear();
    }
  }
  return groups;
}

}  // namespace cloudrtt::analysis

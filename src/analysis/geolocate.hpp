#pragma once
// IP geolocation: the GeoIPLookup stand-in of §3.3.
//
// The paper geolocates on-path router hops but then *refrains* from any
// geographic routing analysis because "such geolocation databases are known
// to be quite inaccurate" [50, 73]. This module reproduces a commercial
// GeoIP database with exactly those failure modes so the refusal can be
// quantified (bench/ext_geolocation):
//
//  * eyeball prefixes: usually right (country centroid), occasionally stale
//    (a random other country);
//  * cloud region prefixes: usually the DC metro, but sometimes the whole
//    allocation geolocates to the provider's headquarters;
//  * global carrier backbones: the entire infrastructure prefix carries the
//    carrier's registration location — systematically wrong for a network
//    that spans the planet (the classic MaxMind-style artefact);
//  * IXP peering LANs: the exchange's metro (usually right).

#include <optional>
#include <string>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "topology/world.hpp"

namespace cloudrtt::analysis {

struct GeoEntry {
  geo::GeoPoint location;
  std::string country;  ///< ISO code the database believes
  bool registration_only = false;  ///< location is a registered HQ, not a site
};

class GeoDatabase {
 public:
  GeoDatabase() = default;

  /// Build the database from the world's address plan. `error_rate` is the
  /// fraction of eyeball/cloud prefixes that carry stale or HQ locations;
  /// carrier backbones are *always* registration-located (that is the
  /// database's systematic failure, not a sampling artefact).
  [[nodiscard]] static GeoDatabase from_world(const topology::World& world,
                                              double error_rate = 0.15);

  void add(const net::Ipv4Prefix& prefix, GeoEntry entry);

  [[nodiscard]] std::optional<GeoEntry> lookup(net::Ipv4Address addr) const;
  [[nodiscard]] std::size_t size() const { return trie_.entry_count(); }

 private:
  net::PrefixTrie<GeoEntry> trie_;
};

}  // namespace cloudrtt::analysis

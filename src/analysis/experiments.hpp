#pragma once
// Experiment drivers: one function per table/figure of the paper. Each
// returns structured rows so bench harnesses can print them and integration
// tests can assert the paper's qualitative findings on them. The per-exhibit
// mapping lives in DESIGN.md §3.

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/study_view.hpp"
#include "analysis/trace_analysis.hpp"
#include "cloud/provider.hpp"
#include "geo/continent.hpp"
#include "util/stats.hpp"
#include "util/text.hpp"

namespace cloudrtt::analysis {

// Latency thresholds of §2.1 used throughout.
inline constexpr double kMtpMs = 20.0;   ///< Motion-to-Photon
inline constexpr double kHplMs = 100.0;  ///< Human Perceivable Latency
inline constexpr double kHrtMs = 250.0;  ///< Human Reaction Time

// ---------------------------------------------------------------------------
// Fig. 3 — median RTT to the closest in-continent DC per country.
struct CountryLatencyRow {
  std::string_view country;
  std::string_view name;
  geo::Continent continent = geo::Continent::Europe;
  double median_ms = 0.0;
  std::size_t samples = 0;
  std::string_view bucket;  ///< "<30" / "30-60" / "60-100" / "100-250" / ">250"
};
[[nodiscard]] std::vector<CountryLatencyRow> fig3_country_latency(const StudyView&);
[[nodiscard]] std::string_view latency_bucket(double median_ms);

// Fig. 4 — all RTT samples to the nearest in-continent DC, per continent.
[[nodiscard]] std::vector<util::Series> fig4_continent_rtt(const StudyView&);

// Fig. 5 — quantile-matched Speedchecker-minus-Atlas latency differences per
// continent (negative = Speedchecker faster).
[[nodiscard]] std::vector<util::Series> fig5_platform_diff(const StudyView&);

// Fig. 6 — per-country RTT distributions to nearest DCs in several target
// continents (AF -> {EU, NA, AF}; SA -> {NA, SA}).
struct InterContinentalCell {
  std::string_view src_country;
  geo::Continent dst_continent = geo::Continent::Europe;
  util::Summary summary;
};
[[nodiscard]] std::vector<InterContinentalCell> fig6_intercontinental(
    const StudyView&, geo::Continent src_continent);

// Fig. 15 (A.2) — TCP vs ICMP end-to-end latencies per continent.
struct ProtocolCompareRow {
  geo::Continent continent = geo::Continent::Europe;
  util::Summary tcp;
  util::Summary icmp;
};
[[nodiscard]] std::vector<ProtocolCompareRow> fig15_protocols(const StudyView&);

// Fig. 16 (A.3) — platform differences restricted to probes matched by
// <city, first-hop ASN>; AS/EU/NA only (insufficient intersections elsewhere).
[[nodiscard]] std::vector<util::Series> fig16_city_asn_diff(const StudyView&);

// ---------------------------------------------------------------------------
// Figs. 7 / 19 — wireless last-mile share and absolute latency.
enum class LastMileCategory : unsigned char {
  HomeUsrIsp,  ///< SC home (USR-ISP)
  Cell,        ///< SC cell
  HomeRtrIsp,  ///< SC home (RTR-ISP)
  Atlas,       ///< RIPE Atlas wired
};
inline constexpr std::array<LastMileCategory, 4> kLastMileCategories{
    LastMileCategory::HomeUsrIsp, LastMileCategory::Cell,
    LastMileCategory::HomeRtrIsp, LastMileCategory::Atlas};
[[nodiscard]] std::string_view to_string(LastMileCategory category);

/// Index 0..5 = continents, 6 = Global.
inline constexpr std::size_t kGlobalIndex = geo::kContinentCount;
struct LastMileStats {
  std::array<std::array<std::vector<double>, geo::kContinentCount + 1>, 4> share_pct;
  std::array<std::array<std::vector<double>, geo::kContinentCount + 1>, 4> absolute_ms;

  [[nodiscard]] const std::vector<double>& share(LastMileCategory c,
                                                 std::size_t idx) const {
    return share_pct[static_cast<std::size_t>(c)][idx];
  }
  [[nodiscard]] const std::vector<double>& absolute(LastMileCategory c,
                                                    std::size_t idx) const {
    return absolute_ms[static_cast<std::size_t>(c)][idx];
  }
};
/// `nearest_only` restricts to traces towards the probe's nearest DC (Fig. 19).
[[nodiscard]] LastMileStats lastmile_stats(const StudyView&, bool nearest_only);

// Figs. 8 / 9 — per-probe coefficient of variation of last-mile latency.
struct CvGroup {
  std::string label;
  std::vector<double> home;  ///< Cv per home-classified probe (>=10 samples)
  std::vector<double> cell;
  bool home_sufficient = true;  ///< enough home probes to report (Fig. 9 note)
};
[[nodiscard]] std::vector<CvGroup> fig8_cv_by_continent(const StudyView&);
/// Representative countries as in Fig. 9: ZA MA JP IR GB UA US MX BR AR.
[[nodiscard]] std::vector<CvGroup> fig9_cv_by_country(const StudyView&);

// ---------------------------------------------------------------------------
// Fig. 10 — interconnection-type share per provider (global, SC traces).
struct InterconnectShareRow {
  std::string_view ticker;
  double direct_pct = 0.0;  ///< direct + direct-over-IXP (IXPs removed)
  double one_as_pct = 0.0;
  double multi_as_pct = 0.0;
  std::size_t paths = 0;
};
[[nodiscard]] std::vector<InterconnectShareRow> fig10_interconnect_share(
    const StudyView&);

// Fig. 11 — pervasiveness (cloud-owned router share) per provider/continent.
struct PervasivenessRow {
  std::string_view ticker;
  std::array<std::optional<double>, geo::kContinentCount> median_by_continent;
};
[[nodiscard]] std::vector<PervasivenessRow> fig11_pervasiveness(const StudyView&);

// Figs. 12/13/17/18 — case studies: peering matrix + latency by mode.
struct PeeringMatrixCell {
  bool has_data = false;
  topology::InterconnectMode majority = topology::InterconnectMode::Public;
  double majority_pct = 0.0;
  std::size_t paths = 0;
};
struct PeeringMatrixRow {
  std::string isp_label;  ///< "Vodafone (AS 3209)"
  topology::Asn asn = 0;
  std::array<PeeringMatrixCell, 9> cells;  ///< kPeeringFigureProviders order
};
struct PeeringLatencyRow {
  std::string_view ticker;
  bool valid = false;  ///< enough samples in both groups
  util::Summary direct;        ///< direct (+IXP) peering paths
  util::Summary intermediate;  ///< 1-AS and 2+-AS paths
};
struct PeeringCaseStudy {
  std::string_view src_country;
  std::string_view dst_country;
  std::vector<PeeringMatrixRow> matrix;
  std::vector<PeeringLatencyRow> latency;
};
[[nodiscard]] PeeringCaseStudy peering_case_study(const StudyView&,
                                                  std::string_view src_country,
                                                  std::string_view dst_country,
                                                  std::size_t min_cell_paths = 15);

// ---------------------------------------------------------------------------
// §3.3 — methodology statistics.
struct MethodologyStats {
  std::size_t ping_count = 0;
  std::size_t trace_count = 0;
  std::array<double, geo::kContinentCount> continent_sample_share{};
  double tcp_median_ms = 0.0;
  double icmp_median_ms = 0.0;
  double tcp_vs_icmp_gap_pct = 0.0;  ///< (icmp - tcp) / icmp * 100
  std::size_t required_samples_per_country = 0;  ///< n = z^2 p(1-p)/eps^2
  double whois_fallback_share_pct = 0.0;  ///< hops resolved via whois
};
[[nodiscard]] MethodologyStats sec33_stats(const StudyView&);

// Helper shared by Figs. 5/16: quantile-matched differences between two
// sample sets (positive = `b` faster, i.e. a - b at matched quantiles).
[[nodiscard]] std::vector<double> quantile_differences(std::vector<double> a,
                                                       std::vector<double> b,
                                                       std::size_t points = 200);

}  // namespace cloudrtt::analysis

#include <algorithm>
#include <unordered_map>

#include "analysis/experiments.hpp"

namespace cloudrtt::analysis {

namespace {

/// The peering figures fold Lightsail into Amazon (one interconnection
/// fabric, one WAN).
[[nodiscard]] cloud::ProviderId merge_lightsail(cloud::ProviderId id) {
  return id == cloud::ProviderId::Lightsail ? cloud::ProviderId::Amazon : id;
}

/// Column index in the figures' provider order; 9 = not shown.
[[nodiscard]] std::size_t figure_column(cloud::ProviderId id) {
  const cloud::ProviderId merged = merge_lightsail(id);
  for (std::size_t i = 0; i < cloud::kPeeringFigureProviders.size(); ++i) {
    if (cloud::kPeeringFigureProviders[i] == merged) return i;
  }
  return cloud::kPeeringFigureProviders.size();
}

struct ModeCounts {
  std::array<std::size_t, 4> counts{};  // Direct, DirectIxp, OneAs, Public
  std::size_t total = 0;

  void add(topology::InterconnectMode mode) {
    ++counts[static_cast<std::size_t>(mode)];
    ++total;
  }
  [[nodiscard]] topology::InterconnectMode majority() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] > counts[best]) best = i;
    }
    return static_cast<topology::InterconnectMode>(best);
  }
  [[nodiscard]] double majority_pct() const {
    if (total == 0) return 0.0;
    return static_cast<double>(counts[static_cast<std::size_t>(majority())]) /
           static_cast<double>(total) * 100.0;
  }
};

}  // namespace

std::vector<InterconnectShareRow> fig10_interconnect_share(const StudyView& view) {
  std::array<ModeCounts, cloud::kPeeringFigureProviders.size()> counts;
  for (const measure::TraceRef& trace : view.sc_data->traces) {
    const InterconnectObservation obs =
        classify_interconnect(trace, *view.resolver);
    if (!obs.valid) continue;
    const std::size_t column = figure_column(trace.region->provider);
    if (column >= counts.size()) continue;
    counts[column].add(obs.mode);
  }
  std::vector<InterconnectShareRow> rows;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const ModeCounts& c = counts[i];
    InterconnectShareRow row;
    row.ticker = cloud::provider_info(cloud::kPeeringFigureProviders[i]).ticker;
    row.paths = c.total;
    if (c.total > 0) {
      const double total = static_cast<double>(c.total);
      // Fig. 10 folds IXP-crossing direct peering into "direct": IXPs were
      // removed from the AS-level topology.
      row.direct_pct =
          static_cast<double>(
              c.counts[static_cast<std::size_t>(topology::InterconnectMode::Direct)] +
              c.counts[static_cast<std::size_t>(
                  topology::InterconnectMode::DirectIxp)]) /
          total * 100.0;
      row.one_as_pct =
          static_cast<double>(
              c.counts[static_cast<std::size_t>(topology::InterconnectMode::OneAs)]) /
          total * 100.0;
      row.multi_as_pct =
          static_cast<double>(
              c.counts[static_cast<std::size_t>(topology::InterconnectMode::Public)]) /
          total * 100.0;
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<PervasivenessRow> fig11_pervasiveness(const StudyView& view) {
  std::array<std::array<std::vector<double>, geo::kContinentCount>,
             cloud::kPeeringFigureProviders.size()>
      values;
  for (const measure::TraceRef& trace : view.sc_data->traces) {
    const auto ratio = pervasiveness(trace, *view.resolver);
    if (!ratio) continue;
    const std::size_t column = figure_column(trace.region->provider);
    if (column >= values.size()) continue;
    values[column][geo::index_of(trace.probe->country->continent)].push_back(
        *ratio);
  }
  std::vector<PervasivenessRow> rows;
  for (std::size_t i = 0; i < values.size(); ++i) {
    PervasivenessRow row;
    row.ticker = cloud::provider_info(cloud::kPeeringFigureProviders[i]).ticker;
    for (std::size_t c = 0; c < geo::kContinentCount; ++c) {
      if (values[i][c].size() >= 5) {
        row.median_by_continent[c] = util::median(std::move(values[i][c]));
      }
    }
    rows.push_back(row);
  }
  return rows;
}

PeeringCaseStudy peering_case_study(const StudyView& view,
                                    std::string_view src_country,
                                    std::string_view dst_country,
                                    std::size_t min_cell_paths) {
  PeeringCaseStudy study;
  study.src_country = src_country;
  study.dst_country = dst_country;

  const auto named = topology::named_isps_in(src_country);
  std::unordered_map<topology::Asn, std::size_t> isp_row;
  for (const topology::NamedIsp* isp : named) {
    PeeringMatrixRow row;
    row.isp_label =
        std::string{isp->name} + " (AS " + std::to_string(isp->asn) + ")";
    row.asn = isp->asn;
    isp_row.emplace(isp->asn, study.matrix.size());
    study.matrix.push_back(std::move(row));
  }

  // Tally modes and latencies per <ISP, provider>.
  std::vector<std::array<ModeCounts, 9>> cell_counts(study.matrix.size());
  std::array<std::vector<double>, 9> direct_latency;
  std::array<std::vector<double>, 9> intermediate_latency;

  for (const measure::TraceRef& trace : view.sc_data->traces) {
    if (trace.probe->country->code != src_country) continue;
    if (trace.region->country != dst_country) continue;
    const InterconnectObservation obs =
        classify_interconnect(trace, *view.resolver);
    if (!obs.valid) continue;
    const std::size_t column = figure_column(trace.region->provider);
    if (column >= 9) continue;
    const auto row_it = isp_row.find(trace.probe->isp->asn);
    if (row_it != isp_row.end()) {
      cell_counts[row_it->second][column].add(obs.mode);
    }
    if (trace.completed) {
      const bool direct = obs.mode == topology::InterconnectMode::Direct ||
                          obs.mode == topology::InterconnectMode::DirectIxp;
      (direct ? direct_latency : intermediate_latency)[column].push_back(
          trace.end_to_end_ms);
    }
  }

  for (std::size_t r = 0; r < study.matrix.size(); ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      const ModeCounts& counts = cell_counts[r][c];
      PeeringMatrixCell& cell = study.matrix[r].cells[c];
      cell.paths = counts.total;
      if (counts.total >= min_cell_paths) {
        cell.has_data = true;
        cell.majority = counts.majority();
        cell.majority_pct = counts.majority_pct();
      }
    }
  }
  for (std::size_t c = 0; c < 9; ++c) {
    PeeringLatencyRow row;
    row.ticker = cloud::provider_info(cloud::kPeeringFigureProviders[c]).ticker;
    row.valid = direct_latency[c].size() >= min_cell_paths &&
                intermediate_latency[c].size() >= min_cell_paths;
    row.direct = util::summarize(std::move(direct_latency[c]));
    row.intermediate = util::summarize(std::move(intermediate_latency[c]));
    study.latency.push_back(std::move(row));
  }
  return study;
}

}  // namespace cloudrtt::analysis

#pragma once
// Traceroute processing: AS-level path reduction, ISP-cloud interconnection
// classification (§6.1), wireless last-mile inference (§5), and path
// pervasiveness (Fig. 11). Everything is derived from hop addresses via the
// IpToAsn resolver, so the pipeline inherits the same artefacts the paper
// discusses (invisible IXP hops, unresponsive routers, CGN-confused
// home/cell classification).

#include <optional>
#include <vector>

#include "analysis/resolve.hpp"
#include "measure/records.hpp"
#include "topology/interconnect.hpp"

namespace cloudrtt::analysis {

/// Collapsed AS-level view of one traceroute.
struct AsPath {
  std::vector<topology::Asn> asns;  ///< consecutive duplicates collapsed
  bool crossed_ixp = false;         ///< an IXP LAN hop was visible
  bool used_whois = false;          ///< at least one hop needed the fallback
};

[[nodiscard]] AsPath as_level_path(const measure::TraceRef& trace,
                                   const IpToAsn& resolver);

/// Result of classifying the ISP->cloud interconnection of one trace.
struct InterconnectObservation {
  bool valid = false;               ///< ISP and cloud AS both visible
  topology::InterconnectMode mode = topology::InterconnectMode::Public;
  int intermediate_as_count = 0;    ///< distinct ASes between ISP and cloud
  bool crossed_ixp = false;
  topology::Asn isp_asn = 0;
  topology::Asn cloud_asn = 0;
};

/// Classify per §6.1: resolve hops, tag-and-remove IXPs, count the distinct
/// intermediate ASes between the serving ISP and the cloud WAN.
[[nodiscard]] InterconnectObservation classify_interconnect(
    const measure::TraceRef& trace, const IpToAsn& resolver);

/// The paper's home/cell inference (§5).
enum class AccessClass : unsigned char { Home, Cell, Unknown };

struct LastMileObservation {
  bool valid = false;
  AccessClass access = AccessClass::Unknown;
  double usr_isp_ms = 0.0;  ///< probe -> first public in-ISP hop
  /// Home only: home router -> ISP (the wired tail), USR minus the private
  /// first hop; nullopt when the private hop did not respond.
  std::optional<double> rtr_isp_ms;
};

[[nodiscard]] LastMileObservation infer_last_mile(const measure::TraceRef& trace,
                                                  const IpToAsn& resolver);

/// Share of responded+resolved routers owned by the *target* cloud AS
/// (Fig. 11); nullopt when the trace resolves too poorly to say.
[[nodiscard]] std::optional<double> pervasiveness(const measure::TraceRef& trace,
                                                  const IpToAsn& resolver);

}  // namespace cloudrtt::analysis

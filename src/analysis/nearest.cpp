#include "analysis/nearest.hpp"

#include <limits>

namespace cloudrtt::analysis {

NearestIndex::NearestIndex(const measure::Dataset& data) {
  for (const measure::PingRecord& ping : data.pings) {
    if (ping.protocol != measure::Protocol::Tcp) continue;
    auto [it, inserted] = table_.try_emplace(ping.probe);
    if (inserted) probe_order_.push_back(ping.probe);
    PerRegion& cell = it->second[ping.region];
    cell.rtts.push_back(ping.rtt_ms);
    cell.sum += ping.rtt_ms;
  }
}

const cloud::RegionInfo* NearestIndex::nearest(
    const probes::Probe* probe, std::optional<geo::Continent> within) const {
  const auto it = table_.find(probe);
  if (it == table_.end()) return nullptr;
  const cloud::RegionInfo* best = nullptr;
  double best_mean = std::numeric_limits<double>::infinity();
  // The map is keyed by region pointer, so iteration order varies with the
  // heap layout of the run; the strict tie-break on region_name below makes
  // the selected minimum independent of that order.
  for (const auto& [region, cell] : it->second) {
    if (within && region->continent != *within) continue;
    const double mean = cell.mean();
    if (mean < best_mean ||
        (mean == best_mean && best != nullptr &&
         region->region_name < best->region_name)) {
      best_mean = mean;
      best = region;
    }
  }
  return best;
}

const std::vector<double>* NearestIndex::samples(
    const probes::Probe* probe, const cloud::RegionInfo* region) const {
  const auto it = table_.find(probe);
  if (it == table_.end()) return nullptr;
  const auto region_it = it->second.find(region);
  if (region_it == it->second.end()) return nullptr;
  return &region_it->second.rtts;
}

std::vector<double> NearestIndex::samples_to_nearest(
    const probes::Probe* probe, std::optional<geo::Continent> within) const {
  const cloud::RegionInfo* region = nearest(probe, within);
  if (region == nullptr) return {};
  const std::vector<double>* rtts = samples(probe, region);
  return rtts == nullptr ? std::vector<double>{} : *rtts;
}

}  // namespace cloudrtt::analysis

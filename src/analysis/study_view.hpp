#pragma once
// StudyView: the bundle every experiment function consumes — the world's
// public data products, both probe fleets, both datasets and the shared
// IP->ASN resolver. core::Study produces one of these after running the
// campaigns.

#include "analysis/resolve.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"

namespace cloudrtt::analysis {

struct StudyView {
  const topology::World* world = nullptr;
  const probes::ProbeFleet* sc_fleet = nullptr;
  const measure::Dataset* sc_data = nullptr;
  const probes::ProbeFleet* atlas_fleet = nullptr;  ///< may be null
  const measure::Dataset* atlas_data = nullptr;     ///< may be null
  const IpToAsn* resolver = nullptr;

  [[nodiscard]] bool has_atlas() const {
    return atlas_fleet != nullptr && atlas_data != nullptr;
  }
};

}  // namespace cloudrtt::analysis

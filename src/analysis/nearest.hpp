#pragma once
// Nearest-datacenter estimation. The paper's footnote 1: "Datacenter with
// lowest mean latency over time is estimated to be closest to a probe" —
// so nearest is a *measured* property, recomputed from ping records.

#include <optional>
#include <unordered_map>
#include <vector>

#include "cloud/region.hpp"
#include "geo/continent.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"

namespace cloudrtt::analysis {

class NearestIndex {
 public:
  explicit NearestIndex(const measure::Dataset& data);

  /// Region with lowest mean RTT for this probe, optionally restricted to a
  /// continent; nullptr when the probe has no usable samples there.
  [[nodiscard]] const cloud::RegionInfo* nearest(
      const probes::Probe* probe,
      std::optional<geo::Continent> within = std::nullopt) const;

  /// All RTT samples recorded for a <probe, region> pair (nullptr if none).
  [[nodiscard]] const std::vector<double>* samples(
      const probes::Probe* probe, const cloud::RegionInfo* region) const;

  /// Convenience: all samples from the probe to its nearest region within
  /// the given continent (empty if none).
  [[nodiscard]] std::vector<double> samples_to_nearest(
      const probes::Probe* probe,
      std::optional<geo::Continent> within = std::nullopt) const;

  [[nodiscard]] const std::vector<const probes::Probe*>& probes() const {
    return probe_order_;
  }

 private:
  struct PerRegion {
    std::vector<double> rtts;
    double sum = 0.0;
    [[nodiscard]] double mean() const {
      return rtts.empty() ? 0.0 : sum / static_cast<double>(rtts.size());
    }
  };
  using RegionMap = std::unordered_map<const cloud::RegionInfo*, PerRegion>;

  std::unordered_map<const probes::Probe*, RegionMap> table_;
  std::vector<const probes::Probe*> probe_order_;
};

}  // namespace cloudrtt::analysis

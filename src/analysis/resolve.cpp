#include "analysis/resolve.hpp"

namespace cloudrtt::analysis {

IpToAsn IpToAsn::from_world(const topology::World& world) {
  IpToAsn resolver;
  for (const topology::RibEntry& entry : world.rib_dump()) {
    resolver.add_rib(entry.prefix, entry.asn);
  }
  for (const topology::RibEntry& entry : world.whois_entries()) {
    resolver.add_whois(entry.prefix, entry.asn);
  }
  for (const topology::RibEntry& entry : world.ixp_prefixes()) {
    resolver.add_ixp(entry.prefix, entry.asn);
  }
  return resolver;
}

void IpToAsn::add_rib(const net::Ipv4Prefix& prefix, topology::Asn asn) {
  rib_.insert(prefix, asn);
}

void IpToAsn::add_whois(const net::Ipv4Prefix& prefix, topology::Asn asn) {
  whois_.insert(prefix, asn);
}

void IpToAsn::add_ixp(const net::Ipv4Prefix& prefix, topology::Asn asn) {
  ixp_.insert(prefix, asn);
  ixp_asns_.insert(asn);
}

std::optional<Resolution> IpToAsn::resolve(net::Ipv4Address addr) const {
  if (net::is_private(addr)) return std::nullopt;
  // IXP peering LANs are checked first: they are deliberately absent from
  // the RIB (CAIDA-style tagging).
  if (const auto ixp = ixp_.lookup(addr)) {
    return Resolution{*ixp, ResolutionSource::Rib, true};
  }
  if (const auto asn = rib_.lookup(addr)) {
    return Resolution{*asn, ResolutionSource::Rib, false};
  }
  if (const auto asn = whois_.lookup(addr)) {
    return Resolution{*asn, ResolutionSource::Whois, false};
  }
  return std::nullopt;
}

}  // namespace cloudrtt::analysis

#include "analysis/resolve.hpp"

#include "obs/metrics.hpp"

namespace cloudrtt::analysis {

namespace {

/// Resolver counters, resolved once: resolve() runs for every traceroute hop
/// of every analysis, so no per-call Registry lookups.
struct ResolveMetrics {
  obs::Counter& lookups;
  obs::Counter& misses;
  obs::Counter& whois_fallbacks;
  obs::Counter& ixp_hits;

  static ResolveMetrics& instance() {
    obs::Registry& r = obs::Registry::global();
    // lint:allow(local-static): bundle of atomic-counter references; magic-static init is thread-safe and the counters are lock-free
    static ResolveMetrics metrics{
        r.counter("resolve.lookups_total"),
        r.counter("resolve.misses_total"),
        r.counter("resolve.whois_fallbacks_total"),
        r.counter("resolve.ixp_hits_total"),
    };
    return metrics;
  }
};

}  // namespace

IpToAsn IpToAsn::from_world(const topology::World& world) {
  IpToAsn resolver;
  for (const topology::RibEntry& entry : world.rib_dump()) {
    resolver.add_rib(entry.prefix, entry.asn);
  }
  for (const topology::RibEntry& entry : world.whois_entries()) {
    resolver.add_whois(entry.prefix, entry.asn);
  }
  for (const topology::RibEntry& entry : world.ixp_prefixes()) {
    resolver.add_ixp(entry.prefix, entry.asn);
  }
  return resolver;
}

void IpToAsn::add_rib(const net::Ipv4Prefix& prefix, topology::Asn asn) {
  rib_.insert(prefix, asn);
}

void IpToAsn::add_whois(const net::Ipv4Prefix& prefix, topology::Asn asn) {
  whois_.insert(prefix, asn);
}

void IpToAsn::add_ixp(const net::Ipv4Prefix& prefix, topology::Asn asn) {
  ixp_.insert(prefix, asn);
  ixp_asns_.insert(asn);
}

std::optional<Resolution> IpToAsn::resolve(net::Ipv4Address addr) const {
  ResolveMetrics& metrics = ResolveMetrics::instance();
  metrics.lookups.inc();
  if (net::is_private(addr)) return std::nullopt;
  // IXP peering LANs are checked first: they are deliberately absent from
  // the RIB (CAIDA-style tagging).
  if (const auto ixp = ixp_.lookup(addr)) {
    metrics.ixp_hits.inc();
    return Resolution{*ixp, ResolutionSource::Rib, true};
  }
  if (const auto asn = rib_.lookup(addr)) {
    return Resolution{*asn, ResolutionSource::Rib, false};
  }
  if (const auto asn = whois_.lookup(addr)) {
    metrics.whois_fallbacks.inc();
    return Resolution{*asn, ResolutionSource::Whois, false};
  }
  metrics.misses.inc();
  return std::nullopt;
}

}  // namespace cloudrtt::analysis

#include <algorithm>
#include <map>
#include <unordered_map>

#include "analysis/experiments.hpp"
#include "analysis/nearest.hpp"

namespace cloudrtt::analysis {

namespace {

/// Experiments rebuild the index on demand; construction is a single linear
/// pass over the pings, which keeps the functions self-contained and safe
/// when several studies live in one process (tests).
[[nodiscard]] NearestIndex nearest_index_for(const measure::Dataset& data) {
  return NearestIndex{data};
}

}  // namespace

std::string_view latency_bucket(double median_ms) {
  if (median_ms < 30.0) return "<30";
  if (median_ms < 60.0) return "30-60";
  if (median_ms < 100.0) return "60-100";
  if (median_ms < 250.0) return "100-250";
  return ">250";
}

std::vector<CountryLatencyRow> fig3_country_latency(const StudyView& view) {
  const NearestIndex& index = nearest_index_for(*view.sc_data);
  std::map<std::string_view, std::vector<double>> per_country;
  std::unordered_map<std::string_view, const geo::CountryInfo*> infos;
  for (const probes::Probe* probe : index.probes()) {
    const auto samples =
        index.samples_to_nearest(probe, probe->country->continent);
    if (samples.empty()) continue;
    auto& bucket = per_country[probe->country->code];
    bucket.insert(bucket.end(), samples.begin(), samples.end());
    infos.emplace(probe->country->code, probe->country);
  }
  std::vector<CountryLatencyRow> rows;
  rows.reserve(per_country.size());
  for (auto& [code, samples] : per_country) {
    CountryLatencyRow row;
    row.country = code;
    row.name = infos.at(code)->name;
    row.continent = infos.at(code)->continent;
    row.samples = samples.size();
    row.median_ms = util::median(std::move(samples));
    row.bucket = latency_bucket(row.median_ms);
    rows.push_back(row);
  }
  return rows;
}

std::vector<util::Series> fig4_continent_rtt(const StudyView& view) {
  const NearestIndex& index = nearest_index_for(*view.sc_data);
  std::vector<util::Series> series;
  for (const geo::Continent c : geo::kAllContinents) {
    series.push_back(util::Series{std::string{geo::to_code(c)}, {}});
  }
  for (const probes::Probe* probe : index.probes()) {
    const auto samples =
        index.samples_to_nearest(probe, probe->country->continent);
    auto& values = series[geo::index_of(probe->country->continent)].values;
    values.insert(values.end(), samples.begin(), samples.end());
  }
  return series;
}

std::vector<double> quantile_differences(std::vector<double> a, std::vector<double> b,
                                         std::size_t points) {
  std::vector<double> diffs;
  if (a.empty() || b.empty() || points == 0) return diffs;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  diffs.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    diffs.push_back(util::quantile_sorted(a, q) - util::quantile_sorted(b, q));
  }
  return diffs;
}

std::vector<util::Series> fig5_platform_diff(const StudyView& view) {
  std::vector<util::Series> series;
  if (!view.has_atlas()) return series;
  const NearestIndex& sc = nearest_index_for(*view.sc_data);
  const NearestIndex& atlas = nearest_index_for(*view.atlas_data);

  std::array<std::vector<double>, geo::kContinentCount> sc_samples;
  std::array<std::vector<double>, geo::kContinentCount> atlas_samples;
  const auto collect = [](const NearestIndex& index, auto& out) {
    for (const probes::Probe* probe : index.probes()) {
      const auto samples =
          index.samples_to_nearest(probe, probe->country->continent);
      auto& bucket = out[geo::index_of(probe->country->continent)];
      bucket.insert(bucket.end(), samples.begin(), samples.end());
    }
  };
  collect(sc, sc_samples);
  collect(atlas, atlas_samples);

  for (const geo::Continent c : geo::kAllContinents) {
    const std::size_t i = geo::index_of(c);
    series.push_back(util::Series{
        std::string{geo::to_code(c)},
        quantile_differences(sc_samples[i], atlas_samples[i])});
  }
  return series;
}

std::vector<InterContinentalCell> fig6_intercontinental(const StudyView& view,
                                                        geo::Continent src) {
  static constexpr std::array<std::string_view, 8> kAfrica{
      "DZ", "EG", "ET", "KE", "MA", "SN", "TN", "ZA"};
  static constexpr std::array<std::string_view, 8> kSouthAmerica{
      "AR", "BO", "BR", "CL", "CO", "EC", "PE", "VE"};
  const auto countries =
      src == geo::Continent::Africa ? kAfrica : kSouthAmerica;
  std::vector<geo::Continent> targets;
  if (src == geo::Continent::Africa) {
    targets = {geo::Continent::Europe, geo::Continent::NorthAmerica,
               geo::Continent::Africa};
  } else {
    targets = {geo::Continent::NorthAmerica, geo::Continent::SouthAmerica};
  }

  const NearestIndex& index = nearest_index_for(*view.sc_data);
  std::vector<InterContinentalCell> cells;
  for (const std::string_view country : countries) {
    for (const geo::Continent dst : targets) {
      std::vector<double> samples;
      for (const probes::Probe* probe : index.probes()) {
        if (probe->country->code != country) continue;
        const auto s = index.samples_to_nearest(probe, dst);
        samples.insert(samples.end(), s.begin(), s.end());
      }
      InterContinentalCell cell;
      cell.src_country = country;
      cell.dst_continent = dst;
      cell.summary = util::summarize(std::move(samples));
      cells.push_back(cell);
    }
  }
  return cells;
}

std::vector<ProtocolCompareRow> fig15_protocols(const StudyView& view) {
  std::array<std::vector<double>, geo::kContinentCount> tcp;
  std::array<std::vector<double>, geo::kContinentCount> icmp;
  for (const measure::PingRecord& ping : view.sc_data->pings) {
    if (ping.protocol == measure::Protocol::Tcp) {
      tcp[geo::index_of(ping.probe->country->continent)].push_back(ping.rtt_ms);
    }
  }
  for (const measure::TraceRef& trace : view.sc_data->traces) {
    if (trace.completed) {
      icmp[geo::index_of(trace.probe->country->continent)].push_back(
          trace.end_to_end_ms);
    }
  }
  std::vector<ProtocolCompareRow> rows;
  for (const geo::Continent c : geo::kAllContinents) {
    ProtocolCompareRow row;
    row.continent = c;
    row.tcp = util::summarize(std::move(tcp[geo::index_of(c)]));
    row.icmp = util::summarize(std::move(icmp[geo::index_of(c)]));
    rows.push_back(row);
  }
  return rows;
}

std::vector<util::Series> fig16_city_asn_diff(const StudyView& view) {
  std::vector<util::Series> series;
  if (!view.has_atlas()) return series;
  const NearestIndex& sc = nearest_index_for(*view.sc_data);
  const NearestIndex& atlas = nearest_index_for(*view.atlas_data);

  // First-hop ASN per probe, inferred from its traceroutes (the paper's
  // <city, ASN> key). One trace per probe suffices: the serving ISP is
  // stable.
  const auto first_hop_asn =
      [&](const measure::Dataset& data) {
        std::unordered_map<const probes::Probe*, topology::Asn> out;
        for (const measure::TraceRef& trace : data.traces) {
          if (out.contains(trace.probe)) continue;
          for (const measure::HopRecord& hop : trace.hops) {
            if (!hop.responded || net::is_private(hop.ip)) continue;
            if (const auto res = view.resolver->resolve(hop.ip)) {
              out.emplace(trace.probe, res->asn);
            }
            break;
          }
        }
        return out;
      };
  const auto sc_asn = first_hop_asn(*view.sc_data);
  const auto atlas_asn = first_hop_asn(*view.atlas_data);

  // Bucket samples by <city, ASN> per platform.
  using Key = std::pair<std::string_view, topology::Asn>;
  std::map<Key, std::vector<double>> sc_buckets;
  std::map<Key, std::vector<double>> atlas_buckets;
  const auto fill = [](const NearestIndex& index, const auto& asn_of, auto& buckets) {
    for (const probes::Probe* probe : index.probes()) {
      const auto it = asn_of.find(probe);
      if (it == asn_of.end()) continue;
      const auto samples =
          index.samples_to_nearest(probe, probe->country->continent);
      if (samples.empty()) continue;
      auto& bucket = buckets[Key{probe->city->name, it->second}];
      bucket.insert(bucket.end(), samples.begin(), samples.end());
    }
  };
  fill(sc, sc_asn, sc_buckets);
  fill(atlas, atlas_asn, atlas_buckets);

  // Matched pairs, grouped by continent; the paper only reports AS/EU/NA.
  std::array<std::vector<double>, geo::kContinentCount> diffs;
  for (const auto& [key, sc_samples] : sc_buckets) {
    const auto atlas_it = atlas_buckets.find(key);
    if (atlas_it == atlas_buckets.end()) continue;
    if (sc_samples.size() < 5 || atlas_it->second.size() < 5) continue;
    const geo::CountryInfo& country =
        geo::CountryTable::instance().at(key.first.substr(0, 2));
    const auto d = quantile_differences(sc_samples, atlas_it->second, 50);
    auto& bucket = diffs[geo::index_of(country.continent)];
    bucket.insert(bucket.end(), d.begin(), d.end());
  }
  for (const geo::Continent c : {geo::Continent::Asia, geo::Continent::Europe,
                                 geo::Continent::NorthAmerica}) {
    series.push_back(util::Series{std::string{geo::to_code(c)},
                                  std::move(diffs[geo::index_of(c)])});
  }
  return series;
}

MethodologyStats sec33_stats(const StudyView& view) {
  MethodologyStats stats;
  stats.ping_count = view.sc_data->pings.size();
  stats.trace_count = view.sc_data->traces.size();
  stats.required_samples_per_country =
      util::required_sample_size(util::z_score_for_confidence(0.95), 0.5, 0.02);

  std::array<std::size_t, geo::kContinentCount> counts{};
  std::vector<double> tcp;
  std::vector<double> icmp;
  for (const measure::PingRecord& ping : view.sc_data->pings) {
    ++counts[geo::index_of(ping.probe->country->continent)];
    if (ping.protocol == measure::Protocol::Tcp) tcp.push_back(ping.rtt_ms);
  }
  std::size_t whois_hops = 0;
  std::size_t resolved_hops = 0;
  for (const measure::TraceRef& trace : view.sc_data->traces) {
    if (trace.completed) icmp.push_back(trace.end_to_end_ms);
    for (const measure::HopRecord& hop : trace.hops) {
      if (!hop.responded) continue;
      if (const auto res = view.resolver->resolve(hop.ip)) {
        ++resolved_hops;
        if (res->source == ResolutionSource::Whois) ++whois_hops;
      }
    }
  }
  const double total = static_cast<double>(stats.ping_count);
  for (std::size_t i = 0; i < geo::kContinentCount; ++i) {
    stats.continent_sample_share[i] =
        total > 0 ? static_cast<double>(counts[i]) / total * 100.0 : 0.0;
  }
  stats.tcp_median_ms = util::median(std::move(tcp));
  stats.icmp_median_ms = util::median(std::move(icmp));
  if (stats.icmp_median_ms > 0.0) {
    stats.tcp_vs_icmp_gap_pct = (stats.icmp_median_ms - stats.tcp_median_ms) /
                                stats.icmp_median_ms * 100.0;
  }
  if (resolved_hops > 0) {
    stats.whois_fallback_share_pct = static_cast<double>(whois_hops) /
                                     static_cast<double>(resolved_hops) * 100.0;
  }
  return stats;
}

}  // namespace cloudrtt::analysis

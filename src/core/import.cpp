#include "core/import.hpp"

#include <charconv>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cloud/region.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace cloudrtt::core {

namespace {

using ProbeIndex = std::unordered_map<std::uint32_t, const probes::Probe*>;
using RegionIndex = std::unordered_map<std::string, const cloud::RegionInfo*>;

ProbeIndex build_probe_index(const probes::ProbeFleet* sc,
                             const probes::ProbeFleet* atlas) {
  ProbeIndex index;
  for (const probes::ProbeFleet* fleet : {sc, atlas}) {
    if (fleet == nullptr) continue;
    for (const probes::Probe& probe : fleet->probes()) {
      index.emplace(probe.id, &probe);
    }
  }
  return index;
}

RegionIndex build_region_index() {
  RegionIndex index;
  for (const cloud::RegionInfo& region : cloud::RegionCatalog::instance().all()) {
    std::string key{cloud::provider_info(region.provider).ticker};
    key += '/';
    key += region.region_name;
    index.emplace(std::move(key), &region);
  }
  return index;
}

template <typename T>
[[nodiscard]] bool parse_number(const std::string& text, T& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

[[nodiscard]] bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

[[nodiscard]] std::optional<topology::InterconnectMode> mode_from_string(
    std::string_view text) {
  using topology::InterconnectMode;
  for (const InterconnectMode mode :
       {InterconnectMode::Direct, InterconnectMode::DirectIxp,
        InterconnectMode::OneAs, InterconnectMode::Public}) {
    if (text == topology::to_string(mode)) return mode;
  }
  return std::nullopt;
}

void record_error(ImportStats& stats, std::size_t line_no, std::string message) {
  ++stats.skipped;
  if (stats.errors.size() < ImportStats::kMaxErrors) {
    stats.errors.push_back(ImportError{line_no, std::move(message)});
  }
}

/// Export the *total* rejected-row count — `errors` retains only the first
/// kMaxErrors, but the metric (and error_summary) must not under-report a
/// wholly corrupt file.
void count_row_errors(const ImportStats& stats) {
  if (stats.skipped == 0) return;
  obs::Registry::global()
      .counter("import.row_errors_total",
               "input rows rejected during dataset import (all of them, "
               "including those past the retained-error cap)")
      .inc(stats.skipped);
}

constexpr std::string_view kTrailerPrefix = "#cloudrtt-integrity ";

/// Streaming FNV-1a over the data rows, mirrored by core/export's RowSink.
struct IntegrityTracker {
  std::uint64_t hash = util::kFnv1aBasis;

  void add_line(const std::string& line) {
    hash = util::fnv1a_accum(hash, line);
    hash = util::fnv1a_accum(hash, "\n");
  }

  /// Validate a trailer line against the rows hashed so far; records the
  /// outcome (and any mismatch detail) into `stats`.
  void check_trailer(const std::string& line, std::size_t line_no,
                     ImportStats& stats) const {
    stats.trailer_present = true;
    std::string_view rest{line};
    rest.remove_prefix(kTrailerPrefix.size());
    std::uint64_t expect_rows = 0;
    std::uint64_t expect_hash = 0;
    const auto rows_pos = rest.find("rows=");
    const auto hash_pos = rest.find("fnv1a=");
    bool parsed = rows_pos != std::string_view::npos &&
                  hash_pos != std::string_view::npos;
    if (parsed) {
      const std::string_view rows_text =
          rest.substr(rows_pos + 5, rest.find(' ', rows_pos) - (rows_pos + 5));
      const std::string_view hash_text = rest.substr(hash_pos + 6);
      parsed = std::from_chars(rows_text.data(),
                               rows_text.data() + rows_text.size(), expect_rows)
                       .ec == std::errc{} &&
               std::from_chars(hash_text.data(),
                               hash_text.data() + hash_text.size(), expect_hash,
                               16)
                       .ec == std::errc{};
    }
    if (!parsed) {
      stats.trailer_ok = false;
      record_error(stats, line_no, "malformed integrity trailer");
      return;
    }
    if (expect_rows != stats.rows) {
      stats.trailer_ok = false;
      record_error(stats, line_no,
                   "integrity trailer row count mismatch: file has " +
                       std::to_string(stats.rows) + " rows, trailer says " +
                       std::to_string(expect_rows) + " (truncated?)");
      return;
    }
    if (expect_hash != hash) {
      stats.trailer_ok = false;
      record_error(stats, line_no, "integrity trailer checksum mismatch");
    }
  }
};

}  // namespace

std::string ImportStats::error_summary() const {
  if (errors.empty()) return "no detail";
  std::string summary = "line " + std::to_string(errors.front().line) + ": " +
                        errors.front().message;
  if (skipped > errors.size()) {
    summary += " (and " + std::to_string(skipped - errors.size()) +
               " more suppressed; " + std::to_string(skipped) +
               " errors total)";
  } else if (skipped > 1) {
    summary += " (" + std::to_string(skipped) + " errors total)";
  }
  return summary;
}

ImportStats import_pings_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                             const probes::ProbeFleet* atlas_fleet,
                             measure::Dataset& out) {
  ImportStats stats;
  const ProbeIndex probe_index = build_probe_index(sc_fleet, atlas_fleet);
  const RegionIndex regions = build_region_index();
  IntegrityTracker integrity;

  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    if (line.starts_with(kTrailerPrefix)) {
      integrity.check_trailer(line, line_no, stats);
      continue;
    }
    if (stats.trailer_present) {
      stats.trailer_ok = false;
      record_error(stats, line_no, "data row after integrity trailer");
      continue;
    }
    ++stats.rows;
    integrity.add_line(line);
    const auto cells = util::parse_csv_row(line);
    // probe_id, platform, country, continent, isp_asn, provider, region,
    // protocol, rtt_ms, day, slot
    if (cells.size() != 11) {
      record_error(stats, line_no,
                   "expected 11 fields, got " + std::to_string(cells.size()));
      continue;
    }
    std::uint32_t probe_id = 0;
    std::uint32_t day = 0;
    unsigned slot = 0;
    double rtt = 0.0;
    if (!parse_number(cells[0], probe_id)) {
      record_error(stats, line_no, "bad probe_id '" + cells[0] + "'");
      continue;
    }
    if (!parse_double(cells[8], rtt)) {
      record_error(stats, line_no, "bad rtt_ms '" + cells[8] + "'");
      continue;
    }
    if (!parse_number(cells[9], day)) {
      record_error(stats, line_no, "bad day '" + cells[9] + "'");
      continue;
    }
    if (!parse_number(cells[10], slot) || slot > 5) {
      record_error(stats, line_no, "bad slot '" + cells[10] + "'");
      continue;
    }
    const auto probe_it = probe_index.find(probe_id);
    if (probe_it == probe_index.end()) {
      record_error(stats, line_no, "unknown probe id " + cells[0]);
      continue;
    }
    const auto region_it = regions.find(cells[5] + "/" + cells[6]);
    if (region_it == regions.end()) {
      record_error(stats, line_no,
                   "unknown region '" + cells[5] + "/" + cells[6] + "'");
      continue;
    }
    measure::PingRecord record;
    record.probe = probe_it->second;
    record.region = region_it->second;
    record.protocol =
        cells[7] == "ICMP" ? measure::Protocol::Icmp : measure::Protocol::Tcp;
    record.rtt_ms = rtt;
    record.day = day;
    record.slot = static_cast<std::uint8_t>(slot);
    out.pings.push_back(record);
    ++stats.imported;
  }
  count_row_errors(stats);
  return stats;
}

ImportStats import_traces_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                              const probes::ProbeFleet* atlas_fleet,
                              measure::Dataset& out) {
  ImportStats stats;
  const ProbeIndex probe_index = build_probe_index(sc_fleet, atlas_fleet);
  const RegionIndex regions = build_region_index();
  IntegrityTracker integrity;

  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  bool has_true_mode = false;
  std::string current_trace_id;
  bool current_valid = false;
  measure::TraceRecord current;

  const auto flush = [&] {
    if (current_valid && !current.hops.empty()) {
      out.traces.push_back(std::move(current));
      ++stats.imported;
    }
    current = measure::TraceRecord{};
    current_valid = false;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (header) {
      header = false;
      const auto columns = util::parse_csv_row(line);
      has_true_mode = !columns.empty() && columns.back() == "true_mode";
      continue;
    }
    if (line.empty()) continue;
    if (line.starts_with(kTrailerPrefix)) {
      integrity.check_trailer(line, line_no, stats);
      continue;
    }
    if (stats.trailer_present) {
      stats.trailer_ok = false;
      record_error(stats, line_no, "data row after integrity trailer");
      continue;
    }
    ++stats.rows;
    integrity.add_line(line);
    const auto cells = util::parse_csv_row(line);
    // trace_id, probe_id, provider, region, target_ip, day, slot, completed,
    // end_to_end_ms, ttl, responded, hop_ip, hop_rtt_ms[, true_mode]
    const std::size_t expected = has_true_mode ? 14 : 13;
    if (cells.size() != expected) {
      record_error(stats, line_no,
                   "expected " + std::to_string(expected) + " fields, got " +
                       std::to_string(cells.size()));
      continue;
    }
    if (cells[0] != current_trace_id) {
      flush();
      current_trace_id = cells[0];
      std::uint32_t probe_id = 0;
      std::uint32_t day = 0;
      unsigned slot = 0;
      double e2e = 0.0;
      const auto target = net::Ipv4Address::parse(cells[4]);
      if (!parse_number(cells[1], probe_id) || !parse_number(cells[5], day) ||
          !parse_number(cells[6], slot) || slot > 5 ||
          !parse_double(cells[8], e2e) || !target) {
        record_error(stats, line_no,
                     "bad trace fields for trace_id '" + cells[0] + "'");
        continue;
      }
      const auto probe_it = probe_index.find(probe_id);
      const auto region_it = regions.find(cells[2] + "/" + cells[3]);
      if (probe_it == probe_index.end() || region_it == regions.end()) {
        record_error(stats, line_no,
                     "unknown probe/region for trace_id '" + cells[0] + "'");
        continue;
      }
      current.probe = probe_it->second;
      current.region = region_it->second;
      current.target_ip = *target;
      current.day = day;
      current.slot = static_cast<std::uint8_t>(slot);
      current.completed = cells[7] == "1";
      current.end_to_end_ms = e2e;
      if (has_true_mode) {
        const auto mode = mode_from_string(cells[13]);
        if (!mode) {
          record_error(stats, line_no, "bad true_mode '" + cells[13] + "'");
          continue;
        }
        current.true_mode = *mode;
      }
      current_valid = true;
    }
    if (!current_valid) {
      record_error(stats, line_no,
                   "hop row for unparseable trace_id '" + cells[0] + "'");
      continue;
    }
    measure::HopRecord hop;
    unsigned ttl = 0;
    if (!parse_number(cells[9], ttl) || ttl == 0 || ttl > 255) {
      record_error(stats, line_no, "bad ttl '" + cells[9] + "'");
      continue;
    }
    hop.ttl = static_cast<std::uint8_t>(ttl);
    hop.responded = cells[10] == "1";
    if (hop.responded) {
      const auto ip = net::Ipv4Address::parse(cells[11]);
      double rtt = 0.0;
      if (!ip || !parse_double(cells[12], rtt)) {
        record_error(stats, line_no, "bad hop ip/rtt at ttl " + cells[9]);
        continue;
      }
      hop.ip = *ip;
      hop.rtt_ms = rtt;
    }
    current.hops.push_back(hop);
  }
  flush();
  count_row_errors(stats);
  return stats;
}

}  // namespace cloudrtt::core

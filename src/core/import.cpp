#include "core/import.hpp"

#include <charconv>
#include <istream>
#include <string>
#include <unordered_map>

#include "cloud/region.hpp"
#include "util/text.hpp"

namespace cloudrtt::core {

namespace {

using ProbeIndex = std::unordered_map<std::uint32_t, const probes::Probe*>;
using RegionIndex = std::unordered_map<std::string, const cloud::RegionInfo*>;

ProbeIndex build_probe_index(const probes::ProbeFleet* sc,
                             const probes::ProbeFleet* atlas) {
  ProbeIndex index;
  for (const probes::ProbeFleet* fleet : {sc, atlas}) {
    if (fleet == nullptr) continue;
    for (const probes::Probe& probe : fleet->probes()) {
      index.emplace(probe.id, &probe);
    }
  }
  return index;
}

RegionIndex build_region_index() {
  RegionIndex index;
  for (const cloud::RegionInfo& region : cloud::RegionCatalog::instance().all()) {
    std::string key{cloud::provider_info(region.provider).ticker};
    key += '/';
    key += region.region_name;
    index.emplace(std::move(key), &region);
  }
  return index;
}

template <typename T>
[[nodiscard]] bool parse_number(const std::string& text, T& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

[[nodiscard]] bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

ImportStats import_pings_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                             const probes::ProbeFleet* atlas_fleet,
                             measure::Dataset& out) {
  ImportStats stats;
  const ProbeIndex probes = build_probe_index(sc_fleet, atlas_fleet);
  const RegionIndex regions = build_region_index();

  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    ++stats.rows;
    const auto cells = util::parse_csv_row(line);
    // probe_id, platform, country, continent, isp_asn, provider, region,
    // protocol, rtt_ms, day, slot
    if (cells.size() != 11) {
      ++stats.skipped;
      continue;
    }
    std::uint32_t probe_id = 0;
    std::uint32_t day = 0;
    unsigned slot = 0;
    double rtt = 0.0;
    if (!parse_number(cells[0], probe_id) || !parse_double(cells[8], rtt) ||
        !parse_number(cells[9], day) || !parse_number(cells[10], slot) ||
        slot > 5) {
      ++stats.skipped;
      continue;
    }
    const auto probe_it = probes.find(probe_id);
    const auto region_it = regions.find(cells[5] + "/" + cells[6]);
    if (probe_it == probes.end() || region_it == regions.end()) {
      ++stats.skipped;
      continue;
    }
    measure::PingRecord record;
    record.probe = probe_it->second;
    record.region = region_it->second;
    record.protocol =
        cells[7] == "ICMP" ? measure::Protocol::Icmp : measure::Protocol::Tcp;
    record.rtt_ms = rtt;
    record.day = day;
    record.slot = static_cast<std::uint8_t>(slot);
    out.pings.push_back(record);
    ++stats.imported;
  }
  return stats;
}

ImportStats import_traces_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                              const probes::ProbeFleet* atlas_fleet,
                              measure::Dataset& out) {
  ImportStats stats;
  const ProbeIndex probes = build_probe_index(sc_fleet, atlas_fleet);
  const RegionIndex regions = build_region_index();

  std::string line;
  bool header = true;
  std::string current_trace_id;
  bool current_valid = false;
  measure::TraceRecord current;

  const auto flush = [&] {
    if (current_valid && !current.hops.empty()) {
      out.traces.push_back(std::move(current));
      ++stats.imported;
    }
    current = measure::TraceRecord{};
    current_valid = false;
  };

  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    ++stats.rows;
    const auto cells = util::parse_csv_row(line);
    // trace_id, probe_id, provider, region, target_ip, day, slot, completed,
    // end_to_end_ms, ttl, responded, hop_ip, hop_rtt_ms
    if (cells.size() != 13) {
      ++stats.skipped;
      continue;
    }
    if (cells[0] != current_trace_id) {
      flush();
      current_trace_id = cells[0];
      std::uint32_t probe_id = 0;
      std::uint32_t day = 0;
      unsigned slot = 0;
      double e2e = 0.0;
      const auto target = net::Ipv4Address::parse(cells[4]);
      if (!parse_number(cells[1], probe_id) || !parse_number(cells[5], day) ||
          !parse_number(cells[6], slot) || slot > 5 ||
          !parse_double(cells[8], e2e) || !target) {
        ++stats.skipped;
        continue;
      }
      const auto probe_it = probes.find(probe_id);
      const auto region_it = regions.find(cells[2] + "/" + cells[3]);
      if (probe_it == probes.end() || region_it == regions.end()) {
        ++stats.skipped;
        continue;
      }
      current.probe = probe_it->second;
      current.region = region_it->second;
      current.target_ip = *target;
      current.day = day;
      current.slot = static_cast<std::uint8_t>(slot);
      current.completed = cells[7] == "1";
      current.end_to_end_ms = e2e;
      current_valid = true;
    }
    if (!current_valid) {
      ++stats.skipped;
      continue;
    }
    measure::HopRecord hop;
    unsigned ttl = 0;
    if (!parse_number(cells[9], ttl) || ttl == 0 || ttl > 255) {
      ++stats.skipped;
      continue;
    }
    hop.ttl = static_cast<std::uint8_t>(ttl);
    hop.responded = cells[10] == "1";
    if (hop.responded) {
      const auto ip = net::Ipv4Address::parse(cells[11]);
      double rtt = 0.0;
      if (!ip || !parse_double(cells[12], rtt)) {
        ++stats.skipped;
        continue;
      }
      hop.ip = *ip;
      hop.rtt_ms = rtt;
    }
    current.hops.push_back(hop);
  }
  flush();
  return stats;
}

}  // namespace cloudrtt::core

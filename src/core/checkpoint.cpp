#include "core/checkpoint.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unordered_map>
#include <utility>

#include "core/export.hpp"
#include "core/import.hpp"
#include "store/io_env.hpp"
#include "store/salvage.hpp"
#include "util/check.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cloudrtt::core {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] fs::path manifest_path(const fs::path& dir, std::string_view p) {
  return dir / (std::string{p} + ".manifest");
}
[[nodiscard]] fs::path pings_path(const fs::path& dir, std::string_view p) {
  return dir / (std::string{p} + ".pings.csv");
}
[[nodiscard]] fs::path traces_path(const fs::path& dir, std::string_view p) {
  return dir / (std::string{p} + ".traces.csv");
}

/// Write `content` to `target` via a .tmp sibling + rename (atomic on POSIX
/// within one filesystem). Returns empty string or the failure description.
[[nodiscard]] std::string write_atomic(const fs::path& target,
                                       const std::string& content) {
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return "cannot open " + tmp.string() + " for writing";
    out << content;
    out.flush();
    if (!out) return "write failed for " + tmp.string();
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) return "rename to " + target.string() + " failed: " + ec.message();
  return {};
}

}  // namespace

bool checkpoint_exists(const fs::path& dir, std::string_view platform) {
  std::error_code ec;
  return fs::is_regular_file(manifest_path(dir, platform), ec);
}

std::string save_checkpoint(const fs::path& dir, const CheckpointMeta& meta,
                            const measure::Dataset& data) {
  CLOUDRTT_CHECK(!meta.platform.empty(),
                 "checkpoint platform label must be non-empty");
  CLOUDRTT_CHECK(meta.state.next_day > 0 || data.pings.empty(),
                 "checkpoint claims day 0 but already carries ",
                 data.pings.size(), " pings");
  obs::Span phase = obs::span("core.checkpoint.save");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return "cannot create " + dir.string() + ": " + ec.message();

  ExportOptions options;
  options.integrity_trailer = true;
  options.roundtrip_doubles = true;
  options.ground_truth = true;

  std::ostringstream pings;
  export_pings_csv(pings, data, options);
  if (std::string err = write_atomic(pings_path(dir, meta.platform), pings.str());
      !err.empty()) {
    return err;
  }
  std::ostringstream traces;
  export_traces_csv(traces, data, options);
  if (std::string err =
          write_atomic(traces_path(dir, meta.platform), traces.str());
      !err.empty()) {
    return err;
  }

  // Manifest last: its presence commits the checkpoint.
  std::ostringstream manifest;
  manifest << "format=2\n"
           << "platform=" << meta.platform << '\n'
           << "seed=" << meta.seed << '\n'
           << "fault_profile=" << meta.fault_profile << '\n'
           << "next_day=" << meta.state.next_day << '\n'
           << "cursor=" << meta.state.cursor << '\n'
           << "pings=" << data.pings.size() << '\n'
           << "traces=" << data.traces.size() << '\n';
  if (std::string err =
          write_atomic(manifest_path(dir, meta.platform), manifest.str());
      !err.empty()) {
    return err;
  }
  obs::Registry::global().counter("checkpoint.saves_total").inc();
  CLOUDRTT_LOG_DEBUG("checkpoint.saved", {"platform", meta.platform},
                     {"next_day", meta.state.next_day},
                     {"pings", data.pings.size()},
                     {"traces", data.traces.size()});
  return {};
}

CheckpointLoad load_checkpoint(const fs::path& dir, std::string_view platform,
                               const probes::ProbeFleet* sc_fleet,
                               const probes::ProbeFleet* atlas_fleet) {
  obs::Span phase = obs::span("core.checkpoint.load");
  CheckpointLoad result;
  result.meta.platform = std::string{platform};

  std::ifstream manifest(manifest_path(dir, platform));
  if (!manifest) {
    result.error = "missing manifest " + manifest_path(dir, platform).string();
    return result;
  }
  std::unordered_map<std::string, std::string> kv;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      result.error = "damaged manifest line: '" + line + "'";
      return result;
    }
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  const auto number = [&](const char* key, auto& out) {
    const auto it = kv.find(key);
    if (it == kv.end()) return false;
    const std::string& text = it->second;
    return std::from_chars(text.data(), text.data() + text.size(), out).ec ==
               std::errc{} &&
           !text.empty();
  };
  if (kv["format"] == "3") {
    // Streaming-store checkpoint: the dataset lives in per-lane shard files,
    // not CSVs — delegate to the store layer. Read-only: a plain load never
    // truncates torn tails (Study's resume path opens with repair).
    store::IoEnv io;
    store::OpenResult opened = store::open_store(
        dir, platform, io, sc_fleet, atlas_fleet, /*repair=*/false);
    if (!opened.ok()) {
      result.error = opened.error;
      return result;
    }
    result.meta.state = opened.state;
    result.meta.seed = opened.meta.seed;
    result.meta.fault_profile = opened.meta.fault_profile;
    result.data = std::move(opened.data);
    obs::Registry::global().counter("checkpoint.loads_total").inc();
    CLOUDRTT_LOG_INFO("checkpoint.loaded", {"platform", result.meta.platform},
                      {"format", 3},
                      {"next_day", result.meta.state.next_day},
                      {"pings", result.data.pings.size()},
                      {"traces", result.data.traces.size()});
    return result;
  }
  if (kv["format"] == "1") {
    result.error =
        "checkpoint uses legacy format=1 (router-replay quartets); router "
        "addresses are now pre-materialized at world construction, so this "
        "checkpoint cannot be resumed — re-run the campaign from scratch";
    return result;
  }
  std::uint64_t expect_pings = 0;
  std::uint64_t expect_traces = 0;
  if (kv["format"] != "2" || !number("seed", result.meta.seed) ||
      !number("next_day", result.meta.state.next_day) ||
      !number("cursor", result.meta.state.cursor) ||
      !number("pings", expect_pings) || !number("traces", expect_traces)) {
    result.error = "manifest missing or damaged fields";
    return result;
  }
  if (kv["platform"] != platform) {
    result.error = "manifest platform '" + kv["platform"] +
                   "' does not match requested '" + std::string{platform} + "'";
    return result;
  }
  result.meta.fault_profile = kv.contains("fault_profile")
                                  ? kv["fault_profile"]
                                  : std::string{"none"};

  std::ifstream pings(pings_path(dir, platform));
  if (!pings) {
    result.error = "missing " + pings_path(dir, platform).string();
    return result;
  }
  const ImportStats ping_stats =
      import_pings_csv(pings, sc_fleet, atlas_fleet, result.data);
  if (!ping_stats.trailer_present) {
    result.error = "pings checkpoint has no integrity trailer (truncated?)";
    return result;
  }
  if (!ping_stats.clean()) {
    result.error = "pings checkpoint corrupt: " + ping_stats.error_summary();
    return result;
  }
  if (result.data.pings.size() != expect_pings) {
    result.error = "pings checkpoint holds " +
                   std::to_string(result.data.pings.size()) +
                   " records, manifest expects " + std::to_string(expect_pings);
    return result;
  }

  std::ifstream traces(traces_path(dir, platform));
  if (!traces) {
    result.error = "missing " + traces_path(dir, platform).string();
    return result;
  }
  const ImportStats trace_stats =
      import_traces_csv(traces, sc_fleet, atlas_fleet, result.data);
  if (!trace_stats.trailer_present) {
    result.error = "traces checkpoint has no integrity trailer (truncated?)";
    return result;
  }
  if (!trace_stats.clean()) {
    result.error = "traces checkpoint corrupt: " + trace_stats.error_summary();
    return result;
  }
  if (result.data.traces.size() != expect_traces) {
    result.error = "traces checkpoint holds " +
                   std::to_string(result.data.traces.size()) +
                   " records, manifest expects " + std::to_string(expect_traces);
    return result;
  }

  obs::Registry::global().counter("checkpoint.loads_total").inc();
  CLOUDRTT_LOG_INFO("checkpoint.loaded", {"platform", result.meta.platform},
                    {"next_day", result.meta.state.next_day},
                    {"pings", result.data.pings.size()},
                    {"traces", result.data.traces.size()});
  return result;
}

}  // namespace cloudrtt::core

#pragma once
// Dataset export: tidy CSVs of the collected pings and traceroutes, in the
// spirit of the paper's published dataset. Checkpoint files reuse the same
// writers with stricter options: an integrity trailer so a truncated file is
// detected on import, round-trip double formatting so a resumed campaign is
// bit-identical to an uninterrupted one, and the ground-truth columns that
// the human-facing CSVs deliberately omit.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "measure/records.hpp"

namespace cloudrtt::core {

struct ExportOptions {
  /// Append a `#cloudrtt-integrity rows=<N> fnv1a=<16 hex>` trailer line
  /// covering every data row, so import can detect truncation/corruption.
  bool integrity_trailer = false;
  /// Emit doubles in shortest round-trip form (std::to_chars) instead of the
  /// human-friendly 3-decimal fixed point. Required for lossless reload.
  bool roundtrip_doubles = false;
  /// Traces only: append the `true_mode` ground-truth column so a reloaded
  /// dataset compares equal to the in-memory one (checkpoints need this; the
  /// published-dataset flavour keeps ground truth out of the CSV).
  bool ground_truth = false;
};

/// One row per ping: probe id, platform, country, continent, ISP ASN,
/// provider, region, protocol, rtt_ms, day.
void export_pings_csv(std::ostream& out, const measure::Dataset& data);
void export_pings_csv(std::ostream& out, const measure::Dataset& data,
                      const ExportOptions& options);

/// One row per traceroute hop: trace id, probe id, provider, region, target
/// ip, day, completed flag, end-to-end RTT, ttl, responded, hop ip, hop rtt.
void export_traces_csv(std::ostream& out, const measure::Dataset& data);
void export_traces_csv(std::ostream& out, const measure::Dataset& data,
                       const ExportOptions& options);

/// FNV-1a (64-bit) over the full exported dataset: the ping CSV followed by
/// the trace CSV, both with round-trip doubles and ground truth so every
/// collected bit is covered. Two runs are reproductions of each other iff
/// their hashes match — this is what `cloudrtt study --dataset-hash` prints
/// and what the determinism CI gate compares. Streams through a hashing
/// streambuf, so no serialized copy of the dataset is materialised.
[[nodiscard]] std::uint64_t dataset_hash(const measure::Dataset& data);

/// The hash as the canonical 16-digit zero-padded lower-case hex string.
[[nodiscard]] std::string format_dataset_hash(std::uint64_t hash);

}  // namespace cloudrtt::core

#pragma once
// Dataset export: tidy CSVs of the collected pings and traceroutes, in the
// spirit of the paper's published dataset.

#include <iosfwd>

#include "measure/records.hpp"

namespace cloudrtt::core {

/// One row per ping: probe id, platform, country, continent, ISP ASN,
/// provider, region, protocol, rtt_ms, day.
void export_pings_csv(std::ostream& out, const measure::Dataset& data);

/// One row per traceroute hop: trace id, probe id, provider, region, target
/// ip, day, completed flag, end-to-end RTT, ttl, responded, hop ip, hop rtt.
void export_traces_csv(std::ostream& out, const measure::Dataset& data);

}  // namespace cloudrtt::core

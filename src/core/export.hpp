#pragma once
// Dataset export: tidy CSVs of the collected pings and traceroutes, in the
// spirit of the paper's published dataset. Checkpoint files reuse the same
// writers with stricter options: an integrity trailer so a truncated file is
// detected on import, round-trip double formatting so a resumed campaign is
// bit-identical to an uninterrupted one, and the ground-truth columns that
// the human-facing CSVs deliberately omit.
//
// The writers are incremental: construct one against an output stream, feed
// it datasets chunk by chunk (a streamed run feeds one store block at a
// time), then finish(). The one-shot export_*_csv functions and the whole-
// dataset hash are thin wrappers over a single write() call.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>

#include "measure/records.hpp"
#include "probes/fleet.hpp"

namespace cloudrtt::store {
class IoEnv;
}  // namespace cloudrtt::store

namespace cloudrtt::core {

struct ExportOptions {
  /// Append a `#cloudrtt-integrity rows=<N> fnv1a=<16 hex>` trailer line
  /// covering every data row, so import can detect truncation/corruption.
  bool integrity_trailer = false;
  /// Emit doubles in shortest round-trip form (std::to_chars) instead of the
  /// human-friendly 3-decimal fixed point. Required for lossless reload.
  bool roundtrip_doubles = false;
  /// Traces only: append the `true_mode` ground-truth column so a reloaded
  /// dataset compares equal to the in-memory one (checkpoints need this; the
  /// published-dataset flavour keeps ground truth out of the CSV).
  bool ground_truth = false;
};

/// Incremental ping CSV writer: header on construction, one row per ping per
/// write() call, integrity trailer (when enabled) on finish(). Feeding the
/// same rows across several write() calls produces byte-identical output to
/// one call — which is what makes the streamed dataset hash equal the
/// in-memory one.
class PingCsvWriter {
 public:
  PingCsvWriter(std::ostream& out, const ExportOptions& options);
  void write(const measure::Dataset& data);
  void finish();
  [[nodiscard]] std::uint64_t rows() const { return rows_; }

 private:
  std::ostream& out_;
  ExportOptions options_;
  std::uint64_t hash_;
  std::uint64_t rows_ = 0;
};

/// Incremental trace CSV writer (one row per hop); the running trace id
/// numbers traces across every write() call.
class TraceCsvWriter {
 public:
  TraceCsvWriter(std::ostream& out, const ExportOptions& options);
  void write(const measure::Dataset& data);
  void finish();
  [[nodiscard]] std::uint64_t rows() const { return rows_; }

 private:
  std::ostream& out_;
  ExportOptions options_;
  std::uint64_t hash_;
  std::uint64_t rows_ = 0;
  std::uint64_t trace_id_ = 0;
};

/// One row per ping: probe id, platform, country, continent, ISP ASN,
/// provider, region, protocol, rtt_ms, day.
void export_pings_csv(std::ostream& out, const measure::Dataset& data);
void export_pings_csv(std::ostream& out, const measure::Dataset& data,
                      const ExportOptions& options);

/// One row per traceroute hop: trace id, probe id, provider, region, target
/// ip, day, completed flag, end-to-end RTT, ttl, responded, hop ip, hop rtt.
void export_traces_csv(std::ostream& out, const measure::Dataset& data);
void export_traces_csv(std::ostream& out, const measure::Dataset& data,
                       const ExportOptions& options);

/// FNV-1a (64-bit) over the full exported dataset: the ping CSV followed by
/// the trace CSV, both with round-trip doubles and ground truth so every
/// collected bit is covered. Two runs are reproductions of each other iff
/// their hashes match — this is what `cloudrtt study --dataset-hash` prints
/// and what the determinism CI gate compares. Streams through a hashing
/// streambuf, so no serialized copy of the dataset is materialised.
[[nodiscard]] std::uint64_t dataset_hash(const measure::Dataset& data);

/// The same hash computed straight from a format=3 store, one block of rows
/// resident at a time: two day-ordered scans over the lane files (FNV-1a is
/// sequential, and the canonical serialisation is all pings then all
/// traces). Bit-identical to dataset_hash() over the materialised dataset —
/// the streamed study's determinism gate depends on it.
struct StreamedHashResult {
  std::uint64_t hash = 0;
  std::uint64_t rows = 0;  ///< task rows hashed (ping+trace pairs)
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};
[[nodiscard]] StreamedHashResult streamed_dataset_hash(
    const std::filesystem::path& dir, std::string_view platform,
    store::IoEnv& io, const probes::ProbeFleet* sc_fleet,
    const probes::ProbeFleet* atlas_fleet);

/// The hash as the canonical 16-digit zero-padded lower-case hex string.
[[nodiscard]] std::string format_dataset_hash(std::uint64_t hash);

}  // namespace cloudrtt::core

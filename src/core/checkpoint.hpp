#pragma once
// Campaign checkpointing: after every simulated day the study can snapshot
// the dataset collected so far plus the campaign cursor, and a later process
// can resume bit-identically — the per-day RNG streams are forked from the
// (never-advanced) base seed, so the only state a resume needs is (next day,
// country cursor, rows so far). The paper's campaign ran for six months
// (§3.3); nothing that long finishes without the driver dying at least once.
//
// Layout under the checkpoint directory, one triplet per platform:
//   <platform>.manifest     key=value text, written last (commit marker)
//   <platform>.pings.csv    round-trip doubles + integrity trailer
//   <platform>.traces.csv   ditto, plus the true_mode ground-truth column
//
// Format history: format=1 checkpoints carried a fourth file,
// <platform>.routers.csv, replaying the world's then-lazy router-interface
// allocator into the resuming process. Router addresses are now
// pre-materialized deterministically at world construction (see
// topology/address_plan.hpp), so a fresh world with the same seed already
// agrees with any snapshot; format=2 drops the file, and loaders reject
// format=1 explicitly rather than silently ignoring its allocator state.
// format=3 replaces the per-day full CSV rewrite with the streaming store
// (store/shard_writer.hpp): rows spill incrementally to per-lane shard
// files and the manifest commit is O(lanes), not O(dataset).
// load_checkpoint transparently reads both 2 and 3; save_checkpoint remains
// the legacy format=2 writer (Study migrates such checkpoints to format=3
// on first resume).
//
// All writes go to a .tmp sibling first and are renamed into place, so a
// crash mid-save leaves the previous checkpoint intact; import-side trailer
// validation catches truncation of the CSVs themselves.

#include <filesystem>
#include <string>
#include <string_view>

#include "measure/campaign.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"

namespace cloudrtt::core {

/// What one campaign checkpoint remembers besides the dataset itself.
struct CheckpointMeta {
  measure::CampaignState state;  ///< next day to run + country-cycle cursor
  std::uint64_t seed = 0;        ///< study seed; resume refuses a mismatch
  std::string platform;          ///< "speedchecker" or "atlas"
  std::string fault_profile = "none";
};

/// Result of a checkpoint load. `ok()` false carries the failure reason
/// (missing files, damaged manifest, row-count/checksum mismatch, ...).
struct CheckpointLoad {
  CheckpointMeta meta;
  measure::Dataset data;
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// True when `dir` holds a committed checkpoint for `platform`.
[[nodiscard]] bool checkpoint_exists(const std::filesystem::path& dir,
                                     std::string_view platform);

/// Persist `meta` + `data` under `dir` (created if needed). Returns an empty
/// string on success, else a description of what failed.
[[nodiscard]] std::string save_checkpoint(const std::filesystem::path& dir,
                                          const CheckpointMeta& meta,
                                          const measure::Dataset& data);

/// Load and validate the `platform` checkpoint from `dir`. Probe references
/// are re-bound against the given fleets (either may be null).
[[nodiscard]] CheckpointLoad load_checkpoint(const std::filesystem::path& dir,
                                             std::string_view platform,
                                             const probes::ProbeFleet* sc_fleet,
                                             const probes::ProbeFleet* atlas_fleet);

}  // namespace cloudrtt::core

#pragma once
// Campaign checkpointing: after every simulated day the study can snapshot
// the dataset collected so far plus the campaign cursor, and a later process
// can resume bit-identically — the per-day RNG streams are forked from the
// (never-advanced) base seed, so the only state a resume needs is (next day,
// country cursor, rows so far). The paper's campaign ran for six months
// (§3.3); nothing that long finishes without the driver dying at least once.
//
// Layout under the checkpoint directory, one quartet per platform:
//   <platform>.manifest     key=value text, written last (commit marker)
//   <platform>.pings.csv    round-trip doubles + integrity trailer
//   <platform>.traces.csv   ditto, plus the true_mode ground-truth column
//   <platform>.routers.csv  lazy router-interface assignments (see
//                           World::router_assignments) — hidden allocator
//                           state a resume must replay, or traces collected
//                           after the resume point would name different
//                           interface addresses
//
// All writes go to a .tmp sibling first and are renamed into place, so a
// crash mid-save leaves the previous checkpoint intact; import-side trailer
// validation catches truncation of the CSVs themselves.

#include <filesystem>
#include <string>
#include <string_view>

#include "measure/campaign.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"

namespace cloudrtt::core {

/// What one campaign checkpoint remembers besides the dataset itself.
struct CheckpointMeta {
  measure::CampaignState state;  ///< next day to run + country-cycle cursor
  std::uint64_t seed = 0;        ///< study seed; resume refuses a mismatch
  std::string platform;          ///< "speedchecker" or "atlas"
  std::string fault_profile = "none";
};

/// Result of a checkpoint load. `ok()` false carries the failure reason
/// (missing files, damaged manifest, row-count/checksum mismatch, ...).
struct CheckpointLoad {
  CheckpointMeta meta;
  measure::Dataset data;
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// True when `dir` holds a committed checkpoint for `platform`.
[[nodiscard]] bool checkpoint_exists(const std::filesystem::path& dir,
                                     std::string_view platform);

/// Persist `meta` + `data` + `world`'s router-assignment state under `dir`
/// (created if needed). Returns an empty string on success, else a
/// description of what failed.
[[nodiscard]] std::string save_checkpoint(const std::filesystem::path& dir,
                                          const CheckpointMeta& meta,
                                          const measure::Dataset& data,
                                          const topology::World& world);

/// Load and validate the `platform` checkpoint from `dir`. Probe references
/// are re-bound against the given fleets (either may be null). When `world`
/// is non-null the saved router assignments are replayed into it; a fresh
/// world (or one whose assignments agree) is required.
[[nodiscard]] CheckpointLoad load_checkpoint(const std::filesystem::path& dir,
                                             std::string_view platform,
                                             const probes::ProbeFleet* sc_fleet,
                                             const probes::ProbeFleet* atlas_fleet,
                                             const topology::World* world);

}  // namespace cloudrtt::core

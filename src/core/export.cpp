#include "core/export.hpp"

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/text.hpp"

namespace cloudrtt::core {

void export_pings_csv(std::ostream& out, const measure::Dataset& data) {
  obs::Span phase = obs::span("core.export.pings_csv");
  util::write_csv_row(out, {"probe_id", "platform", "country", "continent",
                            "isp_asn", "provider", "region", "protocol",
                            "rtt_ms", "day", "slot"});
  for (const measure::PingRecord& ping : data.pings) {
    const probes::Probe& probe = *ping.probe;
    util::write_csv_row(
        out, {std::to_string(probe.id), std::string{to_string(probe.platform)},
              std::string{probe.country->code},
              std::string{geo::to_code(probe.country->continent)},
              std::to_string(probe.isp->asn),
              std::string{cloud::provider_info(ping.region->provider).ticker},
              std::string{ping.region->region_name},
              std::string{to_string(ping.protocol)},
              util::format_double(ping.rtt_ms, 3), std::to_string(ping.day),
              std::to_string(ping.slot)});
  }
  obs::Registry::global().counter("export.ping_rows_total").inc(data.pings.size());
}

void export_traces_csv(std::ostream& out, const measure::Dataset& data) {
  obs::Span phase = obs::span("core.export.traces_csv");
  std::uint64_t rows = 0;
  util::write_csv_row(out, {"trace_id", "probe_id", "provider", "region",
                            "target_ip", "day", "slot", "completed",
                            "end_to_end_ms", "ttl", "responded", "hop_ip",
                            "hop_rtt_ms"});
  std::size_t trace_id = 0;
  for (const measure::TraceRecord& trace : data.traces) {
    for (const measure::HopRecord& hop : trace.hops) {
      util::write_csv_row(
          out,
          {std::to_string(trace_id), std::to_string(trace.probe->id),
           std::string{cloud::provider_info(trace.region->provider).ticker},
           std::string{trace.region->region_name},
           trace.target_ip.to_string(), std::to_string(trace.day),
           std::to_string(trace.slot), trace.completed ? "1" : "0",
           util::format_double(trace.end_to_end_ms, 3), std::to_string(hop.ttl),
           hop.responded ? "1" : "0",
           hop.responded ? hop.ip.to_string() : std::string{},
           hop.responded ? util::format_double(hop.rtt_ms, 3) : std::string{}});
      ++rows;
    }
    ++trace_id;
  }
  obs::Registry::global().counter("export.trace_rows_total").inc(rows);
}

}  // namespace cloudrtt::core

#include "core/export.hpp"

#include <charconv>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace cloudrtt::core {

namespace {

using util::fnv1a_accum;
constexpr std::uint64_t kFnvBasis = util::kFnv1aBasis;

/// Row writer that optionally hashes every data row (header excluded) so the
/// integrity trailer covers exactly what import will re-hash.
class RowSink {
 public:
  RowSink(std::ostream& out, const ExportOptions& options)
      : out_(out), options_(options) {}

  void header(const std::vector<std::string>& cells) {
    util::write_csv_row(out_, cells);
  }

  void row(const std::vector<std::string>& cells) {
    if (options_.integrity_trailer) {
      std::ostringstream buffer;
      util::write_csv_row(buffer, cells);
      const std::string serialized = buffer.str();
      hash_ = fnv1a_accum(hash_, serialized);
      out_ << serialized;
    } else {
      util::write_csv_row(out_, cells);
    }
    ++rows_;
  }

  void finish() {
    if (!options_.integrity_trailer) return;
    char hex[17] = {};
    std::to_chars(hex, hex + 16, hash_, 16);
    std::string padded(16 - std::string_view{hex}.size(), '0');
    padded += hex;
    out_ << "#cloudrtt-integrity rows=" << rows_ << " fnv1a=" << padded << '\n';
  }

  [[nodiscard]] std::string fmt(double value) const {
    if (!options_.roundtrip_doubles) return util::format_double(value, 3);
    char buffer[32];
    const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
    return ec == std::errc{} ? std::string(buffer, ptr)
                             : util::format_double(value, 3);
  }

  [[nodiscard]] std::uint64_t rows() const { return rows_; }

 private:
  std::ostream& out_;
  const ExportOptions& options_;
  std::uint64_t hash_ = kFnvBasis;
  std::uint64_t rows_ = 0;
};

}  // namespace

void export_pings_csv(std::ostream& out, const measure::Dataset& data) {
  export_pings_csv(out, data, ExportOptions{});
}

void export_pings_csv(std::ostream& out, const measure::Dataset& data,
                      const ExportOptions& options) {
  obs::Span phase = obs::span("core.export.pings_csv");
  RowSink sink(out, options);
  sink.header({"probe_id", "platform", "country", "continent", "isp_asn",
               "provider", "region", "protocol", "rtt_ms", "day", "slot"});
  for (const measure::PingRecord& ping : data.pings) {
    const probes::Probe& probe = *ping.probe;
    sink.row({std::to_string(probe.id), std::string{to_string(probe.platform)},
              std::string{probe.country->code},
              std::string{geo::to_code(probe.country->continent)},
              std::to_string(probe.isp->asn),
              std::string{cloud::provider_info(ping.region->provider).ticker},
              std::string{ping.region->region_name},
              std::string{to_string(ping.protocol)}, sink.fmt(ping.rtt_ms),
              std::to_string(ping.day), std::to_string(ping.slot)});
  }
  sink.finish();
  obs::Registry::global().counter("export.ping_rows_total").inc(data.pings.size());
}

void export_traces_csv(std::ostream& out, const measure::Dataset& data) {
  export_traces_csv(out, data, ExportOptions{});
}

void export_traces_csv(std::ostream& out, const measure::Dataset& data,
                       const ExportOptions& options) {
  obs::Span phase = obs::span("core.export.traces_csv");
  RowSink sink(out, options);
  std::vector<std::string> header{"trace_id", "probe_id", "provider", "region",
                                  "target_ip", "day", "slot", "completed",
                                  "end_to_end_ms", "ttl", "responded", "hop_ip",
                                  "hop_rtt_ms"};
  if (options.ground_truth) header.emplace_back("true_mode");
  sink.header(header);
  std::size_t trace_id = 0;
  for (const measure::TraceRecord& trace : data.traces) {
    for (const measure::HopRecord& hop : trace.hops) {
      std::vector<std::string> cells{
          std::to_string(trace_id), std::to_string(trace.probe->id),
          std::string{cloud::provider_info(trace.region->provider).ticker},
          std::string{trace.region->region_name},
          trace.target_ip.to_string(), std::to_string(trace.day),
          std::to_string(trace.slot), trace.completed ? "1" : "0",
          sink.fmt(trace.end_to_end_ms), std::to_string(hop.ttl),
          hop.responded ? "1" : "0",
          hop.responded ? hop.ip.to_string() : std::string{},
          hop.responded ? sink.fmt(hop.rtt_ms) : std::string{}};
      if (options.ground_truth) {
        cells.emplace_back(topology::to_string(trace.true_mode));
      }
      sink.row(cells);
    }
    ++trace_id;
  }
  sink.finish();
  obs::Registry::global().counter("export.trace_rows_total").inc(sink.rows());
}

namespace {

/// Discarding streambuf that folds every byte into an FNV-1a hash; lets the
/// CSV writers double as the canonical dataset serialisation without holding
/// the whole serialisation in memory.
class HashingStreambuf final : public std::streambuf {
 public:
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) mix(static_cast<char>(ch));
    return ch;
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    for (std::streamsize i = 0; i < count; ++i) mix(data[i]);
    return count;
  }

 private:
  void mix(char ch) {
    hash_ ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    hash_ *= 0x100000001b3ULL;
  }

  std::uint64_t hash_ = kFnvBasis;
};

}  // namespace

std::uint64_t dataset_hash(const measure::Dataset& data) {
  HashingStreambuf buffer;
  std::ostream out{&buffer};
  ExportOptions options;
  options.roundtrip_doubles = true;  // hash every collected bit, not 3 decimals
  options.ground_truth = true;
  export_pings_csv(out, data, options);
  export_traces_csv(out, data, options);
  return buffer.hash();
}

std::string format_dataset_hash(std::uint64_t hash) {
  char hex[17] = {};
  std::to_chars(hex, hex + 16, hash, 16);
  std::string padded(16 - std::string_view{hex}.size(), '0');
  padded += hex;
  return padded;
}

}  // namespace cloudrtt::core

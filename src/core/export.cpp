#include "core/export.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/codec.hpp"
#include "store/salvage.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace cloudrtt::core {

namespace {

using util::fnv1a_accum;
constexpr std::uint64_t kFnvBasis = util::kFnv1aBasis;

/// Write one data row, folding its serialised bytes into `hash` when the
/// integrity trailer is on (the trailer covers exactly what import re-hashes).
void write_row(std::ostream& out, const ExportOptions& options,
               std::uint64_t& hash, std::uint64_t& rows,
               const std::vector<std::string>& cells) {
  if (options.integrity_trailer) {
    std::ostringstream buffer;
    util::write_csv_row(buffer, cells);
    const std::string serialized = buffer.str();
    hash = fnv1a_accum(hash, serialized);
    out << serialized;
  } else {
    util::write_csv_row(out, cells);
  }
  ++rows;
}

void write_trailer(std::ostream& out, const ExportOptions& options,
                   std::uint64_t hash, std::uint64_t rows) {
  if (!options.integrity_trailer) return;
  char hex[17] = {};
  std::to_chars(hex, hex + 16, hash, 16);
  std::string padded(16 - std::string_view{hex}.size(), '0');
  padded += hex;
  out << "#cloudrtt-integrity rows=" << rows << " fnv1a=" << padded << '\n';
}

[[nodiscard]] std::string fmt_double(const ExportOptions& options,
                                     double value) {
  if (!options.roundtrip_doubles) return util::format_double(value, 3);
  char buffer[32];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  return ec == std::errc{} ? std::string(buffer, ptr)
                           : util::format_double(value, 3);
}

}  // namespace

PingCsvWriter::PingCsvWriter(std::ostream& out, const ExportOptions& options)
    : out_(out), options_(options), hash_(kFnvBasis) {
  util::write_csv_row(out_, {"probe_id", "platform", "country", "continent",
                             "isp_asn", "provider", "region", "protocol",
                             "rtt_ms", "day", "slot"});
}

void PingCsvWriter::write(const measure::Dataset& data) {
  for (const measure::PingRecord& ping : data.pings) {
    const probes::Probe& probe = *ping.probe;
    write_row(
        out_, options_, hash_, rows_,
        {std::to_string(probe.id), std::string{to_string(probe.platform)},
         std::string{probe.country->code},
         std::string{geo::to_code(probe.country->continent)},
         std::to_string(probe.isp->asn),
         std::string{cloud::provider_info(ping.region->provider).ticker},
         std::string{ping.region->region_name},
         std::string{to_string(ping.protocol)}, fmt_double(options_, ping.rtt_ms),
         std::to_string(ping.day), std::to_string(ping.slot)});
  }
}

void PingCsvWriter::finish() {
  write_trailer(out_, options_, hash_, rows_);
  obs::Registry::global().counter("export.ping_rows_total").inc(rows_);
}

TraceCsvWriter::TraceCsvWriter(std::ostream& out, const ExportOptions& options)
    : out_(out), options_(options), hash_(kFnvBasis) {
  std::vector<std::string> header{"trace_id", "probe_id", "provider", "region",
                                  "target_ip", "day", "slot", "completed",
                                  "end_to_end_ms", "ttl", "responded", "hop_ip",
                                  "hop_rtt_ms"};
  if (options_.ground_truth) header.emplace_back("true_mode");
  util::write_csv_row(out_, header);
}

void TraceCsvWriter::write(const measure::Dataset& data) {
  for (const measure::TraceRef& trace : data.traces) {
    for (const measure::HopRecord& hop : trace.hops) {
      std::vector<std::string> cells{
          std::to_string(trace_id_), std::to_string(trace.probe->id),
          std::string{cloud::provider_info(trace.region->provider).ticker},
          std::string{trace.region->region_name},
          trace.target_ip.to_string(), std::to_string(trace.day),
          std::to_string(trace.slot), trace.completed ? "1" : "0",
          fmt_double(options_, trace.end_to_end_ms), std::to_string(hop.ttl),
          hop.responded ? "1" : "0",
          hop.responded ? hop.ip.to_string() : std::string{},
          hop.responded ? fmt_double(options_, hop.rtt_ms) : std::string{}};
      if (options_.ground_truth) {
        cells.emplace_back(topology::to_string(trace.true_mode));
      }
      write_row(out_, options_, hash_, rows_, cells);
    }
    ++trace_id_;
  }
}

void TraceCsvWriter::finish() {
  write_trailer(out_, options_, hash_, rows_);
  obs::Registry::global().counter("export.trace_rows_total").inc(rows_);
}

void export_pings_csv(std::ostream& out, const measure::Dataset& data) {
  export_pings_csv(out, data, ExportOptions{});
}

void export_pings_csv(std::ostream& out, const measure::Dataset& data,
                      const ExportOptions& options) {
  obs::Span phase = obs::span("core.export.pings_csv");
  PingCsvWriter writer(out, options);
  writer.write(data);
  writer.finish();
}

void export_traces_csv(std::ostream& out, const measure::Dataset& data) {
  export_traces_csv(out, data, ExportOptions{});
}

void export_traces_csv(std::ostream& out, const measure::Dataset& data,
                       const ExportOptions& options) {
  obs::Span phase = obs::span("core.export.traces_csv");
  TraceCsvWriter writer(out, options);
  writer.write(data);
  writer.finish();
}

namespace {

/// Discarding streambuf that folds every byte into an FNV-1a hash; lets the
/// CSV writers double as the canonical dataset serialisation without holding
/// the whole serialisation in memory.
class HashingStreambuf final : public std::streambuf {
 public:
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) mix(static_cast<char>(ch));
    return ch;
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    for (std::streamsize i = 0; i < count; ++i) mix(data[i]);
    return count;
  }

 private:
  void mix(char ch) {
    hash_ ^= static_cast<std::uint64_t>(static_cast<unsigned char>(ch));
    hash_ *= 0x100000001b3ULL;
  }

  std::uint64_t hash_ = kFnvBasis;
};

/// One lane of a day-ordered store scan: an ifstream over the lane file with
/// the next block's header and payload buffered.
struct LaneCursor {
  std::ifstream in;
  std::uint64_t remaining = 0;  ///< durable bytes not yet consumed
  store::BlockHeader header;
  std::string payload;
  bool has_block = false;
};

/// Read the next framed block of `lane` into its buffer. Empty return on
/// success (has_block says whether anything was read); error text otherwise.
[[nodiscard]] std::string advance_lane(LaneCursor& lane, std::size_t index) {
  lane.has_block = false;
  if (lane.remaining == 0) return {};
  const auto fail = [&](std::string_view what) {
    return "lane " + std::to_string(index) + ": " + std::string{what};
  };
  std::string line;
  if (!std::getline(lane.in, line)) {
    return fail("committed region ends inside a block header");
  }
  const std::uint64_t header_bytes = line.size() + 1;
  if (header_bytes > lane.remaining ||
      !store::parse_block_header(line, lane.header)) {
    return fail("malformed committed block header");
  }
  if (lane.header.bytes > lane.remaining - header_bytes) {
    return fail("committed block straddles the manifest's byte mark");
  }
  lane.payload.resize(lane.header.bytes);
  lane.in.read(lane.payload.data(),
               static_cast<std::streamsize>(lane.header.bytes));
  if (static_cast<std::uint64_t>(lane.in.gcount()) != lane.header.bytes) {
    return fail("committed block payload truncated");
  }
  if (util::fnv1a_words(lane.payload) != lane.header.fnv1a) {
    return fail("committed block checksum mismatch");
  }
  lane.remaining -= header_bytes + lane.header.bytes;
  lane.has_block = true;
  return {};
}

/// Drive `per_block` over every durable block in global (day, start) order.
/// Day D lives in lane D % L and appends are globally FIFO, so the merge
/// only ever compares the lanes' head blocks; one block's rows are resident
/// at a time.
template <typename PerBlock>
[[nodiscard]] std::string scan_store_blocks(
    const std::filesystem::path& dir, std::string_view platform,
    const std::vector<store::LaneState>& lanes,
    const store::RowBinder& binder, PerBlock&& per_block) {
  std::vector<LaneCursor> cursors(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    cursors[i].remaining = lanes[i].durable_bytes;
    if (cursors[i].remaining == 0) continue;
    cursors[i].in.open(store::store_lane_path(dir, platform, i),
                       std::ios::binary);
    if (!cursors[i].in.is_open()) {
      return "lane " + std::to_string(i) + ": shard file unreadable";
    }
    if (std::string err = advance_lane(cursors[i], i); !err.empty()) {
      return err;
    }
  }

  measure::Dataset block;
  block.bind(binder.sc_fleet(), binder.atlas_fleet());
  for (;;) {
    std::size_t next = lanes.size();
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i].has_block) continue;
      if (next == lanes.size() ||
          cursors[i].header.day < cursors[next].header.day ||
          (cursors[i].header.day == cursors[next].header.day &&
           cursors[i].header.start < cursors[next].header.start)) {
        next = i;
      }
    }
    if (next == lanes.size()) break;
    LaneCursor& lane = cursors[next];
    block.clear_rows();
    if (std::string err =
            binder.parse_block(lane.payload, lane.header, block);
        !err.empty()) {
      return "lane " + std::to_string(next) + ": " + err;
    }
    per_block(block);
    if (std::string err = advance_lane(lane, next); !err.empty()) {
      return err;
    }
  }
  return {};
}

}  // namespace

std::uint64_t dataset_hash(const measure::Dataset& data) {
  HashingStreambuf buffer;
  std::ostream out{&buffer};
  ExportOptions options;
  options.roundtrip_doubles = true;  // hash every collected bit, not 3 decimals
  options.ground_truth = true;
  export_pings_csv(out, data, options);
  export_traces_csv(out, data, options);
  return buffer.hash();
}

StreamedHashResult streamed_dataset_hash(const std::filesystem::path& dir,
                                         std::string_view platform,
                                         store::IoEnv& io,
                                         const probes::ProbeFleet* sc_fleet,
                                         const probes::ProbeFleet* atlas_fleet) {
  obs::Span phase = obs::span("core.export.streamed_hash");
  StreamedHashResult result;
  // Structural open validates the committed region + salvage chain and hands
  // back the per-lane durable byte marks — without materialising any rows.
  const store::OpenResult opened =
      store::open_store_structural(dir, platform, io, /*repair=*/false);
  if (!opened.ok()) {
    result.error = opened.error;
    return result;
  }
  const store::RowBinder binder{sc_fleet, atlas_fleet};
  HashingStreambuf buffer;
  std::ostream out{&buffer};
  ExportOptions options;
  options.roundtrip_doubles = true;
  options.ground_truth = true;
  // The canonical serialisation is the full ping CSV then the full trace
  // CSV, and FNV-1a is strictly sequential — so the store is scanned twice,
  // once per CSV, with one block's rows resident at a time.
  {
    PingCsvWriter writer(out, options);
    if (std::string err = scan_store_blocks(
            dir, platform, opened.lane_states, binder,
            [&](const measure::Dataset& block) { writer.write(block); });
        !err.empty()) {
      result.error = "streamed hash (ping pass): " + err;
      return result;
    }
    writer.finish();
  }
  {
    TraceCsvWriter writer(out, options);
    if (std::string err = scan_store_blocks(
            dir, platform, opened.lane_states, binder,
            [&](const measure::Dataset& block) { writer.write(block); });
        !err.empty()) {
      result.error = "streamed hash (trace pass): " + err;
      return result;
    }
    writer.finish();
  }
  result.hash = buffer.hash();
  result.rows = opened.durable_rows;
  return result;
}

std::string format_dataset_hash(std::uint64_t hash) {
  char hex[17] = {};
  std::to_chars(hex, hex + 16, hash, 16);
  std::string padded(16 - std::string_view{hex}.size(), '0');
  padded += hex;
  return padded;
}

}  // namespace cloudrtt::core

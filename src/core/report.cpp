#include "core/report.hpp"

#include <ostream>

#include "analysis/experiments.hpp"
#include "cloud/region.hpp"
#include "util/json.hpp"

namespace cloudrtt::core {

namespace {

using util::JsonWriter;

void write_summary(JsonWriter& json, const util::Summary& summary) {
  json.begin_object();
  json.field("count", summary.count);
  json.field("min", summary.min);
  json.field("p25", summary.p25);
  json.field("median", summary.median);
  json.field("p75", summary.p75);
  json.field("p90", summary.p90);
  json.field("max", summary.max);
  json.field("mean", summary.mean);
  json.field("stddev", summary.stddev);
  json.end_object();
}

void write_series_summaries(JsonWriter& json, const std::vector<util::Series>& all) {
  json.begin_array();
  for (const util::Series& series : all) {
    json.begin_object();
    json.field("label", series.label);
    json.key("summary");
    write_summary(json, util::summarize(series.values));
    json.end_object();
  }
  json.end_array();
}

void write_table1(JsonWriter& json) {
  json.begin_array();
  for (const cloud::ProviderId id : cloud::kAllProviders) {
    const cloud::ProviderInfo& info = cloud::provider_info(id);
    json.begin_object();
    json.field("ticker", info.ticker);
    json.field("name", info.name);
    switch (info.backbone) {
      case cloud::BackboneClass::Private: json.field("backbone", "private"); break;
      case cloud::BackboneClass::Semi: json.field("backbone", "semi"); break;
      case cloud::BackboneClass::Public: json.field("backbone", "public"); break;
    }
    json.key("regions_per_continent");
    json.begin_object();
    for (const geo::Continent c : geo::kAllContinents) {
      json.field(geo::to_code(c),
                 cloud::RegionCatalog::instance().count(id, c));
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
}

void write_fig3(JsonWriter& json, const analysis::StudyView& view) {
  json.begin_array();
  for (const auto& row : analysis::fig3_country_latency(view)) {
    json.begin_object();
    json.field("country", row.country);
    json.field("continent", geo::to_code(row.continent));
    json.field("median_ms", row.median_ms);
    json.field("samples", row.samples);
    json.field("bucket", row.bucket);
    json.end_object();
  }
  json.end_array();
}

void write_fig6(JsonWriter& json, const analysis::StudyView& view,
                geo::Continent src) {
  json.begin_array();
  for (const auto& cell : analysis::fig6_intercontinental(view, src)) {
    if (cell.summary.count == 0) continue;
    json.begin_object();
    json.field("src_country", cell.src_country);
    json.field("dst_continent", geo::to_code(cell.dst_continent));
    json.key("summary");
    write_summary(json, cell.summary);
    json.end_object();
  }
  json.end_array();
}

void write_lastmile(JsonWriter& json, const analysis::LastMileStats& stats) {
  json.begin_array();
  for (const analysis::LastMileCategory category : analysis::kLastMileCategories) {
    json.begin_object();
    json.field("category", to_string(category));
    json.key("share_pct_median");
    json.begin_object();
    for (std::size_t i = 0; i <= geo::kContinentCount; ++i) {
      const auto& values = stats.share(category, i);
      const std::string_view label =
          i == analysis::kGlobalIndex ? "Global"
                                      : geo::to_code(geo::kAllContinents[i]);
      if (values.size() >= 5) {
        json.field(label, util::median(values));
      }
    }
    json.end_object();
    json.key("absolute_ms_median");
    json.begin_object();
    for (std::size_t i = 0; i <= geo::kContinentCount; ++i) {
      const auto& values = stats.absolute(category, i);
      const std::string_view label =
          i == analysis::kGlobalIndex ? "Global"
                                      : geo::to_code(geo::kAllContinents[i]);
      if (values.size() >= 5) {
        json.field(label, util::median(values));
      }
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
}

void write_cv_groups(JsonWriter& json, const std::vector<analysis::CvGroup>& groups) {
  json.begin_array();
  for (const auto& group : groups) {
    json.begin_object();
    json.field("label", group.label);
    json.field("home_probes", group.home.size());
    if (!group.home.empty()) json.field("home_median_cv", util::median(group.home));
    json.field("cell_probes", group.cell.size());
    if (!group.cell.empty()) json.field("cell_median_cv", util::median(group.cell));
    json.field("home_sufficient", group.home_sufficient);
    json.end_object();
  }
  json.end_array();
}

void write_fig10(JsonWriter& json, const analysis::StudyView& view) {
  json.begin_array();
  for (const auto& row : analysis::fig10_interconnect_share(view)) {
    json.begin_object();
    json.field("provider", row.ticker);
    json.field("direct_pct", row.direct_pct);
    json.field("one_as_pct", row.one_as_pct);
    json.field("multi_as_pct", row.multi_as_pct);
    json.field("paths", row.paths);
    json.end_object();
  }
  json.end_array();
}

void write_fig11(JsonWriter& json, const analysis::StudyView& view) {
  json.begin_array();
  for (const auto& row : analysis::fig11_pervasiveness(view)) {
    json.begin_object();
    json.field("provider", row.ticker);
    json.key("median_by_continent");
    json.begin_object();
    for (const geo::Continent c : geo::kAllContinents) {
      const auto& value = row.median_by_continent[geo::index_of(c)];
      if (value) json.field(geo::to_code(c), *value);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
}

void write_case_study(JsonWriter& json, const analysis::PeeringCaseStudy& study) {
  json.begin_object();
  json.field("src_country", study.src_country);
  json.field("dst_country", study.dst_country);
  json.key("matrix");
  json.begin_array();
  for (const auto& row : study.matrix) {
    json.begin_object();
    json.field("isp", row.isp_label);
    json.field("asn", static_cast<std::uint64_t>(row.asn));
    json.key("cells");
    json.begin_array();
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      const auto& cell = row.cells[i];
      json.begin_object();
      json.field("provider",
                 cloud::provider_info(cloud::kPeeringFigureProviders[i]).ticker);
      json.field("paths", cell.paths);
      if (cell.has_data) {
        json.field("majority", topology::to_string(cell.majority));
        json.field("majority_pct", cell.majority_pct);
      }
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("latency_by_mode");
  json.begin_array();
  for (const auto& row : study.latency) {
    if (row.direct.count == 0 && row.intermediate.count == 0) continue;
    json.begin_object();
    json.field("provider", row.ticker);
    json.field("valid", row.valid);
    json.key("direct");
    write_summary(json, row.direct);
    json.key("intermediate");
    write_summary(json, row.intermediate);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

void write_full_report(std::ostream& out, const analysis::StudyView& view) {
  JsonWriter json{out};
  json.begin_object();

  json.key("table1_endpoints");
  write_table1(json);

  json.key("fig3_country_latency");
  write_fig3(json, view);

  json.key("fig4_continent_rtt");
  write_series_summaries(json, analysis::fig4_continent_rtt(view));

  if (view.has_atlas()) {
    json.key("fig5_platform_diff");
    write_series_summaries(json, analysis::fig5_platform_diff(view));
    json.key("fig16_city_asn_diff");
    write_series_summaries(json, analysis::fig16_city_asn_diff(view));
  }

  json.key("fig6a_africa");
  write_fig6(json, view, geo::Continent::Africa);
  json.key("fig6b_south_america");
  write_fig6(json, view, geo::Continent::SouthAmerica);

  json.key("fig7_lastmile");
  write_lastmile(json, analysis::lastmile_stats(view, false));
  json.key("fig19_lastmile_nearest");
  write_lastmile(json, analysis::lastmile_stats(view, true));

  json.key("fig8_cv_by_continent");
  write_cv_groups(json, analysis::fig8_cv_by_continent(view));
  json.key("fig9_cv_by_country");
  write_cv_groups(json, analysis::fig9_cv_by_country(view));

  json.key("fig10_interconnect_share");
  write_fig10(json, view);
  json.key("fig11_pervasiveness");
  write_fig11(json, view);

  json.key("fig12_de_gb");
  write_case_study(json, analysis::peering_case_study(view, "DE", "GB"));
  json.key("fig13_jp_in");
  write_case_study(json, analysis::peering_case_study(view, "JP", "IN"));
  json.key("fig17_ua_gb");
  write_case_study(json, analysis::peering_case_study(view, "UA", "GB"));
  json.key("fig18_bh_in");
  write_case_study(json, analysis::peering_case_study(view, "BH", "IN"));

  json.key("fig15_protocols");
  json.begin_array();
  for (const auto& row : analysis::fig15_protocols(view)) {
    json.begin_object();
    json.field("continent", geo::to_code(row.continent));
    json.key("tcp");
    write_summary(json, row.tcp);
    json.key("icmp");
    write_summary(json, row.icmp);
    json.end_object();
  }
  json.end_array();

  const analysis::MethodologyStats stats = analysis::sec33_stats(view);
  json.key("sec33_methodology");
  json.begin_object();
  json.field("ping_count", stats.ping_count);
  json.field("trace_count", stats.trace_count);
  json.key("continent_sample_share_pct");
  json.begin_object();
  for (const geo::Continent c : geo::kAllContinents) {
    json.field(geo::to_code(c), stats.continent_sample_share[geo::index_of(c)]);
  }
  json.end_object();
  json.field("tcp_median_ms", stats.tcp_median_ms);
  json.field("icmp_median_ms", stats.icmp_median_ms);
  json.field("tcp_vs_icmp_gap_pct", stats.tcp_vs_icmp_gap_pct);
  json.field("required_samples_per_country", stats.required_samples_per_country);
  json.field("whois_fallback_share_pct", stats.whois_fallback_share_pct);
  json.end_object();

  json.end_object();
  out << '\n';
}

}  // namespace cloudrtt::core

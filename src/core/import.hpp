#pragma once
// Dataset import: parse the CSVs written by core/export back into in-memory
// records, re-binding probe and region references. Together with the export
// side this gives the repository the paper's "published dataset + analysis
// scripts" workflow: measure once, re-analyze many times.

#include <iosfwd>

#include "measure/records.hpp"
#include "probes/fleet.hpp"

namespace cloudrtt::core {

struct ImportStats {
  std::size_t rows = 0;      ///< data rows seen (excluding the header)
  std::size_t imported = 0;  ///< records produced (pings, or whole traces)
  std::size_t skipped = 0;   ///< malformed rows or unresolvable references

  [[nodiscard]] bool clean() const { return skipped == 0; }
};

/// Parse a pings CSV (as written by export_pings_csv). Probe ids are
/// resolved against the given fleets (either may be null), regions against
/// the static catalogue. Unresolvable rows are counted in `skipped`.
ImportStats import_pings_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                             const probes::ProbeFleet* atlas_fleet,
                             measure::Dataset& out);

/// Parse a traces CSV (as written by export_traces_csv), reassembling hop
/// rows into TraceRecords. Ground-truth-only fields (true_mode) are not part
/// of the CSV and default; target_ip is recovered from the region catalogue
/// when the final hop responded, else left unset.
ImportStats import_traces_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                              const probes::ProbeFleet* atlas_fleet,
                              measure::Dataset& out);

}  // namespace cloudrtt::core

#pragma once
// Dataset import: parse the CSVs written by core/export back into in-memory
// records, re-binding probe and region references. Together with the export
// side this gives the repository the paper's "published dataset + analysis
// scripts" workflow: measure once, re-analyze many times.
//
// Malformed input never throws: every bad row is skipped and reported as a
// structured, line-numbered error (capped, so a wholly corrupt file can't
// balloon memory), and integrity trailers written by checkpointing exports
// are validated so a truncated file fails loudly instead of silently
// importing a prefix.

#include <iosfwd>
#include <string>
#include <vector>

#include "measure/records.hpp"
#include "probes/fleet.hpp"

namespace cloudrtt::core {

/// One rejected input row: 1-based line number plus what was wrong with it.
struct ImportError {
  std::size_t line = 0;
  std::string message;
};

struct ImportStats {
  /// At most this many ImportErrors are retained (skipped counts them all).
  static constexpr std::size_t kMaxErrors = 32;

  std::size_t rows = 0;      ///< data rows seen (excluding the header)
  std::size_t imported = 0;  ///< records produced (pings, or whole traces)
  std::size_t skipped = 0;   ///< malformed rows or unresolvable references
  /// First kMaxErrors skipped rows, with line numbers and reasons.
  std::vector<ImportError> errors;
  /// Integrity trailer state: absent trailers are fine (published-dataset
  /// CSVs don't carry one); a present-but-wrong trailer marks corruption.
  bool trailer_present = false;
  bool trailer_ok = true;

  [[nodiscard]] bool clean() const { return skipped == 0 && trailer_ok; }

  /// Human-readable digest of the failures: the first retained error plus —
  /// because `errors` is capped at kMaxErrors while `skipped` counts them
  /// all — how many further errors were suppressed. Every skipped row is
  /// also counted in the `import.row_errors_total` metric.
  [[nodiscard]] std::string error_summary() const;
};

/// Parse a pings CSV (as written by export_pings_csv). Probe ids are
/// resolved against the given fleets (either may be null), regions against
/// the static catalogue. Unresolvable rows are counted in `skipped`.
ImportStats import_pings_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                             const probes::ProbeFleet* atlas_fleet,
                             measure::Dataset& out);

/// Parse a traces CSV (as written by export_traces_csv), reassembling hop
/// rows into TraceRecords. When the header carries the optional `true_mode`
/// ground-truth column (checkpoint flavour) it is parsed back; otherwise
/// true_mode defaults. target_ip is recovered from the region catalogue when
/// the final hop responded, else left unset.
ImportStats import_traces_csv(std::istream& in, const probes::ProbeFleet* sc_fleet,
                              const probes::ProbeFleet* atlas_fleet,
                              measure::Dataset& out);

}  // namespace cloudrtt::core

#include "core/scale.hpp"

#include <charconv>
#include <cstdlib>

#include "core/study.hpp"

namespace cloudrtt::core {

namespace {

/// Strict full-string parse helpers: std::from_chars consumes a prefix, so a
/// trailing garbage character means the spelling is not that kind of number.
[[nodiscard]] bool parse_size(std::string_view text, std::size_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size() && out > 0;
}

[[nodiscard]] bool parse_double(std::string_view text, double& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size() && out > 0.0;
}

}  // namespace

ScaleSpec parse_scale(std::string_view text) {
  ScaleSpec spec;
  if (text.empty() || text == "default") {
    return spec;
  }
  if (text == "paper") {
    spec.name = "paper";
    spec.sc_probes = 115000;
    spec.atlas_probes = 8500;
    return spec;
  }
  if (const std::size_t x = text.find('x'); x != std::string_view::npos) {
    std::size_t sc = 0;
    std::size_t atlas = 0;
    if (parse_size(text.substr(0, x), sc) &&
        parse_size(text.substr(x + 1), atlas)) {
      spec.name = std::string{text};
      spec.sc_probes = sc;
      spec.atlas_probes = atlas;
      return spec;
    }
  } else if (double multiplier = 0.0; parse_double(text, multiplier)) {
    // Legacy spelling: CLOUDRTT_SCALE as a float multiplier on the default
    // fleet (0.1 for smoke runs, 20 to approach paper densities).
    spec.name = std::string{text};
    spec.sc_probes =
        std::max<std::size_t>(1, static_cast<std::size_t>(6000 * multiplier));
    spec.atlas_probes =
        std::max<std::size_t>(1, static_cast<std::size_t>(1500 * multiplier));
    return spec;
  }
  spec.error = "unrecognised scale '" + std::string{text} +
               "' — expected default, paper, NxM probe counts (e.g. "
               "12000x3000), or a float multiplier";
  return spec;
}

ScaleSpec resolve_scale(std::string_view flag_value) {
  if (!flag_value.empty()) return parse_scale(flag_value);
  if (const char* env = std::getenv("CLOUDRTT_SCALE")) {
    return parse_scale(env);
  }
  return ScaleSpec{};
}

void apply_scale(StudyConfig& config, const ScaleSpec& spec) {
  config.sc_probes = spec.sc_probes;
  config.atlas_probes = spec.atlas_probes;
  config.sc_campaign.daily_budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(config.sc_campaign.daily_budget) *
             spec.sc_multiplier()));
  config.atlas_campaign.daily_budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(config.atlas_campaign.daily_budget) *
             spec.atlas_multiplier()));
}

}  // namespace cloudrtt::core

#pragma once
// Study scale as a first-class, nameable configuration (ISSUE 10).
//
// The paper measured from ~115,000 Speedchecker and ~8,500 Atlas probes; the
// repo's default is a 6,000/1,500 stand-in that keeps the tier-1 suite fast.
// A ScaleSpec names a point on that axis and is resolved in one place so the
// CLI flag, the CLOUDRTT_SCALE environment fallback, and the bench harnesses
// all agree on the spelling:
//
//   default   6,000 SC / 1,500 Atlas  (multiplier 1.0)
//   paper     115,000 SC / 8,500 Atlas — the paper's fleet, streamed
//   NxM       explicit probe counts, e.g. 12000x3000
//   <float>   legacy multiplier on the default counts, e.g. 0.1 or 20
//             (kept so existing CLOUDRTT_SCALE=0.1 invocations still work)
//
// Daily task budgets scale proportionally with each platform's probe count,
// so "paper" runs the paper's task volume, not just its fleet size.

#include <cstddef>
#include <string>
#include <string_view>

namespace cloudrtt::core {

struct StudyConfig;

struct ScaleSpec {
  std::string name = "default";  ///< canonical label for summaries/reports
  std::size_t sc_probes = 6000;
  std::size_t atlas_probes = 1500;
  std::string error;  ///< non-empty = the spec string did not parse
  [[nodiscard]] bool ok() const { return error.empty(); }
  /// Per-platform budget multipliers relative to the default fleet.
  [[nodiscard]] double sc_multiplier() const {
    return static_cast<double>(sc_probes) / 6000.0;
  }
  [[nodiscard]] double atlas_multiplier() const {
    return static_cast<double>(atlas_probes) / 1500.0;
  }
};

/// Parse one scale spelling: "default", "paper", "NxM", or a float
/// multiplier. Returns a spec with `error` set on anything else.
[[nodiscard]] ScaleSpec parse_scale(std::string_view text);

/// Resolve the effective scale: a non-empty `flag_value` (the --scale flag)
/// wins, else the CLOUDRTT_SCALE environment variable, else "default".
[[nodiscard]] ScaleSpec resolve_scale(std::string_view flag_value);

/// Apply a spec to a StudyConfig: probe counts, plus daily budgets scaled
/// proportionally from the config's current values.
void apply_scale(StudyConfig& config, const ScaleSpec& spec);

}  // namespace cloudrtt::core

#pragma once
// Full study report: serialize every reproduced exhibit to JSON so the
// results can be re-plotted outside C++ — the repository's analogue of the
// paper's published dataset + scripts.

#include <iosfwd>

#include "analysis/study_view.hpp"

namespace cloudrtt::core {

/// Write a single JSON document containing every table/figure result
/// (Table 1, Figs. 3-19, §3.3 stats) computed from the given study view.
void write_full_report(std::ostream& out, const analysis::StudyView& view);

}  // namespace cloudrtt::core

#include "core/study.hpp"

#include <stdexcept>

#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace cloudrtt::core {

Study::Study(StudyConfig config) : config_(config) {
  obs::Span build = obs::span("study.build");
  topology::WorldConfig world_config;
  world_config.seed = config_.seed;
  world_config.enable_uplink_gateways = config_.enable_uplink_gateways;
  world_config.enable_edge_pops = config_.enable_edge_pops;
  world_ = std::make_unique<topology::World>(world_config);

  probes::FleetConfig sc_config;
  sc_config.platform = probes::Platform::Speedchecker;
  sc_config.target_count = config_.sc_probes;
  sc_config.access_override = config_.sc_access_override;
  sc_config.air_scale = config_.sc_air_scale;
  sc_fleet_ = std::make_unique<probes::ProbeFleet>(*world_, sc_config);
  if (config_.include_atlas) {
    atlas_fleet_ = std::make_unique<probes::ProbeFleet>(
        *world_,
        probes::FleetConfig{probes::Platform::RipeAtlas, config_.atlas_probes});
  }
}

void Study::run() {
  obs::Span run_span = obs::span("study.run");
  {
    obs::Span phase = obs::span("campaign.speedchecker");
    CLOUDRTT_LOG_INFO("study.campaign.start", {"platform", "speedchecker"},
                      {"probes", sc_fleet_->probes().size()},
                      {"days", config_.sc_campaign.days});
    const measure::Campaign sc_campaign{*world_, *sc_fleet_, config_.sc_campaign};
    sc_data_ = sc_campaign.run(world_->fork_rng("campaign/speedchecker"));
  }
  if (atlas_fleet_) {
    obs::Span phase = obs::span("campaign.atlas");
    CLOUDRTT_LOG_INFO("study.campaign.start", {"platform", "atlas"},
                      {"probes", atlas_fleet_->probes().size()},
                      {"days", config_.atlas_campaign.days});
    const measure::Campaign atlas_campaign{*world_, *atlas_fleet_,
                                           config_.atlas_campaign};
    atlas_data_ = atlas_campaign.run(world_->fork_rng("campaign/atlas"));
  }
  {
    obs::Span phase = obs::span("resolver.build");
    resolver_ = analysis::IpToAsn::from_world(*world_);
  }
  ran_ = true;
  CLOUDRTT_LOG_INFO("study.done", {"pings", sc_data_.pings.size()},
                    {"traceroutes", sc_data_.traces.size()},
                    {"atlas_pings", atlas_data_.pings.size()});
}

analysis::StudyView Study::view() const {
  if (!ran_) {
    throw std::logic_error{"Study::view: call run() first"};
  }
  analysis::StudyView view;
  view.world = world_.get();
  view.sc_fleet = sc_fleet_.get();
  view.sc_data = &sc_data_;
  if (atlas_fleet_) {
    view.atlas_fleet = atlas_fleet_.get();
    view.atlas_data = &atlas_data_;
  }
  view.resolver = &resolver_;
  return view;
}

}  // namespace cloudrtt::core

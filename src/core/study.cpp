#include "core/study.hpp"

#include <stdexcept>

namespace cloudrtt::core {

Study::Study(StudyConfig config) : config_(config) {
  topology::WorldConfig world_config;
  world_config.seed = config_.seed;
  world_config.enable_uplink_gateways = config_.enable_uplink_gateways;
  world_config.enable_edge_pops = config_.enable_edge_pops;
  world_ = std::make_unique<topology::World>(world_config);

  probes::FleetConfig sc_config;
  sc_config.platform = probes::Platform::Speedchecker;
  sc_config.target_count = config_.sc_probes;
  sc_config.access_override = config_.sc_access_override;
  sc_config.air_scale = config_.sc_air_scale;
  sc_fleet_ = std::make_unique<probes::ProbeFleet>(*world_, sc_config);
  if (config_.include_atlas) {
    atlas_fleet_ = std::make_unique<probes::ProbeFleet>(
        *world_,
        probes::FleetConfig{probes::Platform::RipeAtlas, config_.atlas_probes});
  }
}

void Study::run() {
  const measure::Campaign sc_campaign{*world_, *sc_fleet_, config_.sc_campaign};
  sc_data_ = sc_campaign.run(world_->fork_rng("campaign/speedchecker"));
  if (atlas_fleet_) {
    const measure::Campaign atlas_campaign{*world_, *atlas_fleet_,
                                           config_.atlas_campaign};
    atlas_data_ = atlas_campaign.run(world_->fork_rng("campaign/atlas"));
  }
  resolver_ = analysis::IpToAsn::from_world(*world_);
  ran_ = true;
}

analysis::StudyView Study::view() const {
  if (!ran_) {
    throw std::logic_error{"Study::view: call run() first"};
  }
  analysis::StudyView view;
  view.world = world_.get();
  view.sc_fleet = sc_fleet_.get();
  view.sc_data = &sc_data_;
  if (atlas_fleet_) {
    view.atlas_fleet = atlas_fleet_.get();
    view.atlas_data = &atlas_data_;
  }
  view.resolver = &resolver_;
  return view;
}

}  // namespace cloudrtt::core

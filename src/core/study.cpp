#include "core/study.hpp"

#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "store/io_env.hpp"
#include "store/salvage.hpp"
#include "store/shard_writer.hpp"
#include "util/check.hpp"

namespace cloudrtt::core {

Study::Study(StudyConfig config) : config_(config) {
  obs::Span build = obs::span("study.build");
  config_.sc_campaign.threads = config_.threads;
  config_.atlas_campaign.threads = config_.threads;
  topology::WorldConfig world_config;
  world_config.seed = config_.seed;
  world_config.enable_uplink_gateways = config_.enable_uplink_gateways;
  world_config.enable_edge_pops = config_.enable_edge_pops;
  world_ = std::make_unique<topology::World>(world_config);

  probes::FleetConfig sc_config;
  sc_config.platform = probes::Platform::Speedchecker;
  sc_config.target_count = config_.sc_probes;
  sc_config.access_override = config_.sc_access_override;
  sc_config.air_scale = config_.sc_air_scale;
  sc_fleet_ = std::make_unique<probes::ProbeFleet>(*world_, sc_config);
  if (config_.include_atlas) {
    atlas_fleet_ = std::make_unique<probes::ProbeFleet>(
        *world_,
        probes::FleetConfig{probes::Platform::RipeAtlas, config_.atlas_probes});
  }
}

void Study::run() { run(RunControl{}); }

namespace {

[[noreturn]] void throw_seed_mismatch(std::string_view platform,
                                      const std::filesystem::path& manifest,
                                      std::uint64_t found,
                                      std::uint64_t expected) {
  throw std::runtime_error{
      "Study::run: checkpoint for '" + std::string{platform} + "' at " +
      manifest.string() + " was written by seed " + std::to_string(found) +
      ", this study uses seed " + std::to_string(expected) +
      " — rerun with the original seed or point --checkpoint-dir elsewhere"};
}

}  // namespace

bool Study::run_campaign(std::string_view platform,
                         const measure::Campaign& campaign, util::Rng rng,
                         const fault::FaultPlan* plan,
                         const RunControl& control, measure::Dataset& out) {
  measure::CampaignState start;
  measure::Dataset dataset;

  const bool persist = !control.checkpoint_dir.empty();
  if (control.stream && !persist) {
    throw std::runtime_error{
        "Study::run: RunControl::stream requires checkpoint_dir — a streamed "
        "run keeps only one day's rows in memory, so the store is the only "
        "copy of the data"};
  }
  const std::filesystem::path store_dir =
      control.spill_dir.empty() ? std::filesystem::path{control.checkpoint_dir}
                                : std::filesystem::path{control.spill_dir};

  // The store's filesystem seam: plain POSIX, or the fault-injecting
  // decorator when the study is configured to stress its own durability.
  store::IoEnv plain_io;
  std::optional<store::FaultyIoEnv> faulty_io;
  store::IoEnv* io = &plain_io;
  if (config_.io_fault_profile != fault::FaultProfile::None) {
    faulty_io.emplace(fault::IoFaults::for_profile(config_.io_fault_profile),
                      config_.fault_seed ^ util::fnv1a(platform));
    io = &*faulty_io;
  }

  std::unique_ptr<store::ShardWriter> writer;
  if (persist) {
    store::StoreMeta meta;
    meta.platform = std::string{platform};
    meta.seed = config_.seed;
    meta.fault_profile = std::string{to_string(config_.fault_profile)};
    const int format =
        control.resume ? store::manifest_format(store_dir, platform, *io) : 0;
    if (format == 3) {
      // A streaming resume never materialises the committed rows: the
      // structural open validates the store and yields the lane byte marks
      // plus the on-disk row count, which is all restore() needs. RAM stays
      // O(day) across kill+resume cycles.
      store::OpenResult opened =
          control.stream
              ? store::open_store_structural(store_dir, platform, *io,
                                             /*repair=*/true)
              : store::open_store(store_dir, platform, *io, sc_fleet_.get(),
                                  atlas_fleet_.get(), /*repair=*/true);
      if (!opened.ok()) {
        throw std::runtime_error{"Study::run: cannot resume '" +
                                 std::string{platform} + "': " + opened.error};
      }
      if (opened.meta.seed != config_.seed) {
        throw_seed_mismatch(platform,
                            store::store_manifest_path(store_dir, platform),
                            opened.meta.seed, config_.seed);
      }
      start = opened.state;
      dataset = std::move(opened.data);
      writer = std::make_unique<store::ShardWriter>(
          store_dir, meta, opened.lane_states.size(), *io, /*fresh=*/false);
      writer->restore(opened.lane_states,
                      static_cast<std::size_t>(opened.durable_rows),
                      static_cast<std::size_t>(opened.durable_rows));
      if (!opened.salvage.clean()) {
        CLOUDRTT_LOG_WARN("study.salvaged", {"platform", platform},
                          {"blocks", opened.salvage.salvaged_blocks},
                          {"rows", opened.salvage.salvaged_rows},
                          {"dropped", opened.salvage.dropped_blocks},
                          {"truncated_bytes", opened.salvage.truncated_bytes});
        // Journal the salvage right away: the repaired lanes + a manifest
        // carrying day_tasks_done are the new commit point, so a crash
        // during the resumed run never re-salvages the same tail. Drain so
        // the journal is durable before any resumed day enqueues rows.
        (void)writer->commit(start);
        writer->drain();
      }
      CLOUDRTT_LOG_INFO("study.resume", {"platform", platform},
                        {"next_day", start.next_day},
                        {"day_tasks_done", start.day_tasks_done},
                        {"pings", dataset.pings.size()});
    } else if (control.resume && (format == 2 || format == 1)) {
      CheckpointLoad load = load_checkpoint(
          control.checkpoint_dir, platform, sc_fleet_.get(), atlas_fleet_.get());
      if (!load.ok()) {
        throw std::runtime_error{"Study::run: cannot resume '" +
                                 std::string{platform} + "': " + load.error};
      }
      if (load.meta.seed != config_.seed) {
        throw_seed_mismatch(
            platform,
            std::filesystem::path{control.checkpoint_dir} /
                (std::string{platform} + ".manifest"),
            load.meta.seed, config_.seed);
      }
      start = load.meta.state;
      dataset = std::move(load.data);
      // One-way migration: rewrite the legacy CSV checkpoint as a streaming
      // store so every later day spills flat-cost. The writer wipes the old
      // artefact set (same manifest path) before adopting the rows.
      writer = std::make_unique<store::ShardWriter>(
          store_dir, meta, std::max(1u, config_.threads), *io, /*fresh=*/true);
      if (!writer->adopt(dataset, start)) {
        CLOUDRTT_LOG_WARN("study.migrate_degraded", {"platform", platform});
      }
      CLOUDRTT_LOG_INFO("study.migrated_checkpoint", {"platform", platform},
                        {"next_day", start.next_day},
                        {"pings", dataset.pings.size()});
    } else {
      writer = std::make_unique<store::ShardWriter>(
          store_dir, meta, std::max(1u, config_.threads), *io, /*fresh=*/true);
    }
  }

  measure::RunHooks hooks;
  hooks.faults = plan;
  bool stopped = false;
  if (writer != nullptr) {
    hooks.day_rows = [&writer](std::uint32_t day, std::size_t day_start_cursor,
                               std::uint32_t first_task,
                               const measure::Dataset& data,
                               std::size_t ping_begin,
                               std::size_t trace_begin) {
      // Failures degrade, never abort: the writer queues the blocks and
      // retries on later days (degrade-don't-die).
      (void)writer->append_day(day, day_start_cursor, first_task, data,
                               ping_begin, trace_begin);
    };
    // Streaming: once append_day has copied the day's columns into its job,
    // the campaign may drop them — the store is the only copy from here on.
    hooks.drop_day_rows = control.stream;
  }
  if (writer != nullptr || control.stop_after_day) {
    hooks.after_day = [&](const measure::CampaignState& state,
                          const measure::Dataset& data) {
      (void)data;
      // commit() is advisory (the worker retires it asynchronously): false
      // means the store was already degraded, so surface the backlog.
      if (writer != nullptr && !writer->commit(state)) {
        CLOUDRTT_LOG_WARN("study.checkpoint_failed", {"platform", platform},
                          {"pending_blocks", writer->pending_blocks()});
      }
      if (control.stop_after_day && state.next_day >= *control.stop_after_day) {
        stopped = true;
        return false;
      }
      return true;
    };
  }
  out = campaign.run(rng, start, hooks, std::move(dataset));
  if (writer != nullptr) {
    // The spill worker ran behind the campaign; wait out whatever tail is
    // left so "run_campaign returned" means "the store is quiescent". The
    // span makes a too-slow spill pipeline visible in --trace-out.
    obs::Span drain_span = obs::span("store.drain");
    writer->drain();
  }
  return !stopped;
}

void Study::run(const RunControl& control) {
  obs::Span run_span = obs::span("study.run");
  streamed_ = control.stream;
  const std::optional<fault::FaultPlan> sc_plan =
      fault::FaultPlan::make(*world_, config_.sc_campaign.days,
                             config_.fault_profile, config_.fault_seed);
  bool complete = true;
  {
    obs::Span phase = obs::span("campaign.speedchecker");
    CLOUDRTT_LOG_INFO("study.campaign.start", {"platform", "speedchecker"},
                      {"probes", sc_fleet_->probes().size()},
                      {"days", config_.sc_campaign.days},
                      {"fault_profile", to_string(config_.fault_profile)});
    const measure::Campaign sc_campaign{*world_, *sc_fleet_, config_.sc_campaign};
    complete &= run_campaign("speedchecker", sc_campaign,
                             world_->fork_rng("campaign/speedchecker"),
                             sc_plan ? &*sc_plan : nullptr, control, sc_data_);
  }
  // Campaigns are independent: router addressing is pre-materialized at
  // world construction and each platform forks its own RNG stream, so Atlas
  // runs its days even when Speedchecker stopped early at a checkpoint —
  // resuming either campaign later stays bit-identical.
  if (atlas_fleet_) {
    obs::Span phase = obs::span("campaign.atlas");
    CLOUDRTT_LOG_INFO("study.campaign.start", {"platform", "atlas"},
                      {"probes", atlas_fleet_->probes().size()},
                      {"days", config_.atlas_campaign.days});
    // Independent failure history for the second platform: real outages on
    // Speedchecker's scheduler never lined up with Atlas's.
    const std::optional<fault::FaultPlan> atlas_plan =
        fault::FaultPlan::make(*world_, config_.atlas_campaign.days,
                               config_.fault_profile, config_.fault_seed + 1);
    const measure::Campaign atlas_campaign{*world_, *atlas_fleet_,
                                           config_.atlas_campaign};
    complete &= run_campaign("atlas", atlas_campaign,
                             world_->fork_rng("campaign/atlas"),
                             atlas_plan ? &*atlas_plan : nullptr, control,
                             atlas_data_);
  }
  if (!complete) {
    ran_ = false;
    CLOUDRTT_LOG_INFO("study.stopped_early",
                      {"stop_after_day", control.stop_after_day.value_or(0)});
    return;
  }
  {
    obs::Span phase = obs::span("resolver.build");
    resolver_ = analysis::IpToAsn::from_world(*world_);
  }
  ran_ = true;
  CLOUDRTT_LOG_INFO("study.done", {"streamed", streamed_},
                    {"pings", sc_data_.pings.size()},
                    {"traceroutes", sc_data_.traces.size()},
                    {"atlas_pings", atlas_data_.pings.size()});
}

analysis::StudyView Study::view() const {
  CLOUDRTT_CHECK(ran_, "Study::view: call run() first");
  CLOUDRTT_CHECK(!streamed_,
                 "Study::view: a streamed run keeps no rows in memory — "
                 "analyse the store, or rerun without RunControl::stream");
  analysis::StudyView view;
  view.world = world_.get();
  view.sc_fleet = sc_fleet_.get();
  view.sc_data = &sc_data_;
  if (atlas_fleet_) {
    view.atlas_fleet = atlas_fleet_.get();
    view.atlas_data = &atlas_data_;
  }
  view.resolver = &resolver_;
  return view;
}

}  // namespace cloudrtt::core

#include "core/study.hpp"

#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace cloudrtt::core {

Study::Study(StudyConfig config) : config_(config) {
  obs::Span build = obs::span("study.build");
  config_.sc_campaign.threads = config_.threads;
  config_.atlas_campaign.threads = config_.threads;
  topology::WorldConfig world_config;
  world_config.seed = config_.seed;
  world_config.enable_uplink_gateways = config_.enable_uplink_gateways;
  world_config.enable_edge_pops = config_.enable_edge_pops;
  world_ = std::make_unique<topology::World>(world_config);

  probes::FleetConfig sc_config;
  sc_config.platform = probes::Platform::Speedchecker;
  sc_config.target_count = config_.sc_probes;
  sc_config.access_override = config_.sc_access_override;
  sc_config.air_scale = config_.sc_air_scale;
  sc_fleet_ = std::make_unique<probes::ProbeFleet>(*world_, sc_config);
  if (config_.include_atlas) {
    atlas_fleet_ = std::make_unique<probes::ProbeFleet>(
        *world_,
        probes::FleetConfig{probes::Platform::RipeAtlas, config_.atlas_probes});
  }
}

void Study::run() { run(RunControl{}); }

bool Study::run_campaign(std::string_view platform,
                         const measure::Campaign& campaign, util::Rng rng,
                         const fault::FaultPlan* plan,
                         const RunControl& control, measure::Dataset& out) {
  measure::CampaignState start;
  measure::Dataset dataset;
  if (control.resume && !control.checkpoint_dir.empty() &&
      checkpoint_exists(control.checkpoint_dir, platform)) {
    CheckpointLoad load = load_checkpoint(control.checkpoint_dir, platform,
                                          sc_fleet_.get(), atlas_fleet_.get());
    if (!load.ok()) {
      throw std::runtime_error{"Study::run: cannot resume '" +
                               std::string{platform} + "': " + load.error};
    }
    if (load.meta.seed != config_.seed) {
      throw std::runtime_error{
          "Study::run: checkpoint for '" + std::string{platform} +
          "' was written by seed " + std::to_string(load.meta.seed) +
          ", this study uses " + std::to_string(config_.seed)};
    }
    start = load.meta.state;
    dataset = std::move(load.data);
    CLOUDRTT_LOG_INFO("study.resume", {"platform", platform},
                      {"next_day", start.next_day},
                      {"pings", dataset.pings.size()});
  }

  measure::RunHooks hooks;
  hooks.faults = plan;
  bool stopped = false;
  if (!control.checkpoint_dir.empty() || control.stop_after_day) {
    hooks.after_day = [&](const measure::CampaignState& state,
                          const measure::Dataset& data) {
      if (!control.checkpoint_dir.empty()) {
        CheckpointMeta meta;
        meta.state = state;
        meta.seed = config_.seed;
        meta.platform = std::string{platform};
        meta.fault_profile = std::string{to_string(config_.fault_profile)};
        if (const std::string err =
                save_checkpoint(control.checkpoint_dir, meta, data);
            !err.empty()) {
          CLOUDRTT_LOG_WARN("study.checkpoint_failed", {"platform", platform},
                            {"error", err});
        }
      }
      if (control.stop_after_day && state.next_day >= *control.stop_after_day) {
        stopped = true;
        return false;
      }
      return true;
    };
  }
  out = campaign.run(rng, start, hooks, std::move(dataset));
  return !stopped;
}

void Study::run(const RunControl& control) {
  obs::Span run_span = obs::span("study.run");
  const std::optional<fault::FaultPlan> sc_plan =
      fault::FaultPlan::make(*world_, config_.sc_campaign.days,
                             config_.fault_profile, config_.fault_seed);
  bool complete = true;
  {
    obs::Span phase = obs::span("campaign.speedchecker");
    CLOUDRTT_LOG_INFO("study.campaign.start", {"platform", "speedchecker"},
                      {"probes", sc_fleet_->probes().size()},
                      {"days", config_.sc_campaign.days},
                      {"fault_profile", to_string(config_.fault_profile)});
    const measure::Campaign sc_campaign{*world_, *sc_fleet_, config_.sc_campaign};
    complete &= run_campaign("speedchecker", sc_campaign,
                             world_->fork_rng("campaign/speedchecker"),
                             sc_plan ? &*sc_plan : nullptr, control, sc_data_);
  }
  // Campaigns are independent: router addressing is pre-materialized at
  // world construction and each platform forks its own RNG stream, so Atlas
  // runs its days even when Speedchecker stopped early at a checkpoint —
  // resuming either campaign later stays bit-identical.
  if (atlas_fleet_) {
    obs::Span phase = obs::span("campaign.atlas");
    CLOUDRTT_LOG_INFO("study.campaign.start", {"platform", "atlas"},
                      {"probes", atlas_fleet_->probes().size()},
                      {"days", config_.atlas_campaign.days});
    // Independent failure history for the second platform: real outages on
    // Speedchecker's scheduler never lined up with Atlas's.
    const std::optional<fault::FaultPlan> atlas_plan =
        fault::FaultPlan::make(*world_, config_.atlas_campaign.days,
                               config_.fault_profile, config_.fault_seed + 1);
    const measure::Campaign atlas_campaign{*world_, *atlas_fleet_,
                                           config_.atlas_campaign};
    complete &= run_campaign("atlas", atlas_campaign,
                             world_->fork_rng("campaign/atlas"),
                             atlas_plan ? &*atlas_plan : nullptr, control,
                             atlas_data_);
  }
  if (!complete) {
    ran_ = false;
    CLOUDRTT_LOG_INFO("study.stopped_early",
                      {"stop_after_day", control.stop_after_day.value_or(0)});
    return;
  }
  {
    obs::Span phase = obs::span("resolver.build");
    resolver_ = analysis::IpToAsn::from_world(*world_);
  }
  ran_ = true;
  CLOUDRTT_LOG_INFO("study.done", {"pings", sc_data_.pings.size()},
                    {"traceroutes", sc_data_.traces.size()},
                    {"atlas_pings", atlas_data_.pings.size()});
}

analysis::StudyView Study::view() const {
  CLOUDRTT_CHECK(ran_, "Study::view: call run() first");
  analysis::StudyView view;
  view.world = world_.get();
  view.sc_fleet = sc_fleet_.get();
  view.sc_data = &sc_data_;
  if (atlas_fleet_) {
    view.atlas_fleet = atlas_fleet_.get();
    view.atlas_data = &atlas_data_;
  }
  view.resolver = &resolver_;
  return view;
}

}  // namespace cloudrtt::core

#pragma once
// Study: the one-call public API.
//
//   cloudrtt::core::Study study{cloudrtt::core::StudyConfig::quick()};
//   study.run();
//   auto rows = cloudrtt::analysis::fig3_country_latency(study.view());
//
// Construction builds the synthetic Internet and both probe fleets; run()
// executes the Speedchecker campaign (Oct 2020 – Apr 2021 in the paper) and
// the RIPE Atlas campaign (the Corneo et al. dataset), then bootstraps the
// analysis resolver from the world's public data products.

#include <memory>
#include <optional>
#include <string>

#include "analysis/resolve.hpp"
#include "analysis/study_view.hpp"
#include "fault/plan.hpp"
#include "measure/campaign.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"

namespace cloudrtt::core {

struct StudyConfig {
  std::uint64_t seed = 42;
  std::size_t sc_probes = 6000;     ///< scaled stand-in for the 115k fleet
  std::size_t atlas_probes = 1500;  ///< scaled stand-in for the 8.5k fleet
  bool include_atlas = true;
  /// Worker threads for campaign execution on both platforms (copied into
  /// the campaign configs at construction). The dataset is bit-identical
  /// for any value; 1 = sequential.
  unsigned threads = 1;
  measure::CampaignConfig sc_campaign;
  measure::CampaignConfig atlas_campaign;

  // --- ablation / what-if knobs (see bench/ablation_* and bench/whatif_5g) --
  /// Disable the gateway hairpins of under-served regions.
  bool enable_uplink_gateways = true;
  /// Disable every cloud edge PoP (a world without §2.3's investments).
  bool enable_edge_pops = true;
  /// Force the Speedchecker fleet onto one access technology.
  std::optional<lastmile::AccessTech> sc_access_override;
  /// Scale the wireless radio-leg medians (0.15 ~ optimistic 5G).
  double sc_air_scale = 1.0;

  // --- fault injection (see README "Fault injection & chaos testing") ------
  /// Fault-episode intensity applied to both campaigns; None (default) runs
  /// the campaigns bit-identically to a build without the fault subsystem.
  fault::FaultProfile fault_profile = fault::FaultProfile::None;
  /// Disk-fault intensity for the streaming store's I/O layer (EIO, torn
  /// appends, lying fsyncs — see store::FaultyIoEnv). Independent of
  /// `fault_profile`: I/O faults decide what is durable, never what the
  /// dataset contains, so any value leaves the dataset bits unchanged.
  fault::FaultProfile io_fault_profile = fault::FaultProfile::None;
  /// Seed of the fault schedule, independent of the study seed so the same
  /// world can be stressed with different failure histories.
  std::uint64_t fault_seed = 1337;

  StudyConfig() {
    sc_campaign.days = 10;
    sc_campaign.daily_budget = 15000;
    sc_campaign.run_case_studies = true;
    sc_campaign.paper_fleet_size = 115000.0;
    atlas_campaign.days = 8;
    atlas_campaign.daily_budget = 3500;
    atlas_campaign.run_case_studies = false;
    atlas_campaign.paper_fleet_size = 8500.0;
    // Corneo et al. measured from every connected Atlas probe; the >=100
    // per-country rule is a Speedchecker scheduling constraint only.
    atlas_campaign.paper_country_threshold = 1.0;
  }

  /// Small configuration for unit tests and quick-start examples.
  [[nodiscard]] static StudyConfig quick() {
    StudyConfig config;
    config.sc_probes = 1200;
    config.atlas_probes = 400;
    config.sc_campaign.days = 3;
    config.sc_campaign.daily_budget = 2500;
    config.sc_campaign.case_study_probes = 5;
    config.atlas_campaign.days = 3;
    config.atlas_campaign.daily_budget = 900;
    return config;
  }
};

/// How one run() invocation interacts with persistence and early stopping.
struct RunControl {
  /// Directory for per-day checkpoints; empty disables checkpointing.
  /// Checkpoints are written as a format=3 streaming store: rows spill to
  /// per-lane shard files at the end of every day and an atomically-renamed
  /// manifest is the commit point (see store/shard_writer.hpp).
  std::string checkpoint_dir;
  /// Where shard files spill; empty = alongside the checkpoints in
  /// `checkpoint_dir`. Lets a campaign stream to scratch storage while the
  /// (tiny) manifest lives with the rest of the run's artefacts.
  std::string spill_dir;
  /// Resume from `checkpoint_dir` when a committed checkpoint exists there
  /// (resuming replays the remaining days bit-identically, salvaging any
  /// uncommitted shard tail a crash left behind; a legacy format=2 CSV
  /// checkpoint is migrated to the streaming store first). Throws
  /// std::runtime_error when the checkpoint is corrupt or from another seed.
  bool resume = false;
  /// Stop each campaign once this many days have completed (campaign days
  /// are counted from day 0, so resume + a larger value continues). The
  /// study is left incomplete; completed() reports false. Campaigns are
  /// independent — router addressing is pre-materialized at world
  /// construction and each platform forks its own RNG stream — so a stopped
  /// Speedchecker campaign no longer blocks Atlas from running its days.
  std::optional<std::uint32_t> stop_after_day;
  /// Stream each day's rows to the store and drop them from memory once the
  /// day commits: RAM high-water is O(one day's columns), not O(study).
  /// Requires `checkpoint_dir` (throws otherwise). The in-memory datasets
  /// and view() are unavailable after a streamed run; the dataset hash comes
  /// from core::streamed_dataset_hash over the store instead, and is
  /// bit-identical to the in-memory hash of a non-streamed run. This is what
  /// makes `--scale paper` (115k probes) fit in a laptop's RAM.
  bool stream = false;
};

class Study {
 public:
  explicit Study(StudyConfig config = {});

  /// Execute both campaigns; idempotent (re-running replaces the datasets).
  void run();

  /// run() with checkpointing / resume / early stop. run() == run({}).
  void run(const RunControl& control);

  /// True once run() has finished every campaign day (an early-stopped run
  /// leaves the study incomplete and its view() unavailable).
  [[nodiscard]] bool completed() const { return ran_; }

  /// True when the last run() streamed rows to the store (RunControl::stream):
  /// the in-memory datasets are empty and view() is unavailable — analyse the
  /// store (or recompute the hash with core::streamed_dataset_hash) instead.
  [[nodiscard]] bool streamed() const { return streamed_; }

  [[nodiscard]] const topology::World& world() const { return *world_; }
  [[nodiscard]] topology::World& world() { return *world_; }
  [[nodiscard]] const probes::ProbeFleet& sc_fleet() const { return *sc_fleet_; }
  [[nodiscard]] const probes::ProbeFleet& atlas_fleet() const { return *atlas_fleet_; }
  [[nodiscard]] const measure::Dataset& sc_dataset() const { return sc_data_; }
  [[nodiscard]] const measure::Dataset& atlas_dataset() const { return atlas_data_; }
  [[nodiscard]] const analysis::IpToAsn& resolver() const { return resolver_; }
  [[nodiscard]] const StudyConfig& config() const { return config_; }

  /// Bundle consumed by every analysis::fig* experiment. Valid after run().
  [[nodiscard]] analysis::StudyView view() const;

 private:
  /// Runs one campaign with fault plan + checkpoint hooks; returns true when
  /// every day completed (false = stopped early by control.stop_after_day).
  bool run_campaign(std::string_view platform, const measure::Campaign& campaign,
                    util::Rng rng, const fault::FaultPlan* plan,
                    const RunControl& control, measure::Dataset& out);

  StudyConfig config_;
  std::unique_ptr<topology::World> world_;
  std::unique_ptr<probes::ProbeFleet> sc_fleet_;
  std::unique_ptr<probes::ProbeFleet> atlas_fleet_;
  measure::Dataset sc_data_;
  measure::Dataset atlas_data_;
  analysis::IpToAsn resolver_;
  bool ran_ = false;
  bool streamed_ = false;
};

}  // namespace cloudrtt::core

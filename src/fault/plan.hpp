#pragma once
// Fault-injection subsystem: a deterministic, seed-driven schedule of fault
// episodes over campaign days. The paper's six-month campaign lived through
// exactly these failures — Android probes churning offline mid-slot, the
// platform API rejecting or timing out task submissions, cloud regions
// browning out, and submarine-cable cuts rerouting whole continents — so the
// campaign driver must survive them too.
//
// Everything is off by default: a campaign run without a FaultPlan makes no
// fault-related RNG draws and takes no fault branches beyond one null check,
// so the no-fault hot path is bit-identical to a build without this
// subsystem. With a plan installed, every episode is derived from
// (seed, day) alone, so a checkpointed run resumed at day N replays the
// exact same fault schedule.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "topology/world.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cloudrtt::fault {

/// Documented fault-intensity presets (the CLI's --fault-profile values).
enum class FaultProfile : unsigned char { None, Mild, Harsh };

[[nodiscard]] constexpr std::string_view to_string(FaultProfile profile) {
  switch (profile) {
    case FaultProfile::None: return "none";
    case FaultProfile::Mild: return "mild";
    case FaultProfile::Harsh: return "harsh";
  }
  return "?";
}

[[nodiscard]] std::optional<FaultProfile> profile_from_string(std::string_view text);

/// Per-fault-class intensities. `for_profile` returns the documented presets
/// (see README "Fault injection & chaos testing"); the fields can also be set
/// individually for targeted chaos tests.
struct FaultIntensity {
  /// Multiplier on every probe's availability (probe churn; 1.0 = nominal).
  double churn_factor = 1.0;
  /// P[a selected probe drops offline mid-visit, losing its remaining tasks].
  double mid_visit_drop = 0.0;
  /// Expected number of one-slot platform API outages per day (0..6).
  double api_outages_per_day = 0.0;
  /// P[a task submission fails transiently] outside outages.
  double task_failure_rate = 0.0;
  /// Expected cloud-region endpoint brownouts per day.
  double region_brownouts_per_day = 0.0;
  /// Expected backbone link failures (submarine-cable cuts) per day.
  double backbone_cuts_per_day = 0.0;
  /// P[a traceroute is truncated mid-path] (doubled on cable-cut days).
  double trace_truncate_prob = 0.0;

  [[nodiscard]] static FaultIntensity for_profile(FaultProfile profile);
};

/// Disk-fault intensities for the streaming store (store::FaultyIoEnv).
/// Probabilities are per I/O operation. Unlike the measurement fault classes
/// above, I/O faults shape *durability*, never the dataset bits — salvage +
/// deterministic replay reconstruct the same rows whatever the disk did — so
/// their draws carry no cross-resume determinism contract.
struct IoFaults {
  double append_error_rate = 0.0;   ///< P[an append fails outright (EIO)]
  double short_write_rate = 0.0;    ///< P[an append tears: prefix lands, then EIO]
  double fsync_failure_rate = 0.0;  ///< P[data lands but fsync reports failure]
  std::uint64_t disk_capacity_bytes = 0;  ///< 0 = unlimited; ENOSPC beyond

  [[nodiscard]] bool any() const {
    return append_error_rate > 0.0 || short_write_rate > 0.0 ||
           fsync_failure_rate > 0.0 || disk_capacity_bytes > 0;
  }
  /// Documented presets behind the CLI's --io-fault-profile values.
  [[nodiscard]] static IoFaults for_profile(FaultProfile profile);
};

/// Capped exponential backoff for failed task submissions. Delays are
/// virtual (simulated) milliseconds: the simulator has no wall clock, but
/// the histogram of produced delays documents the schedule and the cap.
struct RetryPolicy {
  std::size_t max_attempts = 4;   ///< total submission attempts per task
  double base_backoff_ms = 250.0;
  double backoff_cap_ms = 4000.0;

  /// Backoff before retry `attempt` (1-based), with +-25% deterministic
  /// jitter drawn from `rng`.
  [[nodiscard]] double backoff_ms(std::size_t attempt, util::Rng& rng) const;
};

/// Fault hook consumed by measure::Engine::traceroute. Kept tiny so the
/// disabled path is a single pointer null check.
struct TraceFaults {
  double truncate_prob = 0.0;  ///< P[trace loses connectivity mid-path]
  double loss_boost = 0.0;     ///< extra per-hop response-loss probability
};

/// Everything that is wrong with one simulated day.
struct DayFaults {
  double churn_factor = 1.0;
  double mid_visit_drop = 0.0;
  double task_failure_rate = 0.0;
  std::array<bool, 6> api_down{};  ///< platform API outage per 4-hour slot
  std::vector<std::size_t> regions_down;  ///< endpoint indices browned out
  /// Country pairs whose backbone links are severed for the day.
  std::vector<std::pair<std::string_view, std::string_view>> backbone_cuts;
  TraceFaults trace_faults;

  [[nodiscard]] bool api_down_in_slot(std::uint8_t slot) const {
    return api_down[slot % api_down.size()];
  }
  [[nodiscard]] bool region_is_down(std::size_t endpoint_index) const {
    for (const std::size_t idx : regions_down) {
      if (idx == endpoint_index) return true;
    }
    return false;
  }
  /// True when any fault class is active today (campaigns skip the fault
  /// machinery entirely on clean days).
  [[nodiscard]] bool any() const;
};

/// Deterministic per-day fault schedule for one campaign. Construction draws
/// every episode up front from `seed` alone; queries are read-only.
class FaultPlan {
 public:
  FaultPlan(const topology::World& world, std::uint32_t days,
            const FaultIntensity& intensity, std::uint64_t seed);

  /// Profile-based factory; None yields an empty optional (no plan at all).
  [[nodiscard]] static std::optional<FaultPlan> make(const topology::World& world,
                                                    std::uint32_t days,
                                                    FaultProfile profile,
                                                    std::uint64_t seed);

  [[nodiscard]] const DayFaults& day(std::uint32_t d) const {
    CLOUDRTT_CHECK(d < days_.size(), "fault day ", d, " outside the ",
                   days_.size(), "-day schedule");
    return days_[d];
  }
  [[nodiscard]] std::uint32_t days() const {
    return static_cast<std::uint32_t>(days_.size());
  }
  [[nodiscard]] const RetryPolicy& retry() const { return retry_; }
  [[nodiscard]] const FaultIntensity& intensity() const { return intensity_; }

  /// Episode totals across the whole plan (for logs, tests, summaries).
  struct Totals {
    std::size_t api_outage_slots = 0;
    std::size_t region_brownouts = 0;
    std::size_t backbone_cuts = 0;
    std::size_t faulty_days = 0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  FaultIntensity intensity_;
  RetryPolicy retry_;
  std::vector<DayFaults> days_;
};

}  // namespace cloudrtt::fault

#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>

namespace cloudrtt::fault {

std::optional<FaultProfile> profile_from_string(std::string_view text) {
  if (text == "none") return FaultProfile::None;
  if (text == "mild") return FaultProfile::Mild;
  if (text == "harsh") return FaultProfile::Harsh;
  return std::nullopt;
}

FaultIntensity FaultIntensity::for_profile(FaultProfile profile) {
  FaultIntensity intensity;
  switch (profile) {
    case FaultProfile::None:
      break;
    case FaultProfile::Mild:
      // The documented default chaos level: the fig4/fig10 shapes and >=80%
      // of the nominal budget must survive it (tests/fault_test.cpp).
      intensity.churn_factor = 0.90;
      intensity.mid_visit_drop = 0.02;
      intensity.api_outages_per_day = 0.30;
      intensity.task_failure_rate = 0.02;
      intensity.region_brownouts_per_day = 0.20;
      intensity.backbone_cuts_per_day = 0.15;
      intensity.trace_truncate_prob = 0.01;
      break;
    case FaultProfile::Harsh:
      intensity.churn_factor = 0.60;
      intensity.mid_visit_drop = 0.08;
      intensity.api_outages_per_day = 1.50;
      intensity.task_failure_rate = 0.10;
      intensity.region_brownouts_per_day = 1.00;
      intensity.backbone_cuts_per_day = 0.50;
      intensity.trace_truncate_prob = 0.05;
      break;
  }
  return intensity;
}

IoFaults IoFaults::for_profile(FaultProfile profile) {
  IoFaults faults;
  switch (profile) {
    case FaultProfile::None:
      break;
    case FaultProfile::Mild:
      // Occasional write hiccups: the store should ride through them with a
      // handful of retried blocks and no degraded episodes longer than a day.
      faults.append_error_rate = 0.02;
      faults.short_write_rate = 0.01;
      faults.fsync_failure_rate = 0.01;
      break;
    case FaultProfile::Harsh:
      // Roughly one in five block appends fails some way; the crash-loop CI
      // gate runs kill -9 on top of this and still demands bit-identity.
      faults.append_error_rate = 0.10;
      faults.short_write_rate = 0.05;
      faults.fsync_failure_rate = 0.05;
      break;
  }
  return faults;
}

double RetryPolicy::backoff_ms(std::size_t attempt, util::Rng& rng) const {
  const double exponent = attempt == 0 ? 0.0 : static_cast<double>(attempt - 1);
  const double nominal = base_backoff_ms * std::pow(2.0, exponent);
  return std::min(backoff_cap_ms, nominal) * rng.uniform(0.75, 1.25);
}

bool DayFaults::any() const {
  if (churn_factor != 1.0 || mid_visit_drop > 0.0 || task_failure_rate > 0.0 ||
      trace_faults.truncate_prob > 0.0 || trace_faults.loss_boost > 0.0) {
    return true;
  }
  if (!regions_down.empty() || !backbone_cuts.empty()) return true;
  return std::any_of(api_down.begin(), api_down.end(), [](bool b) { return b; });
}

namespace {

/// Expected-count sampler: floor(x) events plus one more with P[frac(x)].
[[nodiscard]] std::size_t draw_count(double expected, util::Rng& rng) {
  const double clamped = std::max(0.0, expected);
  auto count = static_cast<std::size_t>(clamped);
  if (rng.chance(clamped - std::floor(clamped))) ++count;
  return count;
}

}  // namespace

FaultPlan::FaultPlan(const topology::World& world, std::uint32_t days,
                     const FaultIntensity& intensity, std::uint64_t seed)
    : intensity_(intensity) {
  // Submarine cables are the episode pool for backbone cuts: terrestrial
  // corridors have protection routes, cable cuts are the week-long events
  // the paper's kind of campaign actually loses paths to.
  std::vector<const topology::BackboneLinkRef*> cables;
  for (const topology::BackboneLinkRef& link : world.backbone().links()) {
    if (link.kind == topology::LinkKind::Submarine) cables.push_back(&link);
  }
  const std::size_t endpoint_count = world.endpoints().size();

  const util::Rng root{seed};
  days_.reserve(days);
  for (std::uint32_t d = 0; d < days; ++d) {
    util::Rng rng = root.fork(d);
    DayFaults day;
    day.churn_factor = intensity.churn_factor;
    day.mid_visit_drop = intensity.mid_visit_drop;
    day.task_failure_rate = intensity.task_failure_rate;

    const double slot_down_prob =
        std::min(1.0, intensity.api_outages_per_day / 6.0);
    for (std::size_t slot = 0; slot < day.api_down.size(); ++slot) {
      day.api_down[slot] = rng.chance(slot_down_prob);
    }

    if (endpoint_count > 0) {
      const std::size_t brownouts =
          draw_count(intensity.region_brownouts_per_day, rng);
      for (std::size_t i = 0; i < brownouts; ++i) {
        day.regions_down.push_back(
            static_cast<std::size_t>(rng.below(endpoint_count)));
      }
    }

    if (!cables.empty()) {
      const std::size_t cuts = draw_count(intensity.backbone_cuts_per_day, rng);
      for (std::size_t i = 0; i < cuts; ++i) {
        const topology::BackboneLinkRef& cable = *rng.pick(cables);
        day.backbone_cuts.emplace_back(cable.a, cable.b);
      }
    }

    day.trace_faults.truncate_prob =
        intensity.trace_truncate_prob * (day.backbone_cuts.empty() ? 1.0 : 2.0);
    day.trace_faults.loss_boost = day.backbone_cuts.empty() ? 0.0 : 0.03;
    days_.push_back(std::move(day));
  }
}

std::optional<FaultPlan> FaultPlan::make(const topology::World& world,
                                         std::uint32_t days, FaultProfile profile,
                                         std::uint64_t seed) {
  if (profile == FaultProfile::None) return std::nullopt;
  return FaultPlan{world, days, FaultIntensity::for_profile(profile), seed};
}

FaultPlan::Totals FaultPlan::totals() const {
  Totals totals;
  for (const DayFaults& day : days_) {
    totals.api_outage_slots += static_cast<std::size_t>(
        std::count(day.api_down.begin(), day.api_down.end(), true));
    totals.region_brownouts += day.regions_down.size();
    totals.backbone_cuts += day.backbone_cuts.size();
    if (day.any()) ++totals.faulty_days;
  }
  return totals;
}

}  // namespace cloudrtt::fault

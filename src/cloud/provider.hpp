#pragma once
// Cloud provider catalogue (Table 1 of the paper): the nine providers (plus
// Amazon Lightsail, listed separately in the table), their backbone class,
// and the AS number their WAN announces in the simulator.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace cloudrtt::cloud {

enum class ProviderId : unsigned char {
  Amazon,         // AMZN (EC2)
  Google,         // GCP
  Microsoft,      // MSFT
  DigitalOcean,   // DO
  Alibaba,        // BABA
  Vultr,          // VLTR
  Linode,         // LIN
  Lightsail,      // LTSL (Amazon Lightsail)
  Oracle,         // ORCL
  Ibm,            // IBM
};

inline constexpr std::array<ProviderId, 10> kAllProviders{
    ProviderId::Amazon,   ProviderId::Google,       ProviderId::Microsoft,
    ProviderId::DigitalOcean, ProviderId::Alibaba,  ProviderId::Vultr,
    ProviderId::Linode,   ProviderId::Lightsail,    ProviderId::Oracle,
    ProviderId::Ibm,
};

/// The nine providers of Fig. 10/11/12/13 (Lightsail folded into Amazon
/// in the peering figures, as in the paper).
inline constexpr std::array<ProviderId, 9> kPeeringFigureProviders{
    ProviderId::Alibaba, ProviderId::Amazon,  ProviderId::DigitalOcean,
    ProviderId::Google,  ProviderId::Ibm,     ProviderId::Linode,
    ProviderId::Microsoft, ProviderId::Oracle, ProviderId::Vultr,
};

/// Backbone network class from Table 1: fully private WAN, private within a
/// continent (semi), or public-Internet transport.
enum class BackboneClass : unsigned char { Private, Semi, Public };

struct ProviderInfo {
  ProviderId id;
  std::string_view ticker;   ///< the paper's short label, e.g. "AMZN"
  std::string_view name;
  BackboneClass backbone;
  std::uint32_t asn;         ///< WAN ASN in the simulated topology
  bool hypergiant;           ///< the "big-3" of the paper
};

[[nodiscard]] const ProviderInfo& provider_info(ProviderId id);
[[nodiscard]] std::optional<ProviderId> provider_from_ticker(std::string_view ticker);
[[nodiscard]] constexpr std::size_t provider_index(ProviderId id) {
  return static_cast<std::size_t>(id);
}
inline constexpr std::size_t kProviderCount = kAllProviders.size();

}  // namespace cloudrtt::cloud

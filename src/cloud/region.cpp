#include "cloud/region.hpp"

namespace cloudrtt::cloud {

namespace {

using C = geo::Continent;
using P = ProviderId;

constexpr RegionInfo kRegions[] = {
    // ---- Amazon EC2: EU 6, NA 6, SA 1, AS 6, AF 1, OC 1 -------------------
    {P::Amazon, "eu-central-1", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Amazon, "eu-west-1", "Dublin", "IE", C::Europe, {53.35, -6.26}},
    {P::Amazon, "eu-west-2", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Amazon, "eu-west-3", "Paris", "FR", C::Europe, {48.86, 2.35}},
    {P::Amazon, "eu-north-1", "Stockholm", "SE", C::Europe, {59.33, 18.07}},
    {P::Amazon, "eu-south-1", "Milan", "IT", C::Europe, {45.46, 9.19}},
    {P::Amazon, "us-east-1", "Ashburn", "US", C::NorthAmerica, {39.04, -77.49}},
    {P::Amazon, "us-east-2", "Columbus", "US", C::NorthAmerica, {39.96, -83.00}},
    {P::Amazon, "us-west-1", "San Francisco", "US", C::NorthAmerica, {37.77, -122.42}},
    {P::Amazon, "us-west-2", "Portland", "US", C::NorthAmerica, {45.52, -122.68}},
    {P::Amazon, "us-gov-east-1", "Richmond", "US", C::NorthAmerica, {37.54, -77.44}},
    {P::Amazon, "ca-central-1", "Montreal", "CA", C::NorthAmerica, {45.50, -73.57}},
    {P::Amazon, "sa-east-1", "Sao Paulo", "BR", C::SouthAmerica, {-23.55, -46.63}},
    {P::Amazon, "ap-northeast-1", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Amazon, "ap-northeast-2", "Seoul", "KR", C::Asia, {37.57, 126.98}},
    {P::Amazon, "ap-southeast-1", "Singapore", "SG", C::Asia, {1.35, 103.82}},
    {P::Amazon, "ap-south-1", "Mumbai", "IN", C::Asia, {19.08, 72.88}},
    {P::Amazon, "ap-east-1", "Hong Kong", "HK", C::Asia, {22.32, 114.17}},
    {P::Amazon, "me-south-1", "Manama", "BH", C::Asia, {26.23, 50.59}},
    {P::Amazon, "af-south-1", "Cape Town", "ZA", C::Africa, {-33.92, 18.42}},
    {P::Amazon, "ap-southeast-2", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    // ---- Google Cloud: EU 6, NA 10, SA 1, AS 8, OC 1 -----------------------
    {P::Google, "europe-west3", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Google, "europe-west1", "St. Ghislain", "BE", C::Europe, {50.45, 3.82}},
    {P::Google, "europe-west2", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Google, "europe-west4", "Eemshaven", "NL", C::Europe, {53.44, 6.83}},
    {P::Google, "europe-west6", "Zurich", "CH", C::Europe, {47.38, 8.54}},
    {P::Google, "europe-north1", "Hamina", "FI", C::Europe, {60.57, 27.20}},
    {P::Google, "us-central1", "Council Bluffs", "US", C::NorthAmerica, {41.26, -95.86}},
    {P::Google, "us-east1", "Moncks Corner", "US", C::NorthAmerica, {33.20, -80.01}},
    {P::Google, "us-east4", "Ashburn", "US", C::NorthAmerica, {39.04, -77.49}},
    {P::Google, "us-west1", "The Dalles", "US", C::NorthAmerica, {45.59, -121.18}},
    {P::Google, "us-west2", "Los Angeles", "US", C::NorthAmerica, {34.05, -118.24}},
    {P::Google, "us-west3", "Salt Lake City", "US", C::NorthAmerica, {40.76, -111.89}},
    {P::Google, "us-west4", "Las Vegas", "US", C::NorthAmerica, {36.17, -115.14}},
    {P::Google, "us-south1", "Dallas", "US", C::NorthAmerica, {32.78, -96.80}},
    {P::Google, "na-northeast1", "Montreal", "CA", C::NorthAmerica, {45.50, -73.57}},
    {P::Google, "na-northeast2", "Toronto", "CA", C::NorthAmerica, {43.65, -79.38}},
    {P::Google, "southamerica-east1", "Sao Paulo", "BR", C::SouthAmerica, {-23.55, -46.63}},
    {P::Google, "asia-northeast1", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Google, "asia-northeast2", "Osaka", "JP", C::Asia, {34.69, 135.50}},
    {P::Google, "asia-northeast3", "Seoul", "KR", C::Asia, {37.57, 126.98}},
    {P::Google, "asia-east1", "Changhua", "TW", C::Asia, {24.07, 120.54}},
    {P::Google, "asia-east2", "Hong Kong", "HK", C::Asia, {22.32, 114.17}},
    {P::Google, "asia-southeast1", "Singapore", "SG", C::Asia, {1.35, 103.82}},
    {P::Google, "asia-southeast2", "Jakarta", "ID", C::Asia, {-6.21, 106.85}},
    {P::Google, "asia-south1", "Mumbai", "IN", C::Asia, {19.08, 72.88}},
    {P::Google, "australia-southeast1", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    // ---- Microsoft Azure: EU 14, NA 10, SA 1, AS 15, AF 2, OC 4 ------------
    {P::Microsoft, "westeurope", "Amsterdam", "NL", C::Europe, {52.37, 4.90}},
    {P::Microsoft, "northeurope", "Dublin", "IE", C::Europe, {53.35, -6.26}},
    {P::Microsoft, "uksouth", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Microsoft, "ukwest", "Cardiff", "GB", C::Europe, {51.48, -3.18}},
    {P::Microsoft, "germanywestcentral", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Microsoft, "germanynorth", "Berlin", "DE", C::Europe, {52.52, 13.40}},
    {P::Microsoft, "francecentral", "Paris", "FR", C::Europe, {48.86, 2.35}},
    {P::Microsoft, "francesouth", "Marseille", "FR", C::Europe, {43.30, 5.37}},
    {P::Microsoft, "switzerlandnorth", "Zurich", "CH", C::Europe, {47.38, 8.54}},
    {P::Microsoft, "switzerlandwest", "Geneva", "CH", C::Europe, {46.20, 6.14}},
    {P::Microsoft, "norwayeast", "Oslo", "NO", C::Europe, {59.91, 10.75}},
    {P::Microsoft, "norwaywest", "Stavanger", "NO", C::Europe, {58.97, 5.73}},
    {P::Microsoft, "swedencentral", "Gavle", "SE", C::Europe, {60.67, 17.14}},
    {P::Microsoft, "italynorth", "Milan", "IT", C::Europe, {45.46, 9.19}},
    {P::Microsoft, "eastus", "Ashburn", "US", C::NorthAmerica, {39.04, -77.49}},
    {P::Microsoft, "eastus2", "Richmond", "US", C::NorthAmerica, {37.54, -77.44}},
    {P::Microsoft, "centralus", "Des Moines", "US", C::NorthAmerica, {41.59, -93.62}},
    {P::Microsoft, "northcentralus", "Chicago", "US", C::NorthAmerica, {41.88, -87.63}},
    {P::Microsoft, "southcentralus", "San Antonio", "US", C::NorthAmerica, {29.42, -98.49}},
    {P::Microsoft, "westcentralus", "Cheyenne", "US", C::NorthAmerica, {41.14, -104.82}},
    {P::Microsoft, "westus", "Los Angeles", "US", C::NorthAmerica, {34.05, -118.24}},
    {P::Microsoft, "westus2", "Seattle", "US", C::NorthAmerica, {47.61, -122.33}},
    {P::Microsoft, "canadacentral", "Toronto", "CA", C::NorthAmerica, {43.65, -79.38}},
    {P::Microsoft, "canadaeast", "Quebec City", "CA", C::NorthAmerica, {46.81, -71.21}},
    {P::Microsoft, "brazilsouth", "Sao Paulo", "BR", C::SouthAmerica, {-23.55, -46.63}},
    {P::Microsoft, "eastasia", "Hong Kong", "HK", C::Asia, {22.32, 114.17}},
    {P::Microsoft, "southeastasia", "Singapore", "SG", C::Asia, {1.35, 103.82}},
    {P::Microsoft, "japaneast", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Microsoft, "japanwest", "Osaka", "JP", C::Asia, {34.69, 135.50}},
    {P::Microsoft, "koreacentral", "Seoul", "KR", C::Asia, {37.57, 126.98}},
    {P::Microsoft, "koreasouth", "Busan", "KR", C::Asia, {35.18, 129.08}},
    {P::Microsoft, "centralindia", "Pune", "IN", C::Asia, {18.52, 73.86}},
    {P::Microsoft, "southindia", "Chennai", "IN", C::Asia, {13.08, 80.27}},
    {P::Microsoft, "westindia", "Mumbai", "IN", C::Asia, {19.08, 72.88}},
    {P::Microsoft, "uaenorth", "Dubai", "AE", C::Asia, {25.20, 55.27}},
    {P::Microsoft, "uaecentral", "Abu Dhabi", "AE", C::Asia, {24.45, 54.38}},
    {P::Microsoft, "chinanorth", "Beijing", "CN", C::Asia, {39.90, 116.41}},
    {P::Microsoft, "chinanorth2", "Beijing", "CN", C::Asia, {39.92, 116.38}},
    {P::Microsoft, "chinaeast", "Shanghai", "CN", C::Asia, {31.23, 121.47}},
    {P::Microsoft, "chinaeast2", "Shanghai", "CN", C::Asia, {31.25, 121.50}},
    {P::Microsoft, "southafricanorth", "Johannesburg", "ZA", C::Africa, {-26.20, 28.05}},
    {P::Microsoft, "southafricawest", "Cape Town", "ZA", C::Africa, {-33.92, 18.42}},
    {P::Microsoft, "australiaeast", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    {P::Microsoft, "australiasoutheast", "Melbourne", "AU", C::Oceania, {-37.81, 144.96}},
    {P::Microsoft, "australiacentral", "Canberra", "AU", C::Oceania, {-35.28, 149.13}},
    {P::Microsoft, "australiacentral2", "Canberra", "AU", C::Oceania, {-35.31, 149.15}},
    // ---- DigitalOcean: EU 4, NA 6, AS 1 ------------------------------------
    {P::DigitalOcean, "ams2", "Amsterdam", "NL", C::Europe, {52.37, 4.90}},
    {P::DigitalOcean, "ams3", "Amsterdam", "NL", C::Europe, {52.35, 4.92}},
    {P::DigitalOcean, "lon1", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::DigitalOcean, "fra1", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::DigitalOcean, "nyc1", "New York", "US", C::NorthAmerica, {40.71, -74.01}},
    {P::DigitalOcean, "nyc2", "New York", "US", C::NorthAmerica, {40.73, -74.00}},
    {P::DigitalOcean, "nyc3", "New York", "US", C::NorthAmerica, {40.75, -73.99}},
    {P::DigitalOcean, "sfo2", "San Francisco", "US", C::NorthAmerica, {37.77, -122.42}},
    {P::DigitalOcean, "sfo3", "San Francisco", "US", C::NorthAmerica, {37.79, -122.40}},
    {P::DigitalOcean, "tor1", "Toronto", "CA", C::NorthAmerica, {43.65, -79.38}},
    {P::DigitalOcean, "blr1", "Bangalore", "IN", C::Asia, {12.97, 77.59}},
    // ---- Alibaba Cloud: EU 2, NA 2, AS 16, OC 1 -----------------------------
    {P::Alibaba, "eu-central-1", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Alibaba, "eu-west-1", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Alibaba, "us-west-1", "Silicon Valley", "US", C::NorthAmerica, {37.34, -121.89}},
    {P::Alibaba, "us-east-1", "Ashburn", "US", C::NorthAmerica, {39.04, -77.49}},
    {P::Alibaba, "cn-hangzhou", "Hangzhou", "CN", C::Asia, {30.27, 120.15}},
    {P::Alibaba, "cn-shanghai", "Shanghai", "CN", C::Asia, {31.23, 121.47}},
    {P::Alibaba, "cn-qingdao", "Qingdao", "CN", C::Asia, {36.07, 120.38}},
    {P::Alibaba, "cn-beijing", "Beijing", "CN", C::Asia, {39.90, 116.41}},
    {P::Alibaba, "cn-zhangjiakou", "Zhangjiakou", "CN", C::Asia, {40.77, 114.88}},
    {P::Alibaba, "cn-huhehaote", "Hohhot", "CN", C::Asia, {40.84, 111.75}},
    {P::Alibaba, "cn-chengdu", "Chengdu", "CN", C::Asia, {30.57, 104.07}},
    {P::Alibaba, "cn-shenzhen", "Shenzhen", "CN", C::Asia, {22.54, 114.06}},
    {P::Alibaba, "cn-heyuan", "Heyuan", "CN", C::Asia, {23.73, 114.70}},
    {P::Alibaba, "cn-wulanchabu", "Ulanqab", "CN", C::Asia, {41.02, 113.13}},
    {P::Alibaba, "cn-hongkong", "Hong Kong", "HK", C::Asia, {22.32, 114.17}},
    {P::Alibaba, "ap-southeast-1", "Singapore", "SG", C::Asia, {1.35, 103.82}},
    {P::Alibaba, "ap-southeast-3", "Kuala Lumpur", "MY", C::Asia, {3.14, 101.69}},
    {P::Alibaba, "ap-southeast-5", "Jakarta", "ID", C::Asia, {-6.21, 106.85}},
    {P::Alibaba, "ap-south-1", "Mumbai", "IN", C::Asia, {19.08, 72.88}},
    {P::Alibaba, "ap-northeast-1", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Alibaba, "ap-southeast-2", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    // ---- Vultr: EU 4, NA 9, AS 1, OC 1 --------------------------------------
    {P::Vultr, "ams", "Amsterdam", "NL", C::Europe, {52.37, 4.90}},
    {P::Vultr, "lhr", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Vultr, "fra", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Vultr, "cdg", "Paris", "FR", C::Europe, {48.86, 2.35}},
    {P::Vultr, "ewr", "Piscataway", "US", C::NorthAmerica, {40.55, -74.46}},
    {P::Vultr, "ord", "Chicago", "US", C::NorthAmerica, {41.88, -87.63}},
    {P::Vultr, "dfw", "Dallas", "US", C::NorthAmerica, {32.78, -96.80}},
    {P::Vultr, "sea", "Seattle", "US", C::NorthAmerica, {47.61, -122.33}},
    {P::Vultr, "lax", "Los Angeles", "US", C::NorthAmerica, {34.05, -118.24}},
    {P::Vultr, "atl", "Atlanta", "US", C::NorthAmerica, {33.75, -84.39}},
    {P::Vultr, "sjc", "Silicon Valley", "US", C::NorthAmerica, {37.34, -121.89}},
    {P::Vultr, "mia", "Miami", "US", C::NorthAmerica, {25.76, -80.19}},
    {P::Vultr, "yto", "Toronto", "CA", C::NorthAmerica, {43.65, -79.38}},
    {P::Vultr, "nrt", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Vultr, "syd", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    // ---- Linode: EU 2, NA 5, AS 3, OC 1 -------------------------------------
    {P::Linode, "eu-west", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Linode, "eu-central", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Linode, "us-east", "Newark", "US", C::NorthAmerica, {40.74, -74.17}},
    {P::Linode, "us-southeast", "Atlanta", "US", C::NorthAmerica, {33.75, -84.39}},
    {P::Linode, "us-central", "Dallas", "US", C::NorthAmerica, {32.78, -96.80}},
    {P::Linode, "us-west", "Fremont", "US", C::NorthAmerica, {37.55, -121.99}},
    {P::Linode, "ca-central", "Toronto", "CA", C::NorthAmerica, {43.65, -79.38}},
    {P::Linode, "ap-northeast", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Linode, "ap-south", "Singapore", "SG", C::Asia, {1.35, 103.82}},
    {P::Linode, "ap-west", "Mumbai", "IN", C::Asia, {19.08, 72.88}},
    {P::Linode, "ap-southeast", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    // ---- Amazon Lightsail: EU 4, NA 4, AS 4, OC 1 ---------------------------
    {P::Lightsail, "ltsl-eu-west-2", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Lightsail, "ltsl-eu-central-1", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Lightsail, "ltsl-eu-west-3", "Paris", "FR", C::Europe, {48.86, 2.35}},
    {P::Lightsail, "ltsl-eu-west-1", "Dublin", "IE", C::Europe, {53.35, -6.26}},
    {P::Lightsail, "ltsl-us-east-1", "Ashburn", "US", C::NorthAmerica, {39.04, -77.49}},
    {P::Lightsail, "ltsl-us-east-2", "Columbus", "US", C::NorthAmerica, {39.96, -83.00}},
    {P::Lightsail, "ltsl-us-west-2", "Portland", "US", C::NorthAmerica, {45.52, -122.68}},
    {P::Lightsail, "ltsl-ca-central-1", "Montreal", "CA", C::NorthAmerica, {45.50, -73.57}},
    {P::Lightsail, "ltsl-ap-northeast-1", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Lightsail, "ltsl-ap-northeast-2", "Seoul", "KR", C::Asia, {37.57, 126.98}},
    {P::Lightsail, "ltsl-ap-southeast-1", "Singapore", "SG", C::Asia, {1.35, 103.82}},
    {P::Lightsail, "ltsl-ap-south-1", "Mumbai", "IN", C::Asia, {19.08, 72.88}},
    {P::Lightsail, "ltsl-ap-southeast-2", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    // ---- Oracle Cloud: EU 4, NA 4, SA 1, AS 7, OC 2 -------------------------
    {P::Oracle, "eu-frankfurt-1", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Oracle, "uk-london-1", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Oracle, "eu-amsterdam-1", "Amsterdam", "NL", C::Europe, {52.37, 4.90}},
    {P::Oracle, "eu-zurich-1", "Zurich", "CH", C::Europe, {47.38, 8.54}},
    {P::Oracle, "us-ashburn-1", "Ashburn", "US", C::NorthAmerica, {39.04, -77.49}},
    {P::Oracle, "us-phoenix-1", "Phoenix", "US", C::NorthAmerica, {33.45, -112.07}},
    {P::Oracle, "us-sanjose-1", "San Jose", "US", C::NorthAmerica, {37.34, -121.89}},
    {P::Oracle, "ca-toronto-1", "Toronto", "CA", C::NorthAmerica, {43.65, -79.38}},
    {P::Oracle, "sa-saopaulo-1", "Sao Paulo", "BR", C::SouthAmerica, {-23.55, -46.63}},
    {P::Oracle, "ap-tokyo-1", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
    {P::Oracle, "ap-osaka-1", "Osaka", "JP", C::Asia, {34.69, 135.50}},
    {P::Oracle, "ap-seoul-1", "Seoul", "KR", C::Asia, {37.57, 126.98}},
    {P::Oracle, "ap-chuncheon-1", "Chuncheon", "KR", C::Asia, {37.88, 127.73}},
    {P::Oracle, "ap-mumbai-1", "Mumbai", "IN", C::Asia, {19.08, 72.88}},
    {P::Oracle, "ap-hyderabad-1", "Hyderabad", "IN", C::Asia, {17.39, 78.49}},
    {P::Oracle, "me-jeddah-1", "Jeddah", "SA", C::Asia, {21.49, 39.19}},
    {P::Oracle, "ap-sydney-1", "Sydney", "AU", C::Oceania, {-33.87, 151.21}},
    {P::Oracle, "ap-melbourne-1", "Melbourne", "AU", C::Oceania, {-37.81, 144.96}},
    // ---- IBM Cloud: EU 6, NA 6, AS 1 ----------------------------------------
    {P::Ibm, "eu-de", "Frankfurt", "DE", C::Europe, {50.11, 8.68}},
    {P::Ibm, "eu-gb", "London", "GB", C::Europe, {51.51, -0.13}},
    {P::Ibm, "eu-nl", "Amsterdam", "NL", C::Europe, {52.37, 4.90}},
    {P::Ibm, "eu-fr", "Paris", "FR", C::Europe, {48.86, 2.35}},
    {P::Ibm, "eu-it", "Milan", "IT", C::Europe, {45.46, 9.19}},
    {P::Ibm, "eu-no", "Oslo", "NO", C::Europe, {59.91, 10.75}},
    {P::Ibm, "us-south", "Dallas", "US", C::NorthAmerica, {32.78, -96.80}},
    {P::Ibm, "us-east", "Washington DC", "US", C::NorthAmerica, {38.91, -77.04}},
    {P::Ibm, "us-west", "San Jose", "US", C::NorthAmerica, {37.34, -121.89}},
    {P::Ibm, "us-central", "Chicago", "US", C::NorthAmerica, {41.88, -87.63}},
    {P::Ibm, "ca-tor", "Toronto", "CA", C::NorthAmerica, {43.65, -79.38}},
    {P::Ibm, "ca-mon", "Montreal", "CA", C::NorthAmerica, {45.50, -73.57}},
    {P::Ibm, "jp-tok", "Tokyo", "JP", C::Asia, {35.68, 139.69}},
};

}  // namespace

RegionCatalog::RegionCatalog() {
  regions_.assign(std::begin(kRegions), std::end(kRegions));
}

const RegionCatalog& RegionCatalog::instance() {
  static const RegionCatalog catalog;
  return catalog;
}

std::vector<const RegionInfo*> RegionCatalog::of_provider(ProviderId id) const {
  std::vector<const RegionInfo*> out;
  for (const RegionInfo& r : regions_) {
    if (r.provider == id) out.push_back(&r);
  }
  return out;
}

std::vector<const RegionInfo*> RegionCatalog::in_continent(geo::Continent c) const {
  std::vector<const RegionInfo*> out;
  for (const RegionInfo& r : regions_) {
    if (r.continent == c) out.push_back(&r);
  }
  return out;
}

std::vector<const RegionInfo*> RegionCatalog::in_country(std::string_view code) const {
  std::vector<const RegionInfo*> out;
  for (const RegionInfo& r : regions_) {
    if (r.country == code) out.push_back(&r);
  }
  return out;
}

std::size_t RegionCatalog::count(ProviderId id, geo::Continent c) const {
  std::size_t n = 0;
  for (const RegionInfo& r : regions_) {
    if (r.provider == id && r.continent == c) ++n;
  }
  return n;
}

}  // namespace cloudrtt::cloud

#pragma once
// The 195 compute-region catalogue.
//
// Per-continent counts match Table 1 of the paper exactly (verified by a
// unit test and printed by bench/tab1_endpoints). City placements follow the
// providers' real ~2021 footprints; a handful of fill-ins keep the counts at
// the table's values where the public record is ambiguous.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cloud/provider.hpp"
#include "geo/continent.hpp"
#include "geo/coords.hpp"

namespace cloudrtt::cloud {

struct RegionInfo {
  ProviderId provider;
  std::string_view region_name;  ///< provider-style region id, e.g. "eu-central-1"
  std::string_view city;
  std::string_view country;      ///< ISO 3166-1 alpha-2
  geo::Continent continent;
  geo::GeoPoint location;
};

class RegionCatalog {
 public:
  [[nodiscard]] static const RegionCatalog& instance();

  [[nodiscard]] std::span<const RegionInfo> all() const { return regions_; }
  [[nodiscard]] std::vector<const RegionInfo*> of_provider(ProviderId id) const;
  [[nodiscard]] std::vector<const RegionInfo*> in_continent(geo::Continent c) const;
  [[nodiscard]] std::vector<const RegionInfo*> in_country(std::string_view code) const;
  [[nodiscard]] std::size_t count(ProviderId id, geo::Continent c) const;
  [[nodiscard]] std::size_t total() const { return regions_.size(); }

 private:
  RegionCatalog();
  std::vector<RegionInfo> regions_;
};

}  // namespace cloudrtt::cloud

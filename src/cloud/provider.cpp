#include "cloud/provider.hpp"

#include <stdexcept>

namespace cloudrtt::cloud {

namespace {

// WAN ASNs follow the real operators where well-known (AS16509 Amazon,
// AS15169 Google, AS8075 Microsoft, AS14061 DigitalOcean, AS45102 Alibaba,
// AS20473 Vultr/Choopa, AS63949 Linode, AS14618 Amazon-AES for Lightsail,
// AS31898 Oracle, AS36351 IBM/SoftLayer).
constexpr ProviderInfo kProviders[] = {
    {ProviderId::Amazon, "AMZN", "Amazon EC2", BackboneClass::Private, 16509, true},
    {ProviderId::Google, "GCP", "Google Cloud", BackboneClass::Private, 15169, true},
    {ProviderId::Microsoft, "MSFT", "Microsoft Azure", BackboneClass::Private, 8075, true},
    {ProviderId::DigitalOcean, "DO", "DigitalOcean", BackboneClass::Semi, 14061, false},
    {ProviderId::Alibaba, "BABA", "Alibaba Cloud", BackboneClass::Semi, 45102, false},
    {ProviderId::Vultr, "VLTR", "Vultr", BackboneClass::Public, 20473, false},
    {ProviderId::Linode, "LIN", "Linode", BackboneClass::Public, 63949, false},
    {ProviderId::Lightsail, "LTSL", "Amazon Lightsail", BackboneClass::Private, 14618, true},
    {ProviderId::Oracle, "ORCL", "Oracle Cloud", BackboneClass::Private, 31898, false},
    {ProviderId::Ibm, "IBM", "IBM Cloud", BackboneClass::Semi, 36351, false},
};

}  // namespace

const ProviderInfo& provider_info(ProviderId id) {
  for (const ProviderInfo& p : kProviders) {
    if (p.id == id) return p;
  }
  throw std::logic_error{"provider_info: unknown provider"};
}

std::optional<ProviderId> provider_from_ticker(std::string_view ticker) {
  for (const ProviderInfo& p : kProviders) {
    if (p.ticker == ticker) return p.id;
  }
  return std::nullopt;
}

}  // namespace cloudrtt::cloud

#pragma once
// Registry of every AS in the simulated Internet, plus the static catalogue
// of real-world ASes the paper names: the tier-1 carriers used for carrier
// peering (§6.1), the case-study access ISPs of Figs. 12/13/17/18, and the
// large European/Asian IXP fabrics.

#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/coords.hpp"
#include "topology/asn.hpp"

namespace cloudrtt::topology {

/// A transit carrier's point of presence (hub) — public paths ride between
/// hubs, which is what creates real-world detours (e.g. Gulf traffic
/// surfacing in Marseille).
struct TransitHub {
  std::string_view city;
  std::string_view country;
  geo::GeoPoint location;
};

struct TransitCarrier {
  Asn asn;
  std::string_view name;
  std::vector<TransitHub> hubs;
};

/// Named access ISP used in the paper's case studies.
struct NamedIsp {
  Asn asn;
  std::string_view name;
  std::string_view country;
};

struct IxpInfo {
  Asn asn;
  std::string_view name;
  std::string_view country;
  geo::GeoPoint location;
};

/// Static real-world catalogue (data tables in as_registry.cpp).
[[nodiscard]] std::span<const TransitCarrier> tier1_carriers();
[[nodiscard]] std::span<const NamedIsp> named_isps();
[[nodiscard]] std::vector<const NamedIsp*> named_isps_in(std::string_view country);
[[nodiscard]] std::span<const IxpInfo> known_ixps();

/// Mutable registry the World fills while building the topology.
class AsRegistry {
 public:
  /// Register an AS; asn must be unused. Returns the stored record.
  const AsInfo& add(AsInfo info);

  [[nodiscard]] const AsInfo* find(Asn asn) const;
  [[nodiscard]] const AsInfo& at(Asn asn) const;
  [[nodiscard]] bool contains(Asn asn) const { return find(asn) != nullptr; }
  [[nodiscard]] std::size_t size() const { return infos_.size(); }

  /// Allocate a fresh synthetic ASN (range disjoint from the catalogue).
  [[nodiscard]] Asn next_synthetic_asn() { return next_synthetic_++; }

  [[nodiscard]] const std::vector<AsInfo>& all() const { return infos_; }

 private:
  std::vector<AsInfo> infos_;
  std::unordered_map<Asn, std::size_t> index_;
  Asn next_synthetic_ = 210000;  ///< fresh 32-bit range, clear of real ASNs above
};

}  // namespace cloudrtt::topology

#include "topology/address_plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cloudrtt::topology {

void AddressPlan::assign(Asn asn, std::string site, net::Ipv4Address ip) {
  CLOUDRTT_CHECK(!frozen_, "AddressPlan::assign after freeze (AS", asn, " site '",
                 site, "')");
  per_as_[asn].push_back(Entry{std::move(site), ip});
  ++size_;
}

void AddressPlan::freeze() {
  CLOUDRTT_CHECK(!frozen_, "AddressPlan::freeze called twice");
  for (auto& [asn, entries] : per_as_) {  // lint:allow(unordered-iter): per-AS sort, no cross-AS order dependence
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.site < b.site; });
    const auto dup = std::adjacent_find(
        entries.begin(), entries.end(),
        [](const Entry& a, const Entry& b) { return a.site == b.site; });
    CLOUDRTT_CHECK(dup == entries.end(), "AddressPlan: site '",
                   dup == entries.end() ? "" : dup->site,
                   "' materialized twice for AS", asn);
  }
  frozen_ = true;
}

std::size_t AddressPlan::site_count(Asn asn) const {
  const auto it = per_as_.find(asn);
  return it == per_as_.end() ? 0 : it->second.size();
}

const net::Ipv4Address* AddressPlan::find(Asn asn, std::string_view site) const {
  CLOUDRTT_DCHECK(frozen_, "AddressPlan::find before freeze");
  const auto it = per_as_.find(asn);
  if (it == per_as_.end()) return nullptr;
  const std::vector<Entry>& entries = it->second;
  const auto pos = std::lower_bound(
      entries.begin(), entries.end(), site,
      [](const Entry& e, std::string_view s) { return e.site < s; });
  if (pos == entries.end() || pos->site != site) return nullptr;
  return &pos->ip;
}

net::Ipv4Address AddressPlan::at(Asn asn, std::string_view site) const {
  const net::Ipv4Address* ip = find(asn, site);
  CLOUDRTT_CHECK(ip != nullptr, "AddressPlan: no planned router for AS", asn,
                 " site '", site, "' — materialization pass missed it");
  return *ip;
}

void PolicyTable::put(std::uint64_t key, const PairPolicy& policy) {
  CLOUDRTT_CHECK(!frozen_, "PolicyTable::put after freeze (key ", key, ")");
  const bool inserted = policies_.emplace(key, policy).second;
  CLOUDRTT_CHECK(inserted, "PolicyTable: key ", key, " materialized twice");
}

void PolicyTable::freeze() {
  CLOUDRTT_CHECK(!frozen_, "PolicyTable::freeze called twice");
  frozen_ = true;
}

const PairPolicy& PolicyTable::at(std::uint64_t key) const {
  CLOUDRTT_DCHECK(frozen_, "PolicyTable::at before freeze");
  const auto it = policies_.find(key);
  CLOUDRTT_CHECK(it != policies_.end(), "PolicyTable: no policy for key ", key,
                 " — materialization pass missed it");
  return it->second;
}

}  // namespace cloudrtt::topology

#include "topology/bgp.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "topology/world.hpp"
#include "util/check.hpp"

namespace cloudrtt::topology {

namespace {

/// Preference rank: lower is better (Gao-Rexford economics).
[[nodiscard]] int rank(RouteType type) {
  switch (type) {
    case RouteType::Origin: return 0;
    case RouteType::Customer: return 1;
    case RouteType::Peer: return 2;
    case RouteType::Provider: return 3;
  }
  return 4;
}

/// Is `candidate` strictly better than `incumbent`?
[[nodiscard]] bool better(const BgpRoute& candidate, const BgpRoute& incumbent) {
  if (rank(candidate.type) != rank(incumbent.type)) {
    return rank(candidate.type) < rank(incumbent.type);
  }
  if (candidate.length() != incumbent.length()) {
    return candidate.length() < incumbent.length();
  }
  // Deterministic tiebreak on the next hop towards the origin.
  if (candidate.as_path.size() > 1 && incumbent.as_path.size() > 1) {
    return candidate.as_path[1] < incumbent.as_path[1];
  }
  return false;
}

/// Distance from a country to the nearest hub of a carrier.
[[nodiscard]] double hub_distance(const TransitCarrier& carrier,
                                  const geo::GeoPoint& from) {
  double best = std::numeric_limits<double>::infinity();
  for (const TransitHub& hub : carrier.hubs) {
    best = std::min(best, geo::haversine_km(from, hub.location));
  }
  return best;
}

/// The `count` carriers with the nearest hubs to `from`.
[[nodiscard]] std::vector<Asn> nearest_carriers(const geo::GeoPoint& from,
                                                std::size_t count) {
  std::vector<std::pair<double, Asn>> scored;
  for (const TransitCarrier& carrier : tier1_carriers()) {
    scored.emplace_back(hub_distance(carrier, from), carrier.asn);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<Asn> out;
  for (std::size_t i = 0; i < std::min(count, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace

BgpGraph::Node& BgpGraph::node(Asn asn) { return nodes_[asn]; }

const BgpGraph::Node* BgpGraph::find(Asn asn) const {
  const auto it = nodes_.find(asn);
  return it == nodes_.end() ? nullptr : &it->second;
}

void BgpGraph::add_customer_provider(Asn customer, Asn provider) {
  if (customer == provider || has_edge(customer, provider)) return;
  node(customer).providers.push_back(provider);
  node(provider).customers.push_back(customer);
  ++edge_count_;
}

void BgpGraph::add_peering(Asn a, Asn b) {
  if (a == b || has_edge(a, b)) return;
  node(a).peers.push_back(b);
  node(b).peers.push_back(a);
  ++edge_count_;
}

bool BgpGraph::has_edge(Asn a, Asn b) const {
  const Node* na = find(a);
  if (na == nullptr) return false;
  const auto in = [b](const std::vector<Asn>& list) {
    return std::find(list.begin(), list.end(), b) != list.end();
  };
  return in(na->providers) || in(na->customers) || in(na->peers);
}

BgpGraph BgpGraph::from_world(const World& world) {
  BgpGraph graph;

  // Tier-1 / wholesale carriers: full peer mesh (the standard simplification
  // for the clique at the top of the hierarchy).
  const auto carriers = tier1_carriers();
  for (std::size_t i = 0; i < carriers.size(); ++i) {
    for (std::size_t j = i + 1; j < carriers.size(); ++j) {
      graph.add_peering(carriers[i].asn, carriers[j].asn);
    }
  }

  // Continental transit ASes buy from the three carriers nearest their
  // continent's demographic centre.
  for (const geo::Continent continent : geo::kAllContinents) {
    geo::GeoPoint centre{0.0, 0.0};
    std::size_t n = 0;
    for (const geo::CountryInfo& country : world.countries().all()) {
      if (country.continent != continent) continue;
      centre.lat_deg += country.centroid.lat_deg;
      centre.lon_deg += country.centroid.lon_deg;
      ++n;
    }
    if (n > 0) {
      centre.lat_deg /= static_cast<double>(n);
      centre.lon_deg /= static_cast<double>(n);
    }
    const Asn transit = world.continental_transit(continent);
    for (const Asn carrier : nearest_carriers(centre, 3)) {
      graph.add_customer_provider(transit, carrier);
    }
  }

  // Access ISPs: everyone buys from their continental transit; ISPs in
  // developed markets (and all of the paper's named case-study ISPs)
  // additionally buy direct tier-1 transit.
  for (const IspNetwork& isp : world.isps()) {
    graph.add_customer_provider(isp.asn, world.continental_transit(isp.continent));
    const bool developed = isp.continent == geo::Continent::Europe ||
                           isp.continent == geo::Continent::NorthAmerica ||
                           isp.continent == geo::Continent::Oceania;
    if (isp.named || developed) {
      const geo::CountryInfo& country = world.countries().at(isp.country);
      const std::size_t uplinks = isp.named ? 2 : 1;
      for (const Asn carrier : nearest_carriers(country.centroid, uplinks)) {
        graph.add_customer_provider(isp.asn, carrier);
      }
    }
  }

  // Clouds: direct peering with serving ISPs per the interconnect policy
  // (evaluated for the ISP's home continent), PNI peering with carriers for
  // WAN-owning providers, plain transit for public-backbone providers.
  for (const cloud::ProviderId provider : cloud::kAllProviders) {
    const cloud::ProviderInfo& info = cloud::provider_info(provider);
    switch (info.backbone) {
      case cloud::BackboneClass::Private:
      case cloud::BackboneClass::Semi:
        for (const TransitCarrier& carrier : carriers) {
          graph.add_peering(info.asn, carrier.asn);
        }
        break;
      case cloud::BackboneClass::Public:
        // Two transit contracts, nearest to the (US-centric) headquarters.
        for (const Asn carrier :
             nearest_carriers(geo::GeoPoint{40.0, -75.0}, 2)) {
          graph.add_customer_provider(info.asn, carrier);
        }
        break;
    }
    for (const IspNetwork& isp : world.isps()) {
      const PairPolicy& policy =
          world.interconnect(isp.asn, provider, isp.continent);
      if (policy.base == InterconnectMode::Direct ||
          policy.base == InterconnectMode::DirectIxp) {
        graph.add_peering(info.asn, isp.asn);
      }
    }
  }
  return graph;
}

std::unordered_map<Asn, BgpRoute> BgpGraph::routes_to(Asn origin) const {
  return compute_routes(origin);
}

std::optional<BgpRoute> BgpGraph::route(Asn from, Asn origin) const {
  const auto routes = compute_routes(origin);
  const auto it = routes.find(from);
  if (it == routes.end()) return std::nullopt;
  return it->second;
}

std::unordered_map<Asn, BgpRoute> BgpGraph::compute_routes(Asn origin) const {
  std::unordered_map<Asn, BgpRoute> best;
  if (find(origin) == nullptr) return best;
  best.emplace(origin, BgpRoute{{origin}, RouteType::Origin});

  // Phase 1 — customer routes: the origin's announcement climbs provider
  // links; every AS on the way holds a route learned from a customer.
  std::deque<Asn> queue{origin};
  while (!queue.empty()) {
    const Asn u = queue.front();
    queue.pop_front();
    const BgpRoute route_u = best.at(u);  // copy: best may rehash below
    if (route_u.type != RouteType::Origin && route_u.type != RouteType::Customer) {
      continue;
    }
    const Node* node_u = find(u);
    CLOUDRTT_CHECK(node_u != nullptr, "AS", u, " in best{} but not in graph");
    for (const Asn p : node_u->providers) {
      BgpRoute candidate;
      candidate.type = RouteType::Customer;
      candidate.as_path.reserve(route_u.as_path.size() + 1);
      candidate.as_path.push_back(p);
      candidate.as_path.insert(candidate.as_path.end(), route_u.as_path.begin(),
                               route_u.as_path.end());
      const auto existing = best.find(p);
      if (existing == best.end() || better(candidate, existing->second)) {
        best[p] = std::move(candidate);
        queue.push_back(p);
      }
    }
  }

  // Phase 2 — peer routes: ASes holding customer/origin routes export them
  // across a single peering hop.
  std::vector<std::pair<Asn, BgpRoute>> peer_candidates;
  // Candidates for the same AS always differ in as_path[1], so better()'s
  // next-hop tie-break picks the same winner whatever order they arrive in.
  for (const auto& [u, route_u] : best) {  // lint:allow(unordered-iter): better() is a strict total order, result is order-independent
    if (route_u.type != RouteType::Origin && route_u.type != RouteType::Customer) {
      continue;
    }
    const Node* node_u = find(u);
    CLOUDRTT_CHECK(node_u != nullptr, "AS", u, " in best{} but not in graph");
    for (const Asn p : node_u->peers) {
      BgpRoute candidate;
      candidate.type = RouteType::Peer;
      candidate.as_path.push_back(p);
      candidate.as_path.insert(candidate.as_path.end(), route_u.as_path.begin(),
                               route_u.as_path.end());
      peer_candidates.emplace_back(p, std::move(candidate));
    }
  }
  for (auto& [p, candidate] : peer_candidates) {
    const auto existing = best.find(p);
    if (existing == best.end() || better(candidate, existing->second)) {
      best[p] = std::move(candidate);
    }
  }

  // Phase 3 — provider routes: anything routable is exported down customer
  // links; iterate to a fixed point (paths are short, this converges fast).
  std::deque<Asn> down;
  // Seeding order only affects how fast the fixed point is reached, never
  // which routes it contains (better() improvements are monotone).
  for (const auto& [asn, route] : best) {  // lint:allow(unordered-iter): fixed-point iteration is confluent
    (void)route;
    down.push_back(asn);
  }
  while (!down.empty()) {
    const Asn u = down.front();
    down.pop_front();
    const BgpRoute route_u = best.at(u);
    const Node* node_u = find(u);
    CLOUDRTT_CHECK(node_u != nullptr, "AS", u, " in best{} but not in graph");
    for (const Asn c : node_u->customers) {
      BgpRoute candidate;
      candidate.type = RouteType::Provider;
      candidate.as_path.push_back(c);
      candidate.as_path.insert(candidate.as_path.end(), route_u.as_path.begin(),
                               route_u.as_path.end());
      const auto existing = best.find(c);
      if (existing == best.end() || better(candidate, existing->second)) {
        best[c] = std::move(candidate);
        down.push_back(c);
      }
    }
  }
  return best;
}

bool BgpGraph::is_valley_free(std::span<const Asn> as_path) const {
  // Classify each step and check the up*-peer?-down* shape.
  enum class Step { Up, Peer, Down };
  bool seen_peer_or_down = false;
  for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
    const Node* from = find(as_path[i]);
    if (from == nullptr) return false;
    const auto in = [&](const std::vector<Asn>& list) {
      return std::find(list.begin(), list.end(), as_path[i + 1]) != list.end();
    };
    Step step;
    if (in(from->providers)) {
      step = Step::Up;
    } else if (in(from->peers)) {
      step = Step::Peer;
    } else if (in(from->customers)) {
      step = Step::Down;
    } else {
      return false;  // not an edge at all
    }
    if (step == Step::Up && seen_peer_or_down) return false;
    if (step == Step::Peer) {
      if (seen_peer_or_down) return false;
      seen_peer_or_down = true;
    }
    if (step == Step::Down) seen_peer_or_down = true;
  }
  return true;
}

}  // namespace cloudrtt::topology

#include "topology/interconnect.hpp"

namespace cloudrtt::topology {

namespace {

using M = InterconnectMode;
using P = cloud::ProviderId;

// Overrides encode the exact matrices of the paper's case-study figures.
// Germany (Fig. 12a): big-3 direct everywhere; Telefonica->Alibaba and
// Vodafone->DigitalOcean ride the public Internet; IBM mixes direct peering
// with IXP fabrics more than anyone else; the small providers are reached
// via a single private carrier (well-provisioned EU).
constexpr PolicyOverride kOverrides[] = {
    // --- Germany: Vodafone AS3209 -----------------------------------------
    {3209, P::Amazon, M::Direct},      {3209, P::Google, M::Direct},
    {3209, P::Microsoft, M::Direct},   {3209, P::Alibaba, M::OneAs},
    {3209, P::DigitalOcean, M::Public},{3209, P::Ibm, M::DirectIxp},
    {3209, P::Linode, M::OneAs},       {3209, P::Oracle, M::OneAs},
    {3209, P::Vultr, M::OneAs},
    // --- Germany: Deutsche Telekom AS3320 ----------------------------------
    {3320, P::Amazon, M::Direct},      {3320, P::Google, M::Direct},
    {3320, P::Microsoft, M::Direct},   {3320, P::Alibaba, M::OneAs},
    {3320, P::DigitalOcean, M::OneAs}, {3320, P::Ibm, M::Direct},
    {3320, P::Linode, M::OneAs},       {3320, P::Oracle, M::OneAs},
    {3320, P::Vultr, M::OneAs},
    // --- Germany: Telefonica AS6805 ----------------------------------------
    {6805, P::Amazon, M::Direct},      {6805, P::Google, M::Direct},
    {6805, P::Microsoft, M::Direct},   {6805, P::Alibaba, M::Public},
    {6805, P::DigitalOcean, M::OneAs}, {6805, P::Ibm, M::DirectIxp},
    {6805, P::Linode, M::OneAs},       {6805, P::Oracle, M::OneAs},
    {6805, P::Vultr, M::OneAs},
    // --- Germany: Liberty Global AS6830 -------------------------------------
    {6830, P::Amazon, M::Direct},      {6830, P::Google, M::Direct},
    {6830, P::Microsoft, M::Direct},   {6830, P::Alibaba, M::OneAs},
    {6830, P::DigitalOcean, M::OneAs}, {6830, P::Ibm, M::Direct},
    {6830, P::Linode, M::OneAs},       {6830, P::Oracle, M::OneAs},
    {6830, P::Vultr, M::OneAs},
    // --- Germany: 1&1 AS8881 -------------------------------------------------
    {8881, P::Amazon, M::Direct},      {8881, P::Google, M::Direct},
    {8881, P::Microsoft, M::Direct},   {8881, P::Alibaba, M::OneAs},
    {8881, P::DigitalOcean, M::OneAs}, {8881, P::Ibm, M::DirectIxp},
    {8881, P::Linode, M::OneAs},       {8881, P::Oracle, M::OneAs},
    {8881, P::Vultr, M::OneAs},
    // --- Japan (Fig. 13a): big-3 direct except NTT->Amazon; DigitalOcean
    // strictly public in Asia (no PoP deployment); Oracle public.
    // KDDI AS2516
    {2516, P::Amazon, M::Direct},      {2516, P::Google, M::Direct},
    {2516, P::Microsoft, M::Direct},   {2516, P::Alibaba, M::OneAs},
    {2516, P::DigitalOcean, M::Public},{2516, P::Ibm, M::OneAs},
    {2516, P::Linode, M::OneAs},       {2516, P::Oracle, M::Public},
    {2516, P::Vultr, M::OneAs},
    // BIGLOBE AS2518
    {2518, P::Amazon, M::Direct},      {2518, P::Google, M::Direct},
    {2518, P::Microsoft, M::Direct},   {2518, P::Alibaba, M::OneAs},
    {2518, P::DigitalOcean, M::Public},{2518, P::Ibm, M::OneAs},
    {2518, P::Linode, M::Public},      {2518, P::Oracle, M::Public},
    {2518, P::Vultr, M::OneAs},
    // NTT OCN AS4713 (the Fig. 13a Amazon exception)
    {4713, P::Amazon, M::OneAs},       {4713, P::Google, M::Direct},
    {4713, P::Microsoft, M::Direct},   {4713, P::Alibaba, M::OneAs},
    {4713, P::DigitalOcean, M::Public},{4713, P::Ibm, M::OneAs},
    {4713, P::Linode, M::OneAs},       {4713, P::Oracle, M::Public},
    {4713, P::Vultr, M::OneAs},
    // OPTAGE AS17511
    {17511, P::Amazon, M::Direct},     {17511, P::Google, M::Direct},
    {17511, P::Microsoft, M::Direct},  {17511, P::Alibaba, M::OneAs},
    {17511, P::DigitalOcean, M::Public},{17511, P::Ibm, M::DirectIxp},
    {17511, P::Linode, M::OneAs},      {17511, P::Oracle, M::Public},
    {17511, P::Vultr, M::Public},
    // SoftBank AS17676
    {17676, P::Amazon, M::Direct},     {17676, P::Google, M::Direct},
    {17676, P::Microsoft, M::Direct},  {17676, P::Alibaba, M::OneAs},
    {17676, P::DigitalOcean, M::Public},{17676, P::Ibm, M::OneAs},
    {17676, P::Linode, M::OneAs},      {17676, P::Oracle, M::Public},
    {17676, P::Vultr, M::OneAs},
    // --- Ukraine (Fig. 17a): big-3 direct for most serving ISPs; others a
    // mix of single-carrier private peering and public transit.
    // UARnet AS3255
    {3255, P::Amazon, M::Direct},      {3255, P::Google, M::Direct},
    {3255, P::Microsoft, M::Direct},   {3255, P::Alibaba, M::Public},
    {3255, P::DigitalOcean, M::OneAs}, {3255, P::Ibm, M::OneAs},
    {3255, P::Linode, M::OneAs},       {3255, P::Oracle, M::Public},
    {3255, P::Vultr, M::OneAs},
    // Datagroup AS3326
    {3326, P::Amazon, M::Direct},      {3326, P::Google, M::Direct},
    {3326, P::Microsoft, M::Direct},   {3326, P::Alibaba, M::Public},
    {3326, P::DigitalOcean, M::OneAs}, {3326, P::Ibm, M::DirectIxp},
    {3326, P::Linode, M::Public},      {3326, P::Oracle, M::Public},
    {3326, P::Vultr, M::OneAs},
    // UKRTELNET AS6849
    {6849, P::Amazon, M::Direct},      {6849, P::Google, M::Direct},
    {6849, P::Microsoft, M::Direct},   {6849, P::Alibaba, M::Public},
    {6849, P::DigitalOcean, M::OneAs}, {6849, P::Ibm, M::OneAs},
    {6849, P::Linode, M::OneAs},       {6849, P::Oracle, M::Public},
    {6849, P::Vultr, M::Public},
    // Kyivstar AS15895
    {15895, P::Amazon, M::Direct},     {15895, P::Google, M::Direct},
    {15895, P::Microsoft, M::Direct},  {15895, P::Alibaba, M::Public},
    {15895, P::DigitalOcean, M::OneAs},{15895, P::Ibm, M::OneAs},
    {15895, P::Linode, M::OneAs},      {15895, P::Oracle, M::OneAs},
    {15895, P::Vultr, M::OneAs},
    // Volia AS25229
    {25229, P::Amazon, M::Direct},     {25229, P::Google, M::Direct},
    {25229, P::Microsoft, M::Direct},  {25229, P::Alibaba, M::Public},
    {25229, P::DigitalOcean, M::OneAs},{25229, P::Ibm, M::OneAs},
    {25229, P::Linode, M::OneAs},      {25229, P::Oracle, M::Public},
    {25229, P::Vultr, M::OneAs},
    // --- Bahrain (Fig. 18a): direct interconnections are rare — only
    // Microsoft and Google peer directly with a handful of serving ISPs;
    // everyone else rides private carriers or the public Internet.
    // Batelco AS5416
    {5416, P::Amazon, M::OneAs},       {5416, P::Google, M::Direct},
    {5416, P::Microsoft, M::Direct},   {5416, P::Alibaba, M::Public},
    {5416, P::DigitalOcean, M::Public},{5416, P::Ibm, M::Public},
    {5416, P::Linode, M::Public},      {5416, P::Oracle, M::Public},
    {5416, P::Vultr, M::OneAs},
    // ZAIN AS31452
    {31452, P::Amazon, M::OneAs},      {31452, P::Google, M::OneAs},
    {31452, P::Microsoft, M::Direct},  {31452, P::Alibaba, M::Public},
    {31452, P::DigitalOcean, M::Public},{31452, P::Ibm, M::Public},
    {31452, P::Linode, M::Public},     {31452, P::Oracle, M::Public},
    {31452, P::Vultr, M::Public},
    // Kalaam AS39273
    {39273, P::Amazon, M::Public},     {39273, P::Google, M::OneAs},
    {39273, P::Microsoft, M::OneAs},   {39273, P::Alibaba, M::Public},
    {39273, P::DigitalOcean, M::Public},{39273, P::Ibm, M::Public},
    {39273, P::Linode, M::Public},     {39273, P::Oracle, M::Public},
    {39273, P::Vultr, M::Public},
    // stc AS51375
    {51375, P::Amazon, M::OneAs},      {51375, P::Google, M::Direct},
    {51375, P::Microsoft, M::Direct},  {51375, P::Alibaba, M::Public},
    {51375, P::DigitalOcean, M::Public},{51375, P::Ibm, M::Public},
    {51375, P::Linode, M::Public},     {51375, P::Oracle, M::Public},
    {51375, P::Vultr, M::Public},
};

}  // namespace

std::optional<InterconnectMode> policy_override(Asn isp, cloud::ProviderId provider) {
  for (const PolicyOverride& o : kOverrides) {
    if (o.isp == isp && o.provider == provider) return o.mode;
  }
  // Lightsail rides Amazon's interconnection fabric in the case studies.
  if (provider == cloud::ProviderId::Lightsail) {
    return policy_override(isp, cloud::ProviderId::Amazon);
  }
  return std::nullopt;
}

}  // namespace cloudrtt::topology

#pragma once
// ISP <-> cloud interconnection modes (§2.3/§6.1 of the paper) and the
// policy tables that decide which mode a given <ISP, provider, destination
// continent> pair uses.
//
// Four observable modes:
//  * Direct     — the serving ISP peers directly with the cloud WAN (LOA-CFA
//                 agreements); traffic ingresses the WAN in (or near) the
//                 ISP's country.
//  * DirectIxp  — direct peering established across a public IXP fabric; the
//                 IXP hop is visible in traceroutes ("1 IXP" in Figs. 12a/13a).
//  * OneAs      — private peering at a Tier-1 carrier hosting the cloud's
//                 edge PoP (PNI / "1 AS").
//  * Public     — regular hierarchical transit, two or more intermediate
//                 ASes ("2+ AS").

#include <optional>
#include <string_view>

#include "cloud/provider.hpp"
#include "geo/continent.hpp"
#include "topology/asn.hpp"

namespace cloudrtt::topology {

enum class InterconnectMode : unsigned char { Direct, DirectIxp, OneAs, Public };

[[nodiscard]] constexpr std::string_view to_string(InterconnectMode mode) {
  switch (mode) {
    case InterconnectMode::Direct: return "direct";
    case InterconnectMode::DirectIxp: return "1 IXP";
    case InterconnectMode::OneAs: return "1 AS";
    case InterconnectMode::Public: return "2+ AS";
  }
  return "?";
}

/// Stable per-pair interconnection decision. Individual paths follow `base`
/// with probability `adherence` and otherwise fall back (routing churn,
/// multi-homing), which produces the non-100% cells of Fig. 12a/13a.
struct PairPolicy {
  InterconnectMode base = InterconnectMode::Public;
  InterconnectMode fallback = InterconnectMode::Public;
  double adherence = 0.9;
};

/// Case-study override: fixes the base mode for a named ISP and provider,
/// matching the matrices of Figs. 12a, 13a, 17a and 18a.
struct PolicyOverride {
  Asn isp;
  cloud::ProviderId provider;
  InterconnectMode mode;
};

/// Lookup in the override table; nullopt when the pair is not a case-study
/// pair (the probabilistic default applies).
[[nodiscard]] std::optional<InterconnectMode> policy_override(
    Asn isp, cloud::ProviderId provider);

}  // namespace cloudrtt::topology

#include "topology/backbone.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/check.hpp"

namespace cloudrtt::topology {

namespace {

using K = LinkKind;

// Explicit long-haul corridors and submarine cables. length 0 => centroid
// distance * 1.2; quality 0 => mean of the endpoint countries' backhaul
// quality. The list is intentionally opinionated where the paper's findings
// depend on it (Mediterranean and Red Sea cables, the African east/west
// coast systems, trans-Atlantic/Pacific trunks, Andean links).
constexpr BackboneLink kLinks[] = {
    // --- Trans-Atlantic ---------------------------------------------------
    {"US", "GB", 7000, K::Submarine, 0.92},
    {"US", "FR", 7300, K::Submarine, 0.92},
    {"US", "IE", 6600, K::Submarine, 0.90},
    {"US", "PT", 6500, K::Submarine, 0.85},
    {"US", "ES", 7000, K::Submarine, 0.85},
    {"CA", "GB", 5400, K::Submarine, 0.88},
    {"US", "IS", 5600, K::Submarine, 0.80},
    // --- Trans-Pacific ----------------------------------------------------
    {"US", "JP", 9600, K::Submarine, 0.90},
    {"US", "AU", 12500, K::Submarine, 0.85},
    {"US", "NZ", 11500, K::Submarine, 0.82},
    {"US", "TW", 11300, K::Submarine, 0.80},
    {"US", "PH", 12000, K::Submarine, 0.72},
    {"US", "HK", 12300, K::Submarine, 0.78},
    {"US", "SG", 14500, K::Submarine, 0.80},
    // --- Europe <-> Asia (Med / Red Sea / terrestrial bridges) ------------
    {"IT", "EG", 2200, K::Submarine, 0.78},
    {"FR", "EG", 3100, K::Submarine, 0.80},
    {"GR", "EG", 1200, K::Submarine, 0.72},
    {"GR", "CY", 950, K::Submarine, 0.75},
    {"CY", "IL", 420, K::Submarine, 0.75},
    {"CY", "LB", 260, K::Submarine, 0.60},
    {"IL", "EG", 450, K::Terrestrial, 0.60},
    {"EG", "SA", 1400, K::Submarine, 0.62},
    {"EG", "JO", 600, K::Terrestrial, 0.55},
    {"EG", "AE", 3900, K::Submarine, 0.68},
    {"EG", "IN", 6200, K::Submarine, 0.70},
    {"AE", "IN", 1950, K::Submarine, 0.75},
    {"TR", "BG", 900, K::Terrestrial, 0.75},
    {"TR", "GR", 850, K::Terrestrial, 0.72},
    {"TR", "RO", 900, K::Submarine, 0.70},
    {"RU", "FI", 1100, K::Terrestrial, 0.80},
    {"RU", "EE", 900, K::Terrestrial, 0.75},
    {"RU", "LV", 900, K::Terrestrial, 0.75},
    {"RU", "BY", 700, K::Terrestrial, 0.72},
    {"RU", "UA", 800, K::Terrestrial, 0.65},
    {"RU", "KZ", 2600, K::Terrestrial, 0.60},
    {"KZ", "CN", 3300, K::Terrestrial, 0.60},
    {"KZ", "UZ", 1300, K::Terrestrial, 0.55},
    {"TR", "GE", 1100, K::Terrestrial, 0.62},
    {"GE", "AM", 200, K::Terrestrial, 0.58},
    {"GE", "AZ", 480, K::Terrestrial, 0.58},
    {"AZ", "IR", 600, K::Terrestrial, 0.50},
    {"TR", "IR", 1950, K::Terrestrial, 0.50},
    {"TR", "IQ", 1200, K::Terrestrial, 0.45},
    {"IQ", "JO", 850, K::Terrestrial, 0.45},
    {"IR", "AE", 1300, K::Submarine, 0.55},
    {"IR", "PK", 1600, K::Terrestrial, 0.40},
    {"PK", "AE", 1950, K::Submarine, 0.58},
    {"PK", "IN", 1100, K::Terrestrial, 0.25},
    {"IN", "LK", 450, K::Submarine, 0.62},
    {"IN", "BD", 350, K::Terrestrial, 0.50},
    {"IN", "NP", 750, K::Terrestrial, 0.40},
    {"IN", "SG", 3900, K::Submarine, 0.78},
    {"LK", "SG", 3100, K::Submarine, 0.65},
    {"IN", "MM", 1700, K::Terrestrial, 0.40},
    {"MM", "TH", 750, K::Terrestrial, 0.48},
    {"TH", "SG", 1450, K::Submarine, 0.70},
    {"TH", "KH", 600, K::Terrestrial, 0.50},
    {"KH", "VN", 280, K::Terrestrial, 0.52},
    {"VN", "HK", 950, K::Submarine, 0.66},
    {"VN", "SG", 2200, K::Submarine, 0.64},
    {"MY", "SG", 320, K::Terrestrial, 0.80},
    {"ID", "SG", 950, K::Submarine, 0.68},
    {"PH", "HK", 1150, K::Submarine, 0.62},
    {"PH", "SG", 2400, K::Submarine, 0.60},
    {"HK", "SG", 2600, K::Submarine, 0.82},
    {"HK", "TW", 820, K::Submarine, 0.80},
    {"TW", "JP", 2150, K::Submarine, 0.82},
    {"HK", "JP", 2900, K::Submarine, 0.84},
    {"SG", "JP", 5300, K::Submarine, 0.85},
    {"KR", "JP", 950, K::Submarine, 0.88},
    {"CN", "HK", 700, K::Terrestrial, 0.70},
    {"CN", "KR", 1000, K::Submarine, 0.72},
    {"CN", "JP", 2100, K::Submarine, 0.72},
    {"SG", "AU", 6300, K::Submarine, 0.82},
    {"ID", "AU", 4400, K::Submarine, 0.66},
    {"JP", "AU", 7900, K::Submarine, 0.78},
    {"AU", "NZ", 2300, K::Submarine, 0.85},
    {"AU", "FJ", 3200, K::Submarine, 0.62},
    {"FJ", "US", 9000, K::Submarine, 0.60},
    // --- Gulf ---------------------------------------------------------------
    {"BH", "SA", 500, K::Terrestrial, 0.60},
    {"QA", "BH", 180, K::Terrestrial, 0.62},
    {"QA", "SA", 550, K::Terrestrial, 0.60},
    {"KW", "SA", 700, K::Terrestrial, 0.58},
    {"SA", "AE", 1000, K::Terrestrial, 0.62},
    {"OM", "AE", 450, K::Terrestrial, 0.60},
    {"SA", "JO", 1300, K::Terrestrial, 0.52},
    // --- Africa -------------------------------------------------------------
    {"ES", "MA", 800, K::Submarine, 0.70},
    {"PT", "MA", 900, K::Submarine, 0.70},
    {"FR", "DZ", 1000, K::Submarine, 0.62},
    {"IT", "TN", 650, K::Submarine, 0.62},
    {"IT", "LY", 1100, K::Submarine, 0.45},
    {"EG", "LY", 1400, K::Terrestrial, 0.40},
    {"EG", "SD", 1700, K::Terrestrial, 0.35},
    {"SD", "ET", 1300, K::Terrestrial, 0.28},
    {"ET", "KE", 1300, K::Terrestrial, 0.30},
    {"EG", "KE", 6000, K::Submarine, 0.55},  // SEACOM / Red Sea system
    {"KE", "UG", 550, K::Terrestrial, 0.42},
    {"UG", "RW", 420, K::Terrestrial, 0.42},
    {"RW", "TZ", 750, K::Terrestrial, 0.40},
    {"KE", "TZ", 950, K::Terrestrial, 0.40},
    {"TZ", "MZ", 1900, K::Terrestrial, 0.35},
    {"MZ", "ZA", 1500, K::Submarine, 0.48},
    {"KE", "ZA", 4700, K::Submarine, 0.42},  // EASSy east-coast trunk
    {"ZA", "ZW", 1150, K::Terrestrial, 0.42},
    {"ZW", "MZ", 600, K::Terrestrial, 0.35},
    {"MA", "SN", 2700, K::Submarine, 0.55},
    {"SN", "CI", 1950, K::Submarine, 0.52},
    {"CI", "GH", 420, K::Terrestrial, 0.48},
    {"GH", "NG", 850, K::Submarine, 0.50},
    {"NG", "CM", 950, K::Terrestrial, 0.40},
    {"CM", "AO", 1750, K::Submarine, 0.45},
    {"AO", "ZA", 2800, K::Submarine, 0.52},
    {"PT", "SN", 3400, K::Submarine, 0.60},   // Atlantic west-coast trunk
    {"GB", "ZA", 11500, K::Submarine, 0.65},  // WACS-like express
    {"MU", "ZA", 3200, K::Submarine, 0.58},
    {"MU", "IN", 4700, K::Submarine, 0.55},
    {"DZ", "TN", 650, K::Terrestrial, 0.48},
    {"DZ", "MA", 900, K::Terrestrial, 0.48},
    {"EG", "TN", 2200, K::Submarine, 0.50},
    // --- Americas -------------------------------------------------------------
    {"MX", "US", 1700, K::Terrestrial, 0.70},
    {"MX", "GT", 1100, K::Terrestrial, 0.50},
    {"GT", "SV", 250, K::Terrestrial, 0.48},
    {"SV", "HN", 250, K::Terrestrial, 0.45},
    {"HN", "NI", 400, K::Terrestrial, 0.42},
    {"NI", "CR", 350, K::Terrestrial, 0.48},
    {"CR", "PA", 520, K::Terrestrial, 0.52},
    {"PA", "CO", 850, K::Submarine, 0.55},
    {"PA", "US", 3400, K::Submarine, 0.62},
    {"CU", "US", 600, K::Submarine, 0.30},
    {"BS", "US", 350, K::Submarine, 0.55},
    {"JM", "US", 1400, K::Submarine, 0.52},
    {"DO", "US", 1700, K::Submarine, 0.52},
    {"PR", "US", 2100, K::Submarine, 0.68},
    {"TT", "US", 3400, K::Submarine, 0.55},
    {"TT", "VE", 650, K::Submarine, 0.45},
    {"CO", "US", 3900, K::Submarine, 0.62},
    {"VE", "US", 3600, K::Submarine, 0.45},
    {"CO", "VE", 1050, K::Terrestrial, 0.42},
    {"CO", "EC", 750, K::Terrestrial, 0.50},
    {"EC", "PE", 1450, K::Terrestrial, 0.48},
    {"PE", "US", 6200, K::Submarine, 0.68},  // Pacific trunk (Fig. 6b's BO/PE)
    {"EC", "US", 4900, K::Submarine, 0.58},
    {"PE", "CL", 2600, K::Terrestrial, 0.58},
    {"CL", "US", 8600, K::Submarine, 0.66},
    {"PE", "BO", 1100, K::Terrestrial, 0.42},
    {"BO", "BR", 2700, K::Terrestrial, 0.32},
    {"BO", "AR", 2300, K::Terrestrial, 0.40},
    {"CL", "AR", 1150, K::Terrestrial, 0.62},
    {"AR", "BR", 2400, K::Terrestrial, 0.52},
    {"UY", "AR", 500, K::Terrestrial, 0.60},
    {"UY", "BR", 1800, K::Terrestrial, 0.58},
    {"PY", "AR", 1050, K::Terrestrial, 0.45},
    {"PY", "BR", 1350, K::Terrestrial, 0.45},
    {"BR", "US", 7600, K::Submarine, 0.75},  // Fortaleza <-> Florida trunk
    {"BR", "PT", 6200, K::Submarine, 0.68},  // EllaLink-like
    {"AR", "US", 8900, K::Submarine, 0.62},
};

// Countries whose public-transit egress funnels through a gateway country
// before reaching any global carrier hub (reproduces the Gulf detour of
// Fig. 18 and similar regional backhaul effects).
struct UplinkRule {
  std::string_view country;
  std::string_view gateway;
};
constexpr UplinkRule kUplinks[] = {
    // Gulf / Middle East: transit lands in Egypt (Red Sea systems) or Turkey.
    {"BH", "EG"}, {"KW", "EG"}, {"QA", "EG"}, {"OM", "EG"}, {"SA", "EG"},
    {"JO", "EG"}, {"LB", "CY"}, {"IQ", "TR"}, {"IR", "TR"},
    // Africa: north/west African ISPs overwhelmingly peer in Europe, so even
    // intra-African traffic hairpins through the Mediterranean (the cause of
    // the paper's dismal EG/DZ/MA -> ZA latencies in Fig. 6a); east Africa
    // funnels through Nairobi instead, keeping KE->ZA on the coastal systems.
    {"EG", "IT"}, {"DZ", "FR"}, {"MA", "ES"}, {"TN", "IT"}, {"LY", "IT"},
    {"NG", "GB"}, {"GH", "PT"}, {"CM", "NG"},
    {"ET", "EG"}, {"SD", "EG"}, {"UG", "KE"}, {"RW", "KE"},
    // Andes / southern cone.
    {"BO", "PE"}, {"PY", "AR"},
};

}  // namespace

Backbone::Backbone(const geo::CountryTable& countries) : countries_(countries) {
  const auto all = countries.all();
  nodes_.reserve(all.size());
  for (const geo::CountryInfo& c : all) {
    index_.emplace(std::string{c.code}, nodes_.size());
    nodes_.push_back(&c);
  }
  adjacency_.resize(nodes_.size());

  for (const BackboneLink& link : kLinks) {
    const auto ia = node_index(link.a);
    const auto ib = node_index(link.b);
    CLOUDRTT_CHECK(ia && ib, "backbone link table references unknown country ",
                   link.a, "-", link.b);
    catalog_.push_back(BackboneLinkRef{link.a, link.b, link.kind});
    double km = link.length_km;
    if (km <= 0.0) {
      km = geo::haversine_km(nodes_[*ia]->centroid, nodes_[*ib]->centroid) * 1.2;
    }
    double quality = link.quality;
    if (quality <= 0.0) {
      quality = 0.5 * (nodes_[*ia]->backhaul_quality + nodes_[*ib]->backhaul_quality);
    }
    add_edge(link.a, link.b, km, quality);
  }

  // Auto-mesh: connect each country to its 3 nearest same-continent
  // neighbours so the intra-continent fabric is dense without listing every
  // border by hand. Duplicates with explicit links are harmless (Dijkstra
  // picks the cheaper edge).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::vector<std::pair<double, std::size_t>> near;
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (i == j || nodes_[i]->continent != nodes_[j]->continent) continue;
      near.emplace_back(geo::haversine_km(nodes_[i]->centroid, nodes_[j]->centroid), j);
    }
    std::sort(near.begin(), near.end());
    const std::size_t take = std::min<std::size_t>(3, near.size());
    for (std::size_t k = 0; k < take; ++k) {
      const std::size_t j = near[k].second;
      const double km = near[k].first * 1.25;
      const double quality =
          0.5 * (nodes_[i]->backhaul_quality + nodes_[j]->backhaul_quality);
      add_edge(nodes_[i]->code, nodes_[j]->code, km, quality);
    }
  }

  precompute_nominal_routes();
}

void Backbone::precompute_nominal_routes() {
  const std::size_t n = nodes_.size();
  nominal_.resize(n * n);
  for (std::size_t from = 0; from < n; ++from) {
    const SearchState state = shortest_paths(from, std::nullopt);
    for (std::size_t to = 0; to < n; ++to) {
      nominal_[from * n + to] = extract_route(from, to, state);
    }
  }
}

std::optional<std::size_t> Backbone::node_index(std::string_view code) const {
  const auto it = index_.find(std::string{code});
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Backbone::add_edge(std::string_view a, std::string_view b, double km,
                        double quality) {
  const auto ia = node_index(a);
  const auto ib = node_index(b);
  adjacency_[*ia].push_back(Edge{*ib, km, quality});
  adjacency_[*ib].push_back(Edge{*ia, km, quality});
  edges_ += 2;
}

void Backbone::set_outages(
    const std::vector<std::pair<std::string_view, std::string_view>>& cuts) const {
  const std::scoped_lock lock{outage_mutex_};
  outage_keys_.clear();
  outage_cache_.clear();
  for (const auto& [a, b] : cuts) {
    const auto ia = node_index(a);
    const auto ib = node_index(b);
    if (!ia || !ib) continue;  // unknown pairs are ignored, not fatal
    outage_keys_.insert(pair_key(*ia, *ib));
  }
}

const BackboneRoute& Backbone::route(std::string_view from, std::string_view to) const {
  const auto ia = node_index(from);
  const auto ib = node_index(to);
  if (!ia || !ib) {
    throw std::out_of_range{"Backbone::route: unknown country code"};
  }
  // lint:allow(guarded-by): emptiness check only; set_outages never runs concurrently with readers
  if (outage_keys_.empty()) {
    return nominal_[*ia * nodes_.size() + *ib];
  }
  // References into the node-based map stay valid across later inserts, and
  // set_outages (the only eraser) never runs concurrently with readers.
  const std::uint64_t key = (static_cast<std::uint64_t>(*ia) << 32) | *ib;
  const std::scoped_lock lock{outage_mutex_};
  const auto it = outage_cache_.find(key);
  if (it != outage_cache_.end()) return it->second;
  return outage_cache_.emplace(key, compute_route(*ia, *ib)).first->second;
}

BackboneRoute Backbone::compute_route(std::size_t from, std::size_t to) const {
  return extract_route(from, to, shortest_paths(from, to));
}

Backbone::SearchState Backbone::shortest_paths(
    std::size_t from, std::optional<std::size_t> stop_at) const {
  // Dijkstra over cost = km * detour(quality) + penalty expressed in km
  // (1 ms RTT == 100 km of fibre, so penalties are comparable).
  constexpr double kKmPerPenaltyMs = 100.0;
  const std::size_t n = nodes_.size();
  SearchState state;
  state.dist.assign(n, std::numeric_limits<double>::infinity());
  state.prev.assign(n, n);
  state.prev_edge.assign(n, static_cast<std::size_t>(-1));
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  state.dist[from] = 0.0;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > state.dist[u]) continue;
    if (stop_at && u == *stop_at) break;
    for (std::size_t e = 0; e < adjacency_[u].size(); ++e) {
      const Edge& edge = adjacency_[u][e];
      // lint:allow(guarded-by): Dijkstra rebuild runs only in the sequential schedule phase
      if (!outage_keys_.empty() && outage_keys_.contains(pair_key(u, edge.to))) {
        continue;  // severed link: every parallel edge of the pair is down
      }
      const double cost = edge.km * detour_factor(edge.quality) +
                          crossing_penalty_ms(edge.quality) * kKmPerPenaltyMs;
      if (state.dist[u] + cost < state.dist[edge.to]) {
        state.dist[edge.to] = state.dist[u] + cost;
        state.prev[edge.to] = u;
        state.prev_edge[edge.to] = e;
        queue.emplace(state.dist[edge.to], edge.to);
      }
    }
  }
  return state;
}

BackboneRoute Backbone::extract_route(std::size_t from, std::size_t to,
                                      const SearchState& state) const {
  BackboneRoute result;
  if (from == to) {
    result.countries = {nodes_[from]->code};
    result.reachable = true;
    return result;
  }
  if (!std::isfinite(state.dist[to])) return result;  // unreachable

  // Walk back to accumulate the route and its physical properties.
  std::vector<std::size_t> path;
  for (std::size_t v = to; v != from; v = state.prev[v]) path.push_back(v);
  path.push_back(from);
  std::reverse(path.begin(), path.end());

  double quality_accum = 0.0;
  std::size_t edge_count = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::size_t u = path[i];
    const std::size_t v = path[i + 1];
    // prev_edge was recorded at v for the edge (u -> v).
    const Edge& edge = adjacency_[u][state.prev_edge[v]];
    result.km += edge.km;
    result.effective_km += edge.km * detour_factor(edge.quality);
    result.penalty_ms += crossing_penalty_ms(edge.quality);
    quality_accum += 1.0 - edge.quality;
    ++edge_count;
  }
  for (const std::size_t v : path) result.countries.push_back(nodes_[v]->code);
  result.jitter_scale =
      edge_count == 0 ? 0.0 : quality_accum / static_cast<double>(edge_count);
  result.reachable = true;
  return result;
}

Backbone::SegmentCost Backbone::segment_cost(const geo::GeoPoint& a,
                                             std::string_view ca,
                                             const geo::GeoPoint& b,
                                             std::string_view cb) const {
  SegmentCost cost;
  if (ca == cb) {
    const geo::CountryInfo& info = countries_.at(ca);
    const double detour = detour_factor(info.backhaul_quality);
    cost.effective_km = geo::haversine_km(a, b) * detour;
    cost.jitter_scale = (1.0 - info.backhaul_quality) * 0.5;
    return cost;
  }
  const BackboneRoute& r = route(ca, cb);
  if (!r.reachable) {
    // Fall back to great-circle with a stiff detour: should not happen for
    // catalogue countries, but keeps the model total.
    cost.effective_km = geo::haversine_km(a, b) * 1.8;
    cost.penalty_ms = 20.0;
    cost.jitter_scale = 0.4;
    return cost;
  }
  const geo::CountryInfo& ia = countries_.at(ca);
  const geo::CountryInfo& ib = countries_.at(cb);
  // Local spurs from the concrete endpoints to their country backbone node.
  const double spur_a =
      geo::haversine_km(a, ia.centroid) * detour_factor(ia.backhaul_quality);
  const double spur_b =
      geo::haversine_km(b, ib.centroid) * detour_factor(ib.backhaul_quality);
  cost.effective_km = r.effective_km + spur_a + spur_b;
  cost.penalty_ms = r.penalty_ms;
  cost.jitter_scale = r.jitter_scale;
  return cost;
}

double Backbone::physical_km(const geo::GeoPoint& a, std::string_view ca,
                             const geo::GeoPoint& b, std::string_view cb) const {
  if (ca == cb) return geo::haversine_km(a, b) * 1.15;
  const BackboneRoute& r = route(ca, cb);
  if (!r.reachable) return geo::haversine_km(a, b) * 1.5;
  const geo::CountryInfo& ia = countries_.at(ca);
  const geo::CountryInfo& ib = countries_.at(cb);
  return r.km + geo::haversine_km(a, ia.centroid) + geo::haversine_km(b, ib.centroid);
}

std::vector<std::string_view> uplink_gateways(std::string_view country) {
  std::vector<std::string_view> out;
  for (const UplinkRule& rule : kUplinks) {
    if (rule.country == country) out.push_back(rule.gateway);
  }
  return out;
}

std::size_t uplink_gateways(std::string_view country,
                            std::span<std::string_view> out) {
  std::size_t count = 0;
  for (const UplinkRule& rule : kUplinks) {
    if (rule.country != country) continue;
    if (count == out.size()) break;
    out[count++] = rule.gateway;
  }
  return count;
}

}  // namespace cloudrtt::topology

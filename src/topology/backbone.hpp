#pragma once
// Country-level physical backbone graph.
//
// Nodes are countries; edges are terrestrial fibre corridors and submarine
// cables with approximate route lengths and a quality factor in [0,1].
// Public-Internet segments between two places are priced by routing over
// this graph: effective distance picks up per-edge detour factors (worse
// quality => more circuitous routing) and each border/IP-transit crossing
// adds a congestion penalty. This is what makes the paper's geography
// findings emerge: north Africa reaching Europe quickly but South Africa
// slowly (Fig. 6a), Bolivia/Peru riding Pacific cables to North America as
// fast as their terrestrial path to Brazil (Fig. 6b), Gulf traffic detouring
// through Egypt/Marseille (Fig. 18).

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geo/country.hpp"
#include "geo/coords.hpp"

namespace cloudrtt::topology {

enum class LinkKind : unsigned char { Terrestrial, Submarine };

struct BackboneLink {
  std::string_view a;
  std::string_view b;
  double length_km;  ///< 0 = derive from centroid distance * 1.2
  LinkKind kind;
  double quality;    ///< 0 = derive from endpoint countries
};

/// One explicit catalogue link (for inventories and fault-episode pools).
struct BackboneLinkRef {
  std::string_view a;
  std::string_view b;
  LinkKind kind;
};

/// Result of routing between two countries over the backbone.
struct BackboneRoute {
  std::vector<std::string_view> countries;  ///< node sequence incl. endpoints
  double km = 0.0;              ///< raw cable length along the route
  double effective_km = 0.0;    ///< with per-edge detour factors applied
  double penalty_ms = 0.0;      ///< border/IP-transit crossing overhead (RTT)
  double jitter_scale = 0.0;    ///< mean (1 - quality) along the route
  bool reachable = false;
};

class Backbone {
 public:
  explicit Backbone(const geo::CountryTable& countries);

  /// Cheapest route between two countries. Same-country routes are
  /// zero-length and always reachable. Nominal (outage-free) routes are
  /// precomputed for every pair at construction, so this is a lock-free
  /// table lookup safe for concurrent readers; only the outage overlay
  /// consults a mutex-guarded cache.
  [[nodiscard]] const BackboneRoute& route(std::string_view from,
                                           std::string_view to) const;

  /// Effective RTT-relevant distance between two concrete points including
  /// local spurs from each point to its country's backbone node.
  struct SegmentCost {
    double effective_km = 0.0;
    double penalty_ms = 0.0;
    double jitter_scale = 0.0;
  };
  [[nodiscard]] SegmentCost segment_cost(const geo::GeoPoint& a, std::string_view ca,
                                         const geo::GeoPoint& b,
                                         std::string_view cb) const;

  /// Physical cable length between two concrete points (route km + raw
  /// local spurs, no quality detours). Private WANs and carrier backbones
  /// ride the same glass as everyone else, so their latency is priced off
  /// this rather than the great circle.
  [[nodiscard]] double physical_km(const geo::GeoPoint& a, std::string_view ca,
                                   const geo::GeoPoint& b, std::string_view cb) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_ / 2; }

  /// The explicit long-haul catalogue (no auto-mesh edges) — the episode
  /// pool the fault subsystem draws submarine-cable cuts from.
  [[nodiscard]] const std::vector<BackboneLinkRef>& links() const {
    return catalog_;
  }

  // --- link outages (fault injection) ------------------------------------
  // Severing a country pair removes every parallel edge between the two
  // nodes (explicit cables and auto-mesh alike): the world reroutes affected
  // paths for the episode's duration, exactly like a submarine-cable cut.
  // Outage routes are cached separately so clearing the outage leaves the
  // precomputed nominal table untouched. Const-qualified because campaigns
  // hold the world by const reference. Threading contract: set_outages /
  // clear_outages may only be called from the sequential schedule phase;
  // concurrent route() readers then share the outage cache under a mutex,
  // while nominal lookups stay lock-free.
  void set_outages(
      const std::vector<std::pair<std::string_view, std::string_view>>& cuts) const;
  void clear_outages() const { set_outages({}); }
  // lint:allow(guarded-by): racy-read probe by design; an empty set is stable during execution
  [[nodiscard]] bool outages_active() const { return !outage_keys_.empty(); }

  /// Detour multiplier applied to an edge of the given quality.
  [[nodiscard]] static double detour_factor(double quality) {
    return 1.10 + 0.55 * (1.0 - quality);
  }
  /// Per-crossing congestion penalty (RTT ms) for an edge of given quality.
  [[nodiscard]] static double crossing_penalty_ms(double quality) {
    return 18.0 * (1.0 - quality);
  }

 private:
  struct Edge {
    std::size_t to;
    double km;
    double quality;
  };

  /// Shortest-path tree out of `from` (dist/prev arrays). With `stop_at`
  /// set the search exits early once that node settles; without it the full
  /// tree is computed (the all-pairs precompute path).
  struct SearchState {
    std::vector<double> dist;
    std::vector<std::size_t> prev;
    std::vector<std::size_t> prev_edge;
  };
  [[nodiscard]] SearchState shortest_paths(std::size_t from,
                                           std::optional<std::size_t> stop_at) const;
  [[nodiscard]] BackboneRoute extract_route(std::size_t from, std::size_t to,
                                            const SearchState& state) const;

  [[nodiscard]] std::optional<std::size_t> node_index(std::string_view code) const;
  void add_edge(std::string_view a, std::string_view b, double km, double quality);
  /// Route every pair once, up front, so route() never writes shared state
  /// on the nominal path.
  void precompute_nominal_routes();
  [[nodiscard]] BackboneRoute compute_route(std::size_t from, std::size_t to) const;
  [[nodiscard]] static std::uint64_t pair_key(std::size_t a, std::size_t b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
           static_cast<std::uint64_t>(std::max(a, b));
  }

  const geo::CountryTable& countries_;
  std::vector<const geo::CountryInfo*> nodes_;
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<BackboneLinkRef> catalog_;
  std::size_t edges_ = 0;
  /// Immutable after construction: route for (from, to) at [from * n + to].
  std::vector<BackboneRoute> nominal_;
  // Outage overlay: rebuilt by set_outages (sequential phase only) and read
  // under outage_mutex_ by concurrent route() callers during execution.
  mutable std::mutex outage_mutex_;
  // lint:guarded_by(outage_mutex_)
  mutable std::unordered_set<std::uint64_t> outage_keys_;     // lint:allow(mutable-member): guarded by outage_mutex_; written only in the sequential schedule phase
  // lint:guarded_by(outage_mutex_)
  mutable std::unordered_map<std::uint64_t, BackboneRoute> outage_cache_;  // lint:allow(mutable-member): guarded by outage_mutex_
};

/// Forced egress waypoints for public-transit paths leaving `country`:
/// countries whose international connectivity funnels through a gateway
/// (e.g. the Gulf states via Egypt) list it here; empty for most.
[[nodiscard]] std::vector<std::string_view> uplink_gateways(std::string_view country);

/// Zero-allocation variant for hot callers: writes up to `out.size()`
/// gateway codes into the caller's buffer and returns how many were written
/// (no country lists more than a couple of gateways).
std::size_t uplink_gateways(std::string_view country,
                            std::span<std::string_view> out);

}  // namespace cloudrtt::topology

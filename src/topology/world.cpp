#include "topology/world.hpp"

#include <algorithm>
#include <stdexcept>

#include "geo/cities.hpp"
#include "util/check.hpp"

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cloudrtt::topology {

namespace {

constexpr std::uint32_t kCgnBase = 0x64400000u;  // 100.64.0.0
constexpr std::uint32_t kCgnStep = 1u << 12;     // /20 slices
constexpr std::uint32_t kCgnEnd = 0x64800000u;   // 100.128.0.0 (exclusive)

[[nodiscard]] std::string pop_key(cloud::ProviderId provider, std::string_view country) {
  std::string key{cloud::provider_info(provider).ticker};
  key += '/';
  key += country;
  return key;
}

[[nodiscard]] std::string_view continent_transit_name(geo::Continent c) {
  switch (c) {
    case geo::Continent::Africa: return "PanAfrican Backbone";
    case geo::Continent::Asia: return "AsiaNet Transit";
    case geo::Continent::Europe: return "EuroRing Carrier";
    case geo::Continent::NorthAmerica: return "NorthBridge Transit";
    case geo::Continent::Oceania: return "Southern Cross Transit";
    case geo::Continent::SouthAmerica: return "AndesNet Backbone";
  }
  return "Continental Transit";
}

}  // namespace

World::World(const WorldConfig& config)
    : config_(config),
      root_rng_(config.seed),
      backbone_(geo::CountryTable::instance()),
      prefix_allocator_(net::Ipv4Address{5, 0, 0, 0}),
      cgn_cursor_(kCgnBase) {
  obs::Span build = obs::span("topology.world.build");
  {
    obs::Span phase = obs::span("transit");
    build_transit();
  }
  {
    obs::Span phase = obs::span("ixps");
    build_ixps();
  }
  {
    obs::Span phase = obs::span("isps");
    build_isps();
  }
  {
    obs::Span phase = obs::span("clouds");
    build_clouds();
  }
  {
    obs::Span phase = obs::span("pops");
    build_pops();
  }
  {
    obs::Span phase = obs::span("materialize");
    materialize_address_plan();
    materialize_policies();
    materialize_bgp();
  }
  obs::Registry& registry = obs::Registry::global();
  registry.gauge("world.ases").set(static_cast<double>(registry_.size()));
  registry.gauge("world.isps").set(static_cast<double>(isps_.size()));
  registry.gauge("world.endpoints").set(static_cast<double>(endpoints_.size()));
  registry.gauge("world.rib_prefixes").set(static_cast<double>(rib_.size()));
  registry.gauge("world.router_sites").set(static_cast<double>(address_plan_.size()));
  registry.gauge("world.bgp_routes")
      .set(static_cast<double>(bgp_routes_.route_count()));
  registry.gauge("world.policies").set(static_cast<double>(policies_.size()));
  CLOUDRTT_LOG_DEBUG("world.built", {"seed", config_.seed},
                     {"ases", registry_.size()}, {"isps", isps_.size()},
                     {"endpoints", endpoints_.size()},
                     {"rib_prefixes", rib_.size()},
                     {"router_sites", address_plan_.size()},
                     {"policies", policies_.size()});
}

net::Ipv4Prefix World::allocate_infra(Asn asn, std::uint8_t length, bool announced) {
  const net::Ipv4Prefix prefix = prefix_allocator_.allocate(length);
  infra_alloc_.emplace(asn, net::HostAllocator{prefix});
  (announced ? rib_ : whois_).push_back(RibEntry{prefix, asn});
  return prefix;
}

void World::build_transit() {
  for (const TransitCarrier& carrier : tier1_carriers()) {
    registry_.add(AsInfo{carrier.asn, std::string{carrier.name}, AsType::Tier1Transit,
                         "", geo::Continent::Europe, cloud::ProviderId::Amazon});
    // GTT and Zayo keep their infrastructure out of the RIB so the analysis
    // pipeline has to fall back to registration (whois) data, exercising the
    // paper's Team Cymru path.
    const bool announced = carrier.asn != 3257 && carrier.asn != 6461;
    (void)allocate_infra(carrier.asn, 18, announced);
  }
  for (const geo::Continent c : geo::kAllContinents) {
    const Asn asn = registry_.next_synthetic_asn();
    registry_.add(AsInfo{asn, std::string{continent_transit_name(c)},
                         AsType::RegionalTransit, "", c, cloud::ProviderId::Amazon});
    (void)allocate_infra(asn, 18, true);
    continental_transit_[geo::index_of(c)] = asn;
  }
}

void World::build_ixps() {
  for (const IxpInfo& ixp : known_ixps()) {
    const geo::CountryInfo& country = countries().at(ixp.country);
    registry_.add(AsInfo{ixp.asn, std::string{ixp.name}, AsType::Ixp,
                         std::string{ixp.country}, country.continent,
                         cloud::ProviderId::Amazon});
    const net::Ipv4Prefix lan = prefix_allocator_.allocate(22);
    infra_alloc_.emplace(ixp.asn, net::HostAllocator{lan});
    // Peering LANs are visible in traceroutes but live in the IXP dataset,
    // not the RIB (route-servers don't originate them globally).
    ixp_rib_.push_back(RibEntry{lan, ixp.asn});
  }
}

void World::build_isps() {
  util::Rng rng = root_rng_.fork("isps");
  for (const geo::CountryInfo& country : countries().all()) {
    const auto named = named_isps_in(country.code);
    std::size_t synthetic = 2;
    if (!named.empty()) {
      synthetic = 1;
    } else {
      if (country.sc_weight > 500) ++synthetic;
      if (country.sc_weight > 1500) ++synthetic;
      if (country.sc_weight > 4000) ++synthetic;
    }

    std::size_t rank = 0;
    auto add_isp = [&](Asn asn, std::string name, bool is_named) {
      IspNetwork isp;
      isp.asn = asn;
      isp.name = std::move(name);
      isp.country = country.code;
      isp.continent = country.continent;
      isp.share = 1.0 / static_cast<double>(1 + rank);
      isp.named = is_named;
      isp.customer_prefix = prefix_allocator_.allocate(16);
      isp.infra_prefix = allocate_infra(asn, 20, true);
      if (cgn_cursor_ + kCgnStep > kCgnEnd) {
        throw std::runtime_error{"World: CGN pool exhausted"};
      }
      isp.cgn_prefix = net::Ipv4Prefix{net::Ipv4Address{cgn_cursor_}, 20};
      cgn_cursor_ += kCgnStep;
      isp.cgn_fraction =
          std::clamp(0.10 + 0.30 * (1.0 - country.backhaul_quality), 0.0, 0.45);
      rib_.push_back(RibEntry{isp.customer_prefix, asn});

      registry_.add(AsInfo{asn, isp.name, AsType::AccessIsp, isp.country,
                           isp.continent, cloud::ProviderId::Amazon});
      isp_index_.emplace(asn, isps_.size());
      customer_alloc_.emplace(asn, net::HostAllocator{isp.customer_prefix});
      cgn_alloc_.emplace(asn, net::HostAllocator{isp.cgn_prefix});
      isps_.push_back(std::move(isp));
      ++rank;
    };

    for (const NamedIsp* isp : named) {
      add_isp(isp->asn, std::string{isp->name}, true);
    }
    for (std::size_t i = 0; i < synthetic; ++i) {
      const Asn asn = registry_.next_synthetic_asn();
      std::string name = std::string{country.name} + " Telecom " +
                         std::to_string(i + 1);
      add_isp(asn, std::move(name), false);
    }
    (void)rng;
  }
}

void World::build_clouds() {
  for (const cloud::ProviderId id : cloud::kAllProviders) {
    const cloud::ProviderInfo& info = cloud::provider_info(id);
    registry_.add(AsInfo{info.asn, std::string{info.name}, AsType::CloudWan, "",
                         geo::Continent::NorthAmerica, id});
    (void)allocate_infra(info.asn, 16, true);
  }
  for (const cloud::RegionInfo& region : cloud::RegionCatalog::instance().all()) {
    const cloud::ProviderInfo& info = cloud::provider_info(region.provider);
    CloudEndpoint endpoint;
    endpoint.region = &region;
    endpoint.prefix = prefix_allocator_.allocate(24);
    endpoint.dc_router = endpoint.prefix.address_at(1);
    endpoint.vm_ip = endpoint.prefix.address_at(10);
    rib_.push_back(RibEntry{endpoint.prefix, info.asn});
    endpoint_index_.emplace(&region, endpoints_.size());
    endpoints_.push_back(endpoint);
  }
}

void World::build_pops() {
  util::Rng rng = root_rng_.fork("pops");
  const auto add_pop = [this](cloud::ProviderId p, std::string_view cc) {
    pops_.insert(pop_key(p, cc));
  };

  for (const geo::CountryInfo& country : countries().all()) {
    const double q = country.backhaul_quality;
    util::Rng country_rng = rng.fork(country.code);
    // Hypergiants deploy edge PoPs nearly everywhere the backhaul supports
    // them; Lightsail rides Amazon's edge.
    for (const cloud::ProviderId p :
         {cloud::ProviderId::Amazon, cloud::ProviderId::Google,
          cloud::ProviderId::Microsoft}) {
      // Edge presence needs a business case and a functioning peering
      // ecosystem: nonexistent below ~0.5 backhaul quality, near-certain in
      // well-provisioned markets.
      const double prob = std::clamp((q - 0.45) * 2.4, 0.0, 0.98);
      if (country_rng.chance(prob)) {
        add_pop(p, country.code);
        if (p == cloud::ProviderId::Amazon) {
          add_pop(cloud::ProviderId::Lightsail, country.code);
        }
      }
    }
    // DigitalOcean and IBM keep their (semi) WAN edges in EU/NA only.
    if ((country.continent == geo::Continent::Europe ||
         country.continent == geo::Continent::NorthAmerica) &&
        q >= 0.80) {
      add_pop(cloud::ProviderId::DigitalOcean, country.code);
      add_pop(cloud::ProviderId::Ibm, country.code);
    }
    // Alibaba's WAN edge is a Chinese phenomenon.
    if (country.code == std::string_view{"CN"} ||
        country.code == std::string_view{"HK"}) {
      add_pop(cloud::ProviderId::Alibaba, country.code);
    }
  }
  // Operating a datacenter implies local peering presence: every provider
  // has an edge in the countries hosting its regions.
  for (const cloud::RegionInfo& region : cloud::RegionCatalog::instance().all()) {
    add_pop(region.provider, region.country);
  }
  // Case-study ground truth (Figs. 12a/13a/17a/18a): fix the PoPs the
  // override table depends on. Bahrain: Microsoft and Google maintain edge
  // presence, Amazon does not (me-south traffic still ingresses at the DC).
  for (const std::string_view cc : {"DE", "JP", "UA"}) {
    for (const cloud::ProviderId p :
         {cloud::ProviderId::Amazon, cloud::ProviderId::Google,
          cloud::ProviderId::Microsoft, cloud::ProviderId::Lightsail}) {
      add_pop(p, cc);
    }
  }
  add_pop(cloud::ProviderId::Microsoft, "BH");
  add_pop(cloud::ProviderId::Google, "BH");
  pops_.erase(pop_key(cloud::ProviderId::Amazon, "BH"));
  pops_.erase(pop_key(cloud::ProviderId::Lightsail, "BH"));
}

std::vector<const IspNetwork*> World::isps_in(std::string_view country) const {
  std::vector<const IspNetwork*> out;
  for (const IspNetwork& isp : isps_) {
    if (isp.country == country) out.push_back(&isp);
  }
  return out;
}

const IspNetwork& World::isp(Asn asn) const {
  const auto it = isp_index_.find(asn);
  if (it == isp_index_.end()) {
    throw std::out_of_range{"World::isp: unknown ASN " + std::to_string(asn)};
  }
  return isps_[it->second];
}

net::Ipv4Address World::allocate_customer_ip(Asn isp_asn) {
  const auto it = customer_alloc_.find(isp_asn);
  if (it == customer_alloc_.end()) {
    throw std::out_of_range{"World::allocate_customer_ip: unknown ISP"};
  }
  return it->second.allocate();
}

net::Ipv4Address World::allocate_cgn_ip(Asn isp_asn) {
  const auto it = cgn_alloc_.find(isp_asn);
  if (it == cgn_alloc_.end()) {
    throw std::out_of_range{"World::allocate_cgn_ip: unknown ISP"};
  }
  return it->second.allocate();
}

const CloudEndpoint& World::endpoint(const cloud::RegionInfo& region) const {
  const auto it = endpoint_index_.find(&region);
  if (it == endpoint_index_.end()) {
    throw std::out_of_range{"World::endpoint: region not in catalogue"};
  }
  return endpoints_[it->second];
}

bool World::has_pop(cloud::ProviderId provider, std::string_view country) const {
  if (!config_.enable_edge_pops) return false;
  return pops_.contains(pop_key(provider, country));
}

Asn World::continental_transit(geo::Continent continent) const {
  return continental_transit_[geo::index_of(continent)];
}

net::Ipv4Address World::router_ip(Asn asn, std::string_view site) const {
  CLOUDRTT_DCHECK(!site.empty(), "router_ip needs a site label for AS", asn);
  return address_plan_.at(asn, site);
}

void World::materialize_address_plan() {
  // Canonical walk of the router space: tier-1 carriers (catalogue order),
  // continental transit (continent order), IXPs, access ISPs (build order),
  // cloud WANs (provider order). Each AS's sites draw sequentially from its
  // infrastructure allocator, so this order *is* the address plan — it can
  // change freely between versions (hashes only ever compare runs of one
  // build), but within a build it is a pure function of the world config.
  //
  // The site lists are a superset of everything routing/path_builder.cpp can
  // request: an unplanned site aborts at lookup, so enumeration gaps surface
  // in the first test that walks the missing path.
  const auto plan_site = [this](Asn asn, std::string site) {
    const auto it = infra_alloc_.find(asn);
    CLOUDRTT_CHECK(it != infra_alloc_.end(), "materialize: AS", asn,
                   " has no infrastructure prefix (site '", site, "')");
    address_plan_.assign(asn, std::move(site), it->second.allocate());
  };

  // Tier-1 carriers: hub ingress/egress interfaces plus the ECMP sibling the
  // load-balanced segments expose.
  for (const TransitCarrier& carrier : tier1_carriers()) {
    for (const TransitHub& hub : carrier.hubs) {
      const std::string city{hub.city};
      plan_site(carrier.asn, "hub/" + city);
      plan_site(carrier.asn, "hub/" + city + "/ecmp-b");
      plan_site(carrier.asn, "hub-out/" + city);
    }
  }

  // Continental transit: per-country upstream interfaces (with ECMP sibling)
  // and gateway egress interfaces. Planned for every country — a superset of
  // the continent's members and their gateways, but the /18 has room and a
  // uniform walk keeps the enumeration obviously complete.
  for (const geo::Continent c : geo::kAllContinents) {
    const Asn asn = continental_transit_[geo::index_of(c)];
    for (const geo::CountryInfo& country : countries().all()) {
      const std::string cc{country.code};
      plan_site(asn, "up/" + cc);
      plan_site(asn, "up/" + cc + "/ecmp-b");
      plan_site(asn, "gw/" + cc);
    }
  }

  // IXP peering LANs.
  for (const IxpInfo& ixp : known_ixps()) {
    plan_site(ixp.asn, "lan/" + std::string{ixp.country});
  }

  // Access ISPs: one edge router per city of the home country, the national
  // core, and the uplink-gateway egress routers (planned regardless of the
  // gateway ablation knob — the knob gates path construction, not the plan).
  for (const IspNetwork& isp : isps_) {
    for (const geo::City& city : geo::CityDirectory::instance().cities(isp.country)) {
      plan_site(isp.asn, "edge/" + city.name);
    }
    plan_site(isp.asn, "core/" + isp.country);
    for (const std::string_view gw : uplink_gateways(isp.country)) {
      plan_site(isp.asn, "gw/" + std::string{gw});
    }
  }

  // Cloud WANs: one edge PoP interface per country (paths ingress either in
  // the probe's country or the region's), one PNI interface per carrier hub
  // city, and one mid-backbone router per <ingress label, region> long-haul
  // pair, where the label is a country code (probe paths) or a source region
  // name (inter-DC paths).
  std::vector<std::string_view> hub_cities;
  for (const TransitCarrier& carrier : tier1_carriers()) {
    for (const TransitHub& hub : carrier.hubs) {
      if (std::find(hub_cities.begin(), hub_cities.end(), hub.city) ==
          hub_cities.end()) {
        hub_cities.push_back(hub.city);
      }
    }
  }
  for (const cloud::ProviderId id : cloud::kAllProviders) {
    const Asn asn = cloud::provider_info(id).asn;
    for (const geo::CountryInfo& country : countries().all()) {
      plan_site(asn, "pop/" + std::string{country.code});
    }
    for (const std::string_view city : hub_cities) {
      plan_site(asn, "pop@" + std::string{city});
    }
    const auto regions = cloud::RegionCatalog::instance().of_provider(id);
    // lint:allow(unordered-iter): of_provider returns a vector in catalog order
    for (const cloud::RegionInfo* region : regions) {
      const std::string suffix = "-" + std::string{region->region_name};
      for (const geo::CountryInfo& country : countries().all()) {
        plan_site(asn, "wan/" + std::string{country.code} + suffix);
      }
      // lint:allow(unordered-iter): of_provider returns a vector in catalog order
      for (const cloud::RegionInfo* from : regions) {
        plan_site(asn, "wan/" + std::string{from->region_name} + suffix);
      }
    }
  }

  address_plan_.freeze();
}

void World::materialize_policies() {
  for (const IspNetwork& isp : isps_) {
    for (const cloud::ProviderId provider : cloud::kAllProviders) {
      for (const geo::Continent dst : geo::kAllContinents) {
        policies_.put(PolicyTable::key(isp.asn, cloud::provider_index(provider),
                                       geo::index_of(dst)),
                      compute_policy(isp, provider, dst));
      }
    }
  }
  policies_.freeze();
}

void World::materialize_bgp() {
  // Derive the business graph last: it reads the interconnect policies and
  // the continental-transit assignments, both frozen above. Campaigns only
  // ever ask for routes towards cloud origins, so those are the blocks the
  // flattened table carries; analyses needing other origins run the decision
  // process on bgp() directly.
  bgp_ = BgpGraph::from_world(*this);
  std::array<Asn, cloud::kProviderCount> origins{};
  for (std::size_t i = 0; i < cloud::kAllProviders.size(); ++i) {
    origins[i] = cloud::provider_info(cloud::kAllProviders[i]).asn;
  }
  bgp_routes_ = BgpRouteTable::materialize(bgp_, origins);
}

const PairPolicy& World::interconnect(Asn isp_asn, cloud::ProviderId provider,
                                      geo::Continent dst) const {
  return policies_.at(PolicyTable::key(isp_asn, cloud::provider_index(provider),
                                       geo::index_of(dst)));
}

PairPolicy World::compute_policy(const IspNetwork& isp, cloud::ProviderId provider,
                                 geo::Continent dst) const {
  PairPolicy policy;
  const auto fallback_of = [](InterconnectMode mode) {
    switch (mode) {
      case InterconnectMode::Direct: return InterconnectMode::OneAs;
      case InterconnectMode::DirectIxp: return InterconnectMode::Direct;
      case InterconnectMode::OneAs: return InterconnectMode::Public;
      case InterconnectMode::Public: return InterconnectMode::OneAs;
    }
    return InterconnectMode::Public;
  };

  const std::optional<InterconnectMode> forced =
      config_.enable_edge_pops ? policy_override(isp.asn, provider)
                               : std::optional<InterconnectMode>{};
  if (forced) {
    policy.base = *forced;
    policy.fallback = fallback_of(*forced);
    policy.adherence = 0.90;
    return policy;
  }

  util::Rng rng = root_rng_.fork("policy")
                      .fork(isp.asn)
                      .fork(cloud::provider_index(provider) * 8 + geo::index_of(dst));
  const cloud::ProviderInfo& info = cloud::provider_info(provider);
  const bool pop = has_pop(provider, isp.country);
  const bool developed = isp.continent == geo::Continent::Europe ||
                         isp.continent == geo::Continent::NorthAmerica ||
                         isp.continent == geo::Continent::Oceania;
  const bool dst_core_wan = dst == geo::Continent::Europe ||
                            dst == geo::Continent::NorthAmerica;

  double p_direct = 0.0;
  double p_ixp = 0.0;
  double p_oneas = 0.0;
  if (info.hypergiant) {
    if (pop) {
      p_direct = 0.84;
      p_ixp = developed ? 0.04 : 0.02;
      p_oneas = 0.09;
    } else {
      // No edge presence: carrier PNI where the transit market is healthy,
      // plain public transit elsewhere.
      p_oneas = developed ? 0.65 : 0.35;
    }
  } else if (provider == cloud::ProviderId::DigitalOcean) {
    if (dst_core_wan) {
      p_direct = pop ? 0.12 : 0.0;
      p_ixp = pop ? 0.05 : 0.0;
      p_oneas = pop ? 0.75 : 0.72;
    } else {
      p_oneas = 0.05;  // no PoPs outside the WAN footprint => public Internet
    }
  } else if (provider == cloud::ProviderId::Ibm) {
    if (dst_core_wan) {
      p_direct = pop ? 0.30 : 0.0;
      p_ixp = pop ? 0.18 : 0.0;
      p_oneas = pop ? 0.42 : 0.62;
    } else {
      p_oneas = 0.22;  // hybrid: public transit for the long (Asian) paths
    }
  } else if (provider == cloud::ProviderId::Alibaba) {
    if (isp.country == "CN" || isp.country == "HK") {
      p_direct = 0.90;
      p_oneas = 0.08;
    } else {
      p_oneas = 0.18;  // islands outside China: ingress via public transit
    }
  } else if (provider == cloud::ProviderId::Oracle) {
    if (developed) {
      p_direct = pop ? 0.04 : 0.0;
      p_oneas = 0.33;
    } else {
      p_oneas = 0.12;
    }
  } else {  // Vultr, Linode: no WAN, carrier or public transit only
    if (developed) {
      p_direct = 0.02;
      p_oneas = 0.55;
    } else {
      p_oneas = 0.15;
    }
  }

  const double roll = rng.uniform();
  if (roll < p_direct) {
    policy.base = InterconnectMode::Direct;
  } else if (roll < p_direct + p_ixp) {
    policy.base = InterconnectMode::DirectIxp;
  } else if (roll < p_direct + p_ixp + p_oneas) {
    policy.base = InterconnectMode::OneAs;
  } else {
    policy.base = InterconnectMode::Public;
  }
  policy.fallback = fallback_of(policy.base);
  policy.adherence = 0.90 + 0.07 * rng.uniform();
  return policy;
}

}  // namespace cloudrtt::topology

#pragma once
// BgpRouteTable: the Gao-Rexford decision process flattened into a lookup
// table, the way AddressPlan flattened router addressing.
//
// BgpGraph::routes_to() runs a three-phase propagation (customer BFS up, one
// peering hop across, provider fixed-point down) every time it is asked —
// fine for a one-off analysis, wasteful when campaigns and benches query the
// same handful of cloud origins over and over. The world runs the decision
// process once per cloud-provider ASN at construction time and freezes the
// result here: per-origin entry blocks sorted by source ASN (binary search,
// no hashing) over one shared AS-path pool. After construction the table is
// immutable — lock-free and safe for concurrent readers, like every other
// materialized world structure.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "topology/asn.hpp"
#include "topology/bgp.hpp"

namespace cloudrtt::topology {

// lint:frozen
class BgpRouteTable {
 public:
  /// A flattened best route; the path view aliases the table's pool and
  /// stays valid for the table's lifetime.
  struct Route {
    std::span<const Asn> as_path;  ///< from the route holder to the origin
    RouteType type = RouteType::Origin;

    [[nodiscard]] std::size_t length() const { return as_path.size(); }
  };

  BgpRouteTable() = default;

  /// Run the decision process for each origin and freeze the results.
  /// Origins are deduplicated; entry order inside a block is sorted by
  /// source ASN, so the table layout is deterministic regardless of the
  /// graph's internal hash order.
  [[nodiscard]] static BgpRouteTable materialize(const BgpGraph& graph,
                                                 std::span<const Asn> origins);

  /// Best route from `from` towards `origin`; nullopt when policy hides the
  /// origin from that AS or the origin was never materialized.
  [[nodiscard]] std::optional<Route> route(Asn from, Asn origin) const;

  [[nodiscard]] bool has_origin(Asn origin) const;
  [[nodiscard]] std::size_t origin_count() const { return blocks_.size(); }
  /// Total flattened (from, origin) entries across all origins.
  [[nodiscard]] std::size_t route_count() const;

 private:
  struct Entry {
    Asn from = 0;
    std::uint32_t offset = 0;  ///< into path_pool_
    std::uint16_t length = 0;
    RouteType type = RouteType::Origin;
  };
  struct OriginBlock {
    Asn origin = 0;
    std::vector<Entry> entries;  ///< sorted by `from`
  };

  [[nodiscard]] const OriginBlock* block(Asn origin) const;

  std::vector<OriginBlock> blocks_;  ///< sorted by `origin`
  std::vector<Asn> path_pool_;
};

}  // namespace cloudrtt::topology

#pragma once
// Access (eyeball) ISPs: the networks hosting probes. Each country gets its
// case-study ISPs (if the paper names them) plus synthetic ones sized by
// probe density; each ISP owns a customer prefix (probe addresses), an
// infrastructure prefix (router addresses) and a CGN pool.

#include <string>

#include "geo/continent.hpp"
#include "net/ipv4.hpp"
#include "topology/asn.hpp"

namespace cloudrtt::topology {

struct IspNetwork {
  Asn asn = 0;
  std::string name;
  std::string country;
  geo::Continent continent = geo::Continent::Europe;
  double share = 1.0;        ///< probe-assignment weight within the country
  bool named = false;        ///< appears in the paper's case studies
  net::Ipv4Prefix customer_prefix;
  net::Ipv4Prefix infra_prefix;
  net::Ipv4Prefix cgn_prefix;   ///< RFC 6598 slice, never announced
  double cgn_fraction = 0.0;    ///< subscribers behind carrier-grade NAT
};

}  // namespace cloudrtt::topology

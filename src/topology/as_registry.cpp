#include "topology/as_registry.hpp"

#include <stdexcept>

namespace cloudrtt::topology {

namespace {

// Tier-1 / global carriers with the hub cities where they pick up and hand
// off traffic. Hub placement drives the path-detour behaviour of §6.2:
// the carriers named by the paper (Telia AS1299, GTT AS3257 for carrier
// peering; NTT AS2914 for in-Japan transit; TATA AS6453 for JP->IN) are all
// present with the right geography.
const std::vector<TransitCarrier> kTier1Carriers = {
    {1299, "Telia Carrier",
     {{"Stockholm", "SE", {59.33, 18.07}},
      {"Frankfurt", "DE", {50.11, 8.68}},
      {"London", "GB", {51.51, -0.13}},
      {"Marseille", "FR", {43.30, 5.37}},
      {"Ashburn", "US", {39.04, -77.49}}}},
    {3257, "GTT Communications",
     {{"Frankfurt", "DE", {50.11, 8.68}},
      {"London", "GB", {51.51, -0.13}},
      {"New York", "US", {40.71, -74.01}}}},
    {2914, "NTT Communications",
     {{"Tokyo", "JP", {35.68, 139.69}},
      {"Singapore", "SG", {1.35, 103.82}},
      {"Los Angeles", "US", {34.05, -118.24}},
      {"London", "GB", {51.51, -0.13}}}},
    {6453, "TATA Communications",
     {{"Mumbai", "IN", {19.08, 72.88}},
      {"Singapore", "SG", {1.35, 103.82}},
      {"Marseille", "FR", {43.30, 5.37}},
      {"Dubai", "AE", {25.20, 55.27}},
      {"New York", "US", {40.71, -74.01}}}},
    {174, "Cogent",
     {{"Washington DC", "US", {38.91, -77.04}},
      {"Frankfurt", "DE", {50.11, 8.68}},
      {"Paris", "FR", {48.86, 2.35}}}},
    {3356, "Lumen (Level 3)",
     {{"Denver", "US", {39.74, -104.99}},
      {"London", "GB", {51.51, -0.13}},
      {"Sao Paulo", "BR", {-23.55, -46.63}}}},
    {6762, "Telecom Italia Sparkle",
     {{"Milan", "IT", {45.46, 9.19}},
      {"Marseille", "FR", {43.30, 5.37}},
      {"Miami", "US", {25.76, -80.19}},
      {"Sao Paulo", "BR", {-23.55, -46.63}}}},
    {3491, "PCCW Global",
     {{"Hong Kong", "HK", {22.32, 114.17}},
      {"Singapore", "SG", {1.35, 103.82}},
      {"Los Angeles", "US", {34.05, -118.24}}}},
    {5511, "Orange International Carriers",
     {{"Paris", "FR", {48.86, 2.35}},
      {"Marseille", "FR", {43.30, 5.37}},
      {"Cairo", "EG", {30.10, 31.30}},
      {"Abidjan", "CI", {5.35, -4.02}}}},
    {6461, "Zayo",
     {{"Denver", "US", {39.74, -104.99}},
      {"Chicago", "US", {41.88, -87.63}},
      {"London", "GB", {51.51, -0.13}}}},
    // Regional wholesale carriers: without them every African/LatAm/Oceanian
    // path would hairpin to the nearest EU/US hub, which is wrong for the
    // in-continent traffic the paper measures (e.g. KE->ZA, AU->AU).
    {30844, "Liquid Telecom",
     {{"Johannesburg", "ZA", {-26.20, 28.05}},
      {"Nairobi", "KE", {-1.29, 36.82}},
      {"Lagos", "NG", {6.52, 3.38}},
      {"Cairo", "EG", {30.10, 31.30}}}},
    {12956, "Telxius",
     {{"Madrid", "ES", {40.42, -3.70}},
      {"Miami", "US", {25.76, -80.19}},
      {"Sao Paulo", "BR", {-23.55, -46.63}},
      {"Santiago", "CL", {-33.45, -70.67}}}},
    {4637, "Telstra Global",
     {{"Sydney", "AU", {-33.87, 151.21}},
      {"Auckland", "NZ", {-36.85, 174.76}},
      {"Singapore", "SG", {1.35, 103.82}},
      {"Tokyo", "JP", {35.68, 139.69}},
      {"Los Angeles", "US", {34.05, -118.24}}}},
};

// Case-study access ISPs, ASNs as printed in Figs. 12a, 13a, 17a, 18a.
const std::vector<NamedIsp> kNamedIsps = {
    // Germany (Fig. 12a)
    {3209, "Vodafone", "DE"},
    {3320, "Deutsche Telekom", "DE"},
    {6805, "Telefonica Germany", "DE"},
    {6830, "Liberty Global", "DE"},
    {8881, "1&1 Versatel", "DE"},
    // Japan (Fig. 13a)
    {2516, "KDDI", "JP"},
    {2518, "BIGLOBE", "JP"},
    {4713, "NTT OCN", "JP"},
    {17511, "OPTAGE", "JP"},
    {17676, "SoftBank", "JP"},
    // Ukraine (Fig. 17a)
    {3255, "UARnet", "UA"},
    {3326, "Datagroup", "UA"},
    {6849, "UKRTELNET", "UA"},
    {15895, "Kyivstar", "UA"},
    {25229, "Volia", "UA"},
    // Bahrain (Fig. 18a)
    {5416, "Batelco", "BH"},
    {31452, "ZAIN Bahrain", "BH"},
    {39273, "Kalaam Telecom", "BH"},
    {51375, "stc Bahrain", "BH"},
};

// Exchange fabrics; traceroute hops inside these prefixes are tagged via the
// CAIDA-IXP-like dataset and removed from AS-level paths (§6.1).
const std::vector<IxpInfo> kIxps = {
    {6695, "DE-CIX Frankfurt", "DE", {50.11, 8.68}},
    {1200, "AMS-IX", "NL", {52.37, 4.90}},
    {5459, "LINX", "GB", {51.51, -0.13}},
    {7527, "JPNAP", "JP", {35.68, 139.69}},
    {24115, "Equinix Singapore", "SG", {1.35, 103.82}},
    {33108, "IX.br Sao Paulo", "BR", {-23.55, -46.63}},
    {37195, "NAPAfrica", "ZA", {-26.20, 28.05}},
};

}  // namespace

std::span<const TransitCarrier> tier1_carriers() { return kTier1Carriers; }
std::span<const NamedIsp> named_isps() { return kNamedIsps; }

std::vector<const NamedIsp*> named_isps_in(std::string_view country) {
  std::vector<const NamedIsp*> out;
  for (const NamedIsp& isp : kNamedIsps) {
    if (isp.country == country) out.push_back(&isp);
  }
  return out;
}

std::span<const IxpInfo> known_ixps() { return kIxps; }

const AsInfo& AsRegistry::add(AsInfo info) {
  if (contains(info.asn)) {
    throw std::logic_error{"AsRegistry: duplicate ASN " + std::to_string(info.asn)};
  }
  index_.emplace(info.asn, infos_.size());
  infos_.push_back(std::move(info));
  return infos_.back();
}

const AsInfo* AsRegistry::find(Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &infos_[it->second];
}

const AsInfo& AsRegistry::at(Asn asn) const {
  const AsInfo* info = find(asn);
  if (info == nullptr) {
    throw std::out_of_range{"AsRegistry: unknown ASN " + std::to_string(asn)};
  }
  return *info;
}

}  // namespace cloudrtt::topology

#include "topology/route_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cloudrtt::topology {

BgpRouteTable BgpRouteTable::materialize(const BgpGraph& graph,
                                         std::span<const Asn> origins) {
  std::vector<Asn> sorted{origins.begin(), origins.end()};
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  BgpRouteTable table;
  table.blocks_.reserve(sorted.size());
  for (const Asn origin : sorted) {
    const std::unordered_map<Asn, BgpRoute> routes = graph.routes_to(origin);
    std::vector<std::pair<Asn, const BgpRoute*>> ordered;
    ordered.reserve(routes.size());
    for (const auto& [from, route] : routes) {  // lint:allow(unordered-iter): sorted by source ASN immediately below
      ordered.emplace_back(from, &route);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    OriginBlock block;
    block.origin = origin;
    block.entries.reserve(ordered.size());
    for (const auto& [from, route] : ordered) {
      CLOUDRTT_CHECK(route->as_path.size() <= 0xffff, "AS path towards ",
                     origin, " exceeds the flattened length field");
      Entry entry;
      entry.from = from;
      entry.offset = static_cast<std::uint32_t>(table.path_pool_.size());
      entry.length = static_cast<std::uint16_t>(route->as_path.size());
      entry.type = route->type;
      table.path_pool_.insert(table.path_pool_.end(), route->as_path.begin(),
                              route->as_path.end());
      block.entries.push_back(entry);
    }
    table.blocks_.push_back(std::move(block));
  }
  return table;
}

const BgpRouteTable::OriginBlock* BgpRouteTable::block(Asn origin) const {
  const auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), origin,
      [](const OriginBlock& entry, Asn value) { return entry.origin < value; });
  if (it == blocks_.end() || it->origin != origin) return nullptr;
  return &*it;
}

std::optional<BgpRouteTable::Route> BgpRouteTable::route(Asn from,
                                                         Asn origin) const {
  const OriginBlock* origin_block = block(origin);
  if (origin_block == nullptr) return std::nullopt;
  const auto it = std::lower_bound(
      origin_block->entries.begin(), origin_block->entries.end(), from,
      [](const Entry& entry, Asn value) { return entry.from < value; });
  if (it == origin_block->entries.end() || it->from != from) {
    return std::nullopt;
  }
  Route route;
  route.as_path = std::span<const Asn>{path_pool_}.subspan(it->offset,
                                                           it->length);
  route.type = it->type;
  return route;
}

bool BgpRouteTable::has_origin(Asn origin) const {
  return block(origin) != nullptr;
}

std::size_t BgpRouteTable::route_count() const {
  std::size_t total = 0;
  for (const OriginBlock& entry : blocks_) total += entry.entries.size();
  return total;
}

}  // namespace cloudrtt::topology

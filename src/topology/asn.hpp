#pragma once
// AS-level identity: AS numbers, network classes, and per-AS metadata.
// The analysis side consumes this through the PeeringDB-like enrichment
// registry (§3.3), never directly — mirroring the paper's pipeline.

#include <cstdint>
#include <string>
#include <string_view>

#include "cloud/provider.hpp"
#include "geo/continent.hpp"

namespace cloudrtt::topology {

using Asn = std::uint32_t;

/// Network class as recorded in our PeeringDB substitute.
enum class AsType : unsigned char {
  Tier1Transit,     ///< global carrier (Telia, GTT, NTT, TATA, ...)
  RegionalTransit,  ///< continental/sub-regional transit
  AccessIsp,        ///< eyeball network hosting probes
  CloudWan,         ///< a cloud provider's backbone AS
  Ixp,              ///< exchange fabric (route-servers/peering LAN)
};

struct AsInfo {
  Asn asn = 0;
  std::string name;
  AsType type = AsType::AccessIsp;
  std::string country;  ///< ISO code of registration ("" for global carriers)
  geo::Continent continent = geo::Continent::Europe;
  /// Set only for AsType::CloudWan.
  cloud::ProviderId provider = cloud::ProviderId::Amazon;

  [[nodiscard]] bool is_cloud() const { return type == AsType::CloudWan; }
  [[nodiscard]] bool is_ixp() const { return type == AsType::Ixp; }
  [[nodiscard]] bool is_transit() const {
    return type == AsType::Tier1Transit || type == AsType::RegionalTransit;
  }
};

}  // namespace cloudrtt::topology

#pragma once
// AS-level BGP route propagation with Gao-Rexford policies.
//
// The paper's background (§2.1/§2.3) rests on inter-domain routing facts:
// the Internet "flattening", hypergiants bypassing Tier-1 transit via direct
// peering, small clouds living behind their providers. This module computes
// policy-compliant best routes over the derived AS graph and lets the
// repository check those facts from first principles — independently of the
// waypoint-based forwarding simulator the measurements run on.
//
// Model: edges are customer->provider or peer<->peer. Exports follow the
// classic rules — routes learned from customers are exported to everyone;
// routes learned from peers or providers only to customers. Selection
// prefers customer routes over peer routes over provider routes, then the
// shortest AS path, then the lowest next-hop ASN (deterministic tiebreak).
// All best routes under these preferences are valley-free by construction.

#include <initializer_list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/asn.hpp"

namespace cloudrtt::topology {

class World;

enum class RouteType : unsigned char { Origin, Customer, Peer, Provider };

[[nodiscard]] constexpr std::string_view to_string(RouteType type) {
  switch (type) {
    case RouteType::Origin: return "origin";
    case RouteType::Customer: return "customer";
    case RouteType::Peer: return "peer";
    case RouteType::Provider: return "provider";
  }
  return "?";
}

struct BgpRoute {
  std::vector<Asn> as_path;  ///< from the route holder towards the origin
  RouteType type = RouteType::Origin;

  [[nodiscard]] std::size_t length() const { return as_path.size(); }
};

class BgpGraph {
 public:
  BgpGraph() = default;

  /// Derive the AS-level business graph from an assembled world:
  ///  * tier-1 carriers form a full peer mesh;
  ///  * continental transit ASes buy from nearby tier-1s;
  ///  * access ISPs buy from their continental transit (and, in developed
  ///    markets, directly from tier-1s);
  ///  * clouds peer directly with ISPs per the interconnect policy, peer
  ///    with carriers hosting their PNI PoPs, and buy transit where their
  ///    backbone is public.
  [[nodiscard]] static BgpGraph from_world(const World& world);

  void add_customer_provider(Asn customer, Asn provider);
  void add_peering(Asn a, Asn b);

  [[nodiscard]] bool has_edge(Asn a, Asn b) const;
  [[nodiscard]] std::size_t as_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Best routes from every AS towards `origin`, computed on demand. The
  /// graph holds no cache (and therefore no mutex): campaigns query the
  /// flattened BgpRouteTable the world materializes at construction; this
  /// entry point exists for analyses and tests that mutate the graph.
  [[nodiscard]] std::unordered_map<Asn, BgpRoute> routes_to(Asn origin) const;

  /// Best route from one AS towards an origin; nullopt when policy hides it.
  [[nodiscard]] std::optional<BgpRoute> route(Asn from, Asn origin) const;

  /// Valley-free check for an AS path (each edge classified against the
  /// graph; a path may step "down" at most once and never up after down).
  /// Accepts owned vectors and the flattened table's path views alike.
  [[nodiscard]] bool is_valley_free(std::span<const Asn> as_path) const;
  [[nodiscard]] bool is_valley_free(std::initializer_list<Asn> as_path) const {
    return is_valley_free(std::span<const Asn>{as_path.begin(), as_path.size()});
  }

 private:
  struct Node {
    std::vector<Asn> providers;
    std::vector<Asn> customers;
    std::vector<Asn> peers;
  };

  Node& node(Asn asn);
  [[nodiscard]] const Node* find(Asn asn) const;
  [[nodiscard]] std::unordered_map<Asn, BgpRoute> compute_routes(Asn origin) const;

  std::unordered_map<Asn, Node> nodes_;
  std::size_t edge_count_ = 0;
};

}  // namespace cloudrtt::topology

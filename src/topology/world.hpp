#pragma once
// World: the fully-assembled synthetic Internet.
//
// Construction wires together, deterministically from one seed:
//  * the AS registry (tier-1 carriers, continental transit, IXPs, access
//    ISPs per country, one WAN AS per cloud provider),
//  * the country-level physical backbone,
//  * the IPv4 address plan (customer/infra/CGN prefixes per ISP, WAN and
//    per-region endpoint prefixes per provider),
//  * cloud edge PoP presence per <provider, country>,
//  * the interconnection policy per <ISP, provider, destination continent>.
//
// Construction ends with a materialization pass that walks the AS/router
// space in canonical order and pre-assigns every router address and pair
// policy a campaign could touch (topology/address_plan.hpp). After that the
// World is immutable on its read path: router_ip() and interconnect() are
// pure lookups, safe for concurrent readers — the property the parallel
// campaign executor relies on. Only the probe-generation allocators
// (allocate_customer_ip / allocate_cgn_ip) mutate, and they are non-const.
//
// The analysis pipeline never touches this object's internals: it bootstraps
// from rib_dump() / whois_entries() / ixp_prefixes(), the same way the paper
// bootstraps from PyASN, Team Cymru and CAIDA data.

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cloud/provider.hpp"
#include "cloud/region.hpp"
#include "geo/country.hpp"
#include "net/allocator.hpp"
#include "net/ipv4.hpp"
#include "topology/address_plan.hpp"
#include "topology/as_registry.hpp"
#include "topology/backbone.hpp"
#include "topology/bgp.hpp"
#include "topology/interconnect.hpp"
#include "topology/isp.hpp"
#include "topology/route_table.hpp"
#include "util/rng.hpp"

namespace cloudrtt::topology {

struct WorldConfig {
  std::uint64_t seed = 42;
  /// Ablation: when false, no country funnels its public transit through a
  /// gateway (the Gulf/Africa hairpins disappear) — isolates how much of the
  /// paper's Fig. 6a/18 geography is routing policy rather than distance.
  bool enable_uplink_gateways = true;
  /// Ablation: when false, no provider deploys edge PoPs and the case-study
  /// peering overrides are ignored — every pair falls back to carrier or
  /// public transit, approximating a world without the paper's §2.3
  /// interconnection investments.
  bool enable_edge_pops = true;
};

/// A deployed compute region endpoint: the public VM the study pings
/// (hostname resolution via CloudHarmony in the paper; here the directory
/// itself is the resolver).
struct CloudEndpoint {
  const cloud::RegionInfo* region = nullptr;
  net::Ipv4Prefix prefix;       ///< the region's announced /24
  net::Ipv4Address vm_ip;       ///< target VM
  net::Ipv4Address dc_router;   ///< last router before the VM
};

struct RibEntry {
  net::Ipv4Prefix prefix;
  Asn asn;
};

// lint:frozen
class World {
 public:
  explicit World(const WorldConfig& config = {});

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] const WorldConfig& config() const { return config_; }
  [[nodiscard]] const geo::CountryTable& countries() const {
    return geo::CountryTable::instance();
  }
  [[nodiscard]] const AsRegistry& registry() const { return registry_; }
  [[nodiscard]] const Backbone& backbone() const { return backbone_; }

  // --- access ISPs ---------------------------------------------------------
  [[nodiscard]] const std::vector<IspNetwork>& isps() const { return isps_; }
  [[nodiscard]] std::vector<const IspNetwork*> isps_in(std::string_view country) const;
  [[nodiscard]] const IspNetwork& isp(Asn asn) const;

  /// Hand out subscriber addresses (called while generating probes).
  // lint:allow(frozen): address allocators advance a deterministic counter during probe generation
  [[nodiscard]] net::Ipv4Address allocate_customer_ip(Asn isp_asn);
  // lint:allow(frozen): address allocators advance a deterministic counter during probe generation
  [[nodiscard]] net::Ipv4Address allocate_cgn_ip(Asn isp_asn);

  // --- cloud side ------------------------------------------------------------
  [[nodiscard]] const std::vector<CloudEndpoint>& endpoints() const {
    return endpoints_;
  }
  [[nodiscard]] const CloudEndpoint& endpoint(const cloud::RegionInfo& region) const;
  [[nodiscard]] bool has_pop(cloud::ProviderId provider, std::string_view country) const;

  /// Interconnection decision for <ISP, provider, destination continent>;
  /// pre-materialized at construction, so this is a pure lookup with a
  /// stable reference — safe for concurrent readers.
  [[nodiscard]] const PairPolicy& interconnect(Asn isp_asn, cloud::ProviderId provider,
                                               geo::Continent dst) const;

  /// The continental transit AS fronting public paths out of `continent`.
  [[nodiscard]] Asn continental_transit(geo::Continent continent) const;

  // --- routers ----------------------------------------------------------------
  /// Deterministic router address for an AS's site (e.g. "core/DE",
  /// "hub/Frankfurt"). Every reachable site is pre-assigned by the
  /// materialization pass, so this is a pure lookup (an unknown site is an
  /// enumeration bug and aborts). Stable across calls and across resumes.
  [[nodiscard]] net::Ipv4Address router_ip(Asn asn, std::string_view site) const;

  /// The frozen router address plan (size/coverage introspection).
  [[nodiscard]] const AddressPlan& address_plan() const { return address_plan_; }
  /// The frozen interconnect policy table.
  [[nodiscard]] const PolicyTable& policy_table() const { return policies_; }

  /// The AS-level business graph derived from this world (for analyses that
  /// re-run the decision process or mutate a copy of the graph).
  [[nodiscard]] const BgpGraph& bgp() const { return bgp_; }
  /// The flattened best-route table towards every cloud-provider origin,
  /// materialized at construction — a pure lock-free lookup.
  [[nodiscard]] const BgpRouteTable& bgp_routes() const { return bgp_routes_; }

  // --- analysis bootstrap data --------------------------------------------------
  /// Announced prefixes (the "RIB dump" PyASN would ingest).
  [[nodiscard]] const std::vector<RibEntry>& rib_dump() const { return rib_; }
  /// Registration data for prefixes missing from the RIB (the Team Cymru
  /// fallback of §3.3).
  [[nodiscard]] const std::vector<RibEntry>& whois_entries() const { return whois_; }
  /// IXP peering-LAN prefixes (the CAIDA IXP dataset stand-in).
  [[nodiscard]] const std::vector<RibEntry>& ixp_prefixes() const { return ixp_rib_; }

  [[nodiscard]] util::Rng fork_rng(std::string_view label) const {
    return root_rng_.fork(label);
  }

 private:
  void build_transit();
  void build_ixps();
  void build_isps();
  void build_clouds();
  void build_pops();
  /// Walk the AS/router space in canonical order and pre-assign every router
  /// interface address any path build could request.
  void materialize_address_plan();
  /// Pre-compute every <ISP, provider, continent> interconnect decision.
  void materialize_policies();
  /// Derive the AS graph and flatten best routes towards every cloud origin.
  void materialize_bgp();

  [[nodiscard]] net::Ipv4Prefix allocate_infra(Asn asn, std::uint8_t length,
                                               bool announced);
  [[nodiscard]] PairPolicy compute_policy(const IspNetwork& isp,
                                          cloud::ProviderId provider,
                                          geo::Continent dst) const;

  WorldConfig config_;
  util::Rng root_rng_;
  AsRegistry registry_;
  Backbone backbone_;
  net::PrefixAllocator prefix_allocator_;
  std::uint32_t cgn_cursor_;

  std::vector<IspNetwork> isps_;
  std::unordered_map<Asn, std::size_t> isp_index_;
  std::unordered_map<Asn, net::HostAllocator> customer_alloc_;
  std::unordered_map<Asn, net::HostAllocator> cgn_alloc_;
  /// Build-phase only: drained by the materialization pass, untouched after.
  std::unordered_map<Asn, net::HostAllocator> infra_alloc_;

  std::vector<CloudEndpoint> endpoints_;
  std::unordered_map<const cloud::RegionInfo*, std::size_t> endpoint_index_;
  std::unordered_set<std::string> pops_;  ///< "ticker/CC"

  std::array<Asn, geo::kContinentCount> continental_transit_{};

  AddressPlan address_plan_;
  PolicyTable policies_;
  BgpGraph bgp_;
  BgpRouteTable bgp_routes_;

  std::vector<RibEntry> rib_;
  std::vector<RibEntry> whois_;
  std::vector<RibEntry> ixp_rib_;
};

}  // namespace cloudrtt::topology

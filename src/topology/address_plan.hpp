#pragma once
// Pre-materialized router address plan and interconnect policy table.
//
// Historically the World handed out router addresses and pair policies
// lazily, on first use, from mutable caches — so the concrete assignment
// depended on *request order*, which is process state a checkpoint had to
// capture and replay for resumes to be bit-identical, and which made the
// read path thread-hostile. Instead, World construction now runs a
// deterministic materialization pass that walks the AS/router space in
// canonical order and pre-assigns every router IP and pair policy any
// campaign could touch. After freeze() both tables are immutable: lookups
// are const, allocation-free, and safe for concurrent readers, and resumes
// need no replay because the plan is a pure function of the world config.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "topology/asn.hpp"
#include "topology/interconnect.hpp"

namespace cloudrtt::topology {

/// Frozen map <ASN, site label> -> router interface address. Built once
/// during world construction, then read-only (thread-safe by immutability).
// lint:frozen
class AddressPlan {
 public:
  AddressPlan() = default;

  /// Record one assignment (build phase only; site must be new for the AS).
  // lint:allow(frozen): build phase only; freeze() seals the plan before sharing
  void assign(Asn asn, std::string site, net::Ipv4Address ip);

  /// Sort each AS's sites for binary search and seal the plan. Duplicate
  /// sites are a materialization bug and abort.
  // lint:allow(frozen): build phase only; freeze() seals the plan before sharing
  void freeze();

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Sites planned for one AS (0 when the AS has no routers).
  [[nodiscard]] std::size_t site_count(Asn asn) const;

  /// Address of a planned site, or nullptr when the AS or site is unknown.
  [[nodiscard]] const net::Ipv4Address* find(Asn asn, std::string_view site) const;

  /// Address of a planned site; aborts when the materialization pass missed
  /// it (an enumeration gap, not a runtime condition).
  [[nodiscard]] net::Ipv4Address at(Asn asn, std::string_view site) const;

 private:
  struct Entry {
    std::string site;
    net::Ipv4Address ip;
  };
  /// Per-AS entries, sorted by site after freeze(). The outer map is only
  /// ever point-queried, never iterated.
  std::unordered_map<Asn, std::vector<Entry>> per_as_;
  std::size_t size_ = 0;
  bool frozen_ = false;
};

/// Frozen map of interconnect decisions per <ISP, provider, destination
/// continent>, keyed exactly like the old lazy cache. References returned by
/// at() are stable for the table's lifetime.
// lint:frozen
class PolicyTable {
 public:
  PolicyTable() = default;

  [[nodiscard]] static std::uint64_t key(Asn isp_asn, std::size_t provider_index,
                                         std::size_t continent_index) {
    return (static_cast<std::uint64_t>(isp_asn) << 16) |
           (static_cast<std::uint64_t>(provider_index) << 8) |
           static_cast<std::uint64_t>(continent_index);
  }

  /// Record one policy (build phase only; key must be new).
  // lint:allow(frozen): build phase only; freeze() seals the table before sharing
  void put(std::uint64_t key, const PairPolicy& policy);
  // lint:allow(frozen): build phase only; freeze() seals the table before sharing
  void freeze();

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] std::size_t size() const { return policies_.size(); }

  /// Policy for a key; aborts when the materialization pass missed it.
  [[nodiscard]] const PairPolicy& at(std::uint64_t key) const;

 private:
  std::unordered_map<std::uint64_t, PairPolicy> policies_;
  bool frozen_ = false;
};

}  // namespace cloudrtt::topology

#include "measure/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_events.hpp"

namespace cloudrtt::measure {

namespace {

/// Wall-clock accounting one worker accumulates while draining chunks.
/// Collected locally (no sharing while hot) and folded into metrics and the
/// trace buffer after the pool joins.
struct WorkerStats {
  std::uint64_t busy_ns = 0;   ///< time inside run_chunk
  std::uint64_t wait_ns = 0;   ///< gaps between chunks (queue contention)
  std::uint64_t chunks = 0;
  std::uint64_t start_ns = 0;  ///< when the worker began draining
  std::uint64_t end_ns = 0;    ///< when the worker ran out of chunks
};

[[nodiscard]] double to_ms(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

/// Per-task trace staging: scalar core plus the hop range inside the worker
/// arena that produced it. Trivially destructible, so the slots live in the
/// recycled staging arena like the ping slots.
struct TraceSlot {
  TraceCore core;
  std::uint32_t hop_begin = 0;
  std::uint32_t hop_count = 0;
  std::uint32_t worker = 0;
};

}  // namespace

void ParallelExecutor::execute(const Engine& engine,
                               std::span<const MeasurementTask> tasks,
                               const util::Rng& chunk_root, Dataset& out,
                               std::size_t skip_tasks) {
  const std::size_t n = tasks.size();
  if (n == 0 || skip_tasks >= n) return;
  const std::size_t chunk_count = (n + kChunkSize - 1) / kChunkSize;
  // Chunks wholly inside the skipped prefix never run; the chunk indices of
  // the rest are unchanged, so their RNG forks match a full run exactly.
  const std::size_t first_chunk = skip_tasks / kChunkSize;

  // Results land in slots indexed by task position so the merge order is the
  // schedule order no matter which worker ran which chunk. The slot vectors
  // draw from the recycled staging arena: after the first day of a campaign
  // these two allocations cost nothing.
  staging_.reset();
  std::vector<PingRecord, util::ArenaAllocator<PingRecord>> pings(
      n, util::ArenaAllocator<PingRecord>{staging_});
  std::vector<TraceSlot, util::ArenaAllocator<TraceSlot>> traces(
      n, util::ArenaAllocator<TraceSlot>{staging_});

  obs::Registry& registry = obs::Registry::global();
  obs::Histogram& chunk_ms = registry.histogram(
      "measure.chunk_ms", "Wall-clock per executed chunk in milliseconds");
  obs::Gauge& busy_fraction = registry.gauge(
      "measure.worker_busy_fraction",
      "Fraction of the last execute phase the worker pool spent inside "
      "chunks (1.0 = no idle time)");
  obs::Counter& busy_ms_total = registry.counter(
      "measure.worker_busy_ms_total",
      "Cumulative worker busy time across execute phases in milliseconds");
  obs::Gauge& staging_high_water = registry.gauge(
      "measure.staging_arena_high_water_bytes",
      "High-water mark of the executor's per-day staging arena");
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();

  const auto run_chunk = [&](std::size_t chunk, WorkerStats& stats,
                             std::size_t worker) {
    MeasurementScratch& scratch = worker_scratch_[worker];
    const std::uint64_t start_ns = obs::monotonic_ns();
    const util::Rng chunk_rng = chunk_root.fork(chunk);
    const std::size_t begin = chunk * kChunkSize;
    const std::size_t end = std::min(begin + kChunkSize, n);
    for (std::size_t i = std::max(begin, skip_tasks); i < end; ++i) {
      const MeasurementTask& task = tasks[i];
      util::Rng task_rng = chunk_rng.fork(i - begin);
      pings[i] = engine.ping(*task.probe, *task.endpoint, Protocol::Tcp,
                             task.day, task_rng, task.slot, &scratch);
      // Hops pack into the worker's flat arena; the slot remembers the range
      // so the canonical merge can copy it into the dataset's hop pool.
      TraceSlot& slot = traces[i];
      slot.hop_begin = static_cast<std::uint32_t>(scratch.hops.size());
      slot.core = engine.traceroute_into(
          *task.probe, *task.endpoint, task.day, task_rng, scratch.hops,
          Engine::TraceMethod::Classic, task.slot, task.trace_faults,
          &scratch);
      slot.hop_count =
          static_cast<std::uint32_t>(scratch.hops.size()) - slot.hop_begin;
      slot.worker = static_cast<std::uint32_t>(worker);
    }
    const std::uint64_t end_ns = obs::monotonic_ns();
    stats.busy_ns += end_ns - start_ns;
    stats.chunks += 1;
    chunk_ms.record(to_ms(end_ns - start_ns));
    if (recorder.enabled()) {
      recorder.record_complete("executor.chunk", "executor", start_ns,
                               end_ns - start_ns,
                               {{"chunk", static_cast<double>(chunk)},
                                {"tasks", static_cast<double>(end - begin)}});
    }
  };

  const std::uint64_t phase_start_ns = obs::monotonic_ns();
  const std::size_t workers =
      std::min<std::size_t>(threads_, chunk_count - first_chunk);
  std::vector<WorkerStats> stats(workers);
  if (worker_scratch_.size() < workers) worker_scratch_.resize(workers);
  // Hop arenas restart empty each phase (capacity recycled): slot ranges are
  // relative to this call's appends.
  for (MeasurementScratch& scratch : worker_scratch_) scratch.hops.clear();

  // One worker drains the shared chunk counter until it runs dry. The gap
  // between finishing one chunk and starting the next is queue wait — with a
  // lock-free counter it should stay near zero; growth means the chunks are
  // too small or the allocator is contended.
  const auto drain = [&](WorkerStats& stats_entry, std::size_t worker,
                         std::atomic<std::size_t>& next_chunk) {
    stats_entry.start_ns = obs::monotonic_ns();
    std::uint64_t idle_since = stats_entry.start_ns;
    for (std::size_t chunk = next_chunk.fetch_add(1); chunk < chunk_count;
         chunk = next_chunk.fetch_add(1)) {
      const std::uint64_t pick_ns = obs::monotonic_ns();
      stats_entry.wait_ns += pick_ns - idle_since;
      run_chunk(chunk, stats_entry, worker);
      idle_since = obs::monotonic_ns();
    }
    stats_entry.end_ns = obs::monotonic_ns();
  };

  if (workers <= 1) {
    stats[0].start_ns = phase_start_ns;
    for (std::size_t chunk = first_chunk; chunk < chunk_count; ++chunk) {
      run_chunk(chunk, stats[0], 0);
    }
    stats[0].end_ns = obs::monotonic_ns();
  } else {
    std::atomic<std::size_t> next_chunk{first_chunk};
    std::mutex failure_mutex;
    std::exception_ptr failure;
    const auto guarded = [&](std::size_t worker) {
      // Worker 0 is the calling thread — leave its name ("main") alone.
      if (worker != 0 && recorder.enabled()) {
        recorder.name_this_thread("worker " + std::to_string(worker));
      }
      try {
        drain(stats[worker], worker, next_chunk);
      } catch (...) {
        stats[worker].end_ns = obs::monotonic_ns();
        const std::scoped_lock lock{failure_mutex};
        if (!failure) failure = std::current_exception();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      pool.emplace_back(guarded, w);
    }
    guarded(0);  // the calling thread is worker 0
    for (std::thread& worker : pool) worker.join();
    if (failure) std::rethrow_exception(failure);
  }

  const std::uint64_t phase_end_ns = obs::monotonic_ns();

  // Fold per-worker accounting into the registry: a busy-time counter that
  // only ever grows plus a busy-fraction gauge for the phase just finished.
  // (The old `measure.worker_busy` up/down gauge was last-write-wins across
  // workers and therefore useless under contention.)
  std::uint64_t total_busy_ns = 0;
  for (const WorkerStats& entry : stats) total_busy_ns += entry.busy_ns;
  const std::uint64_t wall_ns = phase_end_ns - phase_start_ns;
  if (wall_ns > 0) {
    busy_fraction.set(static_cast<double>(total_busy_ns) /
                      (static_cast<double>(wall_ns) *
                       static_cast<double>(workers)));
  }
  busy_ms_total.inc(static_cast<std::uint64_t>(to_ms(total_busy_ns)));

  if (recorder.enabled()) {
    for (std::size_t w = 0; w < stats.size(); ++w) {
      const WorkerStats& entry = stats[w];
      if (entry.end_ns <= entry.start_ns) continue;
      recorder.record_complete(
          "executor.worker", "executor", entry.start_ns,
          entry.end_ns - entry.start_ns,
          {{"worker", static_cast<double>(w)},
           {"chunks", static_cast<double>(entry.chunks)},
           {"busy_ms", to_ms(entry.busy_ns)},
           {"queue_wait_ms", to_ms(entry.wait_ns)}});
    }
  }

  {
    // Canonical merge: schedule-order append, making the dataset identical
    // for every worker-pool size.
    const obs::Span merge_span{"merge"};
    const std::uint64_t merge_start_ns = obs::monotonic_ns();
    // Slots [0, skip_tasks) never ran. Reservation hints are exact: the
    // schedule told us the row count and the workers counted the hops.
    out.pings.reserve(out.pings.size() + (n - skip_tasks));
    out.traces.reserve(out.traces.size() + (n - skip_tasks));
    std::size_t hop_total = 0;
    for (std::size_t i = skip_tasks; i < n; ++i) hop_total += traces[i].hop_count;
    out.traces.reserve_hops(hop_total);
    for (std::size_t i = skip_tasks; i < n; ++i) {
      out.pings.push_back(pings[i]);
    }
    for (std::size_t i = skip_tasks; i < n; ++i) {
      const TraceSlot& slot = traces[i];
      out.traces.push_back(
          slot.core, std::span{worker_scratch_[slot.worker].hops}.subspan(
                         slot.hop_begin, slot.hop_count));
    }
    if (recorder.enabled()) {
      recorder.record_complete(
          "executor.merge", "executor", merge_start_ns,
          obs::monotonic_ns() - merge_start_ns,
          {{"tasks", static_cast<double>(n - skip_tasks)}});
    }
  }
  staging_high_water.set(static_cast<double>(staging_.high_water_bytes()));
}

}  // namespace cloudrtt::measure

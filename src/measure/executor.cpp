#include "measure/executor.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace cloudrtt::measure {

void ParallelExecutor::execute(const Engine& engine,
                               std::span<const MeasurementTask> tasks,
                               const util::Rng& chunk_root, Dataset& out) const {
  const std::size_t n = tasks.size();
  if (n == 0) return;
  const std::size_t chunk_count = (n + kChunkSize - 1) / kChunkSize;

  // Results land in slots indexed by task position so the merge order is the
  // schedule order no matter which worker ran which chunk.
  std::vector<PingRecord> pings(n);
  std::vector<TraceRecord> traces(n);

  obs::Registry& registry = obs::Registry::global();
  obs::Gauge& busy = registry.gauge("measure.worker_busy");
  obs::Histogram& chunk_ms = registry.histogram("measure.chunk_ms");

  const auto run_chunk = [&](std::size_t chunk) {
    const obs::ScopedTimer timer{chunk_ms};
    const util::Rng chunk_rng = chunk_root.fork(chunk);
    const std::size_t begin = chunk * kChunkSize;
    const std::size_t end = std::min(begin + kChunkSize, n);
    for (std::size_t i = begin; i < end; ++i) {
      const MeasurementTask& task = tasks[i];
      util::Rng task_rng = chunk_rng.fork(i - begin);
      pings[i] = engine.ping(*task.probe, *task.endpoint, Protocol::Tcp,
                             task.day, task_rng, task.slot);
      traces[i] = engine.traceroute(*task.probe, *task.endpoint, task.day,
                                    task_rng, Engine::TraceMethod::Classic,
                                    task.slot, task.trace_faults);
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(threads_, chunk_count);
  if (workers <= 1) {
    for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) run_chunk(chunk);
  } else {
    std::atomic<std::size_t> next_chunk{0};
    std::mutex failure_mutex;
    std::exception_ptr failure;
    const auto drain = [&] {
      busy.add(1.0);
      try {
        for (std::size_t chunk = next_chunk.fetch_add(1);
             chunk < chunk_count; chunk = next_chunk.fetch_add(1)) {
          run_chunk(chunk);
        }
      } catch (...) {
        const std::scoped_lock lock{failure_mutex};
        if (!failure) failure = std::current_exception();
      }
      busy.add(-1.0);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
    drain();  // the calling thread is worker 0
    for (std::thread& worker : pool) worker.join();
    if (failure) std::rethrow_exception(failure);
  }

  out.pings.insert(out.pings.end(), std::make_move_iterator(pings.begin()),
                   std::make_move_iterator(pings.end()));
  out.traces.insert(out.traces.end(), std::make_move_iterator(traces.begin()),
                    std::make_move_iterator(traces.end()));
}

}  // namespace cloudrtt::measure

#pragma once
// Measurement campaign driver: reimplements the scheduling methodology of
// §3.3 — daily API budget, per-country probe selection from the currently
// connected fleet, cycling through every country with enough probes,
// same-continent targeting plus neighbour-continent targets for Africa and
// South America, and the focused case-study measurements of §6.2/A.4
// (DE->UK, JP->IN, UA->UK, BH->IN).
//
// Each task runs a TCP ping and an ICMP traceroute in parallel, exactly as
// the paper's probes did.
//
// Execution is two-phase per day: a sequential schedule pass owns every
// shared-state decision (budget, cursor, connectivity, fault retries) and
// emits a task list; measure::ParallelExecutor then runs the tasks across
// `threads` workers with per-chunk RNG forking, merging results in schedule
// order so the dataset is bit-identical at any thread count.

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "fault/plan.hpp"
#include "measure/engine.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"
#include "util/rng.hpp"

namespace cloudrtt::measure {

struct CampaignConfig {
  std::uint32_t days = 10;
  /// Measurement tasks per day (the platform API quota of §3.3). One task is
  /// one <probe, target> pair (ping + traceroute together).
  std::size_t daily_budget = 12000;
  /// Base probes selected per country visit, by the country's continent
  /// (order: AF, AS, EU, NA, OC, SA). Weighted so the dataset composition
  /// matches §3.3 (~50% EU, ~20% AS, ~10% NA samples).
  std::array<std::size_t, 6> visit_probes_by_continent{5, 3, 12, 10, 6, 6};
  /// On top of the base, half of the connected probes join the visit (up to
  /// `visit_probes_cap`): dense deployments like Brazil or Germany dominate
  /// their region's samples the way the real platform's availability-driven
  /// selection did.
  std::size_t visit_probes_cap = 24;
  /// Random same-continent targets beyond the per-provider nearest regions.
  std::size_t extra_targets = 4;
  /// The paper's per-country inclusion threshold: >=100 of 115k probes.
  double paper_country_threshold = 100.0;
  double paper_fleet_size = 115000.0;
  /// Case-study tasks (Speedchecker campaigns only in the paper's setup).
  bool run_case_studies = false;
  std::size_t case_study_probes = 16;
  /// Worker threads for the execute phase; 1 = inline sequential execution.
  /// Any value yields the same dataset bits (see measure/executor.hpp).
  unsigned threads = 1;
};

/// Resumable campaign position: the next day to execute plus the country
/// cycle cursor carried across days. Default-constructed = start of campaign.
/// Together with the (never-advanced) base RNG this is the complete state a
/// checkpoint needs — every day's stream is forked from (rng, day) alone.
struct CampaignState {
  std::uint32_t next_day = 0;
  std::size_t cursor = 0;
  /// Tasks of `next_day` already executed and persisted. Nonzero only when
  /// resuming mid-day from a salvaged streaming store: the schedule phase
  /// replays the whole day deterministically, the execute phase skips the
  /// first `day_tasks_done` tasks, and `cursor` still refers to the *start*
  /// of `next_day` (the day's schedule must be re-derivable).
  std::uint32_t day_tasks_done = 0;
};

/// Optional extension points for a campaign run. All default-inactive: a
/// default-constructed RunHooks reproduces the plain run() bit-for-bit.
struct RunHooks {
  /// Fault schedule; null = clean run (no fault RNG draws at all).
  const fault::FaultPlan* faults = nullptr;
  /// Called after each executed day with the day's slice of the columnar
  /// dataset, before after_day: the day's rows are [ping_begin,
  /// data.pings.size()) and [trace_begin, data.traces.size()).
  /// `day_start_cursor` is the country cursor at the day's start and
  /// `first_task` the day-relative index of the first new row (nonzero on a
  /// mid-day resume). The streaming store hooks in here; measure itself
  /// never depends on the store layer.
  std::function<void(std::uint32_t day, std::size_t day_start_cursor,
                     std::uint32_t first_task, const Dataset& data,
                     std::size_t ping_begin, std::size_t trace_begin)>
      day_rows;
  /// Called after each completed day with the advanced state and the dataset
  /// so far (checkpointing). Return false to stop before the next day.
  std::function<bool(const CampaignState&, const Dataset&)> after_day;
  /// Streaming mode: drop each day's rows (and hop pool) from RAM once
  /// day_rows/after_day have consumed them — the store becomes the only
  /// copy and the campaign's high-water memory is O(one day's columns).
  /// The Dataset run() returns is then empty of rows.
  bool drop_day_rows = false;
};

class Campaign {
 public:
  Campaign(const topology::World& world, const probes::ProbeFleet& fleet,
           CampaignConfig config);

  /// Execute the full campaign; deterministic given `rng`.
  [[nodiscard]] Dataset run(util::Rng rng) const;

  /// Resumable, fault-aware run: starts at `start` (appending to `dataset`,
  /// which a resume path restores from a checkpoint) and consults `hooks`.
  /// `rng` must be the same base RNG as the original run for a resumed
  /// campaign to replay bit-identically.
  [[nodiscard]] Dataset run(util::Rng rng, const CampaignState& start,
                            const RunHooks& hooks,
                            Dataset dataset = Dataset{}) const;

  /// Countries that pass the scaled probe threshold (sorted by code).
  [[nodiscard]] const std::vector<std::string_view>& scheduled_countries() const {
    return countries_;
  }

 private:
  struct CountryPlan {
    std::string_view code;
    std::vector<const probes::Probe*> probes;
    std::vector<const topology::CloudEndpoint*> fixed_targets;   // nearest/provider
    std::vector<const topology::CloudEndpoint*> extra_pool;      // same continent
  };
  struct CaseStudy {
    std::string_view src_country;
    std::vector<const probes::Probe*> probes;
    std::vector<const topology::CloudEndpoint*> targets;  // all DCs in dst country
  };

  void plan_country(const geo::CountryInfo& country,
                    std::vector<const probes::Probe*> country_probes);
  void plan_case_study(std::string_view src, std::string_view dst);

  const topology::World& world_;
  const probes::ProbeFleet& fleet_;
  Engine engine_;
  CampaignConfig config_;
  std::vector<CountryPlan> plans_;
  std::vector<std::string_view> countries_;
  std::vector<CaseStudy> case_studies_;
};

}  // namespace cloudrtt::measure

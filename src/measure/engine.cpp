#include "measure/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace cloudrtt::measure {

namespace {

/// Metric references resolved once per process: the engine runs inside the
/// campaign's innermost loop, so per-call Registry lookups are off the table.
/// These count the §3.3/§7 measurement anomalies the simulator injects.
struct EngineMetrics {
  obs::Counter& pings;
  obs::Counter& traceroutes;
  obs::Counter& traceroutes_completed;
  obs::Counter& unresponsive_hops;
  obs::Counter& firewall_drops;
  obs::Counter& rate_limited_hops;
  obs::Counter& ecmp_detours;
  obs::Counter& icmp_penalties;
  obs::Counter& spikes;
  obs::Histogram& ping_rtt_ms;
  obs::Counter& fault_truncations;
  obs::Counter& fault_lost_hops;

  static EngineMetrics& instance() {
    obs::Registry& r = obs::Registry::global();
    // lint:allow(local-static): bundle of atomic-counter references; magic-static init is thread-safe and the counters are lock-free
    static EngineMetrics metrics{
        r.counter("engine.pings_total"),
        r.counter("engine.traceroutes_total"),
        r.counter("engine.traceroutes_completed_total"),
        r.counter("engine.traceroute.unresponsive_hops"),
        r.counter("engine.traceroute.firewall_drops"),
        r.counter("engine.traceroute.rate_limited_hops"),
        r.counter("engine.traceroute.ecmp_detours"),
        r.counter("engine.icmp_penalties_total"),
        r.counter("engine.congestion_spikes_total"),
        r.histogram("engine.ping.rtt_ms"),
        r.counter("engine.fault.truncated_traces_total"),
        r.counter("engine.fault.lost_hops_total"),
    };
    return metrics;
  }
};

/// Probability that a router answers TTL-expired probes, by role.
[[nodiscard]] double respond_probability(const routing::RouterHop& hop,
                                         bool is_final) {
  if (is_final) return 1.0;  // final-echo handling is separate
  if (hop.is_private) return 0.95;
  if (hop.cloud_owned) return 0.88;  // clouds filter some WAN internals
  return 0.90;
}

}  // namespace

topology::InterconnectMode Engine::roll_mode(const probes::Probe& probe,
                                             const cloud::RegionInfo& region,
                                             util::Rng& rng) const {
  const topology::PairPolicy& policy =
      world_.interconnect(probe.isp->asn, region.provider, region.continent);
  return rng.chance(policy.adherence) ? policy.base : policy.fallback;
}

double Engine::diurnal_factor(const probes::Probe& probe, std::uint8_t slot) {
  // Slot s covers local hours [4s, 4s+4) at UTC; shift by the probe's
  // longitude to get local time, and peak around 20:00 local (evening
  // residential load). Weak backhauls congest the hardest.
  const double utc_hour = 4.0 * static_cast<double>(slot % 6) + 2.0;
  double local_hour = utc_hour + probe.location.lon_deg / 15.0;
  while (local_hour < 0.0) local_hour += 24.0;
  while (local_hour >= 24.0) local_hour -= 24.0;
  double distance = std::abs(local_hour - 20.0);
  distance = std::min(distance, 24.0 - distance);  // circular
  const double peak = std::exp(-(distance * distance) / (2.0 * 2.5 * 2.5));
  const double amplitude =
      0.04 + 0.18 * (1.0 - probe.country->backhaul_quality);
  return 1.0 + amplitude * peak;
}

// lint:hot
Engine::PathDraw Engine::draw_path(const probes::Probe& probe,
                                   const topology::CloudEndpoint& endpoint,
                                   util::Rng& rng, std::uint8_t slot,
                                   MeasurementScratch& scratch) const {
  PathDraw draw;
  const topology::InterconnectMode mode =
      roll_mode(probe, *endpoint.region, rng);
  // The skeleton lookup consumes no RNG, so cache hits and misses leave the
  // visit's random stream — and therefore the dataset bits — unchanged.
  draw.path = cache_.lookup(probe, endpoint, mode, scratch.path);
  draw.last_mile = lastmile::draw(probe.lastmile, rng);

  const double base = draw.path.base_rtt_ms();
  const double sigma_rel =
      base > 0.5 ? std::min(0.6, draw.path.noise_abs_ms() / base) : 0.05;
  draw.congestion = std::exp(rng.normal(0.0, sigma_rel)) * diurnal_factor(probe, slot);
  // Transient congestion events hit noisier paths more often and harder.
  const double spike_prob = 0.02 + 0.10 * sigma_rel;
  if (rng.chance(spike_prob)) {
    draw.spike_ms = rng.exponential(5.0 + 3.0 * draw.path.noise_abs_ms());
    EngineMetrics::instance().spikes.inc();
  }
  return draw;
}

double Engine::icmp_penalty_ms(const probes::Probe& probe, util::Rng& rng) const {
  // Middleboxes/load balancers deprioritise or reroute ICMP (§A.2); the
  // effect is strongest where the backhaul is poor, which is what makes the
  // Fig. 15 TCP/ICMP gap largest in Africa.
  const double quality = probe.country->backhaul_quality;
  const double prob = 0.08 + 0.30 * (1.0 - quality);
  if (!rng.chance(prob)) return 0.0;
  EngineMetrics::instance().icmp_penalties.inc();
  return rng.exponential(3.0 + 16.0 * (1.0 - quality));
}

// lint:hot
PingRecord Engine::ping(const probes::Probe& probe,
                        const topology::CloudEndpoint& endpoint,
                        Protocol protocol, std::uint32_t day,
                        util::Rng& rng, std::uint8_t slot,
                        MeasurementScratch* scratch) const {
  MeasurementScratch local;
  const PathDraw draw =
      draw_path(probe, endpoint, rng, slot, scratch != nullptr ? *scratch : local);
  PingRecord record;
  record.probe = &probe;
  record.region = endpoint.region;
  record.protocol = protocol;
  record.day = day;
  record.slot = slot;
  record.rtt_ms = draw.last_mile.total_ms() +
                  draw.path.base_rtt_ms() * draw.congestion + draw.spike_ms + 0.3;
  if (protocol == Protocol::Icmp) {
    record.rtt_ms += icmp_penalty_ms(probe, rng);
  }
  EngineMetrics& metrics = EngineMetrics::instance();
  metrics.pings.inc();
  metrics.ping_rtt_ms.record(record.rtt_ms);
  return record;
}

Engine::HttpRecord Engine::http_get(const probes::Probe& probe,
                                    const topology::CloudEndpoint& endpoint,
                                    util::Rng& rng) const {
  MeasurementScratch local;
  const PathDraw draw = draw_path(probe, endpoint, rng, 0, local);
  // Each round trip of the exchange rides the same congestion state with
  // independent per-packet noise.
  const auto round_trip = [&] {
    return draw.last_mile.total_ms() +
           draw.path.base_rtt_ms() * draw.congestion *
               std::exp(rng.normal(0.0, 0.03)) +
           0.3;
  };
  HttpRecord record;
  record.connect_ms = round_trip() + draw.spike_ms;  // SYN / SYN-ACK
  const double server_processing = rng.exponential(12.0);
  record.ttfb_ms = record.connect_ms + round_trip() + server_processing;
  const double transfer = rng.exponential(20.0);  // payload + slow-start tail
  record.total_ms = record.ttfb_ms + transfer;
  return record;
}

double Engine::interdc_rtt(const topology::CloudEndpoint& src,
                           const topology::CloudEndpoint& dst,
                           util::Rng& rng) const {
  const routing::ForwardingPath path = builder_.build_interdc(src, dst);
  const double base = path.base_rtt_ms();
  const double sigma_rel =
      base > 0.5 ? std::min(0.6, path.noise_abs_ms() / base) : 0.05;
  double rtt = base * std::exp(rng.normal(0.0, sigma_rel)) + 0.2;
  if (rng.chance(0.02 + 0.10 * sigma_rel)) {
    rtt += rng.exponential(5.0 + 3.0 * path.noise_abs_ms());
  }
  return rtt;
}

TraceRecord Engine::traceroute(const probes::Probe& probe,
                               const topology::CloudEndpoint& endpoint,
                               std::uint32_t day, util::Rng& rng,
                               TraceMethod method, std::uint8_t slot,
                               const fault::TraceFaults* faults,
                               MeasurementScratch* scratch) const {
  TraceRecord record;
  const TraceCore core = traceroute_into(probe, endpoint, day, rng,
                                         record.hops, method, slot, faults,
                                         scratch);
  record.probe = core.probe;
  record.region = core.region;
  record.target_ip = core.target_ip;
  record.completed = core.completed;
  record.end_to_end_ms = core.end_to_end_ms;
  record.day = core.day;
  record.slot = core.slot;
  record.true_mode = core.true_mode;
  return record;
}

// lint:hot
TraceCore Engine::traceroute_into(const probes::Probe& probe,
                                  const topology::CloudEndpoint& endpoint,
                                  std::uint32_t day, util::Rng& rng,
                                  std::vector<HopRecord>& hops_out,
                                  TraceMethod method, std::uint8_t slot,
                                  const fault::TraceFaults* faults,
                                  MeasurementScratch* scratch) const {
  EngineMetrics& metrics = EngineMetrics::instance();
  metrics.traceroutes.inc();
  MeasurementScratch local;
  const PathDraw draw =
      draw_path(probe, endpoint, rng, slot, scratch != nullptr ? *scratch : local);
  TraceCore record;
  record.probe = &probe;
  record.region = endpoint.region;
  record.target_ip = endpoint.vm_ip;
  record.day = day;
  record.slot = slot;
  record.true_mode = draw.path.mode;
  // hops_out is a day-long arena: grow it geometrically or not at all. An
  // exact `size + hops` reserve here would reallocate (and copy the whole
  // arena) every few tasks once size reaches capacity — O(day²) in disguise.
  if (const std::size_t want = hops_out.size() + draw.path.hops.size();
      want > hops_out.capacity()) {
    hops_out.reserve(
        std::max(want, hops_out.capacity() + hops_out.capacity() / 2));
  }

  const bool home = probe.access == lastmile::AccessTech::HomeWifi;
  const std::size_t hop_count = draw.path.hops.size();
  // Fault episodes can sever the path mid-trace (the probe loses its route
  // before the DC) and boost per-hop loss; the null-faults path stays free
  // of extra RNG draws so fault-free campaigns replay bit-identically.
  std::size_t hop_limit = hop_count;
  double loss_boost = 0.0;
  if (faults != nullptr) {
    loss_boost = faults->loss_boost;
    if (faults->truncate_prob > 0.0 && hop_count > 1 &&
        rng.chance(faults->truncate_prob)) {
      hop_limit = 1 + static_cast<std::size_t>(rng.below(hop_count - 1));
      metrics.fault_truncations.inc();
    }
  }
  CLOUDRTT_DCHECK(hop_limit > 0 && hop_limit <= hop_count,
                  "traceroute hop_limit ", hop_limit, " outside path of ",
                  hop_count, " hops");
  for (std::size_t i = 0; i < hop_limit; ++i) {
    const routing::RouterHop& hop = draw.path.hops[i];
    const bool is_final = i + 1 == hop_count;
    HopRecord out;
    out.ttl = static_cast<std::uint8_t>(i + 1);
    out.responded = rng.chance(respond_probability(hop, is_final));
    if (!is_final && out.responded && loss_boost > 0.0 &&
        rng.chance(loss_boost)) {
      out.responded = false;
      metrics.fault_lost_hops.inc();
    }
    if (is_final) {
      // Cloud perimeter firewalls occasionally drop the final ICMP echo.
      out.responded = !rng.chance(0.07);
      if (!out.responded) metrics.firewall_drops.inc();
    } else if (!out.responded) {
      metrics.unresponsive_hops.inc();
    }
    if (out.responded) {
      // The first hop of a home path sits before the wired tail: only the
      // WiFi air segment applies. Every later hop carries the full
      // last-mile.
      const double lm =
          (home && i == 0) ? draw.last_mile.air_ms : draw.last_mile.total_ms();
      double rtt = lm + hop.base_rtt_ms * draw.congestion + draw.spike_ms;
      // Per-TTL probes see independent small noise plus reply-path
      // processing on the router's slow path.
      rtt *= std::exp(rng.normal(0.0, 0.03));
      rtt += rng.exponential(0.4);
      if (!is_final && rng.chance(0.05)) {
        rtt += rng.exponential(14.0);  // control-plane rate limiting (§3.3)
        metrics.rate_limited_hops.inc();
      }
      out.ip = hop.ip;
      // Classic traceroute varies the flow identifier per TTL, so ECMP
      // segments answer from either sibling interface — and the sibling's
      // path detours slightly (the latency-inflation artefact Paris
      // traceroute eliminates).
      if (method == TraceMethod::Classic && hop.has_alt() && rng.chance(0.35)) {
        out.ip = hop.alt_ip;
        rtt += rng.exponential(2.5);
        if (rng.chance(0.08)) rtt += rng.exponential(9.0);
        metrics.ecmp_detours.inc();
      }
      out.rtt_ms = std::max(0.1, rtt);
    }
    hops_out.push_back(out);
    if (is_final && out.responded) {
      record.completed = true;
      record.end_to_end_ms = out.rtt_ms + icmp_penalty_ms(probe, rng);
    }
  }
  if (record.completed) metrics.traceroutes_completed.inc();
  return record;
}

}  // namespace cloudrtt::measure

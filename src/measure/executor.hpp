#pragma once
// Parallel measurement execution.
//
// The campaign driver is split into two phases per simulated day. The
// *schedule* phase runs sequentially and owns every piece of shared state —
// the daily budget, the country cursor, connectivity draws, fault retries —
// and emits a flat list of MeasurementTasks. The *execute* phase, this
// module, runs those tasks: it shards the list into fixed-size chunks,
// forks an independent RNG per chunk from a single execution root, and
// merges results back in task order.
//
// Determinism across thread counts falls out of three choices:
//  * the chunk size is a constant (not derived from the worker count), so
//    the chunk decomposition is identical for --threads 1 and --threads N;
//  * each task's RNG is forked from (execution root, chunk index, offset
//    within chunk) — never from any other task's draws;
//  * results land in preallocated slots indexed by task position and are
//    appended to the dataset in that order, regardless of which worker
//    finished first.
// So core::dataset_hash is bit-identical for every worker-pool size.

#include <cstdint>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "measure/engine.hpp"
#include "measure/records.hpp"
#include "probes/fleet.hpp"
#include "topology/world.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace cloudrtt::measure {

/// One scheduled <probe, target> measurement (ping + traceroute together).
/// Fully resolved at schedule time: carries no RNG and touches no shared
/// campaign state, so any worker may run it.
struct MeasurementTask {
  const probes::Probe* probe = nullptr;
  const topology::CloudEndpoint* endpoint = nullptr;
  std::uint32_t day = 0;
  std::uint8_t slot = 0;
  const fault::TraceFaults* trace_faults = nullptr;
};

class ParallelExecutor {
 public:
  /// Tasks per chunk. A constant (never a function of the worker count) so
  /// the RNG forking tree is identical for any --threads value.
  static constexpr std::size_t kChunkSize = 64;

  explicit ParallelExecutor(unsigned threads = 1)
      : threads_(threads == 0 ? 1 : threads) {}

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run every task and append one ping row + one trace row (hops spliced
  /// into the flat pool) per task to `out`'s columns, in task order.
  /// `chunk_root` seeds the per-chunk RNG tree; pass
  /// the same value to get the same records at any thread count. With one
  /// worker (or few tasks) this degenerates to an inline loop — no pool.
  /// Worker exceptions are rethrown here after all workers have joined.
  /// `skip_tasks` elides execution (and appending) of the first tasks while
  /// keeping the chunk decomposition and RNG forks of the remainder
  /// identical to a full run — a mid-day resume executes tasks
  /// [skip_tasks, n) with exactly the records a full run would have given
  /// them, because each task's RNG is forked per (chunk, offset), never
  /// advanced by its neighbours.
  /// Non-const: the executor owns per-day scratch (the staging arena and
  /// per-worker path scratch) that it recycles between calls — state that
  /// never influences the records, only the allocation count.
  void execute(const Engine& engine, std::span<const MeasurementTask> tasks,
               const util::Rng& chunk_root, Dataset& out,
               std::size_t skip_tasks = 0);

 private:
  unsigned threads_;
  /// Result-slot staging for the current day; reset (not freed) per call so
  /// steady-state days allocate nothing.
  util::Arena staging_;
  /// One per worker, indexed by worker id; each is touched by exactly one
  /// thread during execute().
  std::vector<MeasurementScratch> worker_scratch_;
};

}  // namespace cloudrtt::measure

#pragma once
// Columnar dataset core (ISSUE 10 tentpole).
//
// The paper's study is 3.8M pings / 7M traceroutes; an AoS layout with two
// raw pointers per ping and a heap-allocated hop vector per trace does not
// survive the 115k-probe paper scale, let alone streaming. `Dataset` is now
// structure-of-arrays:
//
//   PingColumn   probe code | region code | protocol | rtt | day | slot
//   TraceColumn  probe code | region code | target | hop offset | hop count
//                | completed | end-to-end | day | slot | true mode
//                + one flat HopRecord pool shared by every trace
//
// Probe/region cells are *codes* — indices into the frozen probe fleets and
// the static cloud::RegionCatalog, matching the store codec's on-disk form —
// resolved back to pointers through a RowBinding. Hand-built records whose
// probe/region come from neither (unit tests) fall back to a per-dataset
// extras table, so an unbound Dataset still round-trips arbitrary rows.
//
// Cursor API: iteration yields materialised row views. A ping view is the
// PingRecord itself (`PingRef` aliases it — six scalar fields, zero-cost to
// materialise); a trace view is `TraceRef`, which carries a span into the
// hop pool instead of an owning vector. `for (const PingRecord& p :
// data.pings)` compiles unchanged (the proxy binds to the const reference);
// trace loops iterate `const TraceRef&` and analysis entry points take
// TraceRef, which converts implicitly from an owning TraceRecord.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <unordered_map>
#include <vector>

#include "measure/records.hpp"
#include "util/check.hpp"

namespace cloudrtt::measure {

// -- row codes ---------------------------------------------------------------
// Probe ids top out around 1'008'500 and the region catalog at ~200 entries,
// so the high bit of either cell is free to tag extras-table indices.
inline constexpr std::uint32_t kNullProbeCode = 0xFFFFFFFFu;
inline constexpr std::uint32_t kExtraProbeBit = 0x80000000u;
inline constexpr std::uint16_t kNullRegionCode = 0xFFFFu;
inline constexpr std::uint16_t kExtraRegionBit = 0x8000u;

/// Code <-> pointer translation shared by both columns of a Dataset.
/// Bound fleets give O(1) id lookups (ids are dense — fleet.hpp by_id);
/// everything else lands in the extras tables. Binding later never
/// invalidates codes already stored.
class RowBinding {
 public:
  void bind(const probes::ProbeFleet* sc, const probes::ProbeFleet* atlas) {
    fleets_[0] = sc;
    fleets_[1] = atlas;
  }

  [[nodiscard]] bool bound() const {
    return fleets_[0] != nullptr || fleets_[1] != nullptr;
  }
  /// No extras rows: every stored code is a real probe id / catalog index.
  [[nodiscard]] bool pure() const {
    return extra_probes_.empty() && extra_regions_.empty();
  }
  /// Codes minted under `other` can be spliced in raw: the fleets match and
  /// `other` never minted an extras code.
  [[nodiscard]] bool accepts_raw(const RowBinding& other) const {
    return fleets_[0] == other.fleets_[0] && fleets_[1] == other.fleets_[1] &&
           other.pure();
  }

  [[nodiscard]] std::uint32_t probe_code(const probes::Probe* probe);
  [[nodiscard]] std::uint16_t region_code(const cloud::RegionInfo* region);
  [[nodiscard]] const probes::Probe* probe(std::uint32_t code) const;
  [[nodiscard]] const cloud::RegionInfo* region(std::uint16_t code) const;

  /// Real platform id for serialisation (extras resolve via the pointer).
  [[nodiscard]] std::uint32_t probe_id(std::uint32_t code) const {
    CLOUDRTT_CHECK(code != kNullProbeCode,
                   "serialized record's probe must be set");
    if ((code & kExtraProbeBit) != 0) {
      return extra_probes_[code & ~kExtraProbeBit]->id;
    }
    return code;
  }
  /// Catalog index for serialisation; refuses extras/null regions with the
  /// same contract the AoS codec had.
  [[nodiscard]] std::uint16_t region_catalog_index(std::uint16_t code) const {
    CLOUDRTT_CHECK(code != kNullRegionCode && (code & kExtraRegionBit) == 0,
                   "serialized record's region must come from the catalog");
    return code;
  }

 private:
  const probes::ProbeFleet* fleets_[2] = {nullptr, nullptr};
  std::vector<const probes::Probe*> extra_probes_;
  std::unordered_map<const probes::Probe*, std::uint32_t> extra_probe_index_;
  std::vector<const cloud::RegionInfo*> extra_regions_;
  std::unordered_map<const cloud::RegionInfo*, std::uint16_t>
      extra_region_index_;
};

/// Non-owning view of one trace row: same fields as TraceRecord with the hop
/// list as a span into the column's flat pool. Converts implicitly from an
/// owning TraceRecord so call sites holding records keep compiling.
struct TraceRef {
  const probes::Probe* probe = nullptr;
  const cloud::RegionInfo* region = nullptr;
  net::Ipv4Address target_ip;
  std::span<const HopRecord> hops;
  bool completed = false;
  double end_to_end_ms = 0.0;
  std::uint32_t day = 0;
  std::uint8_t slot = 0;
  topology::InterconnectMode true_mode = topology::InterconnectMode::Public;

  TraceRef() = default;
  /*implicit*/ TraceRef(const TraceRecord& r)
      : probe(r.probe),
        region(r.region),
        target_ip(r.target_ip),
        hops(r.hops),
        completed(r.completed),
        end_to_end_ms(r.end_to_end_ms),
        day(r.day),
        slot(r.slot),
        true_mode(r.true_mode) {}

  /// Materialise an owning record (tools/tests that outlive the dataset).
  [[nodiscard]] TraceRecord to_record() const {
    TraceRecord r;
    r.probe = probe;
    r.region = region;
    r.target_ip = target_ip;
    r.hops.assign(hops.begin(), hops.end());
    r.completed = completed;
    r.end_to_end_ms = end_to_end_ms;
    r.day = day;
    r.slot = slot;
    r.true_mode = true_mode;
    return r;
  }
};

/// A ping view materialises at full fidelity — six scalar cells — so the
/// "ref" is simply the record.
using PingRef = PingRecord;

/// Proxy iterator over a column: dereferencing materialises the row view by
/// value (range-for `const Row&` binds it via lifetime extension).
template <typename Column, typename Row>
class RowIterator {
 public:
  using iterator_category = std::random_access_iterator_tag;
  using value_type = Row;
  using difference_type = std::ptrdiff_t;
  using reference = Row;  ///< proxy: a value, not a true reference
  using pointer = void;

  RowIterator() = default;
  RowIterator(const Column* column, std::size_t row)
      : column_(column), row_(row) {}

  [[nodiscard]] Row operator*() const { return (*column_)[row_]; }
  [[nodiscard]] Row operator[](difference_type n) const {
    return (*column_)[row_ + static_cast<std::size_t>(n)];
  }

  RowIterator& operator++() { ++row_; return *this; }
  RowIterator operator++(int) { RowIterator old = *this; ++row_; return old; }
  RowIterator& operator--() { --row_; return *this; }
  RowIterator operator--(int) { RowIterator old = *this; --row_; return old; }
  RowIterator& operator+=(difference_type n) {
    row_ = static_cast<std::size_t>(static_cast<difference_type>(row_) + n);
    return *this;
  }
  RowIterator& operator-=(difference_type n) { return *this += -n; }
  [[nodiscard]] friend RowIterator operator+(RowIterator it,
                                             difference_type n) {
    return it += n;
  }
  [[nodiscard]] friend RowIterator operator+(difference_type n,
                                             RowIterator it) {
    return it += n;
  }
  [[nodiscard]] friend RowIterator operator-(RowIterator it,
                                             difference_type n) {
    return it -= n;
  }
  [[nodiscard]] friend difference_type operator-(const RowIterator& a,
                                                 const RowIterator& b) {
    return static_cast<difference_type>(a.row_) -
           static_cast<difference_type>(b.row_);
  }
  [[nodiscard]] friend bool operator==(const RowIterator& a,
                                       const RowIterator& b) {
    return a.row_ == b.row_;
  }
  [[nodiscard]] friend auto operator<=>(const RowIterator& a,
                                        const RowIterator& b) {
    return a.row_ <=> b.row_;
  }

 private:
  const Column* column_ = nullptr;
  std::size_t row_ = 0;
};

class PingColumn {
 public:
  using value_type = PingRecord;
  using const_iterator = RowIterator<PingColumn, PingRecord>;
  using iterator = const_iterator;

  explicit PingColumn(RowBinding* binding) : binding_(binding) {}

  [[nodiscard]] std::size_t size() const { return rtt_.size(); }
  [[nodiscard]] bool empty() const { return rtt_.empty(); }
  void reserve(std::size_t rows);
  void clear();

  void push_back(const PingRecord& record) {
    append_row(binding_->probe_code(record.probe),
               binding_->region_code(record.region), record.protocol,
               record.rtt_ms, record.day, record.slot);
  }
  /// Raw columnar append (store/codec path — codes already validated).
  void append_row(std::uint32_t probe_code, std::uint16_t region_code,
                  Protocol protocol, double rtt_ms, std::uint32_t day,
                  std::uint8_t slot);

  [[nodiscard]] PingRecord operator[](std::size_t row) const {
    PingRecord r;
    r.probe = binding_->probe(probe_[row]);
    r.region = binding_->region(region_[row]);
    r.protocol = static_cast<Protocol>(protocol_[row]);
    r.rtt_ms = rtt_[row];
    r.day = day_[row];
    r.slot = slot_[row];
    return r;
  }
  [[nodiscard]] PingRecord front() const { return (*this)[0]; }
  [[nodiscard]] PingRecord back() const { return (*this)[size() - 1]; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

  // Column cells for serialisers / single-column scans (no materialisation).
  [[nodiscard]] std::uint32_t probe_id(std::size_t row) const {
    return binding_->probe_id(probe_[row]);
  }
  [[nodiscard]] std::uint16_t region_index(std::size_t row) const {
    return binding_->region_catalog_index(region_[row]);
  }
  [[nodiscard]] Protocol protocol(std::size_t row) const {
    return static_cast<Protocol>(protocol_[row]);
  }
  [[nodiscard]] double rtt_ms(std::size_t row) const { return rtt_[row]; }
  [[nodiscard]] std::uint32_t day(std::size_t row) const { return day_[row]; }
  [[nodiscard]] std::uint8_t slot(std::size_t row) const { return slot_[row]; }
  [[nodiscard]] std::span<const double> rtt_column() const { return rtt_; }

 private:
  friend struct Dataset;
  void rebind(RowBinding* binding) { binding_ = binding; }
  /// Splice rows [begin, end) of `other` verbatim (bindings must be
  /// raw-compatible — Dataset::append checks).
  void splice(const PingColumn& other, std::size_t begin, std::size_t end);

  RowBinding* binding_;
  std::vector<std::uint32_t> probe_;
  std::vector<std::uint16_t> region_;
  std::vector<std::uint8_t> protocol_;
  std::vector<double> rtt_;
  std::vector<std::uint32_t> day_;
  std::vector<std::uint8_t> slot_;
};

class TraceColumn {
 public:
  using value_type = TraceRef;
  using const_iterator = RowIterator<TraceColumn, TraceRef>;
  using iterator = const_iterator;

  explicit TraceColumn(RowBinding* binding) : binding_(binding) {}

  [[nodiscard]] std::size_t size() const { return e2e_.size(); }
  [[nodiscard]] bool empty() const { return e2e_.empty(); }
  void reserve(std::size_t rows);
  /// Capacity hint for the flat hop pool (schedule-derived: tasks x mean
  /// path length), on top of rows already stored. Grows geometrically so
  /// exact daily hints never trigger daily copies.
  void reserve_hops(std::size_t hops) {
    const std::size_t want = hop_pool_.size() + hops;
    if (want <= hop_pool_.capacity()) return;
    hop_pool_.reserve(
        std::max(want, hop_pool_.capacity() + hop_pool_.capacity() / 2));
  }
  void clear();

  void push_back(const TraceRecord& record) {
    TraceCore core;
    core.probe = record.probe;
    core.region = record.region;
    core.target_ip = record.target_ip;
    core.completed = record.completed;
    core.end_to_end_ms = record.end_to_end_ms;
    core.day = record.day;
    core.slot = record.slot;
    core.true_mode = record.true_mode;
    push_back(core, std::span{record.hops});
  }
  /// Columnar hot path: core fields + hops copied into the flat pool.
  void push_back(const TraceCore& core, std::span<const HopRecord> hops);
  /// Raw columnar append (store/codec path — codes already validated).
  void append_row(std::uint32_t probe_code, std::uint16_t region_code,
                  std::uint32_t target_ip, bool completed,
                  double end_to_end_ms, std::uint32_t day, std::uint8_t slot,
                  topology::InterconnectMode true_mode,
                  std::span<const HopRecord> hops);

  [[nodiscard]] TraceRef operator[](std::size_t row) const {
    TraceRef r;
    r.probe = binding_->probe(probe_[row]);
    r.region = binding_->region(region_[row]);
    r.target_ip = net::Ipv4Address{target_[row]};
    r.hops = hops(row);
    r.completed = completed_[row] != 0;
    r.end_to_end_ms = e2e_[row];
    r.day = day_[row];
    r.slot = slot_[row];
    r.true_mode = static_cast<topology::InterconnectMode>(mode_[row]);
    return r;
  }
  [[nodiscard]] TraceRef front() const { return (*this)[0]; }
  [[nodiscard]] TraceRef back() const { return (*this)[size() - 1]; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

  // Column cells for serialisers (no materialisation, no probe binding).
  [[nodiscard]] std::uint32_t probe_id(std::size_t row) const {
    return binding_->probe_id(probe_[row]);
  }
  [[nodiscard]] std::uint16_t region_index(std::size_t row) const {
    return binding_->region_catalog_index(region_[row]);
  }
  [[nodiscard]] net::Ipv4Address target_ip(std::size_t row) const {
    return net::Ipv4Address{target_[row]};
  }
  [[nodiscard]] bool completed(std::size_t row) const {
    return completed_[row] != 0;
  }
  [[nodiscard]] double end_to_end_ms(std::size_t row) const {
    return e2e_[row];
  }
  [[nodiscard]] std::uint32_t day(std::size_t row) const { return day_[row]; }
  [[nodiscard]] std::uint8_t slot(std::size_t row) const { return slot_[row]; }
  [[nodiscard]] topology::InterconnectMode true_mode(std::size_t row) const {
    return static_cast<topology::InterconnectMode>(mode_[row]);
  }
  [[nodiscard]] std::span<const HopRecord> hops(std::size_t row) const {
    return std::span{hop_pool_}.subspan(hop_offset_[row], hop_count_[row]);
  }
  [[nodiscard]] std::size_t hop_count(std::size_t row) const {
    return hop_count_[row];
  }
  [[nodiscard]] const std::vector<HopRecord>& hop_pool() const {
    return hop_pool_;
  }

 private:
  friend struct Dataset;
  void rebind(RowBinding* binding) { binding_ = binding; }
  void splice(const TraceColumn& other, std::size_t begin, std::size_t end);

  RowBinding* binding_;
  std::vector<std::uint32_t> probe_;
  std::vector<std::uint16_t> region_;
  std::vector<std::uint32_t> target_;
  std::vector<std::uint64_t> hop_offset_;  ///< into hop_pool_
  std::vector<std::uint32_t> hop_count_;
  std::vector<std::uint8_t> completed_;
  std::vector<double> e2e_;
  std::vector<std::uint32_t> day_;
  std::vector<std::uint8_t> slot_;
  std::vector<std::uint8_t> mode_;
  std::vector<HopRecord> hop_pool_;  ///< flat arena, task order
};

struct Dataset {
  PingColumn pings;
  TraceColumn traces;

  Dataset() : pings(&binding_), traces(&binding_) {}
  Dataset(const Dataset& other)
      : pings(other.pings), traces(other.traces), binding_(other.binding_) {
    pings.rebind(&binding_);
    traces.rebind(&binding_);
  }
  Dataset(Dataset&& other) noexcept
      : pings(std::move(other.pings)),
        traces(std::move(other.traces)),
        binding_(std::move(other.binding_)) {
    pings.rebind(&binding_);
    traces.rebind(&binding_);
  }
  Dataset& operator=(const Dataset& other) {
    if (this != &other) {
      pings = other.pings;
      traces = other.traces;
      binding_ = other.binding_;
      pings.rebind(&binding_);
      traces.rebind(&binding_);
    }
    return *this;
  }
  Dataset& operator=(Dataset&& other) noexcept {
    if (this != &other) {
      pings = std::move(other.pings);
      traces = std::move(other.traces);
      binding_ = std::move(other.binding_);
      pings.rebind(&binding_);
      traces.rebind(&binding_);
    }
    return *this;
  }

  /// Register the fleets codes resolve through. Idempotent; never
  /// invalidates rows already stored (extras stay extras).
  void bind(const probes::ProbeFleet* sc, const probes::ProbeFleet* atlas) {
    binding_.bind(sc, atlas);
  }

  void reserve(std::size_t ping_count, std::size_t trace_count) {
    pings.reserve(ping_count);
    traces.reserve(trace_count);
  }
  void reserve_hops(std::size_t hops) { traces.reserve_hops(hops); }

  /// Drop every row but keep the binding and column capacity — the streaming
  /// campaign calls this after each committed day so RAM stays O(day).
  void clear_rows() {
    pings.clear();
    traces.clear();
  }

  /// Append every row of `other` (salvage merge, checkpoint adoption).
  void append(const Dataset& other) {
    append_slice(other, 0, other.pings.size(), 0, other.traces.size());
  }
  /// Append ping rows [pb, pe) and trace rows [tb, te) of `other`. Raw
  /// column splice when `other`'s codes are valid under this binding;
  /// re-encoded row by row otherwise.
  void append_slice(const Dataset& other, std::size_t pb, std::size_t pe,
                    std::size_t tb, std::size_t te);

  [[nodiscard]] RowBinding& binding() { return binding_; }
  [[nodiscard]] const RowBinding& binding() const { return binding_; }

 private:
  RowBinding binding_;
};

}  // namespace cloudrtt::measure

#include "measure/columns.hpp"

#include "cloud/region.hpp"
#include "probes/fleet.hpp"

namespace cloudrtt::measure {

std::uint32_t RowBinding::probe_code(const probes::Probe* probe) {
  if (probe == nullptr) return kNullProbeCode;
  for (const probes::ProbeFleet* fleet : fleets_) {
    if (fleet != nullptr && fleet->by_id(probe->id) == probe) return probe->id;
  }
  const auto [it, inserted] = extra_probe_index_.try_emplace(
      probe, static_cast<std::uint32_t>(extra_probes_.size()));
  if (inserted) extra_probes_.push_back(probe);
  return kExtraProbeBit | it->second;
}

std::uint16_t RowBinding::region_code(const cloud::RegionInfo* region) {
  if (region == nullptr) return kNullRegionCode;
  const std::span<const cloud::RegionInfo> all =
      cloud::RegionCatalog::instance().all();
  const auto index = static_cast<std::size_t>(region - all.data());
  if (index < all.size()) return static_cast<std::uint16_t>(index);
  const auto [it, inserted] = extra_region_index_.try_emplace(
      region, static_cast<std::uint16_t>(extra_regions_.size()));
  if (inserted) extra_regions_.push_back(region);
  CLOUDRTT_CHECK(it->second < 0x7FFF,
                 "extras region table overflowed its 15-bit code space");
  return static_cast<std::uint16_t>(kExtraRegionBit | it->second);
}

const probes::Probe* RowBinding::probe(std::uint32_t code) const {
  if (code == kNullProbeCode) return nullptr;
  if ((code & kExtraProbeBit) != 0) {
    return extra_probes_[code & ~kExtraProbeBit];
  }
  for (const probes::ProbeFleet* fleet : fleets_) {
    if (fleet == nullptr) continue;
    if (const probes::Probe* found = fleet->by_id(code)) return found;
  }
  CLOUDRTT_CHECK(false, "probe code ", code,
                 " does not resolve through the bound fleets");
  return nullptr;
}

const cloud::RegionInfo* RowBinding::region(std::uint16_t code) const {
  if (code == kNullRegionCode) return nullptr;
  if ((code & kExtraRegionBit) != 0) {
    return extra_regions_[code & static_cast<std::uint16_t>(~kExtraRegionBit)];
  }
  const std::span<const cloud::RegionInfo> all =
      cloud::RegionCatalog::instance().all();
  CLOUDRTT_CHECK(code < all.size(), "region code ", code,
                 " outside the catalog");
  return &all[code];
}

// -- PingColumn --------------------------------------------------------------

void PingColumn::reserve(std::size_t rows) {
  // Exact per-day hints arrive daily; grow geometrically past the current
  // capacity so steady-state days never copy the columns.
  if (rows <= rtt_.capacity()) return;
  const std::size_t target =
      std::max(rows, rtt_.capacity() + rtt_.capacity() / 2);
  probe_.reserve(target);
  region_.reserve(target);
  protocol_.reserve(target);
  rtt_.reserve(target);
  day_.reserve(target);
  slot_.reserve(target);
}

void PingColumn::clear() {
  probe_.clear();
  region_.clear();
  protocol_.clear();
  rtt_.clear();
  day_.clear();
  slot_.clear();
}

void PingColumn::append_row(std::uint32_t probe_code,
                            std::uint16_t region_code, Protocol protocol,
                            double rtt_ms, std::uint32_t day,
                            std::uint8_t slot) {
  probe_.push_back(probe_code);
  region_.push_back(region_code);
  protocol_.push_back(static_cast<std::uint8_t>(protocol));
  rtt_.push_back(rtt_ms);
  day_.push_back(day);
  slot_.push_back(slot);
}

void PingColumn::splice(const PingColumn& other, std::size_t begin,
                        std::size_t end) {
  if (begin >= end) return;
  const auto at = [&](const auto& column) {
    return std::pair{column.begin() + static_cast<std::ptrdiff_t>(begin),
                     column.begin() + static_cast<std::ptrdiff_t>(end)};
  };
  const auto [pb, pe] = at(other.probe_);
  probe_.insert(probe_.end(), pb, pe);
  const auto [rb, re] = at(other.region_);
  region_.insert(region_.end(), rb, re);
  const auto [cb, ce] = at(other.protocol_);
  protocol_.insert(protocol_.end(), cb, ce);
  const auto [tb, te] = at(other.rtt_);
  rtt_.insert(rtt_.end(), tb, te);
  const auto [db, de] = at(other.day_);
  day_.insert(day_.end(), db, de);
  const auto [sb, se] = at(other.slot_);
  slot_.insert(slot_.end(), sb, se);
}

// -- TraceColumn -------------------------------------------------------------

void TraceColumn::reserve(std::size_t rows) {
  if (rows <= e2e_.capacity()) return;
  const std::size_t target =
      std::max(rows, e2e_.capacity() + e2e_.capacity() / 2);
  probe_.reserve(target);
  region_.reserve(target);
  target_.reserve(target);
  hop_offset_.reserve(target);
  hop_count_.reserve(target);
  completed_.reserve(target);
  e2e_.reserve(target);
  day_.reserve(target);
  slot_.reserve(target);
  mode_.reserve(target);
}

void TraceColumn::clear() {
  probe_.clear();
  region_.clear();
  target_.clear();
  hop_offset_.clear();
  hop_count_.clear();
  completed_.clear();
  e2e_.clear();
  day_.clear();
  slot_.clear();
  mode_.clear();
  hop_pool_.clear();
}

void TraceColumn::push_back(const TraceCore& core,
                            std::span<const HopRecord> hops) {
  append_row(binding_->probe_code(core.probe),
             binding_->region_code(core.region), core.target_ip.value(),
             core.completed, core.end_to_end_ms, core.day, core.slot,
             core.true_mode, hops);
}

void TraceColumn::append_row(std::uint32_t probe_code,
                             std::uint16_t region_code,
                             std::uint32_t target_ip, bool completed,
                             double end_to_end_ms, std::uint32_t day,
                             std::uint8_t slot,
                             topology::InterconnectMode true_mode,
                             std::span<const HopRecord> hops) {
  probe_.push_back(probe_code);
  region_.push_back(region_code);
  target_.push_back(target_ip);
  hop_offset_.push_back(hop_pool_.size());
  hop_count_.push_back(static_cast<std::uint32_t>(hops.size()));
  hop_pool_.insert(hop_pool_.end(), hops.begin(), hops.end());
  completed_.push_back(completed ? 1 : 0);
  e2e_.push_back(end_to_end_ms);
  day_.push_back(day);
  slot_.push_back(slot);
  mode_.push_back(static_cast<std::uint8_t>(true_mode));
}

void TraceColumn::splice(const TraceColumn& other, std::size_t begin,
                         std::size_t end) {
  if (begin >= end) return;
  const auto at = [&](const auto& column) {
    return std::pair{column.begin() + static_cast<std::ptrdiff_t>(begin),
                     column.begin() + static_cast<std::ptrdiff_t>(end)};
  };
  const auto [pb, pe] = at(other.probe_);
  probe_.insert(probe_.end(), pb, pe);
  const auto [rb, re] = at(other.region_);
  region_.insert(region_.end(), rb, re);
  const auto [tb, te] = at(other.target_);
  target_.insert(target_.end(), tb, te);
  const auto [cb, ce] = at(other.completed_);
  completed_.insert(completed_.end(), cb, ce);
  const auto [eb, ee] = at(other.e2e_);
  e2e_.insert(e2e_.end(), eb, ee);
  const auto [db, de] = at(other.day_);
  day_.insert(day_.end(), db, de);
  const auto [sb, se] = at(other.slot_);
  slot_.insert(slot_.end(), sb, se);
  const auto [mb, me] = at(other.mode_);
  mode_.insert(mode_.end(), mb, me);
  const auto [hb, he] = at(other.hop_count_);
  hop_count_.insert(hop_count_.end(), hb, he);

  // Hops of rows [begin, end) occupy one contiguous pool range (append-only
  // pool, row order == append order); copy it and rebase the offsets.
  const std::uint64_t src_base = other.hop_offset_[begin];
  const std::uint64_t src_stop =
      other.hop_offset_[end - 1] + other.hop_count_[end - 1];
  const std::uint64_t pool_base = hop_pool_.size();
  const std::size_t row0 = hop_offset_.size();
  const auto [ob, oe] = at(other.hop_offset_);
  hop_offset_.insert(hop_offset_.end(), ob, oe);
  for (std::size_t row = row0; row < hop_offset_.size(); ++row) {
    hop_offset_[row] = hop_offset_[row] - src_base + pool_base;
  }
  hop_pool_.insert(
      hop_pool_.end(),
      other.hop_pool_.begin() + static_cast<std::ptrdiff_t>(src_base),
      other.hop_pool_.begin() + static_cast<std::ptrdiff_t>(src_stop));
}

// -- Dataset -----------------------------------------------------------------

void Dataset::append_slice(const Dataset& other, std::size_t pb,
                           std::size_t pe, std::size_t tb, std::size_t te) {
  CLOUDRTT_CHECK(pb <= pe && pe <= other.pings.size() && tb <= te &&
                     te <= other.traces.size(),
                 "append_slice bounds out of range");
  // A fresh, never-bound dataset adopts the source binding wholesale, which
  // makes the raw column splice valid even when the source carries extras.
  const bool fresh_adopt = pings.empty() && traces.empty() &&
                           !binding_.bound() && binding_.pure();
  if (fresh_adopt) binding_ = other.binding_;
  if (fresh_adopt || binding_.accepts_raw(other.binding_)) {
    pings.splice(other.pings, pb, pe);
    traces.splice(other.traces, tb, te);
    return;
  }
  // Incompatible bindings: re-encode row by row through this binding.
  for (std::size_t row = pb; row < pe; ++row) {
    pings.push_back(other.pings[row]);
  }
  for (std::size_t row = tb; row < te; ++row) {
    const TraceRef ref = other.traces[row];
    TraceCore core;
    core.probe = ref.probe;
    core.region = ref.region;
    core.target_ip = ref.target_ip;
    core.completed = ref.completed;
    core.end_to_end_ms = ref.end_to_end_ms;
    core.day = ref.day;
    core.slot = ref.slot;
    core.true_mode = ref.true_mode;
    traces.push_back(core, ref.hops);
  }
}

}  // namespace cloudrtt::measure

#pragma once
// Raw measurement records — the simulator's equivalent of the published
// 3.8M-ping / 7M-traceroute dataset. Analysis code treats these as data:
// hop ASNs, interconnect modes and access technologies are re-derived from
// addresses, never read from ground truth (ground-truth fields are kept
// only so tests can validate the inference pipeline).

#include <cstdint>
#include <vector>

#include "cloud/region.hpp"
#include "net/ipv4.hpp"
#include "probes/fleet.hpp"
#include "topology/interconnect.hpp"

namespace cloudrtt::measure {

enum class Protocol : unsigned char { Tcp, Icmp };

[[nodiscard]] constexpr std::string_view to_string(Protocol p) {
  return p == Protocol::Tcp ? "TCP" : "ICMP";
}

struct PingRecord {
  const probes::Probe* probe = nullptr;
  const cloud::RegionInfo* region = nullptr;
  Protocol protocol = Protocol::Tcp;
  double rtt_ms = 0.0;
  std::uint32_t day = 0;
  std::uint8_t slot = 0;  ///< 4-hour scheduling slot within the day (0..5)
};

struct HopRecord {
  std::uint8_t ttl = 0;
  bool responded = false;
  net::Ipv4Address ip;   ///< valid only when responded
  double rtt_ms = 0.0;   ///< valid only when responded
};

struct TraceRecord {
  const probes::Probe* probe = nullptr;
  const cloud::RegionInfo* region = nullptr;
  net::Ipv4Address target_ip;  ///< the VM the trace was aimed at (known a priori)
  std::vector<HopRecord> hops;
  bool completed = false;        ///< final echo from the VM arrived
  double end_to_end_ms = 0.0;    ///< ICMP end-to-end RTT (valid if completed)
  std::uint32_t day = 0;
  std::uint8_t slot = 0;  ///< 4-hour scheduling slot within the day (0..5)
  /// Ground truth for pipeline validation only — not used by analysis.
  topology::InterconnectMode true_mode = topology::InterconnectMode::Public;
};

/// TraceRecord minus the owning hop vector: what Engine::traceroute_into
/// returns while appending the hops to a caller-owned flat arena. The
/// columnar hot path (executor staging, TraceColumn) never materialises a
/// per-trace hop vector.
struct TraceCore {
  const probes::Probe* probe = nullptr;
  const cloud::RegionInfo* region = nullptr;
  net::Ipv4Address target_ip;
  bool completed = false;
  double end_to_end_ms = 0.0;
  std::uint32_t day = 0;
  std::uint8_t slot = 0;
  topology::InterconnectMode true_mode = topology::InterconnectMode::Public;
};

}  // namespace cloudrtt::measure

// Dataset (SoA columns over these record shapes) lives in columns.hpp; the
// two headers are a guarded pair so either include order works and every
// existing `#include "measure/records.hpp"` keeps seeing measure::Dataset.
#include "measure/columns.hpp"  // IWYU pragma: export
